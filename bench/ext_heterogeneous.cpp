// Extension bench: heterogeneous client-cache capacities.
//
// Section 4.3 motivates object diversion by "differences in the storage
// capacity and utilization of client caches". This bench runs Hier-GD over
// uniform, bimodal and linearly-spread capacity distributions (equal total
// donated storage) with diversion on and off, showing that diversion is
// what makes heterogeneous populations perform like uniform ones.
#include "bench_common.hpp"

#include <iomanip>

#include "p2p/p2p_client_cache.hpp"

int main() {
  using namespace webcache;
  bench::SectionTimer timer("ext_heterogeneous");

  auto wl = bench::paper_workload();
  wl.total_requests = std::max<std::uint64_t>(wl.total_requests / 2, 50'000);
  const auto source = bench::bench_source(wl);
  const auto& trace = *source;
  const auto infinite = core::cluster_infinite_cache_size(trace, 2);

  struct Spread {
    std::string label;
    p2p::CapacitySpread spread;
  };
  const Spread spreads[] = {
      {"uniform", p2p::CapacitySpread::kUniform},
      {"bimodal", p2p::CapacitySpread::kBimodal},
      {"linear", p2p::CapacitySpread::kProportional},
  };

  std::cout << "# Heterogeneous client caches under Hier-GD (equal total donated "
               "storage; proxy = 20% of working set)\n";
  std::cout << std::left << std::setw(12) << "# spread" << std::setw(12) << "diversion"
            << std::setw(10) << "gain%" << std::setw(12) << "p2p-hits" << std::setw(14)
            << "diversions" << "utilization-cv\n";
  std::cout << std::fixed << std::setprecision(3);

  for (const auto& s : spreads) {
    for (const bool diversion : {true, false}) {
      sim::SimConfig cfg;
      cfg.scheme = sim::Scheme::kHierGD;
      cfg.proxy_capacity = std::max<std::size_t>(1, infinite / 5);
      cfg.client_cache_capacity = std::max<std::size_t>(1, infinite / 1000);
      cfg.capacity_spread = s.spread;
      cfg.enable_diversion = diversion;

      sim::Simulator simulator(cfg, trace);
      const auto m = simulator.run();
      sim::SimConfig nc = cfg;
      nc.scheme = sim::Scheme::kNC;
      const auto base = sim::run_simulation(nc, trace);

      double cv = 0.0;
      for (unsigned p = 0; p < cfg.num_proxies; ++p) {
        cv += simulator.p2p_of(p)->utilization_cv() / cfg.num_proxies;
      }
      std::cout << std::setw(12) << s.label << std::setw(12) << (diversion ? "on" : "off")
                << std::setw(10) << 100.0 * sim::latency_gain(base, m) << std::setw(12)
                << m.hits_local_p2p << std::setw(14) << m.messages.diversions << cv
                << "\n";
    }
  }
  return 0;
}
