// Ablation: Pastry routing hop counts vs cluster size (paper Section 4.1).
//
// The paper argues a P2P client-cache lookup takes ceil(log_{2^b} N) hops
// (e.g. 3 < log16(1024) + 1 < 4). This bench measures actual hop statistics
// on the simulated overlay for growing N and compares to the bound, plus
// routing state size and behaviour under 10% node failures.
#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/sha1.hpp"
#include "common/stats.hpp"
#include "pastry/overlay.hpp"

int main() {
  using namespace webcache;
  bench::SectionTimer timer("abl_pastry_hops");

  std::cout << "# Pastry hop counts vs client cluster size (b = 4, l = 16)\n";
  std::cout << "# RDP = network distance travelled / direct source-root distance;\n";
  std::cout << "# 'prox' columns use proximity-aware routing tables.\n";
  std::cout << std::left << std::setw(8) << "# N" << std::setw(10) << "bound" << std::setw(12)
            << "mean-hops" << std::setw(10) << "max" << std::setw(14) << "mean-fail10%"
            << std::setw(10) << "repairs" << std::setw(10) << "RDP" << "RDP-prox\n";
  std::cout << std::fixed << std::setprecision(3);

  for (const unsigned n : {16u, 64u, 256u, 1024u}) {
    pastry::Overlay overlay{{}};
    pastry::OverlayConfig prox_cfg;
    prox_cfg.proximity_routing = true;
    pastry::Overlay prox_overlay{prox_cfg};
    for (unsigned i = 0; i < n; ++i) {
      overlay.add_node(pastry::node_id_for("bench/node" + std::to_string(i)));
      prox_overlay.add_node(pastry::node_id_for("bench/node" + std::to_string(i)));
    }
    const auto ids = overlay.nodes();
    Rng rng(n);

    RunningStat healthy;
    RunningStat rdp_naive, rdp_prox;
    for (int k = 0; k < 2000; ++k) {
      const auto key = Sha1::hash128("bench/key" + std::to_string(k));
      const auto& from = ids[rng.next_below(ids.size())];
      const auto r = overlay.route(from, key);
      healthy.add(static_cast<double>(r.hops));
      const auto rp = prox_overlay.route(from, key);
      const double direct = pastry::proximity(overlay.coordinates_of(from),
                                              overlay.coordinates_of(r.destination));
      if (direct > 1e-6 && r.hops > 0) {
        rdp_naive.add(r.distance / direct);
        rdp_prox.add(rp.distance / direct);
      }
    }

    // Fail 10% of the nodes, then measure again (detect-on-use repairs on).
    for (unsigned i = 0; i < n / 10; ++i) {
      overlay.fail_node(pastry::node_id_for("bench/node" + std::to_string(i)));
    }
    const auto alive = overlay.nodes();
    overlay.reset_stats();
    RunningStat degraded;
    for (int k = 0; k < 2000; ++k) {
      const auto key = Sha1::hash128("bench/failkey" + std::to_string(k));
      const auto r = overlay.route(alive[rng.next_below(alive.size())], key);
      degraded.add(static_cast<double>(r.hops));
    }

    std::cout << std::setw(8) << n << std::setw(10) << overlay.expected_hop_bound()
              << std::setw(12) << healthy.mean() << std::setw(10) << healthy.max()
              << std::setw(14) << degraded.mean() << std::setw(10)
              << overlay.stats().repairs << std::setw(10) << rdp_naive.mean()
              << rdp_prox.mean() << "\n";
  }
  return 0;
}
