// Shared plumbing for the figure-reproduction benches.
//
// Every bench prints the series of one paper figure: latency gain (%) per
// proxy-cache size, one column per scheme/parameter value, in a
// gnuplot-ready table. Absolute numbers depend on the synthetic substrate;
// the *shape* (ordering, crossovers, trends) is what reproduces the paper —
// EXPERIMENTS.md records the comparison.
//
// Environment knobs:
//   WEBCACHE_BENCH_SCALE  (default 1.0) scales the request volume, e.g.
//                         WEBCACHE_BENCH_SCALE=0.1 ./fig2a_cache_size.
//                         Any positive value works; > 1 oversamples.
//   WEBCACHE_THREADS      worker threads for run_sweep (default 0 = one per
//                         core). Results are bitwise identical regardless.
//   WEBCACHE_SIM_SHARDS   intra-run worker shards WITHIN each simulation
//                         (default 0 = sequential engine; any value >= 1
//                         yields byte-identical results — see README
//                         "Sharded runs"). Composes with WEBCACHE_THREADS:
//                         threads parallelize across sweep runs, shards
//                         within each run.
//   WEBCACHE_BENCH_JSON_DIR  directory for BENCH_<name>.json reports
//                         (default: current directory).
//   WEBCACHE_METRICS_OUT  path for a "webcache-metrics/1" JSON export of the
//                         bench's sweeps (same as passing --metrics-out).
//   WEBCACHE_SNAPSHOT_INTERVAL  interval-snapshot period in requests for the
//                         export (same as --snapshot-interval; 0 = off).
//   WEBCACHE_TRACE_BIN    replay a compiled wctrace/1 file through the mmap
//                         reader instead of generating the ProWGen workload.
//                         Every sweep in the bench then replays that one
//                         trace, so it is meant for single-workload benches
//                         (fig2a, fig5*, abl_*) and the CI golden-diff gate
//                         that proves streamed == in-memory exports.
#pragma once

#include <chrono>
#include <concepts>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.hpp"
#include "workload/prowgen.hpp"
#include "workload/trace_source.hpp"
#include "workload/wctrace.hpp"

namespace webcache::bench {

inline double bench_scale() {
  if (const char* env = std::getenv("WEBCACHE_BENCH_SCALE")) {
    char* end = nullptr;
    const double s = std::strtod(env, &end);
    if (end != env && *end == '\0' && s > 0.0) return s;
    std::cerr << "ignoring invalid WEBCACHE_BENCH_SCALE=" << env << "\n";
  }
  return 1.0;
}

/// Worker-thread count for run_sweep: WEBCACHE_THREADS, or 0 (one per core).
inline unsigned bench_threads() {
  if (const char* env = std::getenv("WEBCACHE_THREADS")) {
    char* end = nullptr;
    const unsigned long t = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0') return static_cast<unsigned>(t);
    std::cerr << "ignoring invalid WEBCACHE_THREADS=" << env << "\n";
  }
  return 0;
}

/// Intra-run shard count for every simulation a bench runs:
/// WEBCACHE_SIM_SHARDS, or 0 (the sequential engine).
inline unsigned bench_sim_shards() { return core::sim_shards_from_env(); }

/// The paper's default synthetic workload (Section 5.1): one million
/// requests over 10,000 distinct objects, 50% one-timers, alpha = 0.7.
inline workload::ProWGenConfig paper_workload() {
  workload::ProWGenConfig cfg;
  cfg.total_requests =
      static_cast<std::uint64_t>(1'000'000.0 * bench_scale());
  cfg.distinct_objects = 10'000;
  cfg.one_timer_fraction = 0.5;
  cfg.zipf_alpha = 0.7;
  cfg.lru_stack_fraction = 0.2;
  cfg.clients = 100;
  cfg.seed = 2003;  // publication year, for flavour
  return cfg;
}

/// The request stream a bench sweeps over. Generates `cfg` in memory unless
/// WEBCACHE_TRACE_BIN names a compiled wctrace/1 file, in which case that
/// file replays through the mmap reader in bounded memory (see the env-knob
/// comment at the top of this header for the sharp edge on multi-workload
/// benches).
template <typename MakeTrace>
  requires std::invocable<MakeTrace&>
std::shared_ptr<const workload::TraceSource> bench_source(MakeTrace&& make_trace) {
  if (const char* env = std::getenv("WEBCACHE_TRACE_BIN")) {
    std::cerr << "# replaying compiled trace " << env << "\n";
    return workload::open_trace_source(env);
  }
  return workload::make_source(make_trace());
}

inline std::shared_ptr<const workload::TraceSource> bench_source(
    const workload::ProWGenConfig& cfg) {
  return bench_source([&cfg] { return workload::ProWGen(cfg).generate(); });
}

/// Collects per-section wall clock and per-scheme throughput for one bench
/// run and writes them as BENCH_<name>.json — the machine-readable side of
/// the perf-regression harness (scripts/check_perf.py compares such a report
/// against a committed baseline). Format:
///   {"name": "...", "sections": {"label": seconds, ...},
///    "requests_per_sec": {"scheme": rps, ...}}
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  void add_section(const std::string& label, double seconds) {
    sections_.emplace_back(label, seconds);
  }
  void add_throughput(const std::string& scheme, double requests_per_sec) {
    throughput_.emplace_back(scheme, requests_per_sec);
  }
  /// Records a hard perf gate: check_perf.py fails the run (exit 1) when an
  /// ENFORCED gate's value is below its minimum. `enforced` lets a bench
  /// disarm a gate on hardware that cannot meaningfully measure it (e.g. a
  /// parallel-speedup gate on a machine with fewer cores than shards) while
  /// still reporting the measured value.
  void add_gate(const std::string& name, double value, double min, bool enforced) {
    gates_.push_back({name, value, min, enforced});
  }

  /// Writes BENCH_<name>.json into WEBCACHE_BENCH_JSON_DIR (default: cwd).
  /// Returns the path written, or an empty string on I/O failure.
  std::string write_json() const {
    std::string dir = ".";
    if (const char* env = std::getenv("WEBCACHE_BENCH_JSON_DIR")) dir = env;
    const std::string path = dir + "/BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write " << path << "\n";
      return {};
    }
    out << "{\n  \"name\": \"" << name_ << "\",\n";
    out << "  \"sections\": {";
    for (std::size_t i = 0; i < sections_.size(); ++i) {
      out << (i ? ", " : "") << "\"" << sections_[i].first
          << "\": " << sections_[i].second;
    }
    out << "},\n  \"requests_per_sec\": {";
    for (std::size_t i = 0; i < throughput_.size(); ++i) {
      out << (i ? ", " : "") << "\"" << throughput_[i].first
          << "\": " << throughput_[i].second;
    }
    out << "}";
    // The gates object is emitted only when a gate was recorded, so reports
    // of benches without gates keep their historical shape.
    if (!gates_.empty()) {
      out << ",\n  \"gates\": {";
      for (std::size_t i = 0; i < gates_.size(); ++i) {
        const Gate& g = gates_[i];
        out << (i ? ", " : "") << "\"" << g.name << "\": {\"value\": " << g.value
            << ", \"min\": " << g.min
            << ", \"enforced\": " << (g.enforced ? "true" : "false") << "}";
      }
      out << "}";
    }
    out << "\n}\n";
    return out ? path : std::string{};
  }

 private:
  struct Gate {
    std::string name;
    double value = 0.0;
    double min = 0.0;
    bool enforced = false;
  };

  std::string name_;
  std::vector<std::pair<std::string, double>> sections_;
  std::vector<std::pair<std::string, double>> throughput_;
  std::vector<Gate> gates_;
};

/// Observability plumbing shared by the sweep benches: parses
/// `--metrics-out FILE` and `--snapshot-interval N` from argv (with
/// WEBCACHE_METRICS_OUT / WEBCACHE_SNAPSHOT_INTERVAL as env fallbacks),
/// switches the sweep into collect_observability mode, and writes the
/// "webcache-metrics/1" JSON export after the run. Benches that run several
/// sweeps pass a distinct label per sweep; the label is inserted before the
/// file extension ("out.json" + label "a05" -> "out.a05.json").
class ObsOptions {
 public:
  ObsOptions(int argc, char** argv) {
    if (const char* env = std::getenv("WEBCACHE_METRICS_OUT")) path_ = env;
    if (const char* env = std::getenv("WEBCACHE_SNAPSHOT_INTERVAL")) {
      parse_interval(env, "WEBCACHE_SNAPSHOT_INTERVAL");
    }
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--metrics-out" && i + 1 < argc) {
        path_ = argv[++i];
      } else if (arg == "--snapshot-interval" && i + 1 < argc) {
        parse_interval(argv[++i], "--snapshot-interval");
      } else {
        std::cerr << "ignoring unknown bench argument: " << arg << "\n";
      }
    }
  }

  [[nodiscard]] bool enabled() const { return !path_.empty(); }

  /// Turns on registry collection for the sweep when an output was requested.
  void apply(core::SweepConfig& config) const {
    config.collect_observability = enabled();
    config.snapshot_interval = snapshot_interval_;
  }

  /// Writes the sweep's metrics export. Single-sweep benches pass an empty
  /// label (the file goes exactly where --metrics-out points, which the
  /// metrics-gating test relies on); multi-sweep benches pass one label per
  /// sweep. No-op when no output was requested.
  void write(const core::SweepResult& result, const std::string& bench_name,
             const std::string& label = {}) const {
    if (!enabled()) return;
    std::string path = path_;
    if (!label.empty()) {
      const auto dot = path.find_last_of('.');
      const auto slash = path.find_last_of('/');
      if (dot != std::string::npos && (slash == std::string::npos || dot > slash)) {
        path = path.substr(0, dot) + "." + label + path.substr(dot);
      } else {
        path += "." + label;
      }
    }
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write " << path << "\n";
      return;
    }
    const std::string name = label.empty() ? bench_name : bench_name + " " + label;
    core::write_metrics_json(out, result, name);
    std::cout << "# [metrics written to " << path << "]\n";
  }

 private:
  void parse_interval(const char* value, const char* what) {
    char* end = nullptr;
    const unsigned long long n = std::strtoull(value, &end, 10);
    if (end != value && *end == '\0') {
      snapshot_interval_ = n;
    } else {
      std::cerr << "ignoring invalid " << what << "=" << value << "\n";
    }
  }

  std::string path_;
  std::uint64_t snapshot_interval_ = 0;
};

/// Timer helper: prints elapsed seconds after each bench section, and
/// (when given a report) records the section into the BENCH_*.json output.
class SectionTimer {
 public:
  explicit SectionTimer(std::string label, BenchReport* report = nullptr)
      : label_(std::move(label)),
        report_(report),
        start_(std::chrono::steady_clock::now()) {}
  ~SectionTimer() {
    const auto dt = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start_);
    if (report_ != nullptr) report_->add_section(label_, dt.count());
    std::cout << "# [" << label_ << " took " << dt.count() << " s]\n\n";
  }

 private:
  std::string label_;
  BenchReport* report_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace webcache::bench
