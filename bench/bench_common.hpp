// Shared plumbing for the figure-reproduction benches.
//
// Every bench prints the series of one paper figure: latency gain (%) per
// proxy-cache size, one column per scheme/parameter value, in a
// gnuplot-ready table. Absolute numbers depend on the synthetic substrate;
// the *shape* (ordering, crossovers, trends) is what reproduces the paper —
// EXPERIMENTS.md records the comparison.
//
// WEBCACHE_BENCH_SCALE (default 1.0) scales the request volume for quick
// runs, e.g. WEBCACHE_BENCH_SCALE=0.1 ./fig2a_cache_size.
#pragma once

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/experiment.hpp"
#include "workload/prowgen.hpp"

namespace webcache::bench {

inline double bench_scale() {
  if (const char* env = std::getenv("WEBCACHE_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0 && s <= 1.0) return s;
    std::cerr << "ignoring invalid WEBCACHE_BENCH_SCALE=" << env << "\n";
  }
  return 1.0;
}

/// The paper's default synthetic workload (Section 5.1): one million
/// requests over 10,000 distinct objects, 50% one-timers, alpha = 0.7.
inline workload::ProWGenConfig paper_workload() {
  workload::ProWGenConfig cfg;
  cfg.total_requests =
      static_cast<std::uint64_t>(1'000'000.0 * bench_scale());
  cfg.distinct_objects = 10'000;
  cfg.one_timer_fraction = 0.5;
  cfg.zipf_alpha = 0.7;
  cfg.lru_stack_fraction = 0.2;
  cfg.clients = 100;
  cfg.seed = 2003;  // publication year, for flavour
  return cfg;
}

/// Timer helper: prints elapsed seconds after each bench section.
class SectionTimer {
 public:
  explicit SectionTimer(std::string label)
      : label_(std::move(label)), start_(std::chrono::steady_clock::now()) {}
  ~SectionTimer() {
    const auto dt = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start_);
    std::cout << "# [" << label_ << " took " << dt.count() << " s]\n\n";
  }

 private:
  std::string label_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace webcache::bench
