// Micro benchmarks (google-benchmark) for the building blocks: SHA-1,
// Zipf sampling, cache policy operations, Bloom filters, Pastry routing,
// workload generation and end-to-end simulated request throughput.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "bloom/counting_bloom.hpp"
#include "common/dense_map.hpp"
#include "cache/greedy_dual.hpp"
#include "cache/lfu.hpp"
#include "cache/lru.hpp"
#include "common/rng.hpp"
#include "common/sha1.hpp"
#include "common/zipf.hpp"
#include "directory/directory.hpp"
#include "pastry/overlay.hpp"
#include "sim/simulator.hpp"
#include "workload/prowgen.hpp"

namespace {

using namespace webcache;

void BM_Sha1Hash128(benchmark::State& state) {
  std::string url = "http://origin.example.com/object/1234567";
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::hash128(url));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(url.size()));
}
BENCHMARK(BM_Sha1Hash128);

void BM_ZipfAliasSample(benchmark::State& state) {
  const ZipfSampler z(static_cast<std::size_t>(state.range(0)), 0.7);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(z.sample(rng));
  }
}
BENCHMARK(BM_ZipfAliasSample)->Arg(10'000)->Arg(1'000'000);

void BM_ZipfRejectionSample(benchmark::State& state) {
  const ZipfRejection z(static_cast<std::uint64_t>(state.range(0)), 0.7);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(z.sample(rng));
  }
}
BENCHMARK(BM_ZipfRejectionSample)->Arg(10'000)->Arg(1'000'000'000);

template <typename CacheT>
void cache_mixed_ops(benchmark::State& state) {
  CacheT cache(1000);
  Rng rng(7);
  for (auto _ : state) {
    const auto o = static_cast<ObjectNum>(rng.next_below(5000));
    if (cache.contains(o)) {
      cache.access(o, 20.0);
    } else {
      cache.insert(o, 20.0);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_LruCacheOps(benchmark::State& state) { cache_mixed_ops<cache::LruCache>(state); }
BENCHMARK(BM_LruCacheOps);
void BM_LfuCacheOps(benchmark::State& state) { cache_mixed_ops<cache::LfuCache>(state); }
BENCHMARK(BM_LfuCacheOps);
void BM_GreedyDualCacheOps(benchmark::State& state) {
  cache_mixed_ops<cache::GreedyDualCache>(state);
}
BENCHMARK(BM_GreedyDualCacheOps);

// Eviction-pressure variant of the mixed-op loop: a cache much smaller than
// its working set, so most inserts evict — the proxy admit/destage regime
// that dominates the Hier-GD hot path.
void BM_GreedyDualEvictionPressure(benchmark::State& state) {
  cache::GreedyDualCache cache(static_cast<std::size_t>(state.range(0)));
  Rng rng(7);
  for (auto _ : state) {
    const auto o = static_cast<ObjectNum>(rng.next_below(10'000));
    if (cache.contains(o)) {
      cache.access(o, 20.0);
    } else {
      benchmark::DoNotOptimize(cache.insert(o, 20.0));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GreedyDualEvictionPressure)->Arg(2'000)->Arg(5);

// Directory maintenance mix as the Hier-GD proxy drives it: a rolling window
// of adds (store receipts), removes (eviction notices) and lookups.
template <typename MakeDir>
void directory_ops(benchmark::State& state, MakeDir make) {
  const auto dir = make();
  constexpr ObjectNum kUniverse = 100'000;
  constexpr ObjectNum kWindow = 10'000;
  ObjectNum next = 0;
  for (ObjectNum o = 0; o < kWindow; ++o) dir->add(next++);
  Rng rng(11);
  for (auto _ : state) {
    dir->add(next);
    dir->remove(next - kWindow);
    next = (next + 1) % kUniverse == 0 ? kWindow : next + 1;
    benchmark::DoNotOptimize(dir->may_contain(static_cast<ObjectNum>(rng.next_below(kUniverse))));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_ExactDirectoryOps(benchmark::State& state) {
  directory_ops(state, [] { return std::make_unique<directory::ExactDirectory>(); });
}
BENCHMARK(BM_ExactDirectoryOps);

void BM_BloomDirectoryOps(benchmark::State& state) {
  const auto table = directory::build_object_id_table(100'000);
  directory_ops(state, [&] {
    return std::make_unique<directory::BloomDirectory>(table, 10'000, 0.02);
  });
}
BENCHMARK(BM_BloomDirectoryOps);

// Ring-placement table construction (SHA-1 of every object URL) — the cost
// run_sweep now pays once per trace instead of once per Hier-GD/Squirrel job.
void BM_RingPlacementTable(benchmark::State& state) {
  const auto n = static_cast<ObjectNum>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(directory::build_object_id_table(n));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RingPlacementTable)->Arg(10'000)->Arg(100'000)->Unit(benchmark::kMillisecond);

// Group-prefetch attribution bench: the identical random probe stream over a
// DenseMap / FlatMap, with and without a K-ahead advisory prefetch of the
// target slot. The delta isolates the memory-latency win the pipelined
// simulator engine (sim/step_pipeline.hpp) buys on its lookup structures;
// at universe sizes that fit in L2 the two variants should tie, and the gap
// should open once the slot array exceeds the LLC.
constexpr std::size_t kChaseStream = 1 << 16;
constexpr std::size_t kChaseAhead = 16;

std::vector<ObjectNum> chase_keys(std::uint32_t universe) {
  std::vector<ObjectNum> keys(kChaseStream);
  Rng rng(13);
  for (auto& k : keys) k = static_cast<ObjectNum>(rng.next_below(universe));
  return keys;
}

template <typename Map>
void map_probe_chase(benchmark::State& state, const Map& map,
                     const std::vector<ObjectNum>& keys, bool prefetch_ahead) {
  std::uint64_t hits = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (prefetch_ahead && i + kChaseAhead < keys.size()) {
        map.prefetch(keys[i + kChaseAhead]);
      }
      hits += map.contains(keys[i]) ? 1 : 0;
    }
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(keys.size()));
}

void dense_map_chase(benchmark::State& state, bool prefetch_ahead) {
  const auto universe = static_cast<std::uint32_t>(state.range(0));
  DenseMap<double> map(universe);
  Rng rng(17);
  for (std::uint32_t i = 0; i < universe / 2; ++i) {
    map[static_cast<ObjectNum>(rng.next_below(universe))] = 1.0;
  }
  map_probe_chase(state, map, chase_keys(universe), prefetch_ahead);
}

void BM_DenseMapChase(benchmark::State& state) { dense_map_chase(state, false); }
void BM_DenseMapChasePrefetch(benchmark::State& state) { dense_map_chase(state, true); }
BENCHMARK(BM_DenseMapChase)->Arg(100'000)->Arg(4'000'000)->Arg(16'000'000);
BENCHMARK(BM_DenseMapChasePrefetch)->Arg(100'000)->Arg(4'000'000)->Arg(16'000'000);

void flat_map_chase(benchmark::State& state, bool prefetch_ahead) {
  const auto universe = static_cast<std::uint32_t>(state.range(0));
  FlatMap<double> map;
  map.reserve(universe / 2);
  Rng rng(17);
  for (std::uint32_t i = 0; i < universe / 2; ++i) {
    map[static_cast<ObjectNum>(rng.next_below(universe))] = 1.0;
  }
  map_probe_chase(state, map, chase_keys(universe), prefetch_ahead);
}

void BM_FlatMapChase(benchmark::State& state) { flat_map_chase(state, false); }
void BM_FlatMapChasePrefetch(benchmark::State& state) { flat_map_chase(state, true); }
BENCHMARK(BM_FlatMapChase)->Arg(100'000)->Arg(4'000'000)->Arg(16'000'000);
BENCHMARK(BM_FlatMapChasePrefetch)->Arg(100'000)->Arg(4'000'000)->Arg(16'000'000);

void BM_CountingBloomInsertQuery(benchmark::State& state) {
  bloom::CountingBloomFilter f(100'000, 0.01);
  Rng rng(3);
  std::uint64_t i = 0;
  for (auto _ : state) {
    const Uint128 key{rng(), rng()};
    f.insert(key);
    benchmark::DoNotOptimize(f.may_contain(key));
    if (++i % 4 == 0) f.erase(key);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CountingBloomInsertQuery);

void BM_PastryRoute(benchmark::State& state) {
  pastry::Overlay overlay{{}};
  const auto n = static_cast<unsigned>(state.range(0));
  for (unsigned i = 0; i < n; ++i) {
    overlay.add_node(pastry::node_id_for("micro/node" + std::to_string(i)));
  }
  const auto ids = overlay.nodes();
  Rng rng(n);
  std::uint64_t k = 0;
  for (auto _ : state) {
    const auto key = Uint128{rng(), k++};
    benchmark::DoNotOptimize(overlay.route(ids[rng.next_below(ids.size())], key));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PastryRoute)->Arg(100)->Arg(1000);

void BM_ProWGenGenerate(benchmark::State& state) {
  workload::ProWGenConfig cfg;
  cfg.total_requests = 100'000;
  cfg.distinct_objects = 5'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload::ProWGen(cfg).generate());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100'000);
}
BENCHMARK(BM_ProWGenGenerate)->Unit(benchmark::kMillisecond);

void simulate_scheme(benchmark::State& state, sim::Scheme scheme) {
  workload::ProWGenConfig wl;
  wl.total_requests = 100'000;
  wl.distinct_objects = 5'000;
  const auto trace = workload::ProWGen(wl).generate();
  sim::SimConfig cfg;
  cfg.scheme = scheme;
  cfg.proxy_capacity = 500;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_simulation(cfg, trace));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}

void BM_SimulateNC(benchmark::State& state) { simulate_scheme(state, sim::Scheme::kNC); }
BENCHMARK(BM_SimulateNC)->Unit(benchmark::kMillisecond);
void BM_SimulateSC(benchmark::State& state) { simulate_scheme(state, sim::Scheme::kSC); }
BENCHMARK(BM_SimulateSC)->Unit(benchmark::kMillisecond);
void BM_SimulateSCEC(benchmark::State& state) { simulate_scheme(state, sim::Scheme::kSC_EC); }
BENCHMARK(BM_SimulateSCEC)->Unit(benchmark::kMillisecond);
void BM_SimulateFCEC(benchmark::State& state) { simulate_scheme(state, sim::Scheme::kFC_EC); }
BENCHMARK(BM_SimulateFCEC)->Unit(benchmark::kMillisecond);
void BM_SimulateHierGD(benchmark::State& state) {
  simulate_scheme(state, sim::Scheme::kHierGD);
}
BENCHMARK(BM_SimulateHierGD)->Unit(benchmark::kMillisecond);
void BM_SimulateSquirrel(benchmark::State& state) {
  simulate_scheme(state, sim::Scheme::kSquirrel);
}
BENCHMARK(BM_SimulateSquirrel)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
