// Ablation: replacement policy at Hier-GD's proxy tier.
//
// The paper builds on Korupolu & Dahlin's observation that greedy-dual
// implicitly coordinates cooperating caches (cheap-to-refetch objects go
// first). Swapping the proxy tier to LRU or LFU while keeping everything
// else fixed isolates that effect.
#include "bench_common.hpp"

#include <iomanip>

int main() {
  using namespace webcache;
  bench::SectionTimer timer("abl_policy");

  auto wl = bench::paper_workload();
  wl.total_requests = std::max<std::uint64_t>(wl.total_requests / 2, 50'000);
  const auto source = bench::bench_source(wl);
  const auto& trace = *source;
  const auto infinite = core::cluster_infinite_cache_size(trace, 2);

  struct Variant {
    std::string label;
    sim::HierProxyPolicy policy;
  };
  const Variant variants[] = {
      {"greedy-dual", sim::HierProxyPolicy::kGreedyDual},
      {"lru", sim::HierProxyPolicy::kLru},
      {"lfu", sim::HierProxyPolicy::kLfu},
  };

  std::cout << "# Proxy-tier policy ablation for Hier-GD (gain % vs NC)\n";
  std::cout << std::left << std::setw(14) << "# policy";
  for (const double pct : {10.0, 30.0, 50.0}) std::cout << "cache" << pct << "%   ";
  std::cout << "\n" << std::fixed << std::setprecision(2);

  for (const auto& v : variants) {
    std::cout << std::setw(14) << v.label;
    for (const double pct : {10.0, 30.0, 50.0}) {
      sim::SimConfig cfg;
      cfg.scheme = sim::Scheme::kHierGD;
      cfg.hier_proxy_policy = v.policy;
      cfg.proxy_capacity = std::max<std::size_t>(
          1, static_cast<std::size_t>(static_cast<double>(infinite) * pct / 100.0));
      cfg.client_cache_capacity = std::max<std::size_t>(1, infinite / 1000);
      cfg.sim_shards = bench::bench_sim_shards();
      const auto run = core::run_single(trace, cfg);
      std::cout << std::setw(12) << run.gain_percent;
    }
    std::cout << "\n";
  }
  return 0;
}
