// Ablation: resilience of Hier-GD to client-machine churn.
//
// The paper leans on Pastry for fault-resilience but never quantifies what
// client crashes cost. This bench expands a deterministic fault::ChurnSpec
// into a schedule that crashes a growing fraction of each cluster starting
// at the trace midpoint (the documented offset: the system is warmed, so the
// loss is measured against a populated client tier, not a cold one), and
// sweeps a recovery axis — crashed machines either stay down or rejoin a
// tenth of the trace later with cold caches. SC (no client caches) is the
// floor.
#include "bench_common.hpp"

#include <iomanip>

#include "fault/churn_schedule.hpp"

int main() {
  using namespace webcache;
  bench::SectionTimer timer("abl_failures");

  auto wl = bench::paper_workload();
  wl.total_requests = std::max<std::uint64_t>(wl.total_requests / 2, 50'000);
  const auto source = bench::bench_source(wl);
  const auto& trace = *source;
  const auto infinite = core::cluster_infinite_cache_size(trace, 2);

  sim::SimConfig base;
  base.scheme = sim::Scheme::kHierGD;
  base.proxy_capacity = std::max<std::size_t>(1, infinite * 20 / 100);
  base.client_cache_capacity = std::max<std::size_t>(1, infinite / 1000);
  base.sim_shards = bench::bench_sim_shards();

  // The floor: simple cooperation with no client caches at all.
  sim::SimConfig sc = base;
  sc.scheme = sim::Scheme::kSC;
  const auto sc_run = core::run_single(trace, sc);

  std::cout << "# Client-churn resilience: Hier-GD with a fraction of each cluster "
               "crashing from the trace midpoint\n";
  std::cout << "# recovery: none = crashed machines stay down; rejoin = back "
               "(cold) after trace/10 requests\n";
  std::cout << "# (SC, the no-client-cache floor, gains "
            << std::fixed << std::setprecision(2) << sc_run.gain_percent << "%)\n";
  std::cout << std::left << std::setw(12) << "# crashed%" << std::setw(10) << "recovery"
            << std::setw(10) << "gain%" << std::setw(12) << "p2p-hits"
            << std::setw(14) << "stale-lookups" << "wasted-latency\n";

  for (const double crashed_fraction : {0.0, 0.1, 0.25, 0.5}) {
    for (const std::uint64_t recover_after : {std::uint64_t{0}, trace.size() / 10}) {
      if (crashed_fraction == 0.0 && recover_after > 0) continue;  // nothing to recover
      sim::SimConfig cfg = base;
      fault::ChurnSpec spec;
      spec.start = trace.size() / 2;  // crash into a warmed system
      spec.crashes = static_cast<ClientNum>(
          crashed_fraction * static_cast<double>(cfg.clients_per_cluster));
      spec.recover_after = recover_after;
      if (spec.crashes > 0) {
        cfg.churn_events = fault::make_schedule(spec, trace.size(), cfg.num_proxies,
                                                cfg.clients_per_cluster);
      }
      const auto run = core::run_single(trace, cfg);
      std::cout << std::setw(12) << 100.0 * crashed_fraction << std::setw(10)
                << (recover_after > 0 ? "rejoin" : "none") << std::setw(10)
                << run.gain_percent << std::setw(12) << run.metrics.hits_local_p2p
                << std::setw(14) << run.metrics.messages.directory_false_positives
                << run.metrics.wasted_p2p_latency << "\n";
    }
  }
  return 0;
}
