// Ablation: resilience of Hier-GD to client-machine churn.
//
// The paper leans on Pastry for fault-resilience but never quantifies what
// client crashes cost. This bench fails a growing fraction of each cluster
// mid-run (objects lost, proxy directories stale until lookups self-heal)
// and reports the residual gain, against SC (no client caches) as the
// floor.
#include "bench_common.hpp"

#include <iomanip>

int main() {
  using namespace webcache;
  bench::SectionTimer timer("abl_failures");

  auto wl = bench::paper_workload();
  wl.total_requests = std::max<std::uint64_t>(wl.total_requests / 2, 50'000);
  const auto trace = workload::ProWGen(wl).generate();
  const auto infinite = core::cluster_infinite_cache_size(trace, 2);

  sim::SimConfig base;
  base.scheme = sim::Scheme::kHierGD;
  base.proxy_capacity = std::max<std::size_t>(1, infinite * 20 / 100);
  base.client_cache_capacity = std::max<std::size_t>(1, infinite / 1000);

  // The floor: simple cooperation with no client caches at all.
  sim::SimConfig sc = base;
  sc.scheme = sim::Scheme::kSC;
  const auto sc_run = core::run_single(trace, sc);

  std::cout << "# Client-churn resilience: Hier-GD with a fraction of each cluster "
               "crashing at the midpoint\n";
  std::cout << "# (SC, the no-client-cache floor, gains "
            << std::fixed << std::setprecision(2) << sc_run.gain_percent << "%)\n";
  std::cout << std::left << std::setw(12) << "# failed%" << std::setw(10) << "gain%"
            << std::setw(12) << "p2p-hits" << std::setw(14) << "stale-lookups"
            << "wasted-latency\n";

  for (const double failed_fraction : {0.0, 0.1, 0.25, 0.5}) {
    sim::SimConfig cfg = base;
    const auto to_fail = static_cast<ClientNum>(
        failed_fraction * static_cast<double>(cfg.clients_per_cluster));
    for (unsigned p = 0; p < cfg.num_proxies; ++p) {
      for (ClientNum c = 0; c < to_fail; ++c) {
        cfg.client_failures.push_back(
            sim::ClientFailure{trace.size() / 2, p, static_cast<ClientNum>(c * 3)});
      }
    }
    const auto run = core::run_single(trace, cfg);
    std::cout << std::setw(12) << 100.0 * failed_fraction << std::setw(10)
              << run.gain_percent << std::setw(12) << run.metrics.hits_local_p2p
              << std::setw(14) << run.metrics.messages.directory_false_positives
              << run.metrics.wasted_p2p_latency << "\n";
  }
  return 0;
}
