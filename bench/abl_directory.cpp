// Ablation: lookup-directory representation (paper Section 4.2).
//
// Exact-Directory vs Bloom filter at several target false-positive rates:
// memory footprint vs the latency wasted on false-positive P2P lookups.
// The trade-off the paper describes, quantified.
#include "bench_common.hpp"

#include <iomanip>

int main() {
  using namespace webcache;
  bench::SectionTimer timer("abl_directory");

  auto wl = bench::paper_workload();
  wl.total_requests = std::max<std::uint64_t>(wl.total_requests / 2, 50'000);
  const auto source = bench::bench_source(wl);
  const auto& trace = *source;
  const auto infinite = core::cluster_infinite_cache_size(trace, 2);

  struct Variant {
    std::string label;
    sim::DirectoryKind kind;
    double fpr;
  };
  const Variant variants[] = {
      {"exact", sim::DirectoryKind::kExact, 0.0},
      {"bloom-10%", sim::DirectoryKind::kBloom, 0.10},
      {"bloom-1%", sim::DirectoryKind::kBloom, 0.01},
      {"bloom-0.1%", sim::DirectoryKind::kBloom, 0.001},
  };

  std::cout << "# Directory ablation: Hier-GD, proxy cache = 30% of infinite cache size ("
            << infinite << " objects)\n";
  std::cout << std::left << std::setw(12) << "# variant" << std::setw(12) << "gain%"
            << std::setw(14) << "dir-bytes" << std::setw(12) << "lookups-FP" << std::setw(12)
            << "lookups-TP" << std::setw(16) << "wasted-latency" << "mean-latency\n";
  std::cout << std::fixed << std::setprecision(3);

  for (const auto& v : variants) {
    sim::SimConfig cfg;
    cfg.scheme = sim::Scheme::kHierGD;
    cfg.proxy_capacity = std::max<std::size_t>(1, infinite * 30 / 100);
    cfg.client_cache_capacity = std::max<std::size_t>(1, infinite / 1000);
    cfg.directory = v.kind;
    cfg.bloom_target_fpr = v.fpr == 0.0 ? 0.01 : v.fpr;

    sim::Simulator simulator(cfg, trace);
    const auto m = simulator.run();
    sim::SimConfig nc = cfg;
    nc.scheme = sim::Scheme::kNC;
    const auto base = sim::run_simulation(nc, trace);

    std::size_t dir_bytes = 0;
    for (unsigned p = 0; p < cfg.num_proxies; ++p) {
      dir_bytes += simulator.directory_of(p)->memory_bytes();
    }
    std::cout << std::setw(12) << v.label << std::setw(12)
              << 100.0 * sim::latency_gain(base, m) << std::setw(14) << dir_bytes
              << std::setw(12) << m.messages.directory_false_positives << std::setw(12)
              << m.messages.directory_true_positives << std::setw(16) << m.wasted_p2p_latency
              << m.mean_latency() << "\n";
  }
  return 0;
}
