// Figure 5(b): Hier-GD latency gain vs client-to-proxy latency ratio Ts/Tl.
//
// Ts/Tl in {5, 10, 20}: a relatively faster last hop makes every cached
// outcome cheaper relative to the origin server, raising the gain.
#include "bench_common.hpp"

#include <cmath>

int main(int argc, char** argv) {
  using namespace webcache;
  bench::SectionTimer timer("fig5b");
  const bench::ObsOptions obs(argc, argv);

  const auto source = bench::bench_source(bench::paper_workload());
  const auto& trace = *source;
  const double ratios[] = {5.0, 10.0, 20.0};

  std::vector<core::SweepResult> results;
  for (const double ratio : ratios) {
    core::SweepConfig cfg;
    cfg.threads = bench::bench_threads();
    cfg.base.sim_shards = bench::bench_sim_shards();
    cfg.schemes = {sim::Scheme::kHierGD};
    cfg.base.latencies = net::LatencyModel::from_ratios(/*ts_over_tc=*/10.0,
                                                        /*ts_over_tl=*/ratio);
    obs.apply(cfg);
    results.push_back(core::run_sweep(trace, cfg));
    obs.write(results.back(), "fig5b_client_latency",
              "ratio" + std::to_string(std::lround(ratio)));
  }

  std::cout << "# Figure 5(b) Hier-GD/NC: latency gain (%) vs cache size for "
               "Ts/Tl ratio sweep\n";
  std::cout << "# cache%   ratio=5    ratio=10   ratio=20\n";
  const auto& percents = results[0].cache_percents;
  for (std::size_t i = 0; i < percents.size(); ++i) {
    std::cout << percents[i];
    for (const auto& r : results) std::cout << "\t" << r.gains[i][0];
    std::cout << "\n";
  }
  return 0;
}
