// Figure 5(c): impact of the client cluster size on Hier-GD.
//
// Clusters of 100, 400, 800 and 1000 clients (each client contributing 0.1%
// of the infinite cache size, so the pooled P2P cache grows from 10% to
// 100% of it), with SC and FC as proxy-only reference curves. The paper's
// finding: more client caches, more gain — Hier-GD approaches optimal with
// a large population, especially at small proxy caches.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace webcache;
  bench::SectionTimer timer("fig5c");
  const bench::ObsOptions obs(argc, argv);

  const auto source = bench::bench_source(bench::paper_workload());
  const auto& trace = *source;
  const ClientNum cluster_sizes[] = {100, 400, 800, 1000};

  // Reference curves: SC and FC do not use client caches.
  core::SweepConfig ref_cfg;
  ref_cfg.threads = bench::bench_threads();
  ref_cfg.base.sim_shards = bench::bench_sim_shards();
  ref_cfg.schemes = {sim::Scheme::kSC, sim::Scheme::kFC};
  obs.apply(ref_cfg);
  const auto ref = core::run_sweep(trace, ref_cfg);
  obs.write(ref, "fig5c_client_cluster", "ref");

  std::vector<core::SweepResult> results;
  for (const ClientNum clients : cluster_sizes) {
    core::SweepConfig cfg;
    cfg.threads = bench::bench_threads();
    cfg.base.sim_shards = bench::bench_sim_shards();
    cfg.schemes = {sim::Scheme::kHierGD};
    cfg.base.clients_per_cluster = clients;
    obs.apply(cfg);
    results.push_back(core::run_sweep(trace, cfg));
    obs.write(results.back(), "fig5c_client_cluster",
              "clients" + std::to_string(clients));
  }

  std::cout << "# Figure 5(c): latency gain (%) vs cache size; Hier-GD for "
               "client cluster sizes, SC/FC reference\n";
  std::cout << "# cache%   SC         FC         HierGD(100) HierGD(400) "
               "HierGD(800) HierGD(1000)\n";
  const auto& percents = ref.cache_percents;
  for (std::size_t i = 0; i < percents.size(); ++i) {
    std::cout << percents[i] << "\t" << ref.gains[i][0] << "\t" << ref.gains[i][1];
    for (const auto& r : results) std::cout << "\t" << r.gains[i][0];
    std::cout << "\n";
  }
  return 0;
}
