// Figure 5(a): Hier-GD latency gain vs proxy-to-proxy latency ratio Ts/Tc.
//
// Ts/Tc in {2, 5, 10}: the cheaper it is to reach a cooperating proxy
// relative to the origin server, the more cooperation pays off.
#include "bench_common.hpp"

#include <cmath>

int main(int argc, char** argv) {
  using namespace webcache;
  bench::SectionTimer timer("fig5a");
  const bench::ObsOptions obs(argc, argv);

  const auto source = bench::bench_source(bench::paper_workload());
  const auto& trace = *source;
  const double ratios[] = {2.0, 5.0, 10.0};

  std::vector<core::SweepResult> results;
  for (const double ratio : ratios) {
    core::SweepConfig cfg;
    cfg.threads = bench::bench_threads();
    cfg.base.sim_shards = bench::bench_sim_shards();
    cfg.schemes = {sim::Scheme::kHierGD};
    cfg.base.latencies = net::LatencyModel::from_ratios(/*ts_over_tc=*/ratio);
    obs.apply(cfg);
    results.push_back(core::run_sweep(trace, cfg));
    obs.write(results.back(), "fig5a_proxy_latency",
              "ratio" + std::to_string(std::lround(ratio)));
  }

  std::cout << "# Figure 5(a) Hier-GD/NC: latency gain (%) vs cache size for "
               "Ts/Tc ratio sweep\n";
  std::cout << "# cache%   ratio=2    ratio=5    ratio=10\n";
  const auto& percents = results[0].cache_percents;
  for (std::size_t i = 0; i < percents.size(); ++i) {
    std::cout << percents[i];
    for (const auto& r : results) std::cout << "\t" << r.gains[i][0];
    std::cout << "\n";
  }
  return 0;
}
