// Ablation: object diversion (paper Section 4.3, after PAST).
//
// Hier-GD with and without diverting destaged objects to leaf-set peers
// when the root client cache is full: storage utilization balance, objects
// retained, and end latency.
#include "bench_common.hpp"

#include <iomanip>

int main() {
  using namespace webcache;
  bench::SectionTimer timer("abl_diversion");

  auto wl = bench::paper_workload();
  wl.total_requests = std::max<std::uint64_t>(wl.total_requests / 2, 50'000);
  const auto source = bench::bench_source(wl);
  const auto& trace = *source;
  const auto infinite = core::cluster_infinite_cache_size(trace, 2);

  std::cout << "# Object diversion ablation: Hier-GD, proxy cache = 20% of infinite "
               "cache size\n";
  std::cout << std::left << std::setw(12) << "# variant" << std::setw(10) << "gain%"
            << std::setw(12) << "p2p-hits" << std::setw(12) << "diversions" << std::setw(14)
            << "p2p-objects" << std::setw(14) << "p2p-capacity" << "utilization-cv\n";
  std::cout << std::fixed << std::setprecision(3);

  for (const bool diversion : {true, false}) {
    sim::SimConfig cfg;
    cfg.scheme = sim::Scheme::kHierGD;
    cfg.proxy_capacity = std::max<std::size_t>(1, infinite * 20 / 100);
    cfg.client_cache_capacity = std::max<std::size_t>(1, infinite / 1000);
    cfg.enable_diversion = diversion;

    sim::Simulator simulator(cfg, trace);
    const auto m = simulator.run();
    sim::SimConfig nc = cfg;
    nc.scheme = sim::Scheme::kNC;
    const auto base = sim::run_simulation(nc, trace);

    std::size_t p2p_objects = 0, p2p_capacity = 0;
    double cv = 0.0;
    for (unsigned p = 0; p < cfg.num_proxies; ++p) {
      const auto* p2p = simulator.p2p_of(p);
      p2p_objects += p2p->size();
      p2p_capacity += p2p->total_capacity();
      cv += p2p->utilization_cv() / cfg.num_proxies;
    }
    std::cout << std::setw(12) << (diversion ? "diversion" : "no-div") << std::setw(10)
              << 100.0 * sim::latency_gain(base, m) << std::setw(12) << m.hits_local_p2p
              << std::setw(12) << m.messages.diversions << std::setw(14) << p2p_objects
              << std::setw(14) << p2p_capacity << cv << "\n";
  }
  return 0;
}
