// Extension bench: the modern-policy frontier.
//
// The paper's schemes predate TinyLFU admission (Einziger/Friedman 2014)
// and adaptive eviction (ARC, Megiddo/Modha FAST'03). This bench asks how
// far those post-2003 single-cache policies close the gap the paper bridges
// with cooperation: it sweeps every cache::PolicyKind through a standalone
// proxy (the NC scheme with --proxy-policy) across cache sizes and two
// ProWGen settings — the paper default, and a scan/one-timer-heavy stream
// where frequency-blind LRU drowns in single-use objects — then prints the
// Hier-GD reference row. The expected shape: W-TinyLFU > LRU on the
// scan-heavy setting at every size (the doorkeeper absorbs one-timers), ARC
// between them, and cooperative Hier-GD still ahead overall because no
// admission policy can serve a miss from a neighbour's cache.
//
// With --metrics-out each (setting, policy) sweep writes a
// "webcache-metrics/1" export labelled "<setting>-<policy>", covering the
// policy.* counter namespace end to end.
#include "bench_common.hpp"

#include <iomanip>

#include "cache/policy.hpp"

int main(int argc, char** argv) {
  using namespace webcache;
  bench::SectionTimer timer("ext_policy_frontier");
  bench::ObsOptions obs(argc, argv);

  const cache::PolicyKind policies[] = {
      cache::PolicyKind::kLru,        cache::PolicyKind::kLfu,
      cache::PolicyKind::kGreedyDual, cache::PolicyKind::kTinyLfuLru,
      cache::PolicyKind::kWTinyLfu,   cache::PolicyKind::kArc,
  };
  const std::vector<double> percents = {10.0, 30.0, 60.0};

  struct Setting {
    std::string label;
    double one_timers;
    double alpha;
    // Objects per request, or 0 to keep the paper universe. The scan-heavy
    // setting must scale its universe WITH the request volume: with a fixed
    // 10k-object universe the one-timer mass shrinks to a rounding error as
    // WEBCACHE_BENCH_SCALE grows (8k single-use requests out of 500k is not
    // a scan flood), and the setting silently stops testing scan resistance.
    double objects_per_request;
  };
  const Setting settings[] = {
      {"paper", 0.5, 0.7, 0.0},
      {"scan-heavy", 0.8, 0.55, 0.2},
  };

  std::cout << std::fixed << std::setprecision(2);
  double lru_scan_30 = 0.0, wtlfu_scan_30 = 0.0;

  for (const auto& setting : settings) {
    auto wl = bench::paper_workload();
    wl.total_requests = std::max<std::uint64_t>(wl.total_requests / 2, 60'000);
    wl.one_timer_fraction = setting.one_timers;
    wl.zipf_alpha = setting.alpha;
    if (setting.objects_per_request > 0.0) {
      wl.distinct_objects = static_cast<ObjectNum>(
          static_cast<double>(wl.total_requests) * setting.objects_per_request);
    }
    const auto source = bench::bench_source(wl);

    std::cout << "# Standalone-proxy hit ratio (%) per policy, " << setting.label
              << " workload (one-timers " << setting.one_timers * 100.0
              << "%, alpha " << setting.alpha << ")\n";
    std::cout << std::left << std::setw(14) << "# policy";
    for (const double pct : percents) {
      std::cout << "cache" << std::setprecision(0) << pct << "%   ";
    }
    std::cout << std::setprecision(2) << "\n";

    for (const auto policy : policies) {
      core::SweepConfig sweep;
      sweep.schemes = {sim::Scheme::kNC};
      sweep.cache_percents = percents;
      sweep.base.proxy_policy = policy;
      sweep.base.sim_shards = bench::bench_sim_shards();
      sweep.threads = bench::bench_threads();
      obs.apply(sweep);
      const auto result = core::run_sweep(*source, sweep);
      obs.write(result, "ext_policy_frontier",
                setting.label + "-" + std::string(cache::to_string(policy)));

      std::cout << std::setw(14) << cache::to_string(policy);
      for (std::size_t i = 0; i < percents.size(); ++i) {
        const double hit_pct = 100.0 * result.metrics[i][0].hit_ratio();
        std::cout << std::setw(12) << hit_pct;
        if (setting.label == "scan-heavy" && percents[i] == 30.0) {
          if (policy == cache::PolicyKind::kLru) lru_scan_30 = hit_pct;
          if (policy == cache::PolicyKind::kWTinyLfu) wtlfu_scan_30 = hit_pct;
        }
      }
      std::cout << "\n";
    }

    // Cooperative reference: the paper's Hier-GD at the same proxy sizes
    // (plus the Section 5.1 client donations its P2P tier pools).
    {
      core::SweepConfig sweep;
      sweep.schemes = {sim::Scheme::kHierGD};
      sweep.cache_percents = percents;
      sweep.base.sim_shards = bench::bench_sim_shards();
      sweep.threads = bench::bench_threads();
      const auto result = core::run_sweep(*source, sweep);
      std::cout << std::setw(14) << "Hier-GD";
      for (std::size_t i = 0; i < percents.size(); ++i) {
        std::cout << std::setw(12) << 100.0 * result.metrics[i][0].hit_ratio();
      }
      std::cout << "(cooperative reference)\n";
    }
    std::cout << "\n";
  }

  std::cout << "# scan-heavy @30%: W-TinyLFU " << wtlfu_scan_30 << "% vs LRU "
            << lru_scan_30 << "%\n";
  if (wtlfu_scan_30 <= lru_scan_30) {
    std::cerr << "ext_policy_frontier: W-TinyLFU did not beat LRU on the "
                 "scan-heavy setting\n";
    return 1;
  }
  return 0;
}
