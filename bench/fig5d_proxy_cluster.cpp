// Figure 5(d): impact of the proxy cluster size on Hier-GD.
//
// Clusters of 2, 5 and 10 proxies (pairwise-equal proxy latency, as the
// paper assumes). More cooperating proxies — and their client clusters —
// mean more places a missed object can be found short of the origin server.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace webcache;
  bench::SectionTimer timer("fig5d");
  const bench::ObsOptions obs(argc, argv);

  const auto source = bench::bench_source(bench::paper_workload());
  const auto& trace = *source;
  const unsigned cluster_sizes[] = {2, 5, 10};

  std::vector<core::SweepResult> results;
  for (const unsigned proxies : cluster_sizes) {
    core::SweepConfig cfg;
    cfg.threads = bench::bench_threads();
    cfg.base.sim_shards = bench::bench_sim_shards();
    cfg.schemes = {sim::Scheme::kHierGD};
    cfg.base.num_proxies = proxies;
    obs.apply(cfg);
    results.push_back(core::run_sweep(trace, cfg));
    obs.write(results.back(), "fig5d_proxy_cluster",
              "proxies" + std::to_string(proxies));
  }

  std::cout << "# Figure 5(d) Hier-GD/NC: latency gain (%) vs cache size for "
               "proxy cluster sizes\n";
  std::cout << "# cache%   2 proxies  5 proxies  10 proxies\n";
  const auto& percents = results[0].cache_percents;
  for (std::size_t i = 0; i < percents.size(); ++i) {
    std::cout << percents[i];
    for (const auto& r : results) std::cout << "\t" << r.gains[i][0];
    std::cout << "\n";
  }
  return 0;
}
