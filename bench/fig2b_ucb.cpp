// Figure 2(b): latency gain vs proxy cache size, UCB Home-IP trace.
//
// The original 1997 trace is no longer obtainable; the UCB-like generator
// reproduces its published workload statistics (see DESIGN.md,
// "Substitutions"). Expect the same scheme ordering as Figure 2(a) at
// visibly lower absolute gains — the signature of the heavier one-timer mix.
#include "bench_common.hpp"

#include "workload/ucb_like.hpp"

int main(int argc, char** argv) {
  using namespace webcache;
  bench::SectionTimer timer("fig2b");
  const bench::ObsOptions obs(argc, argv);

  workload::UcbLikeConfig ucb;
  // Default to ~1/10 of the 9.2M-request original: the gain curves are
  // stable at this volume and the bench stays interactive.
  ucb.scale = 0.1 * bench::bench_scale();
  ucb.scale = std::max(ucb.scale, 0.002);
  const auto source = bench::bench_source([&] { return workload::generate_ucb_like(ucb); });
  const auto& trace = *source;

  core::SweepConfig cfg;
  cfg.threads = bench::bench_threads();
  cfg.base.sim_shards = bench::bench_sim_shards();
  obs.apply(cfg);
  const auto result = core::run_sweep(trace, cfg);
  core::print_gain_table(std::cout, result,
                         "Figure 2(b): latency gain (%) vs proxy cache size (% of "
                         "infinite cache size), UCB-like trace (" +
                             std::to_string(trace.size()) + " requests)");
  obs.write(result, "fig2b_ucb");
  return 0;
}
