// Figure 2(a): latency gain vs proxy cache size, synthetic workload.
//
// All seven schemes over the paper's default ProWGen workload; proxy cache
// size swept from 10% to 100% of the infinite cache size; 2 proxies, 100
// clients per cluster, each contributing 0.1% of the infinite cache size.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace webcache;
  bench::SectionTimer timer("fig2a");
  const bench::ObsOptions obs(argc, argv);

  const auto source = bench::bench_source(bench::paper_workload());
  const auto& trace = *source;

  core::SweepConfig cfg;  // defaults are exactly the paper's setup
  cfg.threads = bench::bench_threads();
  cfg.base.sim_shards = bench::bench_sim_shards();
  obs.apply(cfg);
  const auto result = core::run_sweep(trace, cfg);
  core::print_gain_table(std::cout, result,
                         "Figure 2(a): latency gain (%) vs proxy cache size (% of "
                         "infinite cache size), synthetic workload");
  obs.write(result, "fig2a_cache_size");
  return 0;
}
