// Perf-regression smoke bench: simulated request throughput per scheme on a
// small fixed workload, plus wall clock per section, written to
// BENCH_perf_smoke.json. scripts/check_perf.py compares the report against
// the committed baseline (bench/baselines/BENCH_perf_smoke.json) with a
// tolerance band, so hot-path regressions fail CI instead of landing
// silently.
//
// The workload is intentionally FIXED (50k requests; WEBCACHE_BENCH_SCALE is
// ignored) so reports stay comparable across runs and machines.
#include <algorithm>
#include <chrono>
#include <iomanip>
#include <vector>

#include "bench_common.hpp"
#include "directory/directory.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace webcache;
  using Clock = std::chrono::steady_clock;
  const auto seconds_since = [](Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };

  bench::BenchReport report("perf_smoke");

  const auto t_gen = Clock::now();
  workload::ProWGenConfig wl;
  wl.total_requests = 50'000;
  wl.distinct_objects = 10'000;
  wl.one_timer_fraction = 0.5;
  wl.zipf_alpha = 0.7;
  wl.lru_stack_fraction = 0.2;
  wl.clients = 100;
  wl.seed = 2003;
  const auto trace = workload::ProWGen(wl).generate();
  report.add_section("generate_trace", seconds_since(t_gen));

  const ObjectNum infinite = core::cluster_infinite_cache_size(trace, 2);

  std::vector<sim::Scheme> schemes(sim::kAllSchemes.begin(), sim::kAllSchemes.end());
  schemes.push_back(sim::Scheme::kSquirrel);

  // The ring-key table is a pure function of the trace's object universe;
  // production sweeps build it once and share it across schemes (run_sweep),
  // so the bench does the same instead of timing SHA-1 table construction
  // inside each P2P scheme's window.
  const auto t_ids = Clock::now();
  const auto object_ids = directory::build_object_id_table(trace.distinct_objects);
  report.add_section("build_object_id_table", seconds_since(t_ids));

  std::cout << std::left << std::setw(10) << "# scheme" << std::setw(14)
            << "requests/s" << "\n";
  const auto t_all = Clock::now();
  for (const auto scheme : schemes) {
    sim::SimConfig cfg;
    cfg.scheme = scheme;
    cfg.proxy_capacity = std::max<std::size_t>(1, infinite / 4);
    cfg.client_cache_capacity = std::max<std::size_t>(1, infinite / 1000);
    cfg.object_ids = object_ids;  // only Hier-GD/Squirrel read it
    const auto t0 = Clock::now();
    const auto metrics = sim::run_simulation(cfg, trace);
    const double dt = seconds_since(t0);
    (void)metrics;
    const double rps = static_cast<double>(trace.size()) / dt;
    report.add_throughput(std::string(sim::to_string(scheme)), rps);
    std::cout << std::setw(10) << sim::to_string(scheme) << std::fixed
              << std::setprecision(0) << rps << "\n";
  }
  report.add_section("simulate_all_schemes", seconds_since(t_all));

  const auto path = report.write_json();
  if (path.empty()) return 1;
  std::cout << "# wrote " << path << "\n";
  return 0;
}
