// Perf-regression smoke bench: simulated request throughput per scheme on a
// small fixed workload, plus wall clock per section, written to
// BENCH_perf_smoke.json. scripts/check_perf.py compares the report against
// the committed baseline (bench/baselines/BENCH_perf_smoke.json) with a
// tolerance band, so hot-path regressions fail CI instead of landing
// silently.
//
// The workload is intentionally FIXED (50k requests; WEBCACHE_BENCH_SCALE is
// ignored) so reports stay comparable across runs and machines.
//
// Besides the per-scheme simulation throughput, the report covers the
// streaming trace pipeline: ProWGen -> wctrace compile throughput
// ("trace_compile"), mmap-streamed replay throughput with a replay chunk
// >= 10x smaller than the trace ("trace_replay_stream"), a byte-equality
// tripwire against the materialized replay, and the process peak RSS as a
// bounded-memory proxy (section "peak_rss_mb"; informational, not gated).
//
// The "sharded_run" section measures the intra-run sharded engine on a
// larger single Hier-GD simulation (8 clusters): throughput at 1, 2 and 8
// shards plus the 8-shard speedup ratio, reported as the hard gate
// "sharded_speedup_8x" (>= 3x, enforced only on machines with >= 8 hardware
// threads — elsewhere the value is informational). A metrics tripwire pins
// the 1-shard and 8-shard runs to identical results.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iomanip>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "cache/policy.hpp"
#include "common/dense_map.hpp"
#include "common/rng.hpp"
#include "directory/directory.hpp"
#include "sim/simulator.hpp"
#include "workload/wctrace.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

int main() {
  using namespace webcache;
  using Clock = std::chrono::steady_clock;
  const auto seconds_since = [](Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };

  bench::BenchReport report("perf_smoke");

  const auto t_gen = Clock::now();
  workload::ProWGenConfig wl;
  wl.total_requests = 50'000;
  wl.distinct_objects = 10'000;
  wl.one_timer_fraction = 0.5;
  wl.zipf_alpha = 0.7;
  wl.lru_stack_fraction = 0.2;
  wl.clients = 100;
  wl.seed = 2003;
  const auto trace = workload::ProWGen(wl).generate();
  report.add_section("generate_trace", seconds_since(t_gen));

  const ObjectNum infinite = core::cluster_infinite_cache_size(trace, 2);

  std::vector<sim::Scheme> schemes(sim::kAllSchemes.begin(), sim::kAllSchemes.end());
  schemes.push_back(sim::Scheme::kSquirrel);

  // The ring-key table is a pure function of the trace's object universe;
  // production sweeps build it once and share it across schemes (run_sweep),
  // so the bench does the same instead of timing SHA-1 table construction
  // inside each P2P scheme's window.
  const auto t_ids = Clock::now();
  const auto object_ids = directory::build_object_id_table(trace.distinct_objects);
  report.add_section("build_object_id_table", seconds_since(t_ids));

  std::cout << std::left << std::setw(10) << "# scheme" << std::setw(14)
            << "requests/s" << "\n";
  const auto t_all = Clock::now();
  for (const auto scheme : schemes) {
    sim::SimConfig cfg;
    cfg.scheme = scheme;
    cfg.proxy_capacity = std::max<std::size_t>(1, infinite / 4);
    cfg.client_cache_capacity = std::max<std::size_t>(1, infinite / 1000);
    cfg.object_ids = object_ids;  // only Hier-GD/Squirrel read it
    const auto t0 = Clock::now();
    const auto metrics = sim::run_simulation(cfg, trace);
    const double dt = seconds_since(t0);
    (void)metrics;
    const double rps = static_cast<double>(trace.size()) / dt;
    report.add_throughput(std::string(sim::to_string(scheme)), rps);
    std::cout << std::setw(10) << sim::to_string(scheme) << std::fixed
              << std::setprecision(0) << rps << "\n";
  }
  report.add_section("simulate_all_schemes", seconds_since(t_all));

  // --- modern-policy frontier ---------------------------------------------
  {
    // W-TinyLFU and ARC on a standalone proxy (NC with a policy override):
    // their per-request cost — sketch probes, segment splices, ghost-list
    // bookkeeping — must stay in the same band as the classic policies above.
    const auto t_policy = Clock::now();
    const struct {
      const char* key;
      cache::PolicyKind kind;
    } frontier[] = {
        {"policy_wtlfu", cache::PolicyKind::kWTinyLfu},
        {"policy_arc", cache::PolicyKind::kArc},
    };
    for (const auto& p : frontier) {
      sim::SimConfig cfg;
      cfg.scheme = sim::Scheme::kNC;
      cfg.proxy_capacity = std::max<std::size_t>(1, infinite / 4);
      cfg.proxy_policy = p.kind;
      const auto t0 = Clock::now();
      (void)sim::run_simulation(cfg, trace);
      const double rps = static_cast<double>(trace.size()) / seconds_since(t0);
      report.add_throughput(p.key, rps);
      std::cout << std::setw(10) << ("# " + std::string(p.key)) << std::fixed
                << std::setprecision(0) << rps << "\n";
    }
    report.add_section("policy_frontier", seconds_since(t_policy));
  }

  // --- streaming trace pipeline -------------------------------------------
  {
    std::string dir = ".";
    if (const char* env = std::getenv("WEBCACHE_BENCH_JSON_DIR")) dir = env;
    const std::string wct_path = dir + "/perf_smoke_trace.wct";

    // Compile: generator streamed straight into the writer, no vector.
    const auto t_compile = Clock::now();
    {
      workload::WctraceWriter writer(wct_path);
      writer.set_distinct_objects(wl.distinct_objects);
      workload::ProWGen(wl).generate(
          [&writer](const Request& r) { writer.append(r); });
      writer.finalize();
    }
    const double dt_compile = seconds_since(t_compile);
    report.add_section("trace_pipeline_compile", dt_compile);
    report.add_throughput("trace_compile",
                          static_cast<double>(wl.total_requests) / dt_compile);

    // Streamed replay through the mmap reader with an out-of-core shape:
    // the chunk budget is >= 10x smaller than the trace.
    const workload::MmapTraceSource streamed(wct_path);
    sim::SimConfig cfg;
    cfg.scheme = sim::Scheme::kSC;
    cfg.proxy_capacity = std::max<std::size_t>(1, infinite / 4);
    cfg.client_cache_capacity = std::max<std::size_t>(1, infinite / 1000);
    cfg.replay_chunk = 4096;
    const auto t_replay = Clock::now();
    const auto streamed_metrics = sim::run_simulation(cfg, streamed);
    const double dt_replay = seconds_since(t_replay);
    report.add_section("trace_pipeline_replay", dt_replay);
    report.add_throughput("trace_replay_stream",
                          static_cast<double>(streamed.size()) / dt_replay);
    std::cout << std::setw(10) << "# compile" << std::fixed << std::setprecision(0)
              << static_cast<double>(wl.total_requests) / dt_compile << "\n"
              << std::setw(10) << "# stream"
              << static_cast<double>(streamed.size()) / dt_replay << "\n";

    // Equality tripwire: the streamed replay must be indistinguishable from
    // the materialized one.
    const auto reference = sim::run_simulation(cfg, trace);
    if (streamed_metrics.requests != reference.requests ||
        streamed_metrics.hits_local_proxy != reference.hits_local_proxy ||
        streamed_metrics.hits_remote_proxy != reference.hits_remote_proxy ||
        streamed_metrics.server_fetches != reference.server_fetches ||
        streamed_metrics.total_latency != reference.total_latency) {
      std::cerr << "perf_smoke: streamed replay diverged from materialized replay\n";
      return 1;
    }

#if defined(__unix__) || defined(__APPLE__)
    struct rusage usage {};
    if (getrusage(RUSAGE_SELF, &usage) == 0) {
      // Linux reports ru_maxrss in KiB. Informational (not gated): the
      // interesting signal is that it stays flat as traces grow.
      report.add_section("peak_rss_mb", static_cast<double>(usage.ru_maxrss) / 1024.0);
    }
#endif
    std::remove(wct_path.c_str());
  }

  // --- intra-run sharding ---------------------------------------------------
  {
    // A single LARGE Hier-GD run is the configuration sharding exists for:
    // one simulation, 8 clusters, too long to wait out sequentially. The
    // workload is fixed like everything else in this bench.
    workload::ProWGenConfig swl;
    swl.total_requests = 160'000;
    swl.distinct_objects = 16'000;
    swl.one_timer_fraction = 0.5;
    swl.zipf_alpha = 0.7;
    swl.lru_stack_fraction = 0.2;
    swl.clients = 100;
    swl.seed = 2003;
    const auto t_sgen = Clock::now();
    const auto strace = workload::ProWGen(swl).generate();
    report.add_section("sharded_run_generate", seconds_since(t_sgen));

    sim::SimConfig base;
    base.scheme = sim::Scheme::kHierGD;
    base.num_proxies = 8;
    base.clients_per_cluster = 25;
    const ObjectNum sinf = core::cluster_infinite_cache_size(strace, base.num_proxies);
    base.proxy_capacity = std::max<std::size_t>(1, sinf / 4);
    base.client_cache_capacity = std::max<std::size_t>(1, sinf / 500);
    base.object_ids = directory::build_object_id_table(strace.distinct_objects);

    double rps1 = 0.0;
    sim::Metrics one{};
    const auto t_shard = Clock::now();
    for (const unsigned shards : {1U, 2U, 8U}) {
      sim::SimConfig cfg = base;
      cfg.sim_shards = shards;
      const auto t0 = Clock::now();
      const auto metrics = sim::run_simulation(cfg, strace);
      const double rps = static_cast<double>(strace.size()) / seconds_since(t0);
      report.add_throughput("sharded_hier_gd_s" + std::to_string(shards), rps);
      std::cout << std::setw(10) << ("# s" + std::to_string(shards)) << std::fixed
                << std::setprecision(0) << rps << "\n";
      if (shards == 1) {
        rps1 = rps;
        one = metrics;
      } else if (shards == 8) {
        // Determinism tripwire: any shard count must produce THE result.
        if (metrics.requests != one.requests ||
            metrics.hits_local_p2p != one.hits_local_p2p ||
            metrics.server_fetches != one.server_fetches ||
            metrics.total_latency != one.total_latency) {
          std::cerr << "perf_smoke: 8-shard run diverged from 1-shard run\n";
          return 1;
        }
        const double speedup = rps1 > 0.0 ? rps / rps1 : 0.0;
        const bool enforce = std::thread::hardware_concurrency() >= 8;
        report.add_gate("sharded_speedup_8x", speedup, 3.0, enforce);
        std::cout << std::setw(10) << "# speedup" << std::setprecision(2) << speedup
                  << (enforce ? "" : " (not enforced: < 8 hardware threads)") << "\n";
      }
    }
    report.add_section("sharded_run", seconds_since(t_shard));

#if defined(__unix__) || defined(__APPLE__)
    struct rusage usage {};
    if (getrusage(RUSAGE_SELF, &usage) == 0) {
      report.add_section("sharded_peak_rss_mb",
                         static_cast<double>(usage.ru_maxrss) / 1024.0);
    }
#endif
  }

  // --- pipelined execution ---------------------------------------------------
  {
    // The prefetch pipeline pays off when the lookup structures miss cache,
    // so this section uses a LARGE fixed workload (the 50k-request smoke
    // workload above is cache-resident and deliberately insensitive): 450k
    // requests over 250k objects keeps per-cluster DenseMap state well past
    // typical LLC sizes. Window=1 runs the engine without lookahead; window
    // 0 resolves to the process default (16 unless WEBCACHE_PIPELINE says
    // otherwise). The gate is the smaller of the Hier-GD and Squirrel
    // speedups — both schemes must clear 1.25x on an 8-core runner.
    workload::ProWGenConfig pwl;
    pwl.total_requests = 450'000;
    pwl.distinct_objects = 250'000;
    pwl.one_timer_fraction = 0.5;
    pwl.zipf_alpha = 0.7;
    pwl.lru_stack_fraction = 0.2;
    pwl.clients = 100;
    pwl.seed = 2003;
    const auto t_pgen = Clock::now();
    const auto ptrace = workload::ProWGen(pwl).generate();
    const auto pids = directory::build_object_id_table(ptrace.distinct_objects);
    report.add_section("pipeline_generate", seconds_since(t_pgen));

    const ObjectNum pinf = core::cluster_infinite_cache_size(ptrace, 8);
    double min_speedup = 0.0;
    const auto t_pipe = Clock::now();
    for (const auto scheme : {sim::Scheme::kHierGD, sim::Scheme::kSquirrel}) {
      sim::SimConfig base;
      base.scheme = scheme;
      base.num_proxies = 8;
      base.clients_per_cluster = 25;
      base.proxy_capacity = std::max<std::size_t>(1, pinf / 4);
      base.client_cache_capacity = std::max<std::size_t>(1, pinf / 500);
      base.object_ids = pids;

      double rps_w1 = 0.0;
      sim::Metrics at_w1{};
      for (const unsigned window : {1U, 0U}) {
        sim::SimConfig cfg = base;
        cfg.pipeline_window = window;
        const auto t0 = Clock::now();
        const auto metrics = sim::run_simulation(cfg, ptrace);
        const double rps = static_cast<double>(ptrace.size()) / seconds_since(t0);
        const std::string key = "pipeline_" + std::string(sim::to_string(scheme)) +
                                (window == 1 ? "_w1" : "_wdef");
        report.add_throughput(key, rps);
        std::cout << std::setw(10) << ("# " + key) << std::fixed
                  << std::setprecision(0) << rps << "\n";
        if (window == 1) {
          rps_w1 = rps;
          at_w1 = metrics;
        } else {
          // Prefetch is advisory: any window must produce THE result.
          if (metrics.requests != at_w1.requests ||
              metrics.hits_local_p2p != at_w1.hits_local_p2p ||
              metrics.hits_remote_p2p != at_w1.hits_remote_p2p ||
              metrics.server_fetches != at_w1.server_fetches ||
              metrics.total_latency != at_w1.total_latency) {
            std::cerr << "perf_smoke: pipelined run diverged from window=1 run\n";
            return 1;
          }
          const double speedup = rps_w1 > 0.0 ? rps / rps_w1 : 0.0;
          min_speedup = min_speedup == 0.0 ? speedup : std::min(min_speedup, speedup);
        }
      }
    }
    const bool enforce = std::thread::hardware_concurrency() >= 8;
    report.add_gate("pipeline_speedup", min_speedup, 1.25, enforce);
    std::cout << std::setw(10) << "# pspeedup" << std::setprecision(2) << min_speedup
              << (enforce ? "" : " (not enforced: < 8 hardware threads)") << "\n";
    report.add_section("pipeline_run", seconds_since(t_pipe));

    // Attribution microbench, mirrored from bench/micro_components: the same
    // random probe stream over a universe-sized DenseMap with and without the
    // K-ahead advisory prefetch. Informational (machine-dependent, not gated)
    // — it shows how much of the pipeline win is pure memory-level
    // parallelism on the dominant lookup structure.
    {
      constexpr std::uint32_t kUniverse = 4'000'000;
      constexpr std::size_t kAhead = 16;
      DenseMap<double> map(kUniverse);
      Rng seed_rng(17);
      for (std::uint32_t i = 0; i < kUniverse / 2; ++i) {
        map[static_cast<ObjectNum>(seed_rng.next_below(kUniverse))] = 1.0;
      }
      std::vector<ObjectNum> keys(1u << 21);
      Rng key_rng(13);
      for (auto& k : keys) k = static_cast<ObjectNum>(key_rng.next_below(kUniverse));
      std::uint64_t hits = 0;
      for (const bool ahead : {false, true}) {
        const auto t0 = Clock::now();
        for (std::size_t i = 0; i < keys.size(); ++i) {
          if (ahead && i + kAhead < keys.size()) map.prefetch(keys[i + kAhead]);
          hits += map.contains(keys[i]) ? 1 : 0;
        }
        const double rps = static_cast<double>(keys.size()) / seconds_since(t0);
        report.add_throughput(ahead ? "prefetch_chase_on" : "prefetch_chase_off", rps);
      }
      if (hits == 0) std::cerr << "# prefetch chase probed an empty map\n";
    }
  }

  const auto path = report.write_json();
  if (path.empty()) return 1;
  std::cout << "# wrote " << path << "\n";
  return 0;
}
