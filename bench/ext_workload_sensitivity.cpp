// Extension bench: the two Section 5.1 workload characteristics the paper
// varies in ProWGen but shows no dedicated figure for — the one-time
// referencing fraction and the distinct-object universe size. Both shift
// how much of the stream is cacheable at all, which bounds every scheme.
#include "bench_common.hpp"

#include <iomanip>

#include "workload/trace_stats.hpp"

int main() {
  using namespace webcache;
  bench::SectionTimer timer("ext_workload_sensitivity");

  const sim::Scheme schemes[] = {sim::Scheme::kSC, sim::Scheme::kFC_EC,
                                 sim::Scheme::kHierGD};

  std::cout << "# One-time referencing sweep (gain % at 30% proxy cache)\n";
  std::cout << std::left << std::setw(14) << "# one-timers";
  for (const auto s : schemes) std::cout << std::setw(10) << sim::to_string(s);
  std::cout << "max-possible-hit%\n" << std::fixed << std::setprecision(2);
  for (const double fraction : {0.3, 0.5, 0.7}) {
    auto wl = bench::paper_workload();
    wl.total_requests = std::max<std::uint64_t>(wl.total_requests / 2, 60'000);
    wl.one_timer_fraction = fraction;
    const auto source = bench::bench_source(wl);
    const auto& trace = *source;
    const auto infinite = core::cluster_infinite_cache_size(trace, 2);

    std::cout << std::setw(14) << fraction * 100.0;
    for (const auto s : schemes) {
      sim::SimConfig cfg;
      cfg.scheme = s;
      cfg.proxy_capacity = std::max<std::size_t>(1, infinite * 30 / 100);
      cfg.client_cache_capacity = std::max<std::size_t>(1, infinite / 1000);
      cfg.sim_shards = bench::bench_sim_shards();
      std::cout << std::setw(10) << core::run_single(trace, cfg).gain_percent;
    }
    // Upper bound on any cache's hit ratio: 1 - first-references/requests.
    const auto stats = workload::analyze(trace);
    std::cout << 100.0 * (1.0 - static_cast<double>(stats.distinct_objects) /
                                    static_cast<double>(stats.total_requests))
              << "\n";
  }

  std::cout << "\n# Universe size sweep (gain % at 30% proxy cache; requests fixed)\n";
  std::cout << std::left << std::setw(14) << "# objects";
  for (const auto s : schemes) std::cout << std::setw(10) << sim::to_string(s);
  std::cout << "\n";
  for (const ObjectNum objects : {5'000u, 10'000u, 40'000u}) {
    auto wl = bench::paper_workload();
    wl.total_requests = std::max<std::uint64_t>(wl.total_requests / 2, 120'000);
    wl.distinct_objects = objects;
    const auto source = bench::bench_source(wl);
    const auto& trace = *source;
    const auto infinite = core::cluster_infinite_cache_size(trace, 2);

    std::cout << std::setw(14) << objects;
    for (const auto s : schemes) {
      sim::SimConfig cfg;
      cfg.scheme = s;
      cfg.proxy_capacity = std::max<std::size_t>(1, infinite * 30 / 100);
      cfg.client_cache_capacity = std::max<std::size_t>(1, infinite / 1000);
      cfg.sim_shards = bench::bench_sim_shards();
      std::cout << std::setw(10) << core::run_single(trace, cfg).gain_percent;
    }
    std::cout << "\n";
  }
  return 0;
}
