// Extension bench: quantifying the paper's Section 6 comparison against
// Squirrel (Iyer/Rowstron/Druschel, PODC'02).
//
// The paper argues its proxy + P2P-client-cache architecture beats a
// proxy-less Squirrel deployment because (a) the proxy tier serves the hot
// set at Tl < Tp2p and (b) proxies can share across organizations where
// firewalled client caches cannot. This bench runs both on the same client
// population and reports where each request class lands.
#include "bench_common.hpp"

#include <iomanip>

int main() {
  using namespace webcache;
  bench::SectionTimer timer("ext_squirrel");

  auto wl = bench::paper_workload();
  wl.total_requests = std::max<std::uint64_t>(wl.total_requests / 2, 50'000);
  const auto source = bench::bench_source(wl);
  const auto& trace = *source;
  const auto infinite = core::cluster_infinite_cache_size(trace, 2);

  struct Variant {
    std::string label;
    sim::SimConfig cfg;
  };
  std::vector<Variant> variants;
  const unsigned shards = bench::bench_sim_shards();

  // Equal-storage comparison: Squirrel gets the same TOTAL budget Hier-GD
  // deploys (proxy cache + donated client storage), spread over its clients
  // — its browser-cache pool is its only storage, and the Squirrel paper
  // assumes substantial per-client contributions.
  const std::size_t proxy_budget = std::max<std::size_t>(1, infinite / 5);
  const std::size_t per_client_donation = std::max<std::size_t>(1, infinite / 1000);
  {
    sim::SimConfig c;
    c.scheme = sim::Scheme::kSquirrel;
    c.clients_per_cluster = 100;
    c.client_cache_capacity =
        std::max<std::size_t>(1, (proxy_budget + 100 * per_client_donation) / 100);
    c.sim_shards = shards;
    variants.push_back({"Squirrel", c});
  }
  {
    // Same total budget: proxy at 20% of the working set + client donations.
    sim::SimConfig c;
    c.scheme = sim::Scheme::kHierGD;
    c.clients_per_cluster = 100;
    c.client_cache_capacity = per_client_donation;
    c.proxy_capacity = proxy_budget;
    c.sim_shards = shards;
    variants.push_back({"Hier-GD", c});
  }
  {
    // Proxy-only deployment of the same proxy budget, cooperative.
    sim::SimConfig c;
    c.scheme = sim::Scheme::kSC;
    c.clients_per_cluster = 100;
    c.proxy_capacity = proxy_budget;
    c.sim_shards = shards;
    variants.push_back({"SC", c});
  }

  std::cout << "# Squirrel vs proxy-based deployments (2 organizations, gains vs NC "
               "with the same proxy budget)\n";
  std::cout << std::left << std::setw(12) << "# system" << std::setw(10) << "gain%"
            << std::setw(14) << "mean-latency" << std::setw(12) << "p2p-hits%"
            << std::setw(14) << "proxy-hits%" << std::setw(12) << "remote%"
            << "server%\n";
  std::cout << std::fixed << std::setprecision(2);

  for (auto& v : variants) {
    const auto run = core::run_single(trace, v.cfg);
    const auto& m = run.metrics;
    const auto pct = [&](std::uint64_t n) {
      return 100.0 * static_cast<double>(n) / static_cast<double>(m.requests);
    };
    std::cout << std::setw(12) << v.label << std::setw(10) << run.gain_percent
              << std::setw(14) << m.mean_latency() << std::setw(12)
              << pct(m.hits_local_p2p) << std::setw(14) << pct(m.hits_local_proxy)
              << std::setw(12) << pct(m.hits_remote_proxy + m.hits_remote_p2p)
              << pct(m.server_fetches) << "\n";
  }
  return 0;
}
