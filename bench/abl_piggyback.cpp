// Ablation: piggybacking destaged objects onto HTTP responses (Section 4.4).
//
// Every proxy eviction under Hier-GD rides on a response already going to a
// client; without piggybacking each would need its own proxy->client
// message/connection. This bench counts the saved messages across cache
// sizes (the object still traverses Pastry hops either way — those are
// reported separately).
#include "bench_common.hpp"

#include <iomanip>

int main() {
  using namespace webcache;
  bench::SectionTimer timer("abl_piggyback");

  auto wl = bench::paper_workload();
  wl.total_requests = std::max<std::uint64_t>(wl.total_requests / 2, 50'000);
  const auto source = bench::bench_source(wl);
  const auto& trace = *source;
  const auto infinite = core::cluster_infinite_cache_size(trace, 2);

  std::cout << "# Piggyback accounting: Hier-GD destaging messages by proxy cache size\n";
  std::cout << "# byte-overhead%: destaged bytes as a share of response bytes on the\n";
  std::cout << "# proxy->client LAN leg (sizes i.i.d., so the ratio equals the destage\n";
  std::cout << "# rate) — the 'increased size of the regular response messages' of\n";
  std::cout << "# Section 4.4, which the paper expects to be absorbed by intranet\n";
  std::cout << "# bandwidth. It shrinks as proxy caches grow (fewer evictions).\n";
  std::cout << std::left << std::setw(10) << "# cache%" << std::setw(14) << "destages"
            << std::setw(18) << "piggybacked" << std::setw(22) << "dedicated-saved"
            << std::setw(16) << "pastry-msgs" << std::setw(18) << "msgs-per-request"
            << "byte-overhead%\n";
  std::cout << std::fixed << std::setprecision(4);

  for (const double pct : {10.0, 30.0, 50.0, 80.0}) {
    sim::SimConfig cfg;
    cfg.scheme = sim::Scheme::kHierGD;
    cfg.proxy_capacity = std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<double>(infinite) * pct / 100.0));
    cfg.client_cache_capacity = std::max<std::size_t>(1, infinite / 1000);
    const auto m = sim::run_simulation(cfg, trace);

    const auto destages = m.messages.destage_messages_without_piggyback();
    std::cout << std::setw(10) << pct << std::setw(14) << destages << std::setw(18)
              << m.messages.destage_piggybacked << std::setw(22)
              << m.messages.destage_piggybacked  // each piggyback saves one message
              << std::setw(16) << m.messages.pastry_forward_messages << std::setw(18)
              << static_cast<double>(m.messages.pastry_forward_messages) /
                     static_cast<double>(m.requests)
              << 100.0 * static_cast<double>(m.messages.destage_piggybacked) /
                     static_cast<double>(m.requests)
              << "\n";
  }
  return 0;
}
