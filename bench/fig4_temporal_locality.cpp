// Figure 4: sensitivity to temporal locality (ProWGen LRU stack size).
//
// Panels FC, SC-EC, FC-EC, Hier-GD; stack size in {5%, 20%, 60%} of the
// multi-referenced objects. The paper's finding: smaller stacks (weaker
// locality) yield larger gains for the coordinated schemes, because strong
// locality makes even the isolated NC cache effective.
#include "bench_common.hpp"

#include <cmath>

int main(int argc, char** argv) {
  using namespace webcache;
  bench::SectionTimer timer("fig4");
  const bench::ObsOptions obs(argc, argv);

  const double stacks[] = {0.05, 0.20, 0.60};
  const sim::Scheme panels[] = {sim::Scheme::kFC, sim::Scheme::kSC_EC,
                                sim::Scheme::kFC_EC, sim::Scheme::kHierGD};

  std::vector<core::SweepResult> results;
  for (const double stack : stacks) {
    auto wl = bench::paper_workload();
    wl.lru_stack_fraction = stack;
    // Run the locality sensitivity at full recency bias so the stack knob
    // spans its whole dynamic range (see prowgen.hpp).
    wl.recency_bias = 0.5;
    const auto source = bench::bench_source(wl);
    const auto& trace = *source;
    core::SweepConfig cfg;
    cfg.threads = bench::bench_threads();
    cfg.base.sim_shards = bench::bench_sim_shards();
    cfg.schemes = {panels[0], panels[1], panels[2], panels[3]};
    obs.apply(cfg);
    results.push_back(core::run_sweep(trace, cfg));
    obs.write(results.back(), "fig4_temporal_locality",
              "stack" + std::to_string(std::lround(stack * 100)));
  }

  for (std::size_t p = 0; p < std::size(panels); ++p) {
    std::cout << "# Figure 4 panel " << sim::to_string(panels[p])
              << "/NC: latency gain (%) vs cache size for LRU stack sweep\n";
    std::cout << "# cache%   stack=5%   stack=20%  stack=60%\n";
    const auto& percents = results[0].cache_percents;
    for (std::size_t i = 0; i < percents.size(); ++i) {
      std::cout << percents[i];
      for (std::size_t s = 0; s < std::size(stacks); ++s) {
        std::cout << "\t" << results[s].gains[i][p];
      }
      std::cout << "\n";
    }
    std::cout << "\n";
  }
  return 0;
}
