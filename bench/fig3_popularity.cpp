// Figure 3: sensitivity to the object popularity distribution (Zipf alpha).
//
// Four panels — FC, SC-EC, FC-EC and Hier-GD — each plotting latency gain
// vs proxy cache size for alpha in {0.5, 0.7, 1.0}. The paper's finding:
// smaller alpha (less skew, larger working set) yields larger gains, because
// cooperation only helps beyond what a single cache already captures.
#include "bench_common.hpp"

#include <cmath>

int main(int argc, char** argv) {
  using namespace webcache;
  bench::SectionTimer timer("fig3");
  const bench::ObsOptions obs(argc, argv);

  const double alphas[] = {0.5, 0.7, 1.0};
  const sim::Scheme panels[] = {sim::Scheme::kFC, sim::Scheme::kSC_EC,
                                sim::Scheme::kFC_EC, sim::Scheme::kHierGD};

  // One sweep per alpha (trace changes with alpha); reorganize into
  // per-panel tables afterwards.
  std::vector<core::SweepResult> results;
  for (const double alpha : alphas) {
    auto wl = bench::paper_workload();
    wl.zipf_alpha = alpha;
    const auto source = bench::bench_source(wl);
    const auto& trace = *source;
    core::SweepConfig cfg;
    cfg.threads = bench::bench_threads();
    cfg.base.sim_shards = bench::bench_sim_shards();
    cfg.schemes = {panels[0], panels[1], panels[2], panels[3]};
    obs.apply(cfg);
    results.push_back(core::run_sweep(trace, cfg));
    obs.write(results.back(), "fig3_popularity",
              "alpha" + std::to_string(std::lround(alpha * 100)));
  }

  for (std::size_t p = 0; p < std::size(panels); ++p) {
    std::cout << "# Figure 3 panel " << sim::to_string(panels[p])
              << "/NC: latency gain (%) vs cache size for alpha sweep\n";
    std::cout << "# cache%   alpha=0.5  alpha=0.7  alpha=1.0\n";
    const auto& percents = results[0].cache_percents;
    for (std::size_t i = 0; i < percents.size(); ++i) {
      std::cout << percents[i];
      for (std::size_t a = 0; a < std::size(alphas); ++a) {
        std::cout << "\t" << results[a].gains[i][p];
      }
      std::cout << "\n";
    }
    std::cout << "\n";
  }
  return 0;
}
