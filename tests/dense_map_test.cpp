#include "common/dense_map.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/sha1.hpp"
#include "common/types.hpp"
#include "common/uint128.hpp"
#include "p2p/p2p_client_cache.hpp"

namespace webcache {
namespace {

// --- DenseMap -----------------------------------------------------------------

TEST(DenseMap, InsertFindErase) {
  DenseMap<double> m(10);
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(3), nullptr);

  m[3] = 1.5;
  m[7] = 2.5;
  EXPECT_EQ(m.size(), 2u);
  ASSERT_NE(m.find(3), nullptr);
  EXPECT_DOUBLE_EQ(*m.find(3), 1.5);
  EXPECT_TRUE(m.contains(7));
  EXPECT_FALSE(m.contains(4));

  EXPECT_TRUE(m.erase(3));
  EXPECT_FALSE(m.erase(3));  // already gone
  EXPECT_FALSE(m.contains(3));
  EXPECT_EQ(m.size(), 1u);
}

TEST(DenseMap, OperatorBracketDefaultConstructsOnce) {
  DenseMap<int> m(4);
  EXPECT_EQ(m[2], 0);  // inserted as default
  m[2] = 42;
  EXPECT_EQ(m[2], 42);  // second access does not reset
  EXPECT_EQ(m.size(), 1u);
}

TEST(DenseMap, EpochClearIsLogicalAndReusable) {
  DenseMap<int> m(8);
  for (std::uint32_t k = 0; k < 8; ++k) m[k] = static_cast<int>(k);
  EXPECT_EQ(m.size(), 8u);

  m.clear();
  EXPECT_TRUE(m.empty());
  for (std::uint32_t k = 0; k < 8; ++k) {
    EXPECT_FALSE(m.contains(k)) << k;
    EXPECT_EQ(m.find(k), nullptr) << k;
  }

  // Slots are reusable after the epoch bump, and stale values never leak.
  m[5] = 99;
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m[5], 99);
  EXPECT_FALSE(m.contains(4));
}

TEST(DenseMap, IterationIsAscendingKeyOrder) {
  DenseMap<int> m(100);
  m[42] = 3;
  m[7] = 1;
  m[99] = 4;
  m[13] = 2;  // insertion order differs from key order
  std::vector<std::uint32_t> keys;
  m.for_each([&](std::uint32_t k, int v) {
    keys.push_back(k);
    EXPECT_EQ(v, static_cast<int>(keys.size()));
  });
  EXPECT_EQ(keys, (std::vector<std::uint32_t>{7, 13, 42, 99}));
}

TEST(DenseMap, GrowsOnDemandBeyondReservedUniverse) {
  DenseMap<int> m(4);
  EXPECT_EQ(m.universe(), 4u);
  m[100] = 7;  // a key past the reservation grows the slot array
  EXPECT_GE(m.universe(), 101u);
  EXPECT_TRUE(m.contains(100));
  EXPECT_EQ(m[100], 7);
  EXPECT_FALSE(m.contains(50));  // the grown range is not spuriously live
}

// --- DenseSet -----------------------------------------------------------------

TEST(DenseSet, InsertEraseContains) {
  DenseSet s(16);
  EXPECT_TRUE(s.insert(3));
  EXPECT_FALSE(s.insert(3));  // duplicate
  EXPECT_TRUE(s.insert(9));
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.contains(3));
  EXPECT_FALSE(s.contains(4));
  EXPECT_TRUE(s.erase(3));
  EXPECT_FALSE(s.erase(3));
  EXPECT_EQ(s.size(), 1u);
}

TEST(DenseSet, EpochClearAndAscendingIteration) {
  DenseSet s(32);
  for (std::uint32_t k : {20u, 5u, 11u}) s.insert(k);
  std::vector<std::uint32_t> members;
  s.for_each([&](std::uint32_t k) { members.push_back(k); });
  EXPECT_EQ(members, (std::vector<std::uint32_t>{5, 11, 20}));

  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.contains(5));
  EXPECT_TRUE(s.insert(5));  // reusable after clear
  EXPECT_EQ(s.size(), 1u);
}

TEST(DenseSet, MemoryBytesTracksFlatUniverse) {
  DenseSet s;
  EXPECT_EQ(s.memory_bytes(), 0u);
  s.insert(999);
  EXPECT_GE(s.memory_bytes(), 1000 * sizeof(std::uint32_t));
  const auto grown = s.memory_bytes();
  s.erase(999);
  EXPECT_EQ(s.memory_bytes(), grown);  // flat arrays never shrink
}

// --- FlatMap ------------------------------------------------------------------

TEST(FlatMap, InsertFindErase) {
  FlatMap<std::string> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(1), nullptr);

  m[1] = "one";
  m[2] = "two";
  EXPECT_EQ(m.size(), 2u);
  ASSERT_NE(m.find(1), nullptr);
  EXPECT_EQ(*m.find(1), "one");
  EXPECT_FALSE(m.contains(3));

  EXPECT_TRUE(m.erase(1));
  EXPECT_FALSE(m.erase(1));
  EXPECT_EQ(m.find(1), nullptr);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, SurvivesGrowthAndChurn) {
  FlatMap<std::uint32_t> m;
  // Force several growth doublings, then a deletion-heavy phase: backward
  // shifting must keep every surviving key reachable with no tombstones.
  for (std::uint32_t k = 0; k < 500; ++k) m[k] = k * 2;
  for (std::uint32_t k = 0; k < 500; k += 2) EXPECT_TRUE(m.erase(k));
  EXPECT_EQ(m.size(), 250u);
  for (std::uint32_t k = 0; k < 500; ++k) {
    if (k % 2 == 0) {
      EXPECT_FALSE(m.contains(k)) << k;
    } else {
      ASSERT_NE(m.find(k), nullptr) << k;
      EXPECT_EQ(*m.find(k), k * 2) << k;
    }
  }
  // Re-insert into the holes.
  for (std::uint32_t k = 0; k < 500; k += 2) m[k] = k + 1;
  EXPECT_EQ(m.size(), 500u);
  for (std::uint32_t k = 0; k < 500; k += 2) EXPECT_EQ(*m.find(k), k + 1);
}

TEST(FlatMap, IterationIsDeterministicForAGivenHistory) {
  const auto build = [] {
    FlatMap<int> m;
    for (std::uint32_t k = 0; k < 64; ++k) m[k] = static_cast<int>(k);
    for (std::uint32_t k = 0; k < 64; k += 3) m.erase(k);
    return m;
  };
  const auto a = build();
  const auto b = build();
  std::vector<std::pair<std::uint32_t, int>> va, vb;
  a.for_each([&](std::uint32_t k, int v) { va.emplace_back(k, v); });
  b.for_each([&](std::uint32_t k, int v) { vb.emplace_back(k, v); });
  EXPECT_EQ(va, vb);
  EXPECT_EQ(va.size(), a.size());
}

TEST(FlatMap, ClearReleasesEverything) {
  FlatMap<int> m;
  for (std::uint32_t k = 0; k < 40; ++k) m[k] = 1;
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(5), nullptr);
  m[5] = 9;  // usable again from scratch
  EXPECT_EQ(m.size(), 1u);
}

// --- growth under cluster churn -------------------------------------------------
//
// The P2P location index is reserved for the trace's object universe, and the
// per-client diversion maps start empty; fresh clients joining mid-run (churn)
// must grow these structures on demand without disturbing resident state.

TEST(DenseContainersUnderChurn, FreshJoinsGrowTheClusterState) {
  p2p::P2PConfig pc;
  pc.clients = 8;
  pc.per_client_capacity = 2;
  auto ids = std::make_shared<std::vector<Uint128>>();
  for (std::uint32_t o = 0; o < 64; ++o) {
    ids->push_back(Sha1::hash128(object_url(o)));
  }
  p2p::P2PClientCache cluster(pc, std::move(ids));

  for (ObjectNum o = 0; o < 16; ++o) {
    (void)cluster.store(o, 1.0, o % 8);
  }
  const auto before = cluster.resident_objects();
  EXPECT_FALSE(before.empty());

  // Fresh joins extend the dense client-index space past the initial size.
  const ClientNum j1 = cluster.add_client();
  const ClientNum j2 = cluster.add_client();
  EXPECT_EQ(j1, 8u);
  EXPECT_EQ(j2, 9u);
  EXPECT_EQ(cluster.cluster_size(), 10u);

  // Resident objects survived the joins, and the cluster stays consistent.
  EXPECT_EQ(cluster.resident_objects(), before);
  EXPECT_TRUE(cluster.audit_violations().empty());

  // New clients participate fully: keep storing across the grown cluster.
  for (ObjectNum o = 16; o < 40; ++o) {
    (void)cluster.store(o, 1.0, o % 10);
  }
  EXPECT_TRUE(cluster.audit_violations().empty());
}

}  // namespace
}  // namespace webcache
