#include "workload/prowgen.hpp"
#include "workload/trace.hpp"
#include "workload/trace_stats.hpp"
#include "workload/ucb_like.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

namespace webcache::workload {
namespace {

ProWGenConfig small_config() {
  ProWGenConfig c;
  c.total_requests = 50'000;
  c.distinct_objects = 2'000;
  c.seed = 11;
  return c;
}

TEST(ProWGen, GeneratesExactlyConfiguredRequests) {
  const auto trace = ProWGen(small_config()).generate();
  EXPECT_EQ(trace.size(), 50'000u);
  EXPECT_EQ(trace.distinct_objects, 2'000u);
}

TEST(ProWGen, EveryObjectIsReferencedAndCountsAreExact) {
  const auto cfg = small_config();
  const auto trace = ProWGen(cfg).generate();
  const auto stats = analyze(trace);
  // Every object in the universe gets at least one reference.
  EXPECT_EQ(stats.one_timers + stats.infinite_cache_size, cfg.distinct_objects);
  EXPECT_EQ(stats.total_requests, cfg.total_requests);
}

TEST(ProWGen, OneTimerFractionMatchesConfig) {
  const auto cfg = small_config();
  const auto stats = analyze(ProWGen(cfg).generate());
  // 50% of 2000 = 1000 one-timers, exactly (counts are assigned, not drawn).
  EXPECT_EQ(stats.one_timers, 1000u);
}

TEST(ProWGen, MultiReferencedObjectsHaveAtLeastTwo) {
  const auto cfg = small_config();
  const auto stats = analyze(ProWGen(cfg).generate());
  const ObjectNum multi = cfg.distinct_objects - stats.one_timers;
  for (ObjectNum o = 0; o < multi; ++o) {
    ASSERT_GE(stats.frequency[o], 2u) << "object " << o;
  }
}

TEST(ProWGen, PopularityIsZipfLike) {
  auto cfg = small_config();
  cfg.total_requests = 500'000;
  cfg.distinct_objects = 5'000;
  cfg.zipf_alpha = 0.8;
  const auto stats = analyze(ProWGen(cfg).generate());
  const double estimated = estimate_zipf_alpha(stats);
  // The floor-of-2 clamp flattens the tail, so allow generous tolerance.
  EXPECT_NEAR(estimated, 0.8, 0.25);
  // Object 0 is by construction the most popular.
  EXPECT_EQ(stats.max_frequency,
            *std::max_element(stats.frequency.begin(), stats.frequency.end()));
  EXPECT_EQ(stats.frequency[0], stats.max_frequency);
}

TEST(ProWGen, HigherAlphaConcentratesMass) {
  auto lo = small_config();
  lo.zipf_alpha = 0.3;
  auto hi = small_config();
  hi.zipf_alpha = 1.2;
  const auto stats_lo = analyze(ProWGen(lo).generate());
  const auto stats_hi = analyze(ProWGen(hi).generate());
  EXPECT_GT(stats_hi.top_decile_share, stats_lo.top_decile_share);
}

TEST(ProWGen, DeterministicForEqualSeeds) {
  const auto a = ProWGen(small_config()).generate();
  const auto b = ProWGen(small_config()).generate();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.requests[i].object, b.requests[i].object);
    ASSERT_EQ(a.requests[i].client, b.requests[i].client);
  }
}

TEST(ProWGen, DifferentSeedsDiffer) {
  auto cfg = small_config();
  const auto a = ProWGen(cfg).generate();
  cfg.seed = 12;
  const auto b = ProWGen(cfg).generate();
  std::size_t differing = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.requests[i].object != b.requests[i].object) ++differing;
  }
  EXPECT_GT(differing, a.size() / 2);
}

TEST(ProWGen, ClientIdsWithinRange) {
  auto cfg = small_config();
  cfg.clients = 37;
  const auto trace = ProWGen(cfg).generate();
  for (const auto& r : trace.requests) {
    ASSERT_LT(r.client, 37u);
  }
}

/// Mean LRU-stack reuse distance of the stream: the locality measure the
/// temporal knobs must move.
double mean_reuse_distance(const Trace& trace) {
  std::unordered_map<ObjectNum, std::size_t> last_seen;
  // Approximate stack distance by time distance (sufficient for a
  // monotonicity check on otherwise-identical configurations).
  double total = 0.0;
  std::uint64_t reuses = 0;
  for (std::size_t t = 0; t < trace.requests.size(); ++t) {
    const auto o = trace.requests[t].object;
    if (const auto it = last_seen.find(o); it != last_seen.end()) {
      total += static_cast<double>(t - it->second);
      ++reuses;
    }
    last_seen[o] = t;
  }
  return reuses == 0 ? 0.0 : total / static_cast<double>(reuses);
}

TEST(ProWGen, TemporalAmplifierTightensReuseDistances) {
  // Test the mechanism at full recency bias; the shipped default is milder.
  auto weak = small_config();
  weak.temporal_amplifier = 1.0;
  weak.recency_bias = 0.5;
  auto strong = small_config();
  strong.temporal_amplifier = 20.0;
  strong.recency_bias = 0.5;
  const double weak_dist = mean_reuse_distance(ProWGen(weak).generate());
  const double strong_dist = mean_reuse_distance(ProWGen(strong).generate());
  EXPECT_LT(strong_dist, weak_dist * 0.8);
}

TEST(ProWGen, LargerStackStrengthensTemporalLocality) {
  // The paper's reading of the knob: a larger LRU stack means more objects
  // are accessed with temporal locality, so re-references arrive sooner and
  // a single cache (NC) becomes more effective (Section 5.2, Fig. 4).
  auto small_stack = small_config();
  small_stack.lru_stack_fraction = 0.05;
  auto large_stack = small_config();
  large_stack.lru_stack_fraction = 0.6;
  const double d_small = mean_reuse_distance(ProWGen(small_stack).generate());
  const double d_large = mean_reuse_distance(ProWGen(large_stack).generate());
  EXPECT_LT(d_large, d_small);
}

TEST(ProWGen, SizesAreUnitByDefault) {
  const auto trace = ProWGen(small_config()).generate();
  for (const auto& r : trace.requests) ASSERT_EQ(r.size, 1u);
}

TEST(ProWGen, SizeModelProducesHeavyTail) {
  auto cfg = small_config();
  cfg.generate_sizes = true;
  const auto trace = ProWGen(cfg).generate();
  ObjectSize max_size = 0;
  double mean = 0;
  for (const auto& r : trace.requests) {
    max_size = std::max(max_size, r.size);
    mean += static_cast<double>(r.size);
  }
  mean /= static_cast<double>(trace.size());
  EXPECT_GT(max_size, static_cast<ObjectSize>(20.0 * mean));  // Pareto tail
  EXPECT_GT(mean, 1000.0);                                    // lognormal body in bytes
}

TEST(ProWGen, SizeCorrelationModes) {
  auto cfg = small_config();
  cfg.generate_sizes = true;
  cfg.size_correlation = SizeCorrelation::kNegative;
  const auto trace = ProWGen(cfg).generate();
  const auto stats = analyze(trace);
  // Negative correlation: popular objects (low ids) smaller than tail.
  std::unordered_map<ObjectNum, ObjectSize> size_of;
  for (const auto& r : trace.requests) size_of[r.object] = r.size;
  double head = 0, tail = 0;
  int head_n = 0, tail_n = 0;
  for (const auto& [o, s] : size_of) {
    if (o < 100) {
      head += static_cast<double>(s);
      ++head_n;
    } else if (o >= stats.distinct_objects - 100) {
      tail += static_cast<double>(s);
      ++tail_n;
    }
  }
  ASSERT_GT(head_n, 0);
  ASSERT_GT(tail_n, 0);
  EXPECT_LT(head / head_n, tail / tail_n);
}

TEST(ProWGen, RejectsInvalidConfigs) {
  auto c = small_config();
  c.distinct_objects = 0;
  EXPECT_THROW(ProWGen{c}, std::invalid_argument);
  c = small_config();
  c.one_timer_fraction = 1.5;
  EXPECT_THROW(ProWGen{c}, std::invalid_argument);
  c = small_config();
  c.total_requests = 10;  // can't give 1000 multi objects 2 refs each
  EXPECT_THROW(ProWGen{c}, std::invalid_argument);
  c = small_config();
  c.lru_stack_fraction = 0.0;
  EXPECT_THROW(ProWGen{c}, std::invalid_argument);
  c = small_config();
  c.temporal_amplifier = 0.5;
  EXPECT_THROW(ProWGen{c}, std::invalid_argument);
  c = small_config();
  c.clients = 0;
  EXPECT_THROW(ProWGen{c}, std::invalid_argument);
}

// --- trace I/O -----------------------------------------------------------------

TEST(TraceIO, RoundTripsThroughText) {
  const auto trace = ProWGen(small_config()).generate();
  std::stringstream buffer;
  write_trace(buffer, trace);
  const auto loaded = read_trace(buffer);
  ASSERT_EQ(loaded.size(), trace.size());
  EXPECT_EQ(loaded.distinct_objects, trace.distinct_objects);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    ASSERT_EQ(loaded.requests[i].time, trace.requests[i].time);
    ASSERT_EQ(loaded.requests[i].client, trace.requests[i].client);
    ASSERT_EQ(loaded.requests[i].object, trace.requests[i].object);
    ASSERT_EQ(loaded.requests[i].size, trace.requests[i].size);
  }
}

TEST(TraceIO, ReadsUrlsAndAssignsDenseIds) {
  std::stringstream in(
      "# a comment\n"
      "0 1 http://a.com/x 100\n"
      "1 2 http://a.com/y\n"
      "2 1 http://a.com/x 100\n");
  const auto trace = read_trace(in);
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.distinct_objects, 2u);
  EXPECT_EQ(trace.requests[0].object, trace.requests[2].object);
  EXPECT_NE(trace.requests[0].object, trace.requests[1].object);
  EXPECT_EQ(trace.requests[0].size, 100u);
  EXPECT_EQ(trace.requests[1].size, 1u);  // default size
}

TEST(TraceIO, RejectsMalformedLines) {
  std::stringstream missing("0 1\n");
  EXPECT_THROW((void)read_trace(missing), std::runtime_error);
  std::stringstream bad_time("x 1 2\n");
  EXPECT_THROW((void)read_trace(bad_time), std::runtime_error);
  std::stringstream bad_size("0 1 2 huge\n");
  EXPECT_THROW((void)read_trace(bad_size), std::runtime_error);
}

TEST(TraceIO, MissingFileThrows) {
  EXPECT_THROW((void)read_trace_file("/nonexistent/path/trace.txt"), std::runtime_error);
}

// --- stats --------------------------------------------------------------------

TEST(TraceStats, InfiniteCacheSizeCountsMultiReferenced) {
  Trace t;
  t.distinct_objects = 4;
  for (const ObjectNum o : {0u, 0u, 1u, 2u, 2u, 2u}) {
    t.requests.push_back(Request{0, 0, o, 1});
  }
  const auto s = analyze(t);
  EXPECT_EQ(s.infinite_cache_size, 2u);  // objects 0 and 2
  EXPECT_EQ(s.one_timers, 1u);           // object 1 (object 3 never referenced)
  EXPECT_EQ(s.max_frequency, 3u);
}

TEST(TraceStats, PerProxyFrequencyScales) {
  Trace t;
  t.distinct_objects = 1;
  for (int i = 0; i < 10; ++i) t.requests.push_back(Request{0, 0, 0, 1});
  const auto s = analyze(t);
  const auto f = per_proxy_frequency(s, 5);
  EXPECT_DOUBLE_EQ(f[0], 2.0);
  EXPECT_THROW((void)per_proxy_frequency(s, 0), std::invalid_argument);
}

TEST(TraceStats, RejectsOutOfUniverseObjects) {
  Trace t;
  t.distinct_objects = 1;
  t.requests.push_back(Request{0, 0, 5, 1});
  EXPECT_THROW((void)analyze(t), std::invalid_argument);
}

// --- UCB-like ------------------------------------------------------------------

TEST(UcbLike, CalibrationMatchesPublishedShape) {
  UcbLikeConfig cfg;
  cfg.scale = 0.02;  // ~185k requests: fast but statistically meaningful
  const auto trace = generate_ucb_like(cfg);
  const auto stats = analyze(trace);
  EXPECT_NEAR(static_cast<double>(trace.size()), 9'244'728.0 * 0.02, 1.0);
  // Requests per distinct object ~ 9.
  EXPECT_NEAR(static_cast<double>(stats.total_requests) /
                  static_cast<double>(stats.distinct_objects),
              9.0, 0.5);
  // Heavy one-time referencing: ~60% of distinct objects.
  EXPECT_NEAR(static_cast<double>(stats.one_timers) /
                  static_cast<double>(stats.distinct_objects),
              0.60, 0.05);
}

TEST(UcbLike, RejectsBadScale) {
  UcbLikeConfig cfg;
  cfg.scale = 0.0;
  EXPECT_THROW((void)ucb_like_prowgen_config(cfg), std::invalid_argument);
  cfg.scale = 1.5;
  EXPECT_THROW((void)ucb_like_prowgen_config(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace webcache::workload
