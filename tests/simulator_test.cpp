#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "workload/prowgen.hpp"
#include "workload/trace_stats.hpp"

namespace webcache::sim {
namespace {

workload::Trace test_trace(std::uint64_t requests = 60'000, ObjectNum objects = 2'000,
                           std::uint64_t seed = 31) {
  workload::ProWGenConfig cfg;
  cfg.total_requests = requests;
  cfg.distinct_objects = objects;
  cfg.seed = seed;
  return workload::ProWGen(cfg).generate();
}

SimConfig base_config(Scheme scheme, std::size_t proxy_capacity = 200) {
  SimConfig c;
  c.scheme = scheme;
  c.proxy_capacity = proxy_capacity;
  c.clients_per_cluster = 50;
  c.client_cache_capacity = 2;
  return c;
}

TEST(Simulator, EveryRequestIsAccounted) {
  const auto trace = test_trace();
  for (const auto scheme : kAllSchemes) {
    const auto m = run_simulation(base_config(scheme), trace);
    EXPECT_EQ(m.requests, trace.size()) << to_string(scheme);
    EXPECT_EQ(m.total_hits() + m.server_fetches, trace.size()) << to_string(scheme);
    EXPECT_GT(m.mean_latency(), 0.0) << to_string(scheme);
  }
}

TEST(Simulator, DeterministicAcrossRuns) {
  const auto trace = test_trace();
  for (const auto scheme : kAllSchemes) {
    const auto a = run_simulation(base_config(scheme), trace);
    const auto b = run_simulation(base_config(scheme), trace);
    EXPECT_EQ(a.total_latency, b.total_latency) << to_string(scheme);
    EXPECT_EQ(a.hits_local_proxy, b.hits_local_proxy) << to_string(scheme);
    EXPECT_EQ(a.hits_local_p2p, b.hits_local_p2p) << to_string(scheme);
    EXPECT_EQ(a.server_fetches, b.server_fetches) << to_string(scheme);
  }
}

TEST(Simulator, MeanLatencyBracketedByModelExtremes) {
  const auto trace = test_trace();
  const auto cfg = base_config(Scheme::kHierGD);
  const auto m = run_simulation(cfg, trace);
  EXPECT_GE(m.mean_latency(), cfg.latencies.request_latency(net::ServedFrom::kLocalProxy));
  EXPECT_LE(m.mean_latency(), cfg.latencies.request_latency(net::ServedFrom::kOriginServer) +
                                  cfg.latencies.p2p_fetch());
}

TEST(Simulator, NcNeverUsesCooperativePaths) {
  const auto trace = test_trace();
  const auto m = run_simulation(base_config(Scheme::kNC), trace);
  EXPECT_EQ(m.hits_remote_proxy, 0u);
  EXPECT_EQ(m.hits_local_p2p, 0u);
  EXPECT_EQ(m.hits_remote_p2p, 0u);
}

TEST(Simulator, NcEcUsesLocalP2pOnly) {
  const auto trace = test_trace();
  const auto m = run_simulation(base_config(Scheme::kNC_EC), trace);
  EXPECT_GT(m.hits_local_p2p, 0u);
  EXPECT_EQ(m.hits_remote_proxy, 0u);
  EXPECT_EQ(m.hits_remote_p2p, 0u);
}

TEST(Simulator, CooperativeSchemesUseRemotePaths) {
  const auto trace = test_trace();
  for (const auto scheme : {Scheme::kSC, Scheme::kFC, Scheme::kSC_EC, Scheme::kFC_EC,
                            Scheme::kHierGD}) {
    const auto m = run_simulation(base_config(scheme), trace);
    EXPECT_GT(m.hits_remote_proxy + m.hits_remote_p2p, 0u) << to_string(scheme);
  }
}

TEST(Simulator, EcSchemesBeatTheirBaseSchemes) {
  // The paper's central claim: exploiting client caches helps, especially
  // with small proxy caches.
  const auto trace = test_trace();
  const std::size_t small_cache = 100;  // ~10% of the per-cluster working set
  const auto nc = run_simulation(base_config(Scheme::kNC, small_cache), trace);
  const auto nc_ec = run_simulation(base_config(Scheme::kNC_EC, small_cache), trace);
  const auto sc = run_simulation(base_config(Scheme::kSC, small_cache), trace);
  const auto sc_ec = run_simulation(base_config(Scheme::kSC_EC, small_cache), trace);
  const auto fc = run_simulation(base_config(Scheme::kFC, small_cache), trace);
  const auto fc_ec = run_simulation(base_config(Scheme::kFC_EC, small_cache), trace);
  EXPECT_LT(nc_ec.mean_latency(), nc.mean_latency());
  EXPECT_LT(sc_ec.mean_latency(), sc.mean_latency());
  EXPECT_LT(fc_ec.mean_latency(), fc.mean_latency());
}

TEST(Simulator, CooperationOrderingHolds) {
  // More cooperation, better latency: FC <= SC <= NC (as mean latency).
  const auto trace = test_trace();
  const auto nc = run_simulation(base_config(Scheme::kNC), trace);
  const auto sc = run_simulation(base_config(Scheme::kSC), trace);
  const auto fc = run_simulation(base_config(Scheme::kFC), trace);
  EXPECT_LT(sc.mean_latency(), nc.mean_latency());
  EXPECT_LT(fc.mean_latency(), sc.mean_latency());
}

TEST(Simulator, HierGdBeatsSimpleCooperation) {
  const auto trace = test_trace();
  const auto sc = run_simulation(base_config(Scheme::kSC), trace);
  const auto hier = run_simulation(base_config(Scheme::kHierGD), trace);
  EXPECT_LT(hier.mean_latency(), sc.mean_latency());
}

TEST(Simulator, HierGdTracksIdealUnifiedBound) {
  // FC-EC is the paper's idealized coordinated bound. Hier-GD must land in
  // its neighbourhood — it can even edge past it on strongly temporal
  // workloads, because greedy-dual exploits recency that perfect-frequency
  // cost-benefit ignores (documented in EXPERIMENTS.md). What it must NOT
  // do is trail the bound badly.
  const auto trace = test_trace();
  const auto fc_ec = run_simulation(base_config(Scheme::kFC_EC), trace);
  const auto hier = run_simulation(base_config(Scheme::kHierGD), trace);
  // FC-EC's values are clairvoyant (future frequencies), so at small caches
  // a realizable online policy trails it by a real margin; 35% bounds the
  // gap across the tested configurations.
  EXPECT_LT(hier.mean_latency(), fc_ec.mean_latency() * 1.35);
  EXPECT_GT(hier.mean_latency(), fc_ec.mean_latency() * 0.80);
}

TEST(Simulator, LargerProxyCachesReduceLatency) {
  const auto trace = test_trace();
  for (const auto scheme : {Scheme::kNC, Scheme::kSC, Scheme::kHierGD}) {
    const auto small = run_simulation(base_config(scheme, 100), trace);
    const auto large = run_simulation(base_config(scheme, 800), trace);
    EXPECT_LT(large.mean_latency(), small.mean_latency()) << to_string(scheme);
  }
}

TEST(Simulator, MoreClientsHelpHierGd) {
  const auto trace = test_trace();
  auto few = base_config(Scheme::kHierGD, 100);
  few.clients_per_cluster = 20;
  auto many = base_config(Scheme::kHierGD, 100);
  many.clients_per_cluster = 200;
  const auto m_few = run_simulation(few, trace);
  const auto m_many = run_simulation(many, trace);
  EXPECT_LT(m_many.mean_latency(), m_few.mean_latency());
}

TEST(Simulator, HierGdMessageAccountingConsistent) {
  const auto trace = test_trace();
  const auto m = run_simulation(base_config(Scheme::kHierGD), trace);
  // Every local P2P hit was a directory true positive followed by a removal.
  EXPECT_GE(m.messages.directory_true_positives,
            m.hits_local_p2p + m.hits_remote_p2p);
  // Every destage was piggybacked.
  EXPECT_GT(m.messages.destage_piggybacked, 0u);
  EXPECT_EQ(m.messages.destage_dedicated, 0u);
  // Pushes: one transfer per remote P2P hit.
  EXPECT_EQ(m.messages.push_transfers, m.hits_remote_p2p);
  EXPECT_GE(m.messages.push_requests, m.messages.push_transfers);
  // Exact directory: no false positives.
  EXPECT_EQ(m.messages.directory_false_positives, 0u);
  EXPECT_EQ(m.wasted_p2p_latency, 0.0);
  // Store receipts drive directory adds.
  EXPECT_EQ(m.messages.directory_adds, m.messages.store_receipts);
  // Pastry hops were recorded.
  EXPECT_GT(m.p2p_hops.count(), 0u);
}

TEST(Simulator, BloomDirectoryCausesBoundedWaste) {
  const auto trace = test_trace();
  auto cfg = base_config(Scheme::kHierGD);
  cfg.directory = DirectoryKind::kBloom;
  cfg.bloom_target_fpr = 0.05;
  const auto m = run_simulation(cfg, trace);
  EXPECT_GT(m.messages.directory_false_positives, 0u);
  EXPECT_GT(m.wasted_p2p_latency, 0.0);
  // Waste must stay a small fraction of total latency at 5% FPR.
  EXPECT_LT(m.wasted_p2p_latency, 0.05 * m.total_latency);

  // And the bloom run must still be broadly as effective as exact.
  auto exact_cfg = base_config(Scheme::kHierGD);
  const auto exact = run_simulation(exact_cfg, trace);
  EXPECT_LT(m.mean_latency(), exact.mean_latency() * 1.1);
}

TEST(Simulator, BloomDirectoryNeverGoesFalseNegative) {
  // Regression: self-healing a false positive must not erase() a key the
  // counting Bloom filter never inserted — shared counters would decay into
  // false negatives, silently hiding live P2P objects from the proxy.
  const auto trace = test_trace();
  auto cfg = base_config(Scheme::kHierGD);
  cfg.directory = DirectoryKind::kBloom;
  cfg.bloom_target_fpr = 0.10;  // frequent false positives
  Simulator sim(cfg, trace);
  const auto m = sim.run();
  ASSERT_GT(m.messages.directory_false_positives, 0u);  // the hazard occurred
  for (unsigned p = 0; p < cfg.num_proxies; ++p) {
    const auto* p2p = sim.p2p_of(p);
    const auto* dir = sim.directory_of(p);
    for (ObjectNum o = 0; o < trace.distinct_objects; ++o) {
      if (p2p->contains(o)) {
        ASSERT_TRUE(dir->may_contain(o)) << "false negative for object " << o;
      }
    }
  }
}

TEST(Simulator, SingleProxyRequiresNonCooperativeScheme) {
  const auto trace = test_trace();
  auto cfg = base_config(Scheme::kSC);
  cfg.num_proxies = 1;
  EXPECT_THROW(Simulator(cfg, trace), std::invalid_argument);
  cfg.scheme = Scheme::kNC;
  EXPECT_NO_THROW(Simulator(cfg, trace));
  cfg.scheme = Scheme::kNC_EC;
  EXPECT_NO_THROW(Simulator(cfg, trace));
  cfg.num_proxies = 0;
  EXPECT_THROW(Simulator(cfg, trace), std::invalid_argument);
}

TEST(Simulator, RunIsOneShot) {
  const auto trace = test_trace(5'000, 500);
  Simulator sim(base_config(Scheme::kNC), trace);
  (void)sim.run();
  EXPECT_THROW((void)sim.run(), std::logic_error);
}

TEST(Simulator, IntrospectionAccessors) {
  const auto trace = test_trace(5'000, 500);
  Simulator hier(base_config(Scheme::kHierGD), trace);
  EXPECT_NE(hier.p2p_of(0), nullptr);
  EXPECT_NE(hier.directory_of(1), nullptr);
  EXPECT_EQ(hier.p2p_of(9), nullptr);
  Simulator nc(base_config(Scheme::kNC), trace);
  EXPECT_EQ(nc.p2p_of(0), nullptr);
}

TEST(Simulator, LatencyGainMatchesHandComputation) {
  const auto trace = test_trace();
  const auto nc = run_simulation(base_config(Scheme::kNC), trace);
  const auto sc = run_simulation(base_config(Scheme::kSC), trace);
  const double gain = latency_gain(nc, sc);
  EXPECT_NEAR(gain, 1.0 - sc.mean_latency() / nc.mean_latency(), 1e-12);
  EXPECT_THROW((void)latency_gain(Metrics{}, sc), std::invalid_argument);
}

class SchemeParam : public ::testing::TestWithParam<Scheme> {};

TEST_P(SchemeParam, ProxyClusterSizesRun) {
  const auto trace = test_trace(30'000, 1'500);
  for (const unsigned proxies : {2u, 5u}) {
    auto cfg = base_config(GetParam(), 100);
    cfg.num_proxies = proxies;
    const auto m = run_simulation(cfg, trace);
    EXPECT_EQ(m.requests, trace.size());
  }
}

TEST_P(SchemeParam, HitLatencyIdentity) {
  // total latency == sum over outcomes of count * model latency (+ waste).
  const auto trace = test_trace(30'000, 1'500);
  const auto cfg = base_config(GetParam());
  const auto m = run_simulation(cfg, trace);
  const auto& L = cfg.latencies;
  const double reconstructed =
      static_cast<double>(m.hits_local_proxy) * L.request_latency(net::ServedFrom::kLocalProxy) +
      static_cast<double>(m.hits_local_p2p) * L.request_latency(net::ServedFrom::kLocalP2P) +
      static_cast<double>(m.hits_remote_proxy) *
          L.request_latency(net::ServedFrom::kRemoteProxy) +
      static_cast<double>(m.hits_remote_p2p) * L.request_latency(net::ServedFrom::kRemoteP2P) +
      static_cast<double>(m.server_fetches) *
          L.request_latency(net::ServedFrom::kOriginServer) +
      m.wasted_p2p_latency + m.p2p_hop_latency_total;
  EXPECT_NEAR(m.total_latency, reconstructed, 1e-6 * m.total_latency + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeParam, ::testing::ValuesIn(kAllSchemes),
                         [](const auto& info) {
                           std::string name{to_string(info.param)};
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace webcache::sim
