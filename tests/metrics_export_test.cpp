// End-to-end tests of the observability exports: the simulator's registry
// counters must agree with the Metrics view it returns, the
// "webcache-metrics/1" JSON documents must carry the documented fields,
// interval snapshots must land exactly every N requests, and a sweep's
// exported JSON must be byte-identical for any worker-thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>

#include "core/experiment.hpp"
#include "obs/registry.hpp"
#include "sim/simulator.hpp"
#include "workload/prowgen.hpp"

namespace {

using namespace webcache;

workload::Trace small_trace() {
  workload::ProWGenConfig wl;
  wl.total_requests = 20'000;
  wl.distinct_objects = 2'000;
  return workload::ProWGen(wl).generate();
}

sim::SimConfig small_config(sim::Scheme scheme) {
  sim::SimConfig cfg;
  cfg.scheme = scheme;
  cfg.proxy_capacity = 200;
  cfg.client_cache_capacity = 5;
  return cfg;
}

TEST(MetricsExport, RegistryCountersMatchTheMetricsView) {
  const auto trace = small_trace();
  for (const auto scheme : sim::kAllSchemes) {
    auto cfg = small_config(scheme);
    cfg.registry = std::make_shared<obs::Registry>();
    const auto metrics = sim::run_simulation(cfg, trace);
    const obs::Registry& reg = *cfg.registry;

    EXPECT_EQ(reg.counter_value("sim.requests"), metrics.requests) << sim::to_string(scheme);
    EXPECT_EQ(reg.counter_value("sim.requests"), trace.size()) << sim::to_string(scheme);
    // The view's derived totals must be reconstructible from the counters.
    const std::uint64_t hits = reg.counter_value("sim.hits_browser") +
                               reg.counter_value("sim.hits_local_proxy") +
                               reg.counter_value("sim.hits_local_p2p") +
                               reg.counter_value("sim.hits_remote_proxy") +
                               reg.counter_value("sim.hits_remote_p2p");
    EXPECT_EQ(hits, metrics.total_hits()) << sim::to_string(scheme);
    EXPECT_EQ(hits + reg.counter_value("sim.server_fetches"), metrics.requests)
        << sim::to_string(scheme);
    EXPECT_DOUBLE_EQ(reg.gauge_value("sim.total_latency"), metrics.total_latency)
        << sim::to_string(scheme);
  }
}

TEST(MetricsExport, SingleRunJsonCarriesTheDocumentedFields) {
  const auto trace = small_trace();
  auto cfg = small_config(sim::Scheme::kHierGD);
  cfg.registry = std::make_shared<obs::Registry>();
  (void)sim::run_simulation(cfg, trace);

  std::ostringstream out;
  cfg.registry->write_json(out, "export test");
  const std::string json = out.str();
  for (const char* field :
       {"\"schema\": \"webcache-metrics/1\"", "\"name\": \"export test\"", "\"metrics\":",
        "\"counters\"", "\"gauges\"", "\"stats\"", "\"histograms\"", "\"snapshots\"",
        "\"sim.requests\"", "\"sim.server_fetches\"", "\"sim.total_latency\"",
        "\"net.directory_adds\"", "\"sim.request_latency\""}) {
    EXPECT_NE(json.find(field), std::string::npos) << "missing " << field;
  }
  // Hier-GD binds per-cluster instruments under the clusterN/proxyN prefixes.
  EXPECT_NE(json.find("cluster0.pastry.messages_routed"), std::string::npos);
  EXPECT_NE(json.find("cluster0.dir."), std::string::npos);
  EXPECT_NE(json.find("proxy0.cache."), std::string::npos);
}

#ifndef WEBCACHE_OBS_NO_TRACE

TEST(MetricsExport, SnapshotsLandExactlyEveryInterval) {
  const auto trace = small_trace();
  auto cfg = small_config(sim::Scheme::kSC);
  cfg.registry = std::make_shared<obs::Registry>();
  cfg.snapshot_interval = 4'000;
  (void)sim::run_simulation(cfg, trace);

  const auto& snaps = cfg.registry->snapshots();
  ASSERT_EQ(snaps.size(), trace.size() / 4'000);
  const auto& names = cfg.registry->counter_names();
  const auto col = std::find(names.begin(), names.end(), "sim.requests") - names.begin();
  ASSERT_LT(static_cast<std::size_t>(col), names.size());
  for (std::size_t i = 0; i < snaps.size(); ++i) {
    EXPECT_EQ(snaps[i].at, (i + 1) * 4'000);
    // One tick per request -> the requests counter IS the snapshot time.
    ASSERT_LT(static_cast<std::size_t>(col), snaps[i].counters.size());
    EXPECT_EQ(snaps[i].counters[static_cast<std::size_t>(col)], snaps[i].at);
  }
}

TEST(MetricsExport, TracerRecordsOneEventPerRequest) {
  const auto trace = small_trace();
  auto cfg = small_config(sim::Scheme::kSC);
  cfg.registry = std::make_shared<obs::Registry>();
  cfg.trace_capacity = 1'000;  // much smaller than the trace: must wrap
  (void)sim::run_simulation(cfg, trace);

  const auto events = cfg.registry->trace_events();
  ASSERT_EQ(events.size(), 1'000u);
  EXPECT_EQ(cfg.registry->trace_dropped(), trace.size() - 1'000);
  // The tail of the run survives, in chronological order.
  EXPECT_EQ(events.front().time, trace.size() - 1'000);
  EXPECT_EQ(events.back().time, trace.size() - 1);
  for (const auto& e : events) {
    EXPECT_LE(e.code, 5u);  // net::ServedFrom codes 0..5
    EXPECT_GE(e.value, 0.0);
  }
}

#endif  // WEBCACHE_OBS_NO_TRACE

TEST(MetricsExport, SweepJsonIsByteIdenticalAcrossThreadCounts) {
  const auto trace = small_trace();
  core::SweepConfig cfg;
  cfg.cache_percents = {20.0, 60.0};
  cfg.schemes = {sim::Scheme::kNC, sim::Scheme::kSC, sim::Scheme::kHierGD};
  cfg.collect_observability = true;
  cfg.snapshot_interval = 5'000;

  cfg.threads = 1;
  const auto serial = core::run_sweep(trace, cfg);
  cfg.threads = 8;
  const auto parallel = core::run_sweep(trace, cfg);

  std::ostringstream a;
  std::ostringstream b;
  core::write_metrics_json(a, serial, "determinism");
  core::write_metrics_json(b, parallel, "determinism");
  ASSERT_FALSE(a.str().empty());
  EXPECT_EQ(a.str(), b.str());
}

TEST(MetricsExport, SweepJsonRequiresCollectObservability) {
  const auto trace = small_trace();
  core::SweepConfig cfg;
  cfg.cache_percents = {50.0};
  cfg.schemes = {sim::Scheme::kNC};
  const auto result = core::run_sweep(trace, cfg);
  std::ostringstream out;
  EXPECT_THROW(core::write_metrics_json(out, result, "x"), std::logic_error);
}

TEST(MetricsExport, SweepJsonHasOneRunPerSizeAndScheme) {
  const auto trace = small_trace();
  core::SweepConfig cfg;
  cfg.cache_percents = {30.0, 70.0};
  cfg.schemes = {sim::Scheme::kNC, sim::Scheme::kSC_EC};
  cfg.collect_observability = true;
  const auto result = core::run_sweep(trace, cfg);

  std::ostringstream out;
  core::write_metrics_json(out, result, "shape");
  const std::string json = out.str();
  std::size_t runs = 0;
  for (std::size_t pos = 0; (pos = json.find("\"cache_percent\":", pos)) != std::string::npos;
       ++pos) {
    ++runs;
  }
  EXPECT_EQ(runs, 4u);  // 2 sizes x 2 schemes
  EXPECT_NE(json.find("\"scheme\": \"SC-EC\""), std::string::npos);
  EXPECT_NE(json.find("\"infinite_cache_size\":"), std::string::npos);
  EXPECT_NE(json.find("\"latency_gain_percent\":"), std::string::npos);
}

}  // namespace
