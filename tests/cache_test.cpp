#include "cache/greedy_dual.hpp"
#include "cache/lfu.hpp"
#include "cache/lru.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/rng.hpp"

namespace webcache::cache {
namespace {

// --- LRU --------------------------------------------------------------------

TEST(Lru, EvictsLeastRecentlyUsed) {
  LruCache c(3);
  c.insert(1, 0);
  c.insert(2, 0);
  c.insert(3, 0);
  c.access(1, 0);  // order now 1, 3, 2 (MRU..LRU)
  const auto r = c.insert(4, 0);
  ASSERT_TRUE(r.inserted);
  EXPECT_EQ(r.evicted, std::optional<ObjectNum>(2));
  EXPECT_TRUE(c.contains(1));
  EXPECT_FALSE(c.contains(2));
}

TEST(Lru, PeekVictimIsLru) {
  LruCache c(2);
  c.insert(10, 0);
  c.insert(20, 0);
  EXPECT_EQ(c.peek_victim(), std::optional<ObjectNum>(10));
  c.access(10, 0);
  EXPECT_EQ(c.peek_victim(), std::optional<ObjectNum>(20));
}

TEST(Lru, EraseRemovesWithoutEviction) {
  LruCache c(2);
  c.insert(1, 0);
  c.insert(2, 0);
  EXPECT_TRUE(c.erase(1));
  EXPECT_FALSE(c.erase(1));
  EXPECT_EQ(c.size(), 1u);
  const auto r = c.insert(3, 0);
  EXPECT_FALSE(r.evicted.has_value());
}

TEST(Lru, ZeroCapacityDeclines) {
  LruCache c(0);
  const auto r = c.insert(1, 0);
  EXPECT_FALSE(r.inserted);
  EXPECT_EQ(c.size(), 0u);
}

TEST(Lru, CapacityNeverExceeded) {
  LruCache c(5);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto o = static_cast<ObjectNum>(rng.next_below(50));
    if (c.contains(o)) {
      c.access(o, 0);
    } else {
      c.insert(o, 0);
    }
    ASSERT_LE(c.size(), 5u);
  }
}

// --- LFU --------------------------------------------------------------------

TEST(Lfu, EvictsLeastFrequent) {
  LfuCache c(3, LfuMode::kInCache);
  c.insert(1, 0);
  c.insert(2, 0);
  c.insert(3, 0);
  c.access(1, 0);
  c.access(1, 0);
  c.access(2, 0);
  // Frequencies: 1 -> 3, 2 -> 2, 3 -> 1.
  const auto r = c.insert(4, 0);
  EXPECT_EQ(r.evicted, std::optional<ObjectNum>(3));
}

TEST(Lfu, TieBreaksByRecency) {
  LfuCache c(2, LfuMode::kInCache);
  c.insert(1, 0);
  c.insert(2, 0);
  // Both frequency 1; object 1 is older.
  const auto r = c.insert(3, 0);
  EXPECT_EQ(r.evicted, std::optional<ObjectNum>(1));
}

TEST(Lfu, InCacheModeForgetsEvictedCounts) {
  LfuCache c(2, LfuMode::kInCache);
  c.insert(1, 0);
  for (int i = 0; i < 10; ++i) c.access(1, 0);
  c.insert(2, 0);
  c.insert(3, 0);  // evicts 2 (freq 1 vs 11)
  EXPECT_FALSE(c.contains(2));
  c.erase(1);
  c.insert(1, 0);  // re-enters with frequency 1, history forgotten
  EXPECT_EQ(c.frequency(1), 1u);
}

TEST(Lfu, PerfectModeRemembersHistory) {
  LfuCache c(2, LfuMode::kPerfect);
  c.insert(1, 0);
  for (int i = 0; i < 10; ++i) c.access(1, 0);
  EXPECT_EQ(c.frequency(1), 11u);
  c.erase(1);
  EXPECT_EQ(c.frequency(1), 11u);  // history survives eviction
  c.insert(1, 0);
  EXPECT_EQ(c.frequency(1), 12u);  // re-insert counts as an access
}

TEST(Lfu, PerfectModeProtectsHistoricallyHotObjects) {
  LfuCache c(2, LfuMode::kPerfect);
  c.insert(1, 0);
  for (int i = 0; i < 5; ++i) c.access(1, 0);
  c.insert(2, 0);
  c.insert(3, 0);  // must evict 2 (freq 1), not 1 (freq 6)
  EXPECT_TRUE(c.contains(1));
  EXPECT_FALSE(c.contains(2));
  EXPECT_TRUE(c.contains(3));
}

TEST(Lfu, ContentsAndVictimConsistent) {
  LfuCache c(4, LfuMode::kInCache);
  for (ObjectNum o = 0; o < 4; ++o) c.insert(o, 0);
  c.access(0, 0);
  c.access(1, 0);
  c.access(2, 0);
  EXPECT_EQ(c.peek_victim(), std::optional<ObjectNum>(3));
  auto contents = c.contents();
  std::sort(contents.begin(), contents.end());
  EXPECT_EQ(contents, (std::vector<ObjectNum>{0, 1, 2, 3}));
}

// --- Greedy-dual ---------------------------------------------------------------

/// Textbook O(n)-per-eviction reference implementation of Young's
/// greedy-dual: explicit credit decrement on every eviction.
class ReferenceGreedyDual {
 public:
  explicit ReferenceGreedyDual(std::size_t capacity) : capacity_(capacity) {}

  bool contains(ObjectNum o) const { return credit_.contains(o); }

  void access(ObjectNum o, double cost) {
    credit_[o] = cost;
    seq_[o] = next_seq_++;  // tie-break by last credit refresh, like the fast impl
  }

  std::optional<ObjectNum> insert(ObjectNum o, double cost) {
    std::optional<ObjectNum> evicted;
    if (credit_.size() >= capacity_) {
      // Find min credit; FIFO tie-break by insertion sequence.
      auto victim = credit_.begin();
      for (auto it = credit_.begin(); it != credit_.end(); ++it) {
        if (it->second < victim->second ||
            (it->second == victim->second && seq_[it->first] < seq_[victim->first])) {
          victim = it;
        }
      }
      const double min_credit = victim->second;
      evicted = victim->first;
      seq_.erase(victim->first);
      credit_.erase(victim);
      for (auto& [obj, h] : credit_) h -= min_credit;
    }
    credit_[o] = cost;
    seq_[o] = next_seq_++;
    return evicted;
  }

  double credit(ObjectNum o) const { return credit_.at(o); }

 private:
  std::size_t capacity_;
  std::map<ObjectNum, double> credit_;
  std::map<ObjectNum, std::uint64_t> seq_;
  std::uint64_t next_seq_ = 0;
};

TEST(GreedyDual, MatchesBruteForceReferenceOnRandomTrace) {
  GreedyDualCache fast(8);
  ReferenceGreedyDual slow(8);
  Rng rng(42);
  const double costs[] = {1.0, 2.0, 5.0, 20.0};
  for (int step = 0; step < 5000; ++step) {
    const auto o = static_cast<ObjectNum>(rng.next_below(30));
    const double cost = costs[rng.next_below(4)];
    ASSERT_EQ(fast.contains(o), slow.contains(o)) << "step " << step;
    if (fast.contains(o)) {
      fast.access(o, cost);
      slow.access(o, cost);
    } else {
      const auto r = fast.insert(o, cost);
      const auto ref_evicted = slow.insert(o, cost);
      ASSERT_TRUE(r.inserted);
      ASSERT_EQ(r.evicted, ref_evicted) << "step " << step;
    }
  }
  // Deflated credits must agree too.
  for (const auto o : fast.contents()) {
    EXPECT_NEAR(fast.credit(o), slow.credit(o), 1e-9);
  }
}

TEST(GreedyDual, ExpensiveObjectsOutliveCheapOnes) {
  GreedyDualCache c(2);
  c.insert(1, 20.0);  // expensive (server fetch)
  c.insert(2, 1.4);   // cheap (P2P fetch)
  c.insert(3, 1.4);   // evicts 2 (min credit), not 1
  EXPECT_TRUE(c.contains(1));
  EXPECT_FALSE(c.contains(2));
  EXPECT_TRUE(c.contains(3));
}

TEST(GreedyDual, AgingEventuallyEvictsExpensiveIdleObjects) {
  GreedyDualCache c(2);
  c.insert(1, 20.0);
  c.insert(2, 5.0);
  // Repeated cheap insertions inflate L until the idle expensive object
  // becomes the minimum.
  bool evicted_one = false;
  for (int i = 0; i < 10 && !evicted_one; ++i) {
    const auto r = c.insert(static_cast<ObjectNum>(100 + i), 5.0);
    evicted_one = (r.evicted == std::optional<ObjectNum>(1));
  }
  EXPECT_TRUE(evicted_one);
}

TEST(GreedyDual, HitRestoresCredit) {
  GreedyDualCache c(2);
  c.insert(1, 10.0);
  c.insert(2, 2.0);
  c.access(2, 2.0);
  EXPECT_NEAR(c.credit(2), 2.0, 1e-12);
  c.insert(3, 5.0);  // evicts 2 (credit 2 < 10)
  EXPECT_FALSE(c.contains(2));
  EXPECT_NEAR(c.inflation(), 2.0, 1e-12);
  // Survivor's deflated credit dropped by the eviction minimum.
  EXPECT_NEAR(c.credit(1), 8.0, 1e-12);
}

TEST(GreedyDual, EraseAndZeroCapacity) {
  GreedyDualCache c(2);
  c.insert(1, 1.0);
  EXPECT_TRUE(c.erase(1));
  EXPECT_FALSE(c.erase(1));
  GreedyDualCache zero(0);
  EXPECT_FALSE(zero.insert(1, 1.0).inserted);
}

class CachePolicyCapacity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CachePolicyCapacity, AllPoliciesRespectCapacity) {
  const std::size_t cap = GetParam();
  LruCache lru(cap);
  LfuCache lfu(cap);
  GreedyDualCache gd(cap);
  Rng rng(cap + 17);
  for (int i = 0; i < 2000; ++i) {
    const auto o = static_cast<ObjectNum>(rng.next_below(200));
    const double cost = 1.0 + static_cast<double>(rng.next_below(20));
    for (Cache* c : {static_cast<Cache*>(&lru), static_cast<Cache*>(&lfu),
                     static_cast<Cache*>(&gd)}) {
      if (c->contains(o)) {
        c->access(o, cost);
      } else {
        c->insert(o, cost);
      }
      ASSERT_LE(c->size(), cap);
      ASSERT_EQ(c->contents().size(), c->size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, CachePolicyCapacity,
                         ::testing::Values(1u, 2u, 7u, 64u, 500u));

}  // namespace
}  // namespace webcache::cache
