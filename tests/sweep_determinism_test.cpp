// run_sweep() promises determinism regardless of thread count: the (size x
// scheme) jobs are independent and results land in preallocated slots, so a
// threads=1 run and a threads=8 run over the same trace must be *bitwise*
// identical — gains, metrics, and the shared trace analysis alike. This
// pins the contract after the shared-TraceStats refactor (trace analyzed
// once, handed to every job).
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "workload/prowgen.hpp"

namespace {

using namespace webcache;

void expect_identical(const sim::Metrics& a, const sim::Metrics& b, const char* where) {
  EXPECT_EQ(a.requests, b.requests) << where;
  EXPECT_EQ(a.hits_browser, b.hits_browser) << where;
  EXPECT_EQ(a.hits_local_proxy, b.hits_local_proxy) << where;
  EXPECT_EQ(a.hits_local_p2p, b.hits_local_p2p) << where;
  EXPECT_EQ(a.hits_remote_proxy, b.hits_remote_proxy) << where;
  EXPECT_EQ(a.hits_remote_p2p, b.hits_remote_p2p) << where;
  EXPECT_EQ(a.server_fetches, b.server_fetches) << where;
  // Bitwise: no tolerance. Threading must not change summation order.
  EXPECT_EQ(a.total_latency, b.total_latency) << where;
  EXPECT_EQ(a.wasted_p2p_latency, b.wasted_p2p_latency) << where;
  EXPECT_EQ(a.p2p_hop_latency_total, b.p2p_hop_latency_total) << where;
}

TEST(SweepDeterminism, SingleThreadAndEightThreadsBitwiseIdentical) {
  workload::ProWGenConfig wl;
  wl.total_requests = 20'000;
  wl.distinct_objects = 2'000;
  const auto trace = workload::ProWGen(wl).generate();

  core::SweepConfig cfg;  // all seven schemes
  cfg.cache_percents = {20.0, 60.0};

  cfg.threads = 1;
  const auto serial = core::run_sweep(trace, cfg);
  cfg.threads = 8;
  const auto parallel = core::run_sweep(trace, cfg);

  ASSERT_EQ(serial.cache_percents, parallel.cache_percents);
  ASSERT_EQ(serial.schemes, parallel.schemes);
  EXPECT_EQ(serial.infinite_cache_size, parallel.infinite_cache_size);
  EXPECT_EQ(serial.client_cache_capacity, parallel.client_cache_capacity);

  ASSERT_EQ(serial.gains.size(), parallel.gains.size());
  for (std::size_t i = 0; i < serial.gains.size(); ++i) {
    EXPECT_EQ(serial.gains[i], parallel.gains[i]) << "cache size row " << i;
  }

  ASSERT_EQ(serial.baseline.size(), parallel.baseline.size());
  for (std::size_t i = 0; i < serial.baseline.size(); ++i) {
    expect_identical(serial.baseline[i], parallel.baseline[i], "baseline");
  }
  ASSERT_EQ(serial.metrics.size(), parallel.metrics.size());
  for (std::size_t i = 0; i < serial.metrics.size(); ++i) {
    ASSERT_EQ(serial.metrics[i].size(), parallel.metrics[i].size());
    for (std::size_t j = 0; j < serial.metrics[i].size(); ++j) {
      expect_identical(serial.metrics[i][j], parallel.metrics[i][j], "metrics");
    }
  }
}

}  // namespace
