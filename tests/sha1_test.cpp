#include "common/sha1.hpp"

#include <gtest/gtest.h>

#include <string>

namespace webcache {
namespace {

// RFC 3174 / FIPS 180-1 test vectors.
TEST(Sha1, Rfc3174Vector1Abc) {
  EXPECT_EQ(Sha1::to_hex(Sha1::hash("abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, Rfc3174Vector2TwoBlocks) {
  EXPECT_EQ(Sha1::to_hex(Sha1::hash("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, Rfc3174Vector3MillionAs) {
  Sha1 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(Sha1::to_hex(h.digest()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, Rfc3174Vector4Repeated) {
  Sha1 h;
  for (int i = 0; i < 10; ++i) {
    h.update("0123456701234567012345670123456701234567012345670123456701234567");
  }
  EXPECT_EQ(Sha1::to_hex(h.digest()), "dea356a2cddd90c7a7ecedc5ebb563934f460452");
}

TEST(Sha1, EmptyString) {
  EXPECT_EQ(Sha1::to_hex(Sha1::hash("")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, ExactBlockBoundary) {
  // 64 bytes: padding must spill into a second block.
  const std::string s(64, 'x');
  Sha1 a;
  a.update(s);
  Sha1 b;
  for (char c : s) b.update(&c, 1);
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(Sha1, IncrementalMatchesOneShot) {
  const std::string s = "the quick brown fox jumps over the lazy dog, repeatedly";
  for (std::size_t split = 0; split <= s.size(); split += 7) {
    Sha1 h;
    h.update(s.substr(0, split));
    h.update(s.substr(split));
    EXPECT_EQ(h.digest(), Sha1::hash(s)) << "split at " << split;
  }
}

TEST(Sha1, ResetRestoresInitialState) {
  Sha1 h;
  h.update("garbage");
  (void)h.digest();
  h.reset();
  h.update("abc");
  EXPECT_EQ(Sha1::to_hex(h.digest()), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, Hash128TakesLeading128Bits) {
  // SHA-1("abc") = a9993e364706816aba3e25717850c26c 9cd0d89d
  const Uint128 id = Sha1::hash128("abc");
  EXPECT_EQ(id.to_hex(), "a9993e364706816aba3e25717850c26c");
}

TEST(Sha1, DistinctUrlsGetDistinctIds) {
  const auto a = Sha1::hash128("http://example.com/a");
  const auto b = Sha1::hash128("http://example.com/b");
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace webcache
