#include "common/uint128.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace webcache {
namespace {

TEST(Uint128, ComparisonOrdersByHighLimbFirst) {
  EXPECT_LT(Uint128(0, 5), Uint128(1, 0));
  EXPECT_LT(Uint128(1, 5), Uint128(1, 6));
  EXPECT_EQ(Uint128(3, 4), Uint128(3, 4));
  EXPECT_GT(Uint128(2, 0), Uint128(1, ~0ULL));
}

TEST(Uint128, AdditionCarriesAcrossLimbs) {
  const Uint128 a(0, ~0ULL);
  const Uint128 b(0, 1);
  EXPECT_EQ(a + b, Uint128(1, 0));
}

TEST(Uint128, SubtractionBorrowsAcrossLimbs) {
  EXPECT_EQ(Uint128(1, 0) - Uint128(0, 1), Uint128(0, ~0ULL));
  EXPECT_EQ(Uint128(5, 7) - Uint128(5, 7), Uint128(0, 0));
}

TEST(Uint128, SubtractionWrapsModulo2To128) {
  // 0 - 1 == 2^128 - 1: the ring arithmetic Pastry distances rely on.
  const Uint128 wrapped = Uint128(0, 0) - Uint128(0, 1);
  EXPECT_EQ(wrapped, Uint128(~0ULL, ~0ULL));
}

TEST(Uint128, ShiftsHandleAllRanges) {
  const Uint128 one(0, 1);
  EXPECT_EQ(one << 0, one);
  EXPECT_EQ(one << 64, Uint128(1, 0));
  EXPECT_EQ(one << 127, Uint128(1ULL << 63, 0));
  EXPECT_EQ(one << 128, Uint128(0, 0));
  const Uint128 top(1ULL << 63, 0);
  EXPECT_EQ(top >> 127, one);
  EXPECT_EQ(top >> 64, Uint128(0, 1ULL << 63));
  EXPECT_EQ(top >> 128, Uint128(0, 0));
  EXPECT_EQ(Uint128(3, 5) >> 0, Uint128(3, 5));
}

TEST(Uint128, ShiftAcrossLimbBoundaryKeepsBits) {
  const Uint128 v(0, 0xFF00000000000000ULL);
  EXPECT_EQ(v << 8, Uint128(0xFF, 0));
  EXPECT_EQ(Uint128(0xFF, 0) >> 8, v);
}

TEST(Uint128, DigitExtractionBase16) {
  // Hex digits, most significant first: value 0xABCD... at the top.
  const Uint128 v = Uint128::from_hex("abcdef0123456789abcdef0123456789");
  EXPECT_EQ(v.digit(0, 4), 0xAu);
  EXPECT_EQ(v.digit(1, 4), 0xBu);
  EXPECT_EQ(v.digit(15, 4), 0x9u);
  EXPECT_EQ(v.digit(16, 4), 0xAu);
  EXPECT_EQ(v.digit(31, 4), 0x9u);
}

TEST(Uint128, DigitExtractionOtherBases) {
  const Uint128 v(0x8000000000000000ULL, 0);  // top bit set
  EXPECT_EQ(v.digit(0, 1), 1u);
  EXPECT_EQ(v.digit(1, 1), 0u);
  EXPECT_EQ(v.digit(0, 2), 2u);  // binary 10
  EXPECT_EQ(v.digit(0, 8), 0x80u);
}

TEST(Uint128, SharedPrefixLength) {
  const Uint128 a = Uint128::from_hex("abcdef0123456789abcdef0123456789");
  const Uint128 b = Uint128::from_hex("abcdee0123456789abcdef0123456789");
  EXPECT_EQ(a.shared_prefix_length(b, 4), 5u);  // abcde shared, f vs e differ
  EXPECT_EQ(a.shared_prefix_length(a, 4), 32u);
  const Uint128 c = Uint128::from_hex("bbcdef0123456789abcdef0123456789");
  EXPECT_EQ(a.shared_prefix_length(c, 4), 0u);
}

TEST(Uint128, RingDistanceTakesShorterArc) {
  const Uint128 a(0, 10);
  const Uint128 b(0, 20);
  EXPECT_EQ(Uint128::ring_distance(a, b), Uint128(0, 10));
  // Across the wrap point: distance between 1 and 2^128-1 is 2.
  const Uint128 top(~0ULL, ~0ULL);
  EXPECT_EQ(Uint128::ring_distance(Uint128(0, 1), top), Uint128(0, 2));
}

TEST(Uint128, ClockwiseDistanceWraps) {
  EXPECT_EQ(Uint128::clockwise_distance(Uint128(0, 10), Uint128(0, 3)),
            Uint128(0, 3) - Uint128(0, 10));
}

TEST(Uint128, HexRoundTrip) {
  const Uint128 v(0x0123456789abcdefULL, 0xfedcba9876543210ULL);
  EXPECT_EQ(v.to_hex(), "0123456789abcdeffedcba9876543210");
  EXPECT_EQ(Uint128::from_hex(v.to_hex()), v);
  EXPECT_EQ(Uint128::from_hex("ff"), Uint128(0, 255));
}

TEST(Uint128, FromHexRejectsBadInput) {
  EXPECT_THROW((void)Uint128::from_hex(""), std::invalid_argument);
  EXPECT_THROW((void)Uint128::from_hex(std::string(33, 'a')), std::invalid_argument);
  EXPECT_THROW((void)Uint128::from_hex("xyz"), std::invalid_argument);
}

TEST(Uint128, FromBytesBigEndian) {
  std::array<std::uint8_t, 16> bytes{};
  bytes[0] = 0x12;
  bytes[15] = 0x34;
  const Uint128 v = Uint128::from_bytes(bytes);
  EXPECT_EQ(v.hi, 0x1200000000000000ULL);
  EXPECT_EQ(v.lo, 0x34ULL);
}

TEST(Uint128, HashSpreadsValues) {
  Uint128Hash h;
  std::unordered_set<std::size_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    seen.insert(h(Uint128(0, i)));
    seen.insert(h(Uint128(i, 0)));
  }
  // With a decent mix, essentially no collisions are expected here.
  EXPECT_GT(seen.size(), 1990u);
}

TEST(Uint128, BitwiseOps) {
  const Uint128 a(0xF0F0, 0x0F0F);
  const Uint128 b(0x0FF0, 0xFF00);
  EXPECT_EQ(a & b, Uint128(0x00F0, 0x0F00));
  EXPECT_EQ(a | b, Uint128(0xFFF0, 0xFF0F));
  EXPECT_EQ(a ^ b, Uint128(0xFF00, 0xF00F));
}

}  // namespace
}  // namespace webcache
