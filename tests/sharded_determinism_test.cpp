// Determinism contract of the intra-run sharded engine (SimConfig::
// sim_shards): for every scheme, every export must be byte-identical for ANY
// shard count >= 1 — with and without churn/loss, replaying in memory or
// streamed from a compiled .wct with a small replay chunk — and a sweep's
// write_metrics_json must not depend on shards x threads. Unsupported
// configurations (FC/FC-EC, snapshots, tracer, audit hooks, single proxy)
// must fall back to the sequential engine bit-exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "fault/churn_schedule.hpp"
#include "obs/registry.hpp"
#include "sim/simulator.hpp"
#include "workload/prowgen.hpp"
#include "workload/wctrace.hpp"

namespace {

using namespace webcache;

workload::Trace shard_trace() {
  workload::ProWGenConfig wl;
  wl.total_requests = 30'000;
  wl.distinct_objects = 3'000;
  wl.seed = 2003;
  return workload::ProWGen(wl).generate();
}

sim::SimConfig shard_config(sim::Scheme scheme) {
  sim::SimConfig cfg;
  cfg.scheme = scheme;
  cfg.num_proxies = 8;
  cfg.proxy_capacity = 150;
  cfg.clients_per_cluster = 20;
  cfg.client_cache_capacity = 4;
  cfg.shard_epoch = 1024;  // several epochs over 30k requests
  return cfg;
}

/// Runs `cfg` over `trace` and returns the full registry JSON export.
std::string export_of(sim::SimConfig cfg, const workload::Trace& trace) {
  cfg.registry = std::make_shared<obs::Registry>();
  (void)sim::run_simulation(cfg, trace);
  std::ostringstream out;
  cfg.registry->write_json(out, "sharded_determinism");
  return out.str();
}

std::string export_of(sim::SimConfig cfg, const workload::TraceSource& source) {
  cfg.registry = std::make_shared<obs::Registry>();
  sim::Simulator simulator(cfg, source);
  (void)simulator.run();
  std::ostringstream out;
  cfg.registry->write_json(out, "sharded_determinism");
  return out.str();
}

std::vector<sim::Scheme> all_schemes_plus_squirrel() {
  std::vector<sim::Scheme> schemes(sim::kAllSchemes.begin(), sim::kAllSchemes.end());
  schemes.push_back(sim::Scheme::kSquirrel);
  return schemes;
}

TEST(ShardedDeterminism, ExportsAreByteIdenticalForAnyShardCount) {
  const auto trace = shard_trace();
  for (const auto scheme : all_schemes_plus_squirrel()) {
    auto cfg = shard_config(scheme);
    cfg.sim_shards = 1;
    const std::string one = export_of(cfg, trace);
    for (const unsigned shards : {2U, 8U, 13U}) {
      cfg.sim_shards = shards;
      EXPECT_EQ(one, export_of(cfg, trace))
          << sim::to_string(scheme) << " shards=" << shards;
    }
  }
}

TEST(ShardedDeterminism, ChurnAndLossRunsAreShardCountIndependent) {
  const auto trace = shard_trace();
  for (const auto scheme : {sim::Scheme::kHierGD, sim::Scheme::kSquirrel}) {
    auto cfg = shard_config(scheme);
    fault::ChurnSpec spec;
    spec.start = 5'000;
    spec.crashes = 4;
    spec.recover_after = 4'000;
    spec.joins = 2;
    spec.repair_every = 7'000;
    cfg.churn_events = fault::make_schedule(spec, trace.size(), cfg.num_proxies,
                                            cfg.clients_per_cluster);
    cfg.p2p_loss_rate = 0.02;
    cfg.sim_shards = 1;
    const std::string one = export_of(cfg, trace);
    for (const unsigned shards : {2U, 8U}) {
      cfg.sim_shards = shards;
      EXPECT_EQ(one, export_of(cfg, trace))
          << sim::to_string(scheme) << " shards=" << shards;
    }
  }
}

TEST(ShardedDeterminism, StreamedWctReplayMatchesInMemoryAtEveryShardCount) {
  const auto trace = shard_trace();
  const std::string path = ::testing::TempDir() + "sharded_determinism.wct";
  workload::write_wctrace_file(path, trace);
  const workload::MmapTraceSource source(path);

  for (const auto scheme : {sim::Scheme::kSC, sim::Scheme::kHierGD}) {
    auto cfg = shard_config(scheme);
    cfg.sim_shards = 1;
    const std::string reference = export_of(cfg, trace);
    // A replay chunk far smaller than the epoch forces many windows per
    // epoch; chunking must never leak into results.
    cfg.replay_chunk = 512;
    for (const unsigned shards : {1U, 8U}) {
      cfg.sim_shards = shards;
      EXPECT_EQ(reference, export_of(cfg, source))
          << sim::to_string(scheme) << " shards=" << shards;
    }
  }
  std::filesystem::remove(path);
}

TEST(ShardedDeterminism, UnsupportedConfigsFallBackToTheSequentialEngine) {
  const auto trace = shard_trace();

  // FC's clairvoyant coordinator is inherently global.
  auto fc = shard_config(sim::Scheme::kFC);
  EXPECT_FALSE(sim::Simulator::sharding_supported(fc));
  const std::string fc_seq = export_of(fc, trace);
  fc.sim_shards = 8;
  EXPECT_EQ(fc_seq, export_of(fc, trace));

  // Interval snapshots tick per request in trace order.
  auto snap = shard_config(sim::Scheme::kSC);
  snap.snapshot_interval = 1'000;
  EXPECT_FALSE(sim::Simulator::sharding_supported(snap));

  // A single proxy has no clusters to partition.
  auto solo = shard_config(sim::Scheme::kHierGD);
  solo.num_proxies = 1;
  EXPECT_FALSE(sim::Simulator::sharding_supported(solo));

  // The supported shapes report so.
  EXPECT_TRUE(sim::Simulator::sharding_supported(shard_config(sim::Scheme::kNC)));
  EXPECT_TRUE(sim::Simulator::sharding_supported(shard_config(sim::Scheme::kHierGD)));
  EXPECT_TRUE(sim::Simulator::sharding_supported(shard_config(sim::Scheme::kSquirrel)));
}

TEST(ShardedDeterminism, ShardedRunStillServesEveryRequest) {
  const auto trace = shard_trace();
  for (const auto scheme : all_schemes_plus_squirrel()) {
    auto cfg = shard_config(scheme);
    cfg.sim_shards = 8;
    cfg.registry = std::make_shared<obs::Registry>();
    const auto metrics = sim::run_simulation(cfg, trace);
    EXPECT_EQ(metrics.requests, trace.size()) << sim::to_string(scheme);
    EXPECT_EQ(metrics.total_hits() + metrics.server_fetches, metrics.requests)
        << sim::to_string(scheme);
    EXPECT_EQ(cfg.registry->counter_value("sim.requests"), trace.size())
        << sim::to_string(scheme);
  }
}

TEST(ShardedDeterminism, SweepMetricsExportIsShardAndThreadCountIndependent) {
  const auto trace = shard_trace();
  core::SweepConfig sweep;
  sweep.schemes = {sim::Scheme::kSC, sim::Scheme::kHierGD};
  sweep.cache_percents = {1.0, 5.0};
  sweep.base = shard_config(sim::Scheme::kNC);
  sweep.collect_observability = true;

  std::string reference;
  for (const unsigned shards : {1U, 8U}) {
    for (const unsigned threads : {1U, 8U}) {
      sweep.base.sim_shards = shards;
      sweep.threads = threads;
      const auto result = core::run_sweep(trace, sweep);
      std::ostringstream out;
      core::write_metrics_json(out, result, "sharded_sweep");
      if (reference.empty()) {
        reference = out.str();
      } else {
        EXPECT_EQ(reference, out.str()) << "shards=" << shards << " threads=" << threads;
      }
    }
  }
}

}  // namespace
