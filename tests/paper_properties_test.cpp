// The paper's experimental findings, encoded as properties. Each test pins
// the mechanism behind one figure, on reduced workloads, so a regression in
// any substrate that would silently change an experimental conclusion fails
// CI rather than just bending a curve.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "workload/prowgen.hpp"

namespace webcache {
namespace {

workload::Trace make_trace(double alpha, double stack_fraction,
                           std::uint64_t requests = 100'000, std::uint64_t seed = 303) {
  workload::ProWGenConfig cfg;
  cfg.total_requests = requests;
  cfg.distinct_objects = 3'000;
  cfg.zipf_alpha = alpha;
  cfg.lru_stack_fraction = stack_fraction;
  // Full recency bias: these properties probe the locality *mechanisms*,
  // which need the knob's full dynamic range (the shipped default is milder).
  cfg.recency_bias = 0.5;
  cfg.seed = seed;
  return workload::ProWGen(cfg).generate();
}

double gain_at(const workload::Trace& trace, sim::Scheme scheme, double cache_percent,
               const net::LatencyModel& latencies = net::LatencyModel::from_ratios(),
               ClientNum clients = 100, unsigned proxies = 2) {
  const auto infinite = core::cluster_infinite_cache_size(trace, proxies);
  sim::SimConfig cfg;
  cfg.scheme = scheme;
  cfg.num_proxies = proxies;
  cfg.clients_per_cluster = clients;
  cfg.latencies = latencies;
  cfg.proxy_capacity = std::max<std::size_t>(
      1, static_cast<std::size_t>(cache_percent / 100.0 * static_cast<double>(infinite)));
  cfg.client_cache_capacity = std::max<std::size_t>(1, infinite / 1000);
  return core::run_single(trace, cfg).gain_percent;
}

// Figure 3 mechanism: smaller alpha = less skew = larger working set =
// cooperation matters more.
TEST(PaperProperties, Fig3_SmallerAlphaYieldsLargerGains) {
  const auto flat = make_trace(0.5, 0.2);
  const auto skewed = make_trace(1.0, 0.2);
  for (const auto scheme : {sim::Scheme::kFC, sim::Scheme::kFC_EC, sim::Scheme::kHierGD}) {
    const double g_flat = gain_at(flat, scheme, 30);
    const double g_skew = gain_at(skewed, scheme, 30);
    EXPECT_GT(g_flat, g_skew) << sim::to_string(scheme);
  }
}

// Figure 4 mechanism: a larger LRU stack strengthens temporal locality,
// which helps the isolated NC cache "significantly" (the paper's words),
// shrinking the relative gain of the frequency-coordinated schemes.
TEST(PaperProperties, Fig4_StrongerLocalityHelpsNcAndShrinksCoordinatedGains) {
  const auto weak = make_trace(0.7, 0.05);
  const auto strong = make_trace(0.7, 0.6);

  // NC itself gets better in absolute terms (requires the LFU-DA baseline;
  // pure LFU is provably locality-blind under a fixed popularity marginal).
  const auto infinite_weak = core::cluster_infinite_cache_size(weak, 2);
  const auto infinite_strong = core::cluster_infinite_cache_size(strong, 2);
  sim::SimConfig nc;
  nc.scheme = sim::Scheme::kNC;
  nc.proxy_capacity = std::max<std::size_t>(1, infinite_weak * 30 / 100);
  const auto m_weak = sim::run_simulation(nc, weak);
  nc.proxy_capacity = std::max<std::size_t>(1, infinite_strong * 30 / 100);
  const auto m_strong = sim::run_simulation(nc, strong);
  EXPECT_LT(m_strong.mean_latency(), m_weak.mean_latency() * 0.95);

  // The frequency-coordinated schemes' relative gain shrinks, as in the
  // paper's FC and FC-EC panels.
  for (const auto scheme : {sim::Scheme::kFC, sim::Scheme::kFC_EC}) {
    EXPECT_GT(gain_at(weak, scheme, 30), gain_at(strong, scheme, 30))
        << sim::to_string(scheme);
  }

  // KNOWN DIVERGENCE (see EXPERIMENTS.md): the paper reports the same
  // shrinking trend for Hier-GD; in this reproduction Hier-GD's gain GROWS
  // with locality, because greedy-dual at both tiers exploits recency that
  // the paper's coupled popularity/locality workload handed to NC instead.
  // Pin the current direction so an unnoticed flip forces a docs update.
  EXPECT_GT(gain_at(strong, sim::Scheme::kHierGD, 30),
            gain_at(weak, sim::Scheme::kHierGD, 30));
}

// Figure 5(a) mechanism: cheaper proxy-to-proxy links (larger Ts/Tc) make
// cooperation more valuable.
TEST(PaperProperties, Fig5a_LargerTsOverTcYieldsLargerGains) {
  const auto trace = make_trace(0.7, 0.2);
  double previous = -1.0;
  for (const double ratio : {2.0, 5.0, 10.0}) {
    const double g = gain_at(trace, sim::Scheme::kHierGD, 20,
                             net::LatencyModel::from_ratios(ratio));
    EXPECT_GT(g, previous) << "Ts/Tc=" << ratio;
    previous = g;
  }
}

// Figure 5(b) mechanism: a relatively faster client-proxy hop (larger
// Ts/Tl) raises the gain of every cached outcome.
TEST(PaperProperties, Fig5b_LargerTsOverTlYieldsLargerGains) {
  const auto trace = make_trace(0.7, 0.2);
  double previous = -1.0;
  for (const double ratio : {5.0, 10.0, 20.0}) {
    const double g = gain_at(trace, sim::Scheme::kHierGD, 20,
                             net::LatencyModel::from_ratios(10.0, ratio));
    EXPECT_GT(g, previous) << "Ts/Tl=" << ratio;
    previous = g;
  }
}

// Figure 5(c) mechanism: more client caches = a larger P2P tier = more gain,
// with diminishing absolute latency, monotone across the paper's sweep.
TEST(PaperProperties, Fig5c_LargerClientClustersYieldLargerGains) {
  const auto trace = make_trace(0.7, 0.2);
  double previous = -1.0;
  for (const ClientNum clients : {50u, 150u, 400u}) {
    const double g = gain_at(trace, sim::Scheme::kHierGD, 15,
                             net::LatencyModel::from_ratios(), clients);
    EXPECT_GT(g, previous) << "clients=" << clients;
    previous = g;
  }
}

// Figure 5(d) mechanism: more cooperating proxies = more places to find an
// object short of the origin server.
TEST(PaperProperties, Fig5d_LargerProxyClustersYieldLargerGains) {
  const auto trace = make_trace(0.7, 0.2, 150'000);
  const double g2 = gain_at(trace, sim::Scheme::kHierGD, 15,
                            net::LatencyModel::from_ratios(), 100, 2);
  const double g5 = gain_at(trace, sim::Scheme::kHierGD, 15,
                            net::LatencyModel::from_ratios(), 100, 5);
  EXPECT_GT(g5, g2);
}

// Figure 2 mechanism (the headline): the advantage of exploiting client
// caches over the matching base scheme is largest when proxy caches are
// small relative to the object universe.
TEST(PaperProperties, Fig2_ClientCacheAdvantageShrinksWithProxySize) {
  const auto trace = make_trace(0.7, 0.2);
  const double delta_small =
      gain_at(trace, sim::Scheme::kSC_EC, 10) - gain_at(trace, sim::Scheme::kSC, 10);
  const double delta_large =
      gain_at(trace, sim::Scheme::kSC_EC, 90) - gain_at(trace, sim::Scheme::kSC, 90);
  EXPECT_GT(delta_small, delta_large);
  EXPECT_GT(delta_small, 0.0);
}

}  // namespace
}  // namespace webcache
