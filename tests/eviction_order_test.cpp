// Golden-sequence tests for the heap-backed caches.
//
// LfuCache, GreedyDualCache and CostBenefitCache historically kept their
// victim order in a std::set<std::tuple<...>>; they now share the
// lazy-deletion EvictionHeap. These tests rebuild the original std::set
// implementations locally and drive both through identical recorded traces
// (~10k pseudo-random operations), asserting that every insert returns the
// exact same victim, that peek_victim() agrees after every operation, and
// that the final contents match. Any divergence in tie-breaking (equal LFU-DA
// keys after aging, equal greedy-dual credits, equal cost-benefit values
// after clairvoyant decay to zero) would surface as a wrong victim.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <tuple>
#include <vector>

#include "cache/cost_benefit.hpp"
#include "cache/greedy_dual.hpp"
#include "cache/lfu.hpp"

namespace {

using namespace webcache;
using cache::InsertResult;

// Deterministic 64-bit LCG (MMIX constants) so the recorded trace is stable
// across platforms and standard-library versions.
class TraceRng {
 public:
  explicit TraceRng(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_ >> 16;
  }
  std::uint64_t below(std::uint64_t n) { return next() % n; }

 private:
  std::uint64_t state_;
};

std::vector<ObjectNum> sorted(std::vector<ObjectNum> v) {
  std::sort(v.begin(), v.end());
  return v;
}

// --- reference LFU: the historical std::set implementation ------------------

class RefLfu {
 public:
  RefLfu(std::size_t capacity, cache::LfuMode mode) : capacity_(capacity), mode_(mode) {}

  bool contains(ObjectNum o) const { return entries_.contains(o); }

  void access(ObjectNum o) {
    auto& e = entries_.at(o);
    order_.erase({e.key, e.last_seq, o});
    ++e.freq;
    e.key = mode_ == cache::LfuMode::kDynamicAging ? e.freq + aging_floor_ : e.freq;
    e.last_seq = ++seq_;
    order_.insert({e.key, e.last_seq, o});
    if (mode_ == cache::LfuMode::kPerfect) ++history_[o];
  }

  InsertResult insert(ObjectNum o) {
    std::uint64_t start_freq = 1;
    if (mode_ == cache::LfuMode::kPerfect) start_freq = ++history_[o];
    InsertResult result;
    result.inserted = true;
    if (entries_.size() >= capacity_) {
      const auto [vkey, vseq, victim] = *order_.begin();
      if (mode_ == cache::LfuMode::kDynamicAging) aging_floor_ = vkey;
      order_.erase(order_.begin());
      entries_.erase(victim);
      result.evicted = victim;
    }
    const Entry e{start_freq,
                  mode_ == cache::LfuMode::kDynamicAging ? start_freq + aging_floor_
                                                         : start_freq,
                  ++seq_};
    entries_.emplace(o, e);
    order_.insert({e.key, e.last_seq, o});
    return result;
  }

  bool erase(ObjectNum o) {
    const auto it = entries_.find(o);
    if (it == entries_.end()) return false;
    order_.erase({it->second.key, it->second.last_seq, o});
    entries_.erase(it);
    return true;
  }

  std::optional<ObjectNum> peek_victim() const {
    if (order_.empty()) return std::nullopt;
    return std::get<2>(*order_.begin());
  }

  std::vector<ObjectNum> contents() const {
    std::vector<ObjectNum> out;
    for (const auto& [o, _] : entries_) out.push_back(o);
    return out;
  }

 private:
  struct Entry {
    std::uint64_t freq;
    std::uint64_t key;
    std::uint64_t last_seq;
  };
  std::size_t capacity_;
  cache::LfuMode mode_;
  std::uint64_t seq_ = 0;
  std::uint64_t aging_floor_ = 0;
  std::set<std::tuple<std::uint64_t, std::uint64_t, ObjectNum>> order_;
  std::map<ObjectNum, Entry> entries_;
  std::map<ObjectNum, std::uint64_t> history_;
};

void drive_lfu(cache::LfuMode mode) {
  constexpr std::size_t kCapacity = 64;
  constexpr ObjectNum kObjects = 400;  // ~6x capacity: constant eviction churn
  constexpr int kSteps = 10'000;

  cache::LfuCache real(kCapacity, mode);
  RefLfu ref(kCapacity, mode);
  TraceRng rng(2003);

  for (int step = 0; step < kSteps; ++step) {
    // Skewed object choice (square of a uniform draw) so some objects grow
    // large frequencies while a long tail of one-timers churns the victim
    // end of the order — the regime where tie-breaks matter.
    const auto u = rng.below(kObjects);
    const ObjectNum o = static_cast<ObjectNum>((u * u) / kObjects);

    if (step % 97 == 96) {
      // Exercise lazy deletion: erase a (possibly absent) random object.
      const auto target = static_cast<ObjectNum>(rng.below(kObjects));
      EXPECT_EQ(real.erase(target), ref.erase(target)) << "step " << step;
    } else if (real.contains(o)) {
      ASSERT_TRUE(ref.contains(o)) << "step " << step;
      real.access(o, 1.0);
      ref.access(o);
    } else {
      ASSERT_FALSE(ref.contains(o)) << "step " << step;
      const InsertResult got = real.insert(o, 1.0);
      const InsertResult want = ref.insert(o);
      ASSERT_EQ(got.inserted, want.inserted) << "step " << step;
      ASSERT_EQ(got.evicted, want.evicted) << "step " << step;
    }
    ASSERT_EQ(real.peek_victim(), ref.peek_victim()) << "step " << step;
  }
  EXPECT_EQ(sorted(real.contents()), sorted(ref.contents()));
}

TEST(EvictionOrder, LfuDynamicAgingMatchesSetReference) {
  drive_lfu(cache::LfuMode::kDynamicAging);
}

TEST(EvictionOrder, LfuInCacheMatchesSetReference) { drive_lfu(cache::LfuMode::kInCache); }

TEST(EvictionOrder, LfuPerfectMatchesSetReference) { drive_lfu(cache::LfuMode::kPerfect); }

// LFU-DA aging-floor ties, pinned explicitly: after the floor rises, a burst
// of fresh single-access inserts all carry key = 1 + floor, and the victim
// among them must be the least recently inserted (smallest seq).
TEST(EvictionOrder, LfuDaAgingFloorTieBreaksBySeq) {
  constexpr std::size_t kCapacity = 8;
  cache::LfuCache real(kCapacity, cache::LfuMode::kDynamicAging);
  RefLfu ref(kCapacity, cache::LfuMode::kDynamicAging);

  // Warm a hot set so evictions raise the floor above 1.
  for (ObjectNum o = 0; o < kCapacity; ++o) {
    real.insert(o, 1.0);
    ref.insert(o);
    for (int hit = 0; hit < 5; ++hit) {
      real.access(o, 1.0);
      ref.access(o);
    }
  }
  // 32 fresh one-timers: every insert evicts, the floor ratchets, and all
  // newcomers tie on key = 1 + floor until the floor moves again.
  for (ObjectNum o = 100; o < 132; ++o) {
    const InsertResult got = real.insert(o, 1.0);
    const InsertResult want = ref.insert(o);
    ASSERT_EQ(got.evicted, want.evicted) << "object " << o;
    ASSERT_EQ(real.peek_victim(), ref.peek_victim()) << "object " << o;
    ASSERT_EQ(real.aging_floor(), 6u + (o - 100) / kCapacity) << "object " << o;
  }
}

// --- reference greedy-dual: the historical std::set implementation -----------

class RefGreedyDual {
 public:
  explicit RefGreedyDual(std::size_t capacity) : capacity_(capacity) {}

  bool contains(ObjectNum o) const { return entries_.contains(o); }

  void access(ObjectNum o, double cost) {
    auto& e = entries_.at(o);
    order_.erase({e.inflated_credit, e.seq, o});
    e.inflated_credit = cost + inflation_;
    e.seq = ++seq_;
    order_.insert({e.inflated_credit, e.seq, o});
  }

  InsertResult insert(ObjectNum o, double cost) {
    InsertResult result;
    result.inserted = true;
    if (entries_.size() >= capacity_) {
      const auto [vcredit, vseq, victim] = *order_.begin();
      inflation_ = vcredit;
      order_.erase(order_.begin());
      entries_.erase(victim);
      result.evicted = victim;
    }
    const Entry e{cost + inflation_, ++seq_};
    entries_.emplace(o, e);
    order_.insert({e.inflated_credit, e.seq, o});
    return result;
  }

  bool erase(ObjectNum o) {
    const auto it = entries_.find(o);
    if (it == entries_.end()) return false;
    order_.erase({it->second.inflated_credit, it->second.seq, o});
    entries_.erase(it);
    return true;
  }

  std::optional<ObjectNum> peek_victim() const {
    if (order_.empty()) return std::nullopt;
    return std::get<2>(*order_.begin());
  }

  std::vector<ObjectNum> contents() const {
    std::vector<ObjectNum> out;
    for (const auto& [o, _] : entries_) out.push_back(o);
    return out;
  }

  double inflation() const { return inflation_; }

 private:
  struct Entry {
    double inflated_credit;
    std::uint64_t seq;
  };
  std::size_t capacity_;
  double inflation_ = 0.0;
  std::uint64_t seq_ = 0;
  std::set<std::tuple<double, std::uint64_t, ObjectNum>> order_;
  std::map<ObjectNum, Entry> entries_;
};

TEST(EvictionOrder, GreedyDualMatchesSetReference) {
  constexpr std::size_t kCapacity = 64;
  constexpr ObjectNum kObjects = 400;
  constexpr int kSteps = 10'000;
  // A small cost alphabet (the simulator's Tc / Ts / Ts + (P-1)(Ts - Tc)
  // magnitudes) produces many exactly-equal credits, so the seq tie-break is
  // load-bearing throughout the run.
  constexpr double kCosts[] = {5.0, 25.0, 45.0, 25.0};

  cache::GreedyDualCache real(kCapacity);
  RefGreedyDual ref(kCapacity);
  TraceRng rng(1998);

  for (int step = 0; step < kSteps; ++step) {
    const auto u = rng.below(kObjects);
    const ObjectNum o = static_cast<ObjectNum>((u * u) / kObjects);
    const double cost = kCosts[o % 4];

    if (step % 97 == 96) {
      const auto target = static_cast<ObjectNum>(rng.below(kObjects));
      EXPECT_EQ(real.erase(target), ref.erase(target)) << "step " << step;
    } else if (real.contains(o)) {
      ASSERT_TRUE(ref.contains(o)) << "step " << step;
      real.access(o, cost);
      ref.access(o, cost);
    } else {
      ASSERT_FALSE(ref.contains(o)) << "step " << step;
      const InsertResult got = real.insert(o, cost);
      const InsertResult want = ref.insert(o, cost);
      ASSERT_EQ(got.inserted, want.inserted) << "step " << step;
      ASSERT_EQ(got.evicted, want.evicted) << "step " << step;
    }
    ASSERT_EQ(real.peek_victim(), ref.peek_victim()) << "step " << step;
    ASSERT_EQ(real.inflation(), ref.inflation()) << "step " << step;
  }
  EXPECT_EQ(sorted(real.contents()), sorted(ref.contents()));
}

// --- reference cost-benefit cluster: coordinator + per-cache std::set --------
//
// CostBenefitCache is inseparable from its coordinator (replica-count
// repricing, clairvoyant frequency decay), so the reference reimplements the
// whole cluster: member caches are indices, victim orders are the historical
// std::set<tuple<value, seq, object>>.

class RefCbCluster {
 public:
  RefCbCluster(std::vector<double> per_proxy_frequency, unsigned cluster_size,
               double server_latency, double proxy_latency, std::size_t capacity)
      : frequency_(std::move(per_proxy_frequency)),
        cluster_size_(cluster_size),
        server_latency_(server_latency),
        proxy_latency_(proxy_latency),
        caches_(cluster_size) {
    for (auto& c : caches_) c.capacity = capacity;
  }

  bool contains(unsigned idx, ObjectNum o) const {
    return caches_[idx].entries.contains(o);
  }

  void consume(ObjectNum o) {
    if (o >= frequency_.size()) return;
    frequency_[o] =
        std::max(0.0, frequency_[o] - 1.0 / static_cast<double>(cluster_size_));
    const auto it = holders_.find(o);
    if (it == holders_.end()) return;
    const double value = copy_value(o, static_cast<unsigned>(it->second.size()));
    for (const unsigned holder : it->second) reprice(holder, o, value);
  }

  InsertResult insert(unsigned idx, ObjectNum o) {
    auto& c = caches_[idx];
    const auto hit = holders_.find(o);
    const unsigned replicas_after =
        (hit == holders_.end() ? 0 : static_cast<unsigned>(hit->second.size())) + 1;
    const double new_value = copy_value(o, replicas_after);

    InsertResult result;
    if (c.entries.size() >= c.capacity) {
      const auto [vvalue, vseq, victim] = *c.order.begin();
      if (new_value <= vvalue) return result;
      c.order.erase(c.order.begin());
      c.entries.erase(victim);
      result.evicted = victim;
      on_copy_removed(victim, idx);
    }
    result.inserted = true;
    const Entry e{new_value, ++c.seq};
    c.entries.emplace(o, e);
    c.order.insert({e.value, e.seq, o});
    on_copy_added(o, idx);
    return result;
  }

  bool erase(unsigned idx, ObjectNum o) {
    auto& c = caches_[idx];
    const auto it = c.entries.find(o);
    if (it == c.entries.end()) return false;
    c.order.erase({it->second.value, it->second.seq, o});
    c.entries.erase(it);
    on_copy_removed(o, idx);
    return true;
  }

  std::optional<ObjectNum> peek_victim(unsigned idx) const {
    const auto& c = caches_[idx];
    if (c.order.empty()) return std::nullopt;
    return std::get<2>(*c.order.begin());
  }

  double value_of(unsigned idx, ObjectNum o) const {
    const auto it = caches_[idx].entries.find(o);
    return it == caches_[idx].entries.end() ? 0.0 : it->second.value;
  }

  std::vector<ObjectNum> contents(unsigned idx) const {
    std::vector<ObjectNum> out;
    for (const auto& [o, _] : caches_[idx].entries) out.push_back(o);
    return out;
  }

 private:
  struct Entry {
    double value;
    std::uint64_t seq;
  };
  struct Cache {
    std::size_t capacity = 0;
    std::uint64_t seq = 0;
    std::set<std::tuple<double, std::uint64_t, ObjectNum>> order;
    std::map<ObjectNum, Entry> entries;
  };

  double copy_value(ObjectNum o, unsigned replicas) const {
    const double f = o < frequency_.size() ? frequency_[o] : 0.0;
    if (replicas <= 1) {
      return f * (server_latency_ + static_cast<double>(cluster_size_ - 1) *
                                        (server_latency_ - proxy_latency_));
    }
    return f * proxy_latency_;
  }

  void reprice(unsigned idx, ObjectNum o, double new_value) {
    auto& c = caches_[idx];
    auto& e = c.entries.at(o);
    if (e.value == new_value) return;
    c.order.erase({e.value, e.seq, o});
    e.value = new_value;
    c.order.insert({e.value, e.seq, o});
  }

  void on_copy_added(ObjectNum o, unsigned idx) {
    auto& holders = holders_[o];
    holders.push_back(idx);
    if (holders.size() == 2) {
      const unsigned other = holders.front() == idx ? holders.back() : holders.front();
      reprice(other, o, copy_value(o, 2));
    }
  }

  void on_copy_removed(ObjectNum o, unsigned idx) {
    const auto it = holders_.find(o);
    ASSERT_TRUE(it != holders_.end());
    std::erase(it->second, idx);
    if (it->second.size() == 1) {
      reprice(it->second.front(), o, copy_value(o, 1));
    } else if (it->second.empty()) {
      holders_.erase(it);
    }
  }

  std::vector<double> frequency_;
  unsigned cluster_size_;
  double server_latency_;
  double proxy_latency_;
  std::vector<Cache> caches_;
  std::map<ObjectNum, std::vector<unsigned>> holders_;
};

TEST(EvictionOrder, CostBenefitClusterMatchesSetReference) {
  constexpr unsigned kProxies = 3;
  constexpr std::size_t kCapacity = 48;
  constexpr ObjectNum kObjects = 300;
  constexpr int kSteps = 10'000;
  constexpr double kTs = 25.0;
  constexpr double kTc = 5.0;

  // Perfect-knowledge frequencies with deliberate collisions (o % 17) so many
  // copies share exact values; small enough that consume() drains popular
  // objects to 0 mid-run, flooding the victim end with equal-zero values.
  std::vector<double> freqs(kObjects);
  for (ObjectNum o = 0; o < kObjects; ++o) {
    freqs[o] = 1.0 + static_cast<double>(o % 17) * 0.5;
  }

  cache::CostBenefitCoordinator coord(freqs, kProxies, kTs, kTc);
  std::vector<std::unique_ptr<cache::CostBenefitCache>> real;
  for (unsigned p = 0; p < kProxies; ++p) {
    real.push_back(std::make_unique<cache::CostBenefitCache>(kCapacity, coord));
  }
  RefCbCluster ref(freqs, kProxies, kTs, kTc, kCapacity);

  TraceRng rng(2001);
  for (int step = 0; step < kSteps; ++step) {
    const auto u = rng.below(kObjects);
    const ObjectNum o = static_cast<ObjectNum>((u * u) / kObjects);
    const auto idx = static_cast<unsigned>(rng.below(kProxies));

    // Clairvoyant accounting first, exactly as the FC driver does.
    coord.consume(o);
    ref.consume(o);

    if (step % 101 == 100) {
      const auto target = static_cast<ObjectNum>(rng.below(kObjects));
      ASSERT_EQ(real[idx]->erase(target), ref.erase(idx, target)) << "step " << step;
    } else if (real[idx]->contains(o)) {
      ASSERT_TRUE(ref.contains(idx, o)) << "step " << step;
      real[idx]->access(o, 0.0);  // values are static; access is a no-op
    } else {
      ASSERT_FALSE(ref.contains(idx, o)) << "step " << step;
      const InsertResult got = real[idx]->insert(o, 0.0);
      const InsertResult want = ref.insert(idx, o);
      ASSERT_EQ(got.inserted, want.inserted) << "step " << step;
      ASSERT_EQ(got.evicted, want.evicted) << "step " << step;
    }
    for (unsigned p = 0; p < kProxies; ++p) {
      ASSERT_EQ(real[p]->peek_victim(), ref.peek_victim(p))
          << "step " << step << " proxy " << p;
      if (const auto victim = real[p]->peek_victim()) {
        ASSERT_EQ(real[p]->value_of(*victim), ref.value_of(p, *victim))
            << "step " << step << " proxy " << p;
      }
    }
  }
  for (unsigned p = 0; p < kProxies; ++p) {
    EXPECT_EQ(sorted(real[p]->contents()), sorted(ref.contents(p))) << "proxy " << p;
  }
}

}  // namespace
