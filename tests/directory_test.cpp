#include "directory/directory.hpp"

#include <gtest/gtest.h>

namespace webcache::directory {
namespace {

TEST(ExactDirectory, TracksMembershipExactly) {
  ExactDirectory d;
  EXPECT_FALSE(d.may_contain(1));
  d.add(1);
  d.add(2);
  EXPECT_TRUE(d.may_contain(1));
  EXPECT_TRUE(d.may_contain(2));
  EXPECT_FALSE(d.may_contain(3));
  d.remove(1);
  EXPECT_FALSE(d.may_contain(1));
  EXPECT_EQ(d.entry_count(), 1u);
  EXPECT_EQ(d.kind(), "exact");
}

TEST(ExactDirectory, RemoveOfAbsentIsNoop) {
  ExactDirectory d;
  d.remove(7);
  EXPECT_EQ(d.entry_count(), 0u);
}

TEST(ExactDirectory, MemoryGrowsWithEntries) {
  ExactDirectory d;
  const auto empty = d.memory_bytes();
  for (ObjectNum o = 0; o < 100; ++o) d.add(o);
  EXPECT_GT(d.memory_bytes(), empty);
}

TEST(ObjectIdTable, StableAndDistinct) {
  const auto table = build_object_id_table(100);
  ASSERT_EQ(table->size(), 100u);
  for (std::size_t i = 1; i < table->size(); ++i) {
    EXPECT_NE((*table)[i], (*table)[0]);
  }
  // Ids derive from URLs, so a rebuilt table is identical.
  const auto again = build_object_id_table(100);
  EXPECT_EQ(*table, *again);
}

TEST(BloomDirectory, NoFalseNegatives) {
  const auto table = build_object_id_table(2000);
  BloomDirectory d(table, 500, 0.01);
  for (ObjectNum o = 0; o < 500; ++o) d.add(o);
  for (ObjectNum o = 0; o < 500; ++o) {
    EXPECT_TRUE(d.may_contain(o)) << o;
  }
  EXPECT_EQ(d.entry_count(), 500u);
  EXPECT_EQ(d.kind(), "bloom");
}

TEST(BloomDirectory, DeletionWorksUnderChurn) {
  const auto table = build_object_id_table(5000);
  BloomDirectory d(table, 200, 0.01);
  // Rolling window of 200 live entries over 5000 objects.
  for (ObjectNum o = 0; o < 5000; ++o) {
    d.add(o);
    if (o >= 200) d.remove(o - 200);
    if (o >= 10 && o % 83 == 0) {
      for (ObjectNum live = o - 9; live <= o; ++live) {
        ASSERT_TRUE(d.may_contain(live)) << "o=" << o;
      }
    }
  }
}

TEST(BloomDirectory, FalsePositiveRateIsBounded) {
  const auto table = build_object_id_table(20'000);
  BloomDirectory d(table, 1000, 0.01);
  for (ObjectNum o = 0; o < 1000; ++o) d.add(o);
  std::size_t fp = 0;
  for (ObjectNum o = 1000; o < 20'000; ++o) {
    if (d.may_contain(o)) ++fp;
  }
  EXPECT_LT(static_cast<double>(fp) / 19'000.0, 0.03);
}

TEST(BloomDirectory, UsesLessMemoryThanExactAtScale) {
  const auto table = build_object_id_table(10'000);
  BloomDirectory bloom(table, 10'000, 0.01);
  ExactDirectory exact;
  for (ObjectNum o = 0; o < 10'000; ++o) {
    bloom.add(o);
    exact.add(o);
  }
  EXPECT_LT(bloom.memory_bytes(), exact.memory_bytes());
}

TEST(BloomDirectory, RejectsMissingTableAndOutOfRange) {
  EXPECT_THROW(BloomDirectory(nullptr, 10, 0.01), std::invalid_argument);
  const auto table = build_object_id_table(10);
  BloomDirectory d(table, 10, 0.01);
  EXPECT_THROW(d.add(10), std::out_of_range);
  EXPECT_THROW((void)d.may_contain(10), std::out_of_range);
}

}  // namespace
}  // namespace webcache::directory
