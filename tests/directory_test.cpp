#include "directory/directory.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "obs/registry.hpp"
#include "p2p/p2p_client_cache.hpp"

namespace webcache::directory {
namespace {

TEST(ExactDirectory, TracksMembershipExactly) {
  ExactDirectory d;
  EXPECT_FALSE(d.may_contain(1));
  d.add(1);
  d.add(2);
  EXPECT_TRUE(d.may_contain(1));
  EXPECT_TRUE(d.may_contain(2));
  EXPECT_FALSE(d.may_contain(3));
  d.remove(1);
  EXPECT_FALSE(d.may_contain(1));
  EXPECT_EQ(d.entry_count(), 1u);
  EXPECT_EQ(d.kind(), "exact");
}

TEST(ExactDirectory, RemoveOfAbsentIsNoop) {
  ExactDirectory d;
  d.remove(7);
  EXPECT_EQ(d.entry_count(), 0u);
}

TEST(ExactDirectory, MemoryGrowsWithEntries) {
  ExactDirectory d;
  const auto empty = d.memory_bytes();
  for (ObjectNum o = 0; o < 100; ++o) d.add(o);
  EXPECT_GT(d.memory_bytes(), empty);
}

TEST(ExactDirectory, MemoryBytesReportsFlatStampArray) {
  ExactDirectory d;
  EXPECT_EQ(d.memory_bytes(), 0u);
  // The flat representation is sized by the largest id touched, not by the
  // number of live entries — one 32-bit stamp per universe slot.
  d.add(999);
  EXPECT_GE(d.memory_bytes(), 1000 * sizeof(std::uint32_t));
  const auto grown = d.memory_bytes();
  d.remove(999);
  EXPECT_EQ(d.entry_count(), 0u);
  EXPECT_EQ(d.memory_bytes(), grown);  // flat arrays never shrink
}

TEST(ObjectIdTable, StableAndDistinct) {
  const auto table = build_object_id_table(100);
  ASSERT_EQ(table->size(), 100u);
  for (std::size_t i = 1; i < table->size(); ++i) {
    EXPECT_NE((*table)[i], (*table)[0]);
  }
  // Ids derive from URLs, so a rebuilt table is identical.
  const auto again = build_object_id_table(100);
  EXPECT_EQ(*table, *again);
}

TEST(BloomDirectory, NoFalseNegatives) {
  const auto table = build_object_id_table(2000);
  BloomDirectory d(table, 500, 0.01);
  for (ObjectNum o = 0; o < 500; ++o) d.add(o);
  for (ObjectNum o = 0; o < 500; ++o) {
    EXPECT_TRUE(d.may_contain(o)) << o;
  }
  EXPECT_EQ(d.entry_count(), 500u);
  EXPECT_EQ(d.kind(), "bloom");
}

TEST(BloomDirectory, DeletionWorksUnderChurn) {
  const auto table = build_object_id_table(5000);
  BloomDirectory d(table, 200, 0.01);
  // Rolling window of 200 live entries over 5000 objects.
  for (ObjectNum o = 0; o < 5000; ++o) {
    d.add(o);
    if (o >= 200) d.remove(o - 200);
    if (o >= 10 && o % 83 == 0) {
      for (ObjectNum live = o - 9; live <= o; ++live) {
        ASSERT_TRUE(d.may_contain(live)) << "o=" << o;
      }
    }
  }
}

TEST(BloomDirectory, FalsePositiveRateIsBounded) {
  const auto table = build_object_id_table(20'000);
  BloomDirectory d(table, 1000, 0.01);
  for (ObjectNum o = 0; o < 1000; ++o) d.add(o);
  std::size_t fp = 0;
  for (ObjectNum o = 1000; o < 20'000; ++o) {
    if (d.may_contain(o)) ++fp;
  }
  EXPECT_LT(static_cast<double>(fp) / 19'000.0, 0.03);
}

TEST(BloomDirectory, UsesLessMemoryThanExactAtScale) {
  // The Bloom filter is sized by the cache capacity and stays constant, while
  // the exact directory's flat stamp array scales with the object universe
  // the cluster touches over time. With a universe much larger than the
  // cache — the paper's operating regime — the filter wins even against
  // 4-byte flat slots.
  const auto table = build_object_id_table(200'000);
  BloomDirectory bloom(table, 10'000, 0.01);
  ExactDirectory exact;
  for (ObjectNum o = 0; o < 200'000; ++o) {
    bloom.add(o);
    exact.add(o);
    if (o >= 10'000) {  // rolling membership: only 10k objects live at once
      bloom.remove(o - 10'000);
      exact.remove(o - 10'000);
    }
  }
  EXPECT_LT(bloom.memory_bytes(), exact.memory_bytes());
}

TEST(BloomDirectory, RejectsMissingTableAndOutOfRange) {
  EXPECT_THROW(BloomDirectory(nullptr, 10, 0.01), std::invalid_argument);
  const auto table = build_object_id_table(10);
  BloomDirectory d(table, 10, 0.01);
  EXPECT_THROW(d.add(10), std::out_of_range);
  EXPECT_THROW((void)d.may_contain(10), std::out_of_range);
}

// --- staleness after a holder crash -----------------------------------------
//
// The directory is only told about evictions, never crashes: when the client
// physically holding a registered object dies, the entry goes stale. The
// proxy's discovery protocol is lookup (stale positive) -> P2P fetch (miss)
// -> purge. These tests drive that sequence against a real P2P cluster for
// both representations and pin the counter trail it must leave.

namespace {

struct CrashedHolderRig {
  std::shared_ptr<const std::vector<Uint128>> table = build_object_id_table(64);
  obs::Registry registry;
  p2p::P2PClientCache p2p;
  ObjectNum object = 7;

  CrashedHolderRig()
      : p2p(
            [] {
              p2p::P2PConfig cfg;
              cfg.clients = 8;
              cfg.per_client_capacity = 4;
              return cfg;
            }(),
            table, &registry) {}

  /// Stores the object, registers the receipt, then crashes whichever client
  /// physically holds it. Returns true if the object was lost as expected.
  bool store_register_and_crash(LookupDirectory& dir) {
    if (!p2p.store(object, 10.0, 0).stored) return false;
    dir.add(object);
    for (ClientNum c = 0; c < p2p.cluster_size(); ++c) {
      const auto held = p2p.contents_of(c);
      if (std::find(held.begin(), held.end(), object) == held.end()) continue;
      const auto lost = p2p.fail_client(c);
      return std::find(lost.begin(), lost.end(), object) != lost.end();
    }
    return false;
  }
};

}  // namespace

template <typename MakeDirectory>
void expect_stale_entry_is_discovered_and_purged(MakeDirectory make_directory) {
  CrashedHolderRig rig;
  auto dir = make_directory(rig);
  ASSERT_TRUE(rig.store_register_and_crash(*dir));

  // The holder is gone but the directory was never told: stale positive.
  EXPECT_TRUE(dir->may_contain(rig.object));
  EXPECT_EQ(rig.registry.counter_value("dir.lookups"), 1u);
  EXPECT_EQ(rig.registry.counter_value("dir.positives"), 1u);

  // The redirected fetch misses — discovery — and the proxy purges.
  EXPECT_FALSE(rig.p2p.fetch(rig.object, 0).hit);
  dir->remove(rig.object);
  EXPECT_EQ(rig.registry.counter_value("dir.removes"), 1u);
  EXPECT_EQ(dir->entry_count(), 0u);
  EXPECT_FALSE(dir->may_contain(rig.object));
  EXPECT_FALSE(dir->audit_contains(rig.object));
}

TEST(ExactDirectory, CrashedHolderEntryIsDiscoveredAndPurged) {
  expect_stale_entry_is_discovered_and_purged([](CrashedHolderRig& rig) {
    return std::make_unique<ExactDirectory>(&rig.registry);
  });
}

TEST(BloomDirectory, CrashedHolderEntryIsDiscoveredAndPurged) {
  expect_stale_entry_is_discovered_and_purged([](CrashedHolderRig& rig) {
    return std::make_unique<BloomDirectory>(rig.table, 64, 0.001, &rig.registry);
  });
}

TEST(LookupDirectory, AuditProbesLeaveTheCountersUntouched) {
  const auto table = build_object_id_table(32);
  obs::Registry registry;
  ExactDirectory exact(&registry);
  BloomDirectory bloom(table, 32, 0.01, &registry, "bdir.");
  exact.add(3);
  bloom.add(3);
  EXPECT_TRUE(exact.audit_contains(3));
  EXPECT_FALSE(exact.audit_contains(4));
  EXPECT_TRUE(bloom.audit_contains(3));
  EXPECT_EQ(registry.counter_value("dir.lookups"), 0u);
  EXPECT_EQ(registry.counter_value("dir.positives"), 0u);
  EXPECT_EQ(registry.counter_value("bdir.lookups"), 0u);
}

}  // namespace
}  // namespace webcache::directory
