// Tests for the Squirrel extension scheme (decentralized proxy-less P2P web
// cache, after Iyer/Rowstron/Druschel PODC'02) — implemented to quantify
// the paper's Section 6 comparison.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "workload/prowgen.hpp"

namespace webcache::sim {
namespace {

workload::Trace test_trace(std::uint64_t requests = 60'000, ObjectNum objects = 2'000) {
  workload::ProWGenConfig cfg;
  cfg.total_requests = requests;
  cfg.distinct_objects = objects;
  cfg.seed = 17;
  return workload::ProWGen(cfg).generate();
}

SimConfig squirrel_config(ClientNum clients = 100, std::size_t per_client = 5) {
  SimConfig c;
  c.scheme = Scheme::kSquirrel;
  c.clients_per_cluster = clients;
  c.client_cache_capacity = per_client;
  // proxy_capacity is irrelevant (no proxy cache exists).
  return c;
}

TEST(Squirrel, SchemeMetadata) {
  EXPECT_EQ(to_string(Scheme::kSquirrel), "Squirrel");
  EXPECT_EQ(scheme_from_string("Squirrel"), std::optional<Scheme>(Scheme::kSquirrel));
  EXPECT_TRUE(exploits_client_caches(Scheme::kSquirrel));
  EXPECT_FALSE(proxies_cooperate(Scheme::kSquirrel));
  // Squirrel is an extension, not one of the paper's seven.
  for (const auto s : kAllSchemes) EXPECT_NE(s, Scheme::kSquirrel);
}

TEST(Squirrel, EveryRequestIsAccounted) {
  const auto trace = test_trace();
  const auto m = run_simulation(squirrel_config(), trace);
  EXPECT_EQ(m.requests, trace.size());
  EXPECT_EQ(m.total_hits() + m.server_fetches, trace.size());
  // All hits are home-node hits; there is no proxy tier.
  EXPECT_EQ(m.hits_local_proxy, 0u);
  EXPECT_EQ(m.hits_remote_proxy, 0u);
  EXPECT_EQ(m.hits_remote_p2p, 0u);
  EXPECT_GT(m.hits_local_p2p, 0u);
}

TEST(Squirrel, WorksWithASingleOrganization) {
  const auto trace = test_trace(20'000, 1'000);
  auto cfg = squirrel_config();
  cfg.num_proxies = 1;
  const auto m = run_simulation(cfg, trace);
  EXPECT_EQ(m.requests, trace.size());
}

TEST(Squirrel, LatencyIsHomeHitOrHomeMissModel) {
  const auto trace = test_trace();
  const auto cfg = squirrel_config();
  const auto m = run_simulation(cfg, trace);
  const double reconstructed =
      static_cast<double>(m.hits_local_p2p) * cfg.latencies.p2p_fetch() +
      static_cast<double>(m.server_fetches) *
          (cfg.latencies.p2p_fetch() + cfg.latencies.server()) +
      m.p2p_hop_latency_total;
  EXPECT_NEAR(m.total_latency, reconstructed, 1e-6 * m.total_latency);
}

TEST(Squirrel, PoolingBeatsNothingButTrailsProxySchemes) {
  // The paper's Section 6 position, quantified: Squirrel improves on having
  // no shared cache at all, but a same-budget Hier-GD deployment (proxy +
  // client caches, inter-proxy cooperation) outperforms it because the
  // proxy tier serves at Tl < Tp2p and cooperating organizations share.
  const auto trace = test_trace();

  auto squirrel = squirrel_config(100, 5);
  const auto m_squirrel = run_simulation(squirrel, trace);

  // Status quo: each client fends for itself; approximate with NC and a
  // tiny proxy (the "no shared cache" floor is even weaker — NC suffices).
  SimConfig nc;
  nc.scheme = Scheme::kNC;
  nc.proxy_capacity = 1;
  nc.clients_per_cluster = 100;
  const auto m_floor = run_simulation(nc, trace);
  EXPECT_LT(m_squirrel.mean_latency(), m_floor.mean_latency());

  // Same client-cache budget, plus a proxy of half the pooled capacity.
  SimConfig hier;
  hier.scheme = Scheme::kHierGD;
  hier.clients_per_cluster = 100;
  hier.client_cache_capacity = 5;
  hier.proxy_capacity = 250;
  const auto m_hier = run_simulation(hier, trace);
  EXPECT_LT(m_hier.mean_latency(), m_squirrel.mean_latency());
}

TEST(Squirrel, NoCrossOrganizationSharing) {
  // Two organizations with identical streams: misses in one are never
  // served by the other (the firewall argument of Section 6).
  const auto trace = test_trace();
  auto cfg = squirrel_config();
  cfg.num_proxies = 2;
  const auto m = run_simulation(cfg, trace);
  EXPECT_EQ(m.hits_remote_p2p, 0u);
  EXPECT_EQ(m.hits_remote_proxy, 0u);
}

TEST(Squirrel, MoreClientsMeanMoreHits) {
  const auto trace = test_trace();
  const auto small = run_simulation(squirrel_config(20, 5), trace);
  const auto large = run_simulation(squirrel_config(400, 5), trace);
  EXPECT_LT(large.mean_latency(), small.mean_latency());
}

TEST(Squirrel, SupportsFailureInjection) {
  const auto trace = test_trace();
  auto cfg = squirrel_config();
  for (ClientNum c = 0; c < 20; ++c) {
    cfg.client_failures.push_back(ClientFailure{trace.size() / 2, 0, c});
  }
  const auto m = run_simulation(cfg, trace);
  EXPECT_EQ(m.requests, trace.size());
  const auto healthy = run_simulation(squirrel_config(), trace);
  EXPECT_GE(m.mean_latency(), healthy.mean_latency());
}

}  // namespace
}  // namespace webcache::sim
