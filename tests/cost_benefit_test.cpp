#include "cache/cost_benefit.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace webcache::cache {
namespace {

constexpr double kTs = 20.0;
constexpr double kTc = 2.0;

/// freq[o] = per-proxy request frequency.
CostBenefitCoordinator make_coordinator(std::vector<double> freq, unsigned cluster = 2) {
  return CostBenefitCoordinator(std::move(freq), cluster, kTs, kTc);
}

TEST(CostBenefit, SoleCopyValueCountsClusterWideLoss) {
  auto coord = make_coordinator({10.0}, /*cluster=*/3);
  // f * (Ts + (P-1)(Ts - Tc)) = 10 * (20 + 2*18) = 560.
  EXPECT_DOUBLE_EQ(coord.copy_value(0, 1), 560.0);
  // Redundant copy: f * Tc = 20.
  EXPECT_DOUBLE_EQ(coord.copy_value(0, 2), 20.0);
  EXPECT_DOUBLE_EQ(coord.copy_value(0, 5), 20.0);
}

TEST(CostBenefit, UnknownObjectHasZeroFrequency) {
  auto coord = make_coordinator({1.0});
  EXPECT_DOUBLE_EQ(coord.frequency(99), 0.0);
  EXPECT_DOUBLE_EQ(coord.copy_value(99, 1), 0.0);
}

TEST(CostBenefit, InsertTracksReplicas) {
  auto coord = make_coordinator({5.0, 3.0});
  CostBenefitCache a(2, coord), b(2, coord);
  EXPECT_EQ(coord.replica_count(0), 0u);
  a.insert(0, 0);
  EXPECT_EQ(coord.replica_count(0), 1u);
  b.insert(0, 0);
  EXPECT_EQ(coord.replica_count(0), 2u);
  EXPECT_TRUE(coord.held_elsewhere(0, &a));
  b.erase(0);
  EXPECT_EQ(coord.replica_count(0), 1u);
  EXPECT_FALSE(coord.held_elsewhere(0, &a));
}

TEST(CostBenefit, SecondCopyIsPricedAsRedundant) {
  auto coord = make_coordinator({5.0, 3.0});
  CostBenefitCache a(2, coord), b(2, coord);
  a.insert(0, 0);
  EXPECT_DOUBLE_EQ(a.value_of(0), coord.copy_value(0, 1));
  b.insert(0, 0);
  // Both copies are now redundant-priced.
  EXPECT_DOUBLE_EQ(a.value_of(0), coord.copy_value(0, 2));
  EXPECT_DOUBLE_EQ(b.value_of(0), coord.copy_value(0, 2));
}

TEST(CostBenefit, SurvivorIsRepricedUpOnReplicaLoss) {
  auto coord = make_coordinator({5.0});
  CostBenefitCache a(2, coord), b(2, coord);
  a.insert(0, 0);
  b.insert(0, 0);
  b.erase(0);
  EXPECT_DOUBLE_EQ(a.value_of(0), coord.copy_value(0, 1));
}

TEST(CostBenefit, DeclinesWorthlessNewcomer) {
  // Object 0 is hot, 1 is cold; cache of size 1.
  auto coord = make_coordinator({100.0, 0.1});
  CostBenefitCache a(1, coord);
  ASSERT_TRUE(a.insert(0, 0).inserted);
  const auto r = a.insert(1, 0);
  EXPECT_FALSE(r.inserted);          // cold one-timer can't displace the hot object
  EXPECT_FALSE(r.evicted.has_value());
  EXPECT_TRUE(a.contains(0));
}

TEST(CostBenefit, EvictsWhenNewcomerIsWorthMore) {
  auto coord = make_coordinator({0.1, 100.0});
  CostBenefitCache a(1, coord);
  a.insert(0, 0);
  const auto r = a.insert(1, 0);
  ASSERT_TRUE(r.inserted);
  EXPECT_EQ(r.evicted, std::optional<ObjectNum>(0));
}

TEST(CostBenefit, AvoidsDuplicatingModeratelyPopularObjects) {
  // The coordination signature: once proxy A holds object 0, its redundant-
  // copy value at proxy B (f*Tc = 10) is below B's incumbent sole-copy
  // values, so B declines the duplicate — SC would have copied it.
  auto coord = make_coordinator({5.0, 4.0, 3.0});
  CostBenefitCache a(1, coord), b(2, coord);
  a.insert(0, 0);          // sole copy of the hottest object at A
  b.insert(1, 0);          // sole copies at B
  b.insert(2, 0);
  const auto r = b.insert(0, 0);  // duplicate of 0: value 5*2=10 < min(3*38)
  EXPECT_FALSE(r.inserted);
  EXPECT_TRUE(b.contains(1));
  EXPECT_TRUE(b.contains(2));
}

TEST(CostBenefit, PrefersKeepingSoleCopiesOverDuplicates) {
  auto coord = make_coordinator({10.0, 1.0});
  CostBenefitCache a(1, coord), b(1, coord);
  a.insert(0, 0);
  // B holds a duplicate of 0? No: B cache empty, insert duplicate of 0.
  ASSERT_TRUE(b.insert(0, 0).inserted);  // free space: even duplicates are stored
  // Now object 1 (sole copy value 1*38=38) vs duplicate of 0 (value 10*2=20):
  // the duplicate should be evicted.
  const auto r = b.insert(1, 0);
  ASSERT_TRUE(r.inserted);
  EXPECT_EQ(r.evicted, std::optional<ObjectNum>(0));
  // And A's copy of 0 was re-priced back up to sole-copy value.
  EXPECT_DOUBLE_EQ(a.value_of(0), coord.copy_value(0, 1));
}

TEST(CostBenefit, DestructorReleasesHoldings) {
  auto coord = make_coordinator({5.0});
  CostBenefitCache a(1, coord);
  {
    CostBenefitCache b(1, coord);
    b.insert(0, 0);
    EXPECT_EQ(coord.replica_count(0), 1u);
  }
  EXPECT_EQ(coord.replica_count(0), 0u);
  // And a survivor holding the same object would have been re-priced: check
  // via a fresh pair.
  CostBenefitCache c(1, coord), d(1, coord);
  c.insert(0, 0);
  {
    CostBenefitCache e(1, coord);
    e.insert(0, 0);
    EXPECT_DOUBLE_EQ(c.value_of(0), coord.copy_value(0, 2));
  }
  EXPECT_DOUBLE_EQ(c.value_of(0), coord.copy_value(0, 1));
}

TEST(CostBenefit, PeekVictimIsMinimumValue) {
  auto coord = make_coordinator({1.0, 5.0, 3.0});
  CostBenefitCache a(3, coord);
  a.insert(0, 0);
  a.insert(1, 0);
  a.insert(2, 0);
  EXPECT_EQ(a.peek_victim(), std::optional<ObjectNum>(0));
}

TEST(CostBenefit, RejectsInvalidConfiguration) {
  EXPECT_THROW(CostBenefitCoordinator({}, 0, kTs, kTc), std::invalid_argument);
  EXPECT_THROW(CostBenefitCoordinator({}, 2, 0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(CostBenefitCoordinator({}, 2, 2.0, 20.0), std::invalid_argument);
}

TEST(CostBenefit, CapacityNeverExceededUnderChurn) {
  std::vector<double> freq(100);
  for (std::size_t i = 0; i < freq.size(); ++i) {
    freq[i] = 100.0 / static_cast<double>(i + 1);
  }
  auto coord = make_coordinator(std::move(freq), 2);
  CostBenefitCache a(10, coord), b(10, coord);
  for (ObjectNum o = 0; o < 100; ++o) {
    if (!a.contains(o)) a.insert(o, 0);
    if (!b.contains(99 - o)) b.insert(99 - o, 0);
    ASSERT_LE(a.size(), 10u);
    ASSERT_LE(b.size(), 10u);
  }
  // The hottest objects must have survived somewhere.
  EXPECT_TRUE(a.contains(0) || b.contains(0));
}

}  // namespace
}  // namespace webcache::cache
