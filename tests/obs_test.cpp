// Unit tests for the observability core (obs::Registry): instrument
// registration semantics, read access, interval snapshots, the ring-buffer
// event tracer, the exporters' formatting guarantees, and the
// optional-registry helper components use to fall back to a private one.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "obs/registry.hpp"

namespace {

using namespace webcache;

TEST(ObsRegistry, CounterFindOrCreateReturnsStableReference) {
  obs::Registry reg;
  obs::Counter& a = reg.counter("sim.requests");
  a.inc();
  a.inc(4);
  // Same name -> same instrument; registering more must not invalidate `a`.
  for (int i = 0; i < 100; ++i) {
    reg.counter("filler." + std::to_string(i));
  }
  obs::Counter& again = reg.counter("sim.requests");
  EXPECT_EQ(&a, &again);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(reg.counter_value("sim.requests"), 5u);
  EXPECT_EQ(reg.counter_count(), 101u);
}

TEST(ObsRegistry, UnregisteredReadsAreZero) {
  const obs::Registry reg;
  EXPECT_EQ(reg.counter_value("never.registered"), 0u);
  EXPECT_EQ(reg.gauge_value("never.registered"), 0.0);
  EXPECT_EQ(reg.find_stat("never.registered"), nullptr);
  EXPECT_EQ(reg.find_histogram("never.registered"), nullptr);
}

TEST(ObsRegistry, GaugeAccumulatesAndResets) {
  obs::Registry reg;
  obs::Gauge& g = reg.gauge("sim.total_latency");
  g.add(1.5);
  g.add(2.25);
  EXPECT_DOUBLE_EQ(g.value(), 3.75);
  EXPECT_DOUBLE_EQ(reg.gauge_value("sim.total_latency"), 3.75);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
}

TEST(ObsRegistry, HistogramBoundsFixedByFirstRegistration) {
  obs::Registry reg;
  Histogram& h = reg.histogram("sim.p2p_hops", 0.0, 16.0, 16);
  h.add(3.0);
  // A second registration with different bounds returns the existing one.
  Histogram& again = reg.histogram("sim.p2p_hops", 0.0, 99.0, 4);
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(again.lo(), 0.0);
  EXPECT_EQ(again.hi(), 16.0);
  ASSERT_NE(reg.find_histogram("sim.p2p_hops"), nullptr);
  EXPECT_EQ(reg.find_histogram("sim.p2p_hops")->total(), 1u);
}

TEST(ObsRegistry, NamesKeepRegistrationOrder) {
  obs::Registry reg;
  reg.counter("b");
  reg.counter("a");
  reg.gauge("z");
  reg.gauge("y");
  EXPECT_EQ(reg.counter_names(), (std::vector<std::string>{"b", "a"}));
  EXPECT_EQ(reg.gauge_names(), (std::vector<std::string>{"z", "y"}));
}

TEST(ObsRegistry, EnsureRegistryPrefersExternal) {
  obs::Registry external;
  std::unique_ptr<obs::Registry> owned;
  obs::Registry& r = obs::ensure_registry(&external, owned);
  EXPECT_EQ(&r, &external);
  EXPECT_EQ(owned, nullptr);
}

TEST(ObsRegistry, EnsureRegistryFallsBackToOwned) {
  std::unique_ptr<obs::Registry> owned;
  obs::Registry& r1 = obs::ensure_registry(nullptr, owned);
  ASSERT_NE(owned, nullptr);
  EXPECT_EQ(&r1, owned.get());
  // Idempotent: a second call reuses the same private registry.
  obs::Registry& r2 = obs::ensure_registry(nullptr, owned);
  EXPECT_EQ(&r2, owned.get());
}

TEST(ObsRegistry, FormatDoubleIsLocaleIndependentShortestForm) {
  EXPECT_EQ(obs::format_double(0.0), "0");
  EXPECT_EQ(obs::format_double(1.5), "1.5");
  EXPECT_EQ(obs::format_double(-2.25), "-2.25");
  EXPECT_EQ(obs::format_double(10.0), "10");
}

TEST(ObsRegistry, JsonExportContainsSchemaAndSortedInstruments) {
  obs::Registry reg;
  reg.counter("zeta").inc(2);
  reg.counter("alpha").inc(1);
  reg.gauge("g").set(1.5);
  std::ostringstream out;
  reg.write_json(out, "unit \"quoted\" test");
  const std::string json = out.str();
  EXPECT_NE(json.find("\"schema\": \"webcache-metrics/1\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos) << "name must be escaped";
  // Counter maps are emitted name-sorted regardless of registration order.
  const auto alpha = json.find("\"alpha\": 1");
  const auto zeta = json.find("\"zeta\": 2");
  ASSERT_NE(alpha, std::string::npos);
  ASSERT_NE(zeta, std::string::npos);
  EXPECT_LT(alpha, zeta);
}

TEST(ObsRegistry, CsvExportListsEveryInstrument) {
  obs::Registry reg;
  reg.counter("c").inc(3);
  reg.gauge("g").set(0.5);
  reg.stat("s").add(2.0);
  reg.histogram("h", 0.0, 10.0, 5).add(1.0);
  std::ostringstream out;
  reg.write_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("counter,c,3"), std::string::npos);
  EXPECT_NE(csv.find("gauge,g,0.5"), std::string::npos);
  EXPECT_NE(csv.find("stat,s.count,1"), std::string::npos);
  EXPECT_NE(csv.find("stat,s.mean,2"), std::string::npos);
  EXPECT_NE(csv.find("histogram,h.lo,0"), std::string::npos);
  EXPECT_NE(csv.find("histogram,h.bucket0,1"), std::string::npos);
}

#ifndef WEBCACHE_OBS_NO_TRACE

TEST(ObsSnapshots, TakenExactlyEveryInterval) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("c");
  obs::Gauge& g = reg.gauge("g");
  reg.set_snapshot_interval(10);
  for (int t = 0; t < 35; ++t) {
    c.inc();
    g.add(0.5);
    reg.tick();
  }
  const auto& snaps = reg.snapshots();
  ASSERT_EQ(snaps.size(), 3u);  // at ticks 10, 20, 30 — 35 never completes a 4th
  EXPECT_EQ(snaps[0].at, 10u);
  EXPECT_EQ(snaps[1].at, 20u);
  EXPECT_EQ(snaps[2].at, 30u);
  ASSERT_EQ(snaps[1].counters.size(), 1u);
  EXPECT_EQ(snaps[1].counters[0], 20u);
  ASSERT_EQ(snaps[2].gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snaps[2].gauges[0], 15.0);
}

TEST(ObsSnapshots, DisabledByDefault) {
  obs::Registry reg;
  reg.counter("c");
  for (int t = 0; t < 100; ++t) reg.tick();
  EXPECT_TRUE(reg.snapshots().empty());
}

TEST(ObsSnapshots, CsvHasColumnsForCountersAndGauges) {
  obs::Registry reg;
  reg.counter("c").inc();
  reg.gauge("g").set(2.5);
  reg.set_snapshot_interval(1);
  reg.tick();
  std::ostringstream out;
  reg.write_snapshots_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("at,c,g"), std::string::npos);
  EXPECT_NE(csv.find("1,1,2.5"), std::string::npos);
}

TEST(ObsTracer, RingKeepsTheTailAndCountsDrops) {
  obs::Registry reg;
  reg.enable_tracing(4);
  EXPECT_TRUE(reg.tracing_enabled());
  for (std::uint64_t t = 0; t < 10; ++t) {
    reg.record(t, static_cast<std::uint32_t>(t % 3), 1.0 * static_cast<double>(t), 0.0);
  }
  EXPECT_EQ(reg.trace_dropped(), 6u);
  const auto events = reg.trace_events();
  ASSERT_EQ(events.size(), 4u);
  // Chronological order, oldest surviving record first.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].time, 6u + i);
    EXPECT_DOUBLE_EQ(events[i].value, 6.0 + static_cast<double>(i));
  }
}

TEST(ObsTracer, DisabledRecordIsANoOp) {
  obs::Registry reg;
  EXPECT_FALSE(reg.tracing_enabled());
  reg.record(1, 2, 3.0, 4.0);
  EXPECT_TRUE(reg.trace_events().empty());
  EXPECT_EQ(reg.trace_dropped(), 0u);
}

TEST(ObsTracer, CsvIsChronologicalWithSequenceNumbers) {
  obs::Registry reg;
  reg.enable_tracing(8);
  reg.record(0, 5, 1.5, 0.0);
  reg.record(1, 0, 2.0, 0.25);
  std::ostringstream out;
  reg.write_trace_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("seq,time,code,value,aux"), std::string::npos);
  EXPECT_NE(csv.find("0,0,5,1.5,0"), std::string::npos);
  EXPECT_NE(csv.find("1,1,0,2,0.25"), std::string::npos);
}

#endif  // WEBCACHE_OBS_NO_TRACE

}  // namespace
