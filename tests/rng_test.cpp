#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace webcache {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(7);
  double sum = 0.0;
  for (int i = 0; i < 100'000; ++i) {
    const double x = r.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 100'000.0, 0.5, 0.01);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(11);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_LT(r.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowZeroBoundReturnsZero) {
  Rng r(11);
  EXPECT_EQ(r.next_below(0), 0u);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng r(13);
  constexpr std::uint64_t kBound = 10;
  std::vector<int> counts(kBound, 0);
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) ++counts[r.next_below(kBound)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / kBound, kDraws / kBound * 0.1);
  }
}

TEST(Rng, ForkedStreamsAreIndependentAndDeterministic) {
  Rng parent1(5), parent2(5);
  Rng a = parent1.fork(1);
  Rng b = parent2.fork(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());

  Rng parent3(5);
  Rng c = parent3.fork(2);
  int equal = 0;
  Rng a2 = Rng(5).fork(1);
  for (int i = 0; i < 1000; ++i) {
    if (a2() == c()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(SplitMix64, MatchesReferenceSequence) {
  // Reference values for seed 0 (Vigna's splitmix64.c).
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(sm.next(), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(sm.next(), 0x06C45D188009454FULL);
}

}  // namespace
}  // namespace webcache
