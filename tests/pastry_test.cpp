#include "pastry/overlay.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "common/sha1.hpp"

namespace webcache::pastry {
namespace {

NodeId id_for(int i) { return node_id_for("node/" + std::to_string(i)); }

Uint128 key_for(int i) { return Sha1::hash128("key/" + std::to_string(i)); }

Overlay make_overlay(int n, OverlayConfig cfg = {}) {
  Overlay o(cfg);
  for (int i = 0; i < n; ++i) o.add_node(id_for(i));
  return o;
}

/// Brute-force ground truth for the numerically closest node.
NodeId brute_force_root(const std::vector<NodeId>& nodes, const Uint128& key) {
  NodeId best = nodes.front();
  for (const auto& n : nodes) {
    if (closer_to(key, n, best)) best = n;
  }
  return best;
}

TEST(RoutingTable, SlotCoordinatesMatchPrefixAndDigit) {
  const NodeId owner = Uint128::from_hex("a0000000000000000000000000000000");
  RoutingTable rt(owner, 4);
  const NodeId peer = Uint128::from_hex("a5000000000000000000000000000000");
  const auto slot = rt.slot_of(peer);
  ASSERT_TRUE(slot.has_value());
  EXPECT_EQ(slot->first, 1u);   // shares 1 digit ('a')
  EXPECT_EQ(slot->second, 5u);  // next digit is 5
  EXPECT_FALSE(rt.slot_of(owner).has_value());
}

TEST(RoutingTable, InsertEraseAndNextHop) {
  const NodeId owner = Uint128::from_hex("00000000000000000000000000000000");
  RoutingTable rt(owner, 4);
  const NodeId peer = Uint128::from_hex("70000000000000000000000000000000");
  EXPECT_TRUE(rt.insert(peer));
  EXPECT_FALSE(rt.insert(peer));  // idempotent without replace
  EXPECT_EQ(rt.populated_count(), 1u);

  const Uint128 key = Uint128::from_hex("7a000000000000000000000000000000");
  const auto hop = rt.next_hop(key);
  ASSERT_TRUE(hop.has_value());
  EXPECT_EQ(*hop, peer);

  EXPECT_TRUE(rt.erase(peer));
  EXPECT_FALSE(rt.next_hop(key).has_value());
  EXPECT_EQ(rt.populated_count(), 0u);
}

TEST(RoutingTable, RejectsBadDigitWidth) {
  EXPECT_THROW(RoutingTable(NodeId{}, 0), std::invalid_argument);
  EXPECT_THROW(RoutingTable(NodeId{}, 3), std::invalid_argument);   // 128 % 3 != 0
  EXPECT_THROW(RoutingTable(NodeId{}, 16), std::invalid_argument);  // > 8
}

TEST(LeafSet, KeepsClosestPerSide) {
  const NodeId owner(0, 100);
  LeafSet ls(owner, 4);  // 2 per side
  for (std::uint64_t v : {105, 110, 115, 95, 90, 85}) ls.insert(NodeId(0, v));
  // Clockwise side keeps 105, 110; counter-clockwise keeps 95, 90.
  EXPECT_TRUE(ls.contains(NodeId(0, 105)));
  EXPECT_TRUE(ls.contains(NodeId(0, 110)));
  EXPECT_FALSE(ls.contains(NodeId(0, 115)));
  EXPECT_TRUE(ls.contains(NodeId(0, 95)));
  EXPECT_TRUE(ls.contains(NodeId(0, 90)));
  EXPECT_FALSE(ls.contains(NodeId(0, 85)));
}

TEST(LeafSet, ClosestToFindsNumericallyNearest) {
  const NodeId owner(0, 100);
  LeafSet ls(owner, 4);
  ls.insert(NodeId(0, 105));
  ls.insert(NodeId(0, 90));
  EXPECT_EQ(ls.closest_to(Uint128(0, 104)), NodeId(0, 105));
  EXPECT_EQ(ls.closest_to(Uint128(0, 99)), owner);
  EXPECT_EQ(ls.closest_to(Uint128(0, 92)), NodeId(0, 90));
}

TEST(LeafSet, RejectsOddSize) {
  EXPECT_THROW(LeafSet(NodeId{}, 3), std::invalid_argument);
  EXPECT_THROW(LeafSet(NodeId{}, 0), std::invalid_argument);
}

TEST(Overlay, LeafSetsMatchGroundTruthRing) {
  const auto overlay = make_overlay(64);
  auto ids = overlay.nodes();
  ASSERT_EQ(ids.size(), 64u);
  std::sort(ids.begin(), ids.end());

  // For each node, the leaf set must contain exactly the l/2 ring
  // successors and predecessors.
  const unsigned per_side = overlay.config().leaf_set_size / 2;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto& ls = overlay.leaf_set(ids[i]);
    for (unsigned k = 1; k <= per_side; ++k) {
      EXPECT_TRUE(ls.contains(ids[(i + k) % ids.size()]));
      EXPECT_TRUE(ls.contains(ids[(i + ids.size() - k) % ids.size()]));
    }
  }
}

TEST(Overlay, RootOfMatchesBruteForce) {
  const auto overlay = make_overlay(50);
  const auto ids = overlay.nodes();
  for (int k = 0; k < 500; ++k) {
    const auto key = key_for(k);
    EXPECT_EQ(overlay.root_of(key), brute_force_root(ids, key));
  }
}

TEST(Overlay, RoutingAlwaysReachesTheRoot) {
  auto overlay = make_overlay(100);
  const auto ids = overlay.nodes();
  Rng rng(4);
  for (int k = 0; k < 1000; ++k) {
    const auto key = key_for(k);
    const auto& from = ids[rng.next_below(ids.size())];
    const auto result = overlay.route(from, key);
    ASSERT_TRUE(result.success);
    EXPECT_EQ(result.destination, overlay.root_of(key));
  }
}

TEST(Overlay, HopCountWithinLogBound) {
  for (const int n : {16, 64, 256}) {
    auto overlay = make_overlay(n);
    const auto ids = overlay.nodes();
    Rng rng(9);
    double total_hops = 0;
    unsigned max_hops = 0;
    constexpr int kMessages = 500;
    for (int k = 0; k < kMessages; ++k) {
      const auto result = overlay.route(ids[rng.next_below(ids.size())], key_for(k));
      ASSERT_TRUE(result.success);
      total_hops += result.hops;
      max_hops = std::max(max_hops, result.hops);
    }
    // Expected ceil(log_16 N) with small constant slack; leaf-set delivery
    // can add one extra hop.
    const auto bound = overlay.expected_hop_bound();
    EXPECT_LE(max_hops, bound + 2) << "n=" << n;
    EXPECT_LE(total_hops / kMessages, static_cast<double>(bound) + 1.0) << "n=" << n;
  }
}

TEST(Overlay, RouteFromRootIsZeroHops) {
  auto overlay = make_overlay(32);
  const auto key = key_for(7);
  const auto root = overlay.root_of(key);
  const auto result = overlay.route(root, key);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.hops, 0u);
}

TEST(Overlay, DuplicateJoinThrows) {
  auto overlay = make_overlay(4);
  EXPECT_THROW(overlay.add_node(id_for(0)), std::invalid_argument);
}

TEST(Overlay, GracefulLeaveKeepsRoutingCorrect) {
  auto overlay = make_overlay(40);
  for (int i = 0; i < 10; ++i) overlay.remove_node(id_for(i));
  EXPECT_EQ(overlay.size(), 30u);
  const auto ids = overlay.nodes();
  Rng rng(12);
  for (int k = 0; k < 300; ++k) {
    const auto result = overlay.route(ids[rng.next_below(ids.size())], key_for(k));
    EXPECT_TRUE(result.success);
  }
}

TEST(Overlay, CrashFailuresAreRoutedAround) {
  auto overlay = make_overlay(60);
  Rng rng(21);
  // Crash 15 nodes without any repair pass.
  for (int i = 0; i < 15; ++i) overlay.fail_node(id_for(i));
  const auto ids = overlay.nodes();
  ASSERT_EQ(ids.size(), 45u);
  for (int k = 0; k < 500; ++k) {
    const auto result = overlay.route(ids[rng.next_below(ids.size())], key_for(k));
    EXPECT_TRUE(result.success) << "key " << k;
  }
  EXPECT_GT(overlay.stats().dead_hop_detections, 0u);
}

TEST(Overlay, RepairAllPrunesDeadState) {
  auto overlay = make_overlay(60);
  for (int i = 0; i < 20; ++i) overlay.fail_node(id_for(i));
  overlay.repair_all();
  // After repair, no live node references a dead one.
  for (const auto& id : overlay.nodes()) {
    for (const auto& member : overlay.leaf_set(id).members()) {
      EXPECT_TRUE(overlay.contains(member));
    }
    for (const auto& entry : overlay.routing_table(id).populated()) {
      EXPECT_TRUE(overlay.contains(entry));
    }
  }
  // Routing after repair hits no dead references.
  overlay.reset_stats();
  const auto ids = overlay.nodes();
  Rng rng(31);
  for (int k = 0; k < 300; ++k) {
    (void)overlay.route(ids[rng.next_below(ids.size())], key_for(k));
  }
  EXPECT_EQ(overlay.stats().dead_hop_detections, 0u);
}

TEST(Overlay, SingleNodeDeliversEverythingLocally) {
  auto overlay = make_overlay(1);
  const auto root = overlay.nodes().front();
  for (int k = 0; k < 20; ++k) {
    const auto result = overlay.route(root, key_for(k));
    EXPECT_TRUE(result.success);
    EXPECT_EQ(result.hops, 0u);
    EXPECT_EQ(result.destination, root);
  }
}

TEST(Overlay, StatsAccumulateHops) {
  auto overlay = make_overlay(64);
  const auto ids = overlay.nodes();
  overlay.reset_stats();
  Rng rng(2);
  for (int k = 0; k < 100; ++k) {
    (void)overlay.route(ids[rng.next_below(ids.size())], key_for(k));
  }
  EXPECT_EQ(overlay.stats().messages_routed, 100u);
  EXPECT_GT(overlay.stats().total_hops, 0u);
}

class OverlayDigitWidth : public ::testing::TestWithParam<unsigned> {};

TEST_P(OverlayDigitWidth, RoutingCorrectForAllBases) {
  OverlayConfig cfg;
  cfg.bits_per_digit = GetParam();
  auto overlay = make_overlay(48, cfg);
  const auto ids = overlay.nodes();
  Rng rng(5);
  for (int k = 0; k < 200; ++k) {
    const auto result = overlay.route(ids[rng.next_below(ids.size())], key_for(k));
    EXPECT_TRUE(result.success);
  }
}

INSTANTIATE_TEST_SUITE_P(Bases, OverlayDigitWidth, ::testing::Values(1u, 2u, 4u, 8u));

class OverlayLeafSize : public ::testing::TestWithParam<unsigned> {};

TEST_P(OverlayLeafSize, RoutingCorrectForLeafSetSizes) {
  OverlayConfig cfg;
  cfg.leaf_set_size = GetParam();
  auto overlay = make_overlay(48, cfg);
  const auto ids = overlay.nodes();
  Rng rng(6);
  for (int k = 0; k < 200; ++k) {
    const auto result = overlay.route(ids[rng.next_below(ids.size())], key_for(k));
    EXPECT_TRUE(result.success);
  }
}

INSTANTIATE_TEST_SUITE_P(LeafSizes, OverlayLeafSize, ::testing::Values(2u, 4u, 8u, 16u, 32u));

TEST(Overlay, ChurnStressKeepsRoutingCorrect) {
  OverlayConfig cfg;
  auto overlay = Overlay(cfg);
  Rng rng(77);
  std::set<int> alive;
  int next_id = 0;
  // Seed with 30 nodes.
  for (; next_id < 30; ++next_id) {
    overlay.add_node(id_for(next_id));
    alive.insert(next_id);
  }
  for (int round = 0; round < 60; ++round) {
    const int action = static_cast<int>(rng.next_below(3));
    if (action == 0) {
      overlay.add_node(id_for(next_id));
      alive.insert(next_id);
      ++next_id;
    } else if (action == 1 && alive.size() > 5) {
      auto it = alive.begin();
      std::advance(it, static_cast<long>(rng.next_below(alive.size())));
      overlay.fail_node(id_for(*it));
      alive.erase(it);
    } else if (alive.size() > 5) {
      auto it = alive.begin();
      std::advance(it, static_cast<long>(rng.next_below(alive.size())));
      overlay.remove_node(id_for(*it));
      alive.erase(it);
    }
    // A few routes each round must all deliver to the true root.
    const auto ids = overlay.nodes();
    for (int k = 0; k < 10; ++k) {
      const auto key = key_for(round * 100 + k);
      const auto result = overlay.route(ids[rng.next_below(ids.size())], key);
      ASSERT_TRUE(result.success) << "round " << round;
    }
  }
}

// --- churn repair behavior --------------------------------------------------

TEST(Overlay, SimultaneousAdjacentFailuresRepairToGroundTruthLeafSets) {
  auto overlay = make_overlay(40);
  auto ids = overlay.nodes();
  std::sort(ids.begin(), ids.end());

  // Crash a node's immediate ring neighbors on *both* sides at once — the
  // worst case for leaf-set repair, since each side must be refilled from
  // beyond the dead pair with no graceful-leave announcement to help.
  const std::size_t i = 10;
  const NodeId survivor = ids[i];
  overlay.fail_node(ids[i - 1]);
  overlay.fail_node(ids[i + 1]);

  // Routing from the orphaned node still succeeds mid-churn.
  for (int k = 0; k < 100; ++k) {
    EXPECT_TRUE(overlay.route(survivor, key_for(k)).success);
  }

  const auto repairs_before = overlay.stats().repairs;
  overlay.repair_all();
  EXPECT_GT(overlay.stats().repairs, repairs_before);

  // After repair, every leaf set matches the ground-truth live ring exactly:
  // the l/2 nearest live successors and predecessors, nothing dead.
  auto live = overlay.nodes();
  std::sort(live.begin(), live.end());
  const unsigned per_side = overlay.config().leaf_set_size / 2;
  for (std::size_t n = 0; n < live.size(); ++n) {
    const auto& ls = overlay.leaf_set(live[n]);
    for (const auto& member : ls.members()) {
      EXPECT_TRUE(overlay.contains(member)) << "stale leaf survived repair";
    }
    for (unsigned k = 1; k <= per_side && k < live.size(); ++k) {
      EXPECT_TRUE(ls.contains(live[(n + k) % live.size()]));
      EXPECT_TRUE(ls.contains(live[(n + live.size() - k) % live.size()]));
    }
  }
}

TEST(Overlay, JoinReplacesDeadIncumbentAndCountsExactlyOneRepair) {
  // Crafted ids pin the routing-table geometry: B and C compete for the same
  // slot (row 0, digit 2) of A's table.
  const NodeId a = Uint128::from_hex("10000000000000000000000000000000");
  const NodeId b = Uint128::from_hex("20000000000000000000000000000000");
  const NodeId c = Uint128::from_hex("21000000000000000000000000000000");
  Overlay overlay{OverlayConfig{}};
  overlay.add_node(a);
  overlay.add_node(b);
  ASSERT_EQ(overlay.routing_table(a).entry(0, 2), std::optional<NodeId>(b));

  overlay.fail_node(b);
  EXPECT_EQ(overlay.stats().repairs, 0u);  // crashes are silent; no repair yet

  // C's join must evict the dead incumbent from A's slot — leaving B in
  // place would point later routes at a guaranteed timeout — and the repair
  // counter must record exactly that one replacement.
  overlay.add_node(c);
  EXPECT_EQ(overlay.stats().repairs, 1u);
  EXPECT_EQ(overlay.routing_table(a).entry(0, 2), std::optional<NodeId>(c));
  for (const auto& entry : overlay.routing_table(a).populated()) {
    EXPECT_NE(entry, b);
  }
}

TEST(Overlay, RejoinRestoresArchivedCoordinates) {
  const NodeId id = id_for(1);
  const Coordinates where{0.125, 0.875};
  Overlay overlay{OverlayConfig{}};
  overlay.add_node(id_for(0));
  overlay.add_node(id, where);
  overlay.fail_node(id);
  EXPECT_FALSE(overlay.contains(id));

  overlay.rejoin_node(id);
  ASSERT_TRUE(overlay.contains(id));
  EXPECT_DOUBLE_EQ(overlay.coordinates_of(id).x, where.x);
  EXPECT_DOUBLE_EQ(overlay.coordinates_of(id).y, where.y);

  // A node the overlay never saw fail joins at its default coordinates.
  const NodeId fresh = id_for(2);
  overlay.rejoin_node(fresh);
  ASSERT_TRUE(overlay.contains(fresh));
  EXPECT_DOUBLE_EQ(overlay.coordinates_of(fresh).x, default_coordinates(fresh).x);
  EXPECT_DOUBLE_EQ(overlay.coordinates_of(fresh).y, default_coordinates(fresh).y);
}

}  // namespace
}  // namespace webcache::pastry
