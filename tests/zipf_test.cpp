#include "common/zipf.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace webcache {
namespace {

TEST(ZipfSampler, PmfIsNormalizedAndMonotone) {
  const ZipfSampler z(100, 0.8);
  double total = 0.0;
  for (std::size_t i = 0; i < 100; ++i) {
    total += z.probability(i);
    if (i > 0) EXPECT_LE(z.probability(i), z.probability(i - 1));
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ZipfSampler, PmfMatchesClosedForm) {
  const std::size_t n = 50;
  const double alpha = 0.7;
  const ZipfSampler z(n, alpha);
  double norm = 0.0;
  for (std::size_t i = 1; i <= n; ++i) norm += 1.0 / std::pow(static_cast<double>(i), alpha);
  for (std::size_t i = 0; i < n; ++i) {
    const double expected = 1.0 / std::pow(static_cast<double>(i + 1), alpha) / norm;
    EXPECT_NEAR(z.probability(i), expected, 1e-12);
  }
}

TEST(ZipfSampler, AlphaZeroIsUniform) {
  const ZipfSampler z(10, 0.0);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_NEAR(z.probability(i), 0.1, 1e-12);
}

TEST(ZipfSampler, SampleFrequenciesMatchPmf) {
  const std::size_t n = 20;
  const ZipfSampler z(n, 1.0);
  Rng rng(99);
  constexpr int kDraws = 200'000;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[z.sample(rng)];

  // Chi-square-ish check: each bucket within 5 sigma of expectation.
  for (std::size_t i = 0; i < n; ++i) {
    const double expected = z.probability(i) * kDraws;
    const double sigma = std::sqrt(expected * (1.0 - z.probability(i)));
    EXPECT_NEAR(counts[i], expected, 5.0 * sigma + 1.0) << "rank " << i;
  }
}

TEST(ZipfSampler, SingleElement) {
  const ZipfSampler z(1, 0.7);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(z.sample(rng), 0u);
}

TEST(ZipfSampler, RejectsBadArguments) {
  EXPECT_THROW(ZipfSampler(0, 0.7), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, -0.1), std::invalid_argument);
}

TEST(ZipfRejection, MatchesAliasSamplerDistribution) {
  const std::size_t n = 100;
  const double alpha = 0.7;
  const ZipfSampler reference(n, alpha);
  const ZipfRejection z(n, alpha);
  Rng rng(123);
  constexpr int kDraws = 200'000;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < kDraws; ++i) {
    const auto k = z.sample(rng);
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, n);
    ++counts[k - 1];
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double expected = reference.probability(i) * kDraws;
    const double sigma = std::sqrt(expected + 1.0);
    EXPECT_NEAR(counts[i], expected, 5.0 * sigma + 2.0) << "rank " << i;
  }
}

TEST(ZipfRejection, HandlesAlphaNearOne) {
  // The h-integral degenerates to log at alpha = 1; check stability nearby.
  for (const double alpha : {0.999999, 1.0, 1.000001}) {
    const ZipfRejection z(1000, alpha);
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
      const auto k = z.sample(rng);
      ASSERT_GE(k, 1u);
      ASSERT_LE(k, 1000u);
    }
  }
}

TEST(ZipfRejection, LargeUniverseWithoutTables) {
  const ZipfRejection z(1'000'000'000ULL, 0.8);
  Rng rng(5);
  std::uint64_t below_hundred = 0;
  constexpr int kDraws = 50'000;
  for (int i = 0; i < kDraws; ++i) {
    if (z.sample(rng) <= 100) ++below_hundred;
  }
  // With alpha = 0.8 over 1e9 elements the top-100 mass is small but
  // decidedly non-zero; sanity-check both directions.
  EXPECT_GT(below_hundred, 0u);
  EXPECT_LT(below_hundred, static_cast<std::uint64_t>(kDraws) / 2);
}

}  // namespace
}  // namespace webcache
