#include "p2p/p2p_client_cache.hpp"

#include <gtest/gtest.h>

#include "directory/directory.hpp"

namespace webcache::p2p {
namespace {

constexpr ObjectNum kUniverse = 2000;

P2PClientCache make_p2p(ClientNum clients = 20, std::size_t per_client = 3,
                        bool diversion = true) {
  P2PConfig cfg;
  cfg.clients = clients;
  cfg.per_client_capacity = per_client;
  cfg.enable_diversion = diversion;
  return P2PClientCache(cfg, directory::build_object_id_table(kUniverse));
}

TEST(P2P, StoreThenFetchRoundTrip) {
  auto p2p = make_p2p();
  const auto stored = p2p.store(42, 20.0, 0);
  EXPECT_TRUE(stored.stored);
  EXPECT_TRUE(p2p.contains(42));

  const auto fetched = p2p.fetch(42, 5, /*remove_on_hit=*/true);
  EXPECT_TRUE(fetched.hit);
  EXPECT_TRUE(fetched.removed);
  EXPECT_FALSE(p2p.contains(42));
}

TEST(P2P, FetchMissesAbsentObjects) {
  auto p2p = make_p2p();
  const auto fetched = p2p.fetch(7, 0);
  EXPECT_FALSE(fetched.hit);
}

TEST(P2P, FetchWithoutRemovalKeepsObject) {
  auto p2p = make_p2p();
  p2p.store(1, 20.0, 0);
  const auto fetched = p2p.fetch(1, 3, /*remove_on_hit=*/false);
  EXPECT_TRUE(fetched.hit);
  EXPECT_FALSE(fetched.removed);
  EXPECT_TRUE(p2p.contains(1));
}

TEST(P2P, DoubleStoreRefreshesInsteadOfDuplicating) {
  auto p2p = make_p2p();
  p2p.store(9, 20.0, 0);
  const auto again = p2p.store(9, 20.0, 1);
  EXPECT_TRUE(again.already_present);
  EXPECT_EQ(p2p.size(), 1u);
}

TEST(P2P, SizeNeverExceedsTotalCapacity) {
  auto p2p = make_p2p(10, 2);
  for (ObjectNum o = 0; o < 500; ++o) {
    p2p.store(o, 20.0, static_cast<ClientNum>(o % 10));
    ASSERT_LE(p2p.size(), p2p.total_capacity());
  }
  // A long-filled cache sits at capacity.
  EXPECT_EQ(p2p.size(), p2p.total_capacity());
}

TEST(P2P, DiversionKicksInWhenRootIsFull) {
  auto with = make_p2p(20, 2, /*diversion=*/true);
  for (ObjectNum o = 0; o < 300; ++o) {
    with.store(o, 20.0, static_cast<ClientNum>(o % 20));
  }
  EXPECT_GT(with.messages().diversions, 0u);

  auto without = make_p2p(20, 2, /*diversion=*/false);
  for (ObjectNum o = 0; o < 300; ++o) {
    without.store(o, 20.0, static_cast<ClientNum>(o % 20));
  }
  EXPECT_EQ(without.messages().diversions, 0u);
}

TEST(P2P, DiversionBalancesUtilization) {
  // Before any replacement pressure, diversion spreads load: with skewed
  // roots, some nodes fill first, and diversion moves the overflow to
  // leaf-set peers instead of evicting.
  auto with = make_p2p(30, 4, /*diversion=*/true);
  auto without = make_p2p(30, 4, /*diversion=*/false);
  // Store just under total capacity so diversion (not replacement) is the
  // relief valve.
  const auto n = static_cast<ObjectNum>(with.total_capacity() - 10);
  for (ObjectNum o = 0; o < n; ++o) {
    with.store(o, 20.0, static_cast<ClientNum>(o % 30));
    without.store(o, 20.0, static_cast<ClientNum>(o % 30));
  }
  // Without diversion, full roots evict while others sit empty, so strictly
  // fewer objects survive.
  EXPECT_GT(with.size(), without.size());
  EXPECT_LE(with.utilization_cv(), without.utilization_cv() + 1e-9);
}

TEST(P2P, DivertedObjectsAreFetchable) {
  auto p2p = make_p2p(20, 2, /*diversion=*/true);
  std::vector<ObjectNum> stored;
  for (ObjectNum o = 0; o < 200; ++o) {
    const auto out = p2p.store(o, 20.0, static_cast<ClientNum>(o % 20));
    if (out.stored && out.diverted) stored.push_back(o);
  }
  ASSERT_FALSE(stored.empty());
  std::size_t via_pointer = 0;
  for (const auto o : stored) {
    if (!p2p.contains(o)) continue;  // may have been displaced later
    const auto f = p2p.fetch(o, 0, /*remove_on_hit=*/false);
    EXPECT_TRUE(f.hit) << "diverted object " << o;
    via_pointer += f.via_diversion_pointer ? 1u : 0u;
  }
  EXPECT_GT(via_pointer, 0u);
}

TEST(P2P, DisplacedObjectsAreReportedAndGone) {
  auto p2p = make_p2p(5, 1, /*diversion=*/false);
  std::size_t displaced = 0;
  for (ObjectNum o = 0; o < 100; ++o) {
    const auto out = p2p.store(o, 20.0, static_cast<ClientNum>(o % 5));
    if (out.displaced) {
      ++displaced;
      EXPECT_FALSE(p2p.contains(*out.displaced));
    }
  }
  EXPECT_GT(displaced, 0u);
}

TEST(P2P, GreedyDualKeepsExpensiveObjectsInClients) {
  auto p2p = make_p2p(4, 2, /*diversion=*/false);
  // Fill with cheap objects, then store expensive ones; under pressure the
  // cheap ones should be displaced first at each node.
  for (ObjectNum o = 0; o < 8; ++o) p2p.store(o, 1.0, 0);
  for (ObjectNum o = 100; o < 140; ++o) p2p.store(o, 20.0, 0);
  std::size_t cheap_alive = 0;
  for (ObjectNum o = 0; o < 8; ++o) cheap_alive += p2p.contains(o) ? 1u : 0u;
  std::size_t expensive_alive = 0;
  for (ObjectNum o = 100; o < 140; ++o) expensive_alive += p2p.contains(o) ? 1u : 0u;
  EXPECT_GT(expensive_alive, cheap_alive);
}

TEST(P2P, HopsBoundedByOverlayExpectation) {
  auto p2p = make_p2p(64, 2);
  unsigned max_hops = 0;
  for (ObjectNum o = 0; o < 200; ++o) {
    const auto out = p2p.store(o, 20.0, static_cast<ClientNum>(o % 64));
    max_hops = std::max(max_hops, out.hops);
  }
  // Expected log_16(64) ~= 2; +1 diversion hop, +2 slack.
  EXPECT_LE(max_hops, p2p.overlay().expected_hop_bound() + 3);
}

TEST(P2P, FailClientLosesItsObjectsOnly) {
  auto p2p = make_p2p(10, 3);
  for (ObjectNum o = 0; o < 25; ++o) p2p.store(o, 20.0, static_cast<ClientNum>(o % 10));
  const auto before = p2p.size();
  const auto lost = p2p.fail_client(3);
  EXPECT_FALSE(p2p.client_alive(3));
  EXPECT_EQ(p2p.size(), before - lost.size());
  for (const auto o : lost) EXPECT_FALSE(p2p.contains(o));
  // Everything else still fetchable via the (repaired-on-use) overlay.
  for (ObjectNum o = 0; o < 25; ++o) {
    if (!p2p.contains(o)) continue;
    const auto f = p2p.fetch(o, 0, /*remove_on_hit=*/false);
    EXPECT_TRUE(f.hit) << o;
  }
}

TEST(P2P, StoreAfterFailuresStillWorks) {
  auto p2p = make_p2p(12, 2);
  for (ClientNum c : {1u, 5u, 9u}) p2p.fail_client(c);
  p2p.repair();
  for (ObjectNum o = 0; o < 60; ++o) {
    const ClientNum via = static_cast<ClientNum>(o % 12);
    if (!p2p.client_alive(via)) continue;
    const auto out = p2p.store(o, 20.0, via);
    EXPECT_TRUE(out.stored);
  }
  EXPECT_GT(p2p.size(), 0u);
}

TEST(P2P, RejectsInvalidArguments) {
  auto p2p = make_p2p(4, 1);
  EXPECT_THROW((void)p2p.store(1, 1.0, 99), std::invalid_argument);
  EXPECT_THROW((void)p2p.fetch(1, 99), std::invalid_argument);
  EXPECT_THROW((void)p2p.fail_client(99), std::invalid_argument);
  EXPECT_THROW((void)p2p.contents_of(99), std::invalid_argument);
  EXPECT_THROW((void)p2p.store(kUniverse + 5, 1.0, 0), std::out_of_range);
  P2PConfig bad;
  bad.clients = 0;
  EXPECT_THROW(P2PClientCache(bad, directory::build_object_id_table(10)),
               std::invalid_argument);
  P2PConfig ok;
  EXPECT_THROW(P2PClientCache(ok, nullptr), std::invalid_argument);
}

TEST(P2P, MessageCountersAdvance) {
  auto p2p = make_p2p(16, 1);
  for (ObjectNum o = 0; o < 100; ++o) {
    p2p.store(o, 20.0, static_cast<ClientNum>(o % 16));
  }
  const auto& m = p2p.messages();
  EXPECT_GT(m.store_receipts, 0u);
  EXPECT_GT(m.pastry_forward_messages, 0u);
}

TEST(P2P, CapacitySpreadsPreserveTheTotalBudget) {
  P2PConfig cfg;
  cfg.clients = 100;
  cfg.per_client_capacity = 6;
  for (const auto spread : {CapacitySpread::kUniform, CapacitySpread::kBimodal,
                            CapacitySpread::kProportional}) {
    cfg.capacity_spread = spread;
    std::size_t total = 0;
    for (ClientNum c = 0; c < cfg.clients; ++c) total += client_capacity(cfg, c);
    // Equal storage budget up to rounding (within 2% of uniform).
    const std::size_t uniform_total =
        static_cast<std::size_t>(cfg.clients) * cfg.per_client_capacity;
    EXPECT_NEAR(static_cast<double>(total), static_cast<double>(uniform_total),
                0.02 * static_cast<double>(uniform_total))
        << static_cast<int>(spread);
  }
}

TEST(P2P, BimodalSpreadAlternatesBigAndSmall) {
  P2PConfig cfg;
  cfg.per_client_capacity = 4;
  cfg.capacity_spread = CapacitySpread::kBimodal;
  EXPECT_EQ(client_capacity(cfg, 0), 6u);  // 1.5x
  EXPECT_EQ(client_capacity(cfg, 1), 2u);  // 0.5x
  EXPECT_EQ(client_capacity(cfg, 0) + client_capacity(cfg, 1), 8u);
}

TEST(P2P, HeterogeneousPopulationStillWorksEndToEnd) {
  P2PConfig cfg;
  cfg.clients = 30;
  cfg.per_client_capacity = 3;
  cfg.capacity_spread = CapacitySpread::kProportional;
  P2PClientCache p2p(cfg, directory::build_object_id_table(kUniverse));
  for (ObjectNum o = 0; o < 200; ++o) {
    const auto out = p2p.store(o, 20.0, static_cast<ClientNum>(o % 30));
    EXPECT_TRUE(out.stored);
    ASSERT_LE(p2p.size(), p2p.total_capacity());
  }
  // Diversion lets the skewed population fill close to its total budget.
  EXPECT_GT(p2p.size(), p2p.total_capacity() * 9 / 10);
}

}  // namespace
}  // namespace webcache::p2p
