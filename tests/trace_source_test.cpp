// Streaming trace pipeline tests: the wctrace/1 binary format, its
// mmap-backed reader, the TraceSource windowing contract, and — the
// tentpole guarantee — that streamed replays are indistinguishable from
// materialized ones, down to byte-identical "webcache-metrics/1" exports at
// any thread count.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "workload/prowgen.hpp"
#include "workload/trace_source.hpp"
#include "workload/trace_stats.hpp"
#include "workload/wctrace.hpp"

namespace webcache::workload {
namespace {

std::string temp_path(const std::string& name) { return ::testing::TempDir() + name; }

Trace small_trace() {
  ProWGenConfig cfg;
  cfg.total_requests = 20'000;
  cfg.distinct_objects = 1'500;
  cfg.seed = 7;
  cfg.generate_sizes = true;
  return ProWGen(cfg).generate();
}

void patch_byte(const std::string& path, std::size_t offset, char value) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&value, 1);
}

bool same_requests(const Trace& a, const Trace& b) {
  if (a.distinct_objects != b.distinct_objects) return false;
  if (a.requests.size() != b.requests.size()) return false;
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    const auto& x = a.requests[i];
    const auto& y = b.requests[i];
    if (x.time != y.time || x.client != y.client || x.object != y.object || x.size != y.size) {
      return false;
    }
  }
  return true;
}

// --- format round trips ---------------------------------------------------

TEST(Wctrace, BinaryRoundTripPreservesEveryField) {
  const auto trace = small_trace();
  const auto path = temp_path("roundtrip.wct");
  write_wctrace_file(path, trace);

  const auto header = read_wctrace_header(path);
  EXPECT_EQ(header.request_count, trace.requests.size());
  EXPECT_EQ(header.distinct_objects, trace.distinct_objects);

  const auto back = read_wctrace_file(path);
  EXPECT_TRUE(same_requests(trace, back));
  std::filesystem::remove(path);
}

TEST(Wctrace, TextBinaryTextRoundTripIsExact) {
  const auto trace = small_trace();
  const auto text1 = temp_path("roundtrip1.txt");
  const auto binary = temp_path("roundtrip.bin.wct");
  const auto text2 = temp_path("roundtrip2.txt");
  write_trace_file(text1, trace);

  const auto header = compile_text_to_wctrace(text1, binary);
  EXPECT_EQ(header.request_count, trace.requests.size());
  const auto back = read_wctrace_file(binary);
  write_trace_file(text2, back);

  std::ifstream a(text1, std::ios::binary);
  std::ifstream b(text2, std::ios::binary);
  std::stringstream sa, sb;
  sa << a.rdbuf();
  sb << b.rdbuf();
  EXPECT_EQ(sa.str(), sb.str());
  for (const auto& p : {text1, binary, text2}) std::filesystem::remove(p);
}

TEST(Wctrace, StreamedProWGenEqualsMaterializedGeneration) {
  ProWGenConfig cfg;
  cfg.total_requests = 15'000;
  cfg.distinct_objects = 1'000;
  cfg.seed = 11;
  const auto materialized = ProWGen(cfg).generate();

  Trace streamed;
  streamed.distinct_objects = cfg.distinct_objects;
  ProWGen(cfg).generate([&streamed](const Request& r) { streamed.requests.push_back(r); });
  EXPECT_TRUE(same_requests(materialized, streamed));
}

TEST(Wctrace, EmptyTraceRoundTrips) {
  const auto path = temp_path("empty.wct");
  Trace empty;
  write_wctrace_file(path, empty);
  const auto header = read_wctrace_header(path);
  EXPECT_EQ(header.request_count, 0u);
  EXPECT_EQ(header.distinct_objects, 0u);

  const MmapTraceSource source(path);
  EXPECT_TRUE(source.empty());
  EXPECT_TRUE(source.window(0, 128).empty());
  EXPECT_TRUE(source.verify_checksum());
  std::filesystem::remove(path);
}

// --- malformed-file rejection --------------------------------------------

TEST(Wctrace, RejectsBadMagic) {
  const auto path = temp_path("badmagic.wct");
  write_wctrace_file(path, small_trace());
  patch_byte(path, 0, 'X');
  EXPECT_FALSE(is_wctrace_file(path));
  EXPECT_THROW((void)read_wctrace_header(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Wctrace, RejectsUnsupportedVersion) {
  const auto path = temp_path("badversion.wct");
  write_wctrace_file(path, small_trace());
  patch_byte(path, 8, 99);  // version field
  EXPECT_THROW((void)read_wctrace_header(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Wctrace, RejectsCorruptRecordSize) {
  const auto path = temp_path("badrecord.wct");
  write_wctrace_file(path, small_trace());
  patch_byte(path, 12, 23);  // record_size field
  EXPECT_THROW((void)read_wctrace_header(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Wctrace, RejectsTruncatedPayload) {
  const auto path = temp_path("truncated.wct");
  write_wctrace_file(path, small_trace());
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full - 13);
  EXPECT_THROW((void)read_wctrace_header(path), std::runtime_error);
  EXPECT_THROW(MmapTraceSource{path}, std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Wctrace, RejectsTruncatedHeader) {
  const auto path = temp_path("shortheader.wct");
  write_wctrace_file(path, small_trace());
  std::filesystem::resize_file(path, kWctraceHeaderSize / 2);
  EXPECT_THROW((void)read_wctrace_header(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Wctrace, ChecksumDetectsPayloadCorruption) {
  const auto path = temp_path("corrupt.wct");
  write_wctrace_file(path, small_trace());
  {
    const MmapTraceSource source(path);
    EXPECT_TRUE(source.verify_checksum());
  }
  patch_byte(path, kWctraceHeaderSize + 5 * kWctraceRecordSize + 3, 0x5a);
  const MmapTraceSource source(path);  // header still consistent: opens fine
  EXPECT_FALSE(source.verify_checksum());
  std::filesystem::remove(path);
}

TEST(Wctrace, WriterRejectsUniverseSmallerThanReferencedIds) {
  const auto path = temp_path("universe.wct");
  WctraceWriter writer(path);
  writer.append(Request{0, 0, 41, 1});
  writer.set_distinct_objects(10);  // id 41 does not fit
  EXPECT_THROW((void)writer.finalize(), std::runtime_error);
  std::filesystem::remove(path);
}

// --- TraceSource windowing contract ---------------------------------------

TEST(TraceSourceContract, WindowsTileTheStreamExactly) {
  const auto trace = small_trace();
  const auto path = temp_path("windows.wct");
  write_wctrace_file(path, trace);
  const MmapTraceSource source(path);
  ASSERT_EQ(source.size(), trace.requests.size());
  EXPECT_EQ(source.distinct_objects(), trace.distinct_objects);

  // Walk with a chunk that does not divide the length: the tail window must
  // clamp, and every record must come back byte-for-byte.
  std::uint64_t pos = 0;
  while (pos < source.size()) {
    const auto win = source.window(pos, 777);
    ASSERT_FALSE(win.empty());
    for (std::size_t i = 0; i < win.size(); ++i) {
      const auto& expect = trace.requests[static_cast<std::size_t>(pos) + i];
      ASSERT_EQ(win[i].object, expect.object);
      ASSERT_EQ(win[i].time, expect.time);
    }
    pos += win.size();
    source.discard_consumed(pos);  // must never affect later reads' contents
  }
  EXPECT_EQ(pos, source.size());
  EXPECT_TRUE(source.window(source.size(), 16).empty());
  EXPECT_TRUE(source.window(source.size() + 100, 16).empty());
  std::filesystem::remove(path);
}

TEST(TraceSourceContract, MaterializedAdapterMatchesVectorExactly) {
  const auto trace = small_trace();
  const MaterializedTraceSource source(trace);
  EXPECT_EQ(source.size(), trace.requests.size());
  const auto all = source.window(0, trace.requests.size());
  ASSERT_EQ(all.size(), trace.requests.size());
  EXPECT_EQ(all.data(), trace.requests.data());  // zero-copy: same storage
  EXPECT_TRUE(source.window(trace.requests.size(), 4).empty());

  const auto copy = materialize(source);
  EXPECT_TRUE(same_requests(trace, copy));
}

TEST(TraceSourceContract, AnalyzeStreamedMatchesMaterialized) {
  const auto trace = small_trace();
  const auto path = temp_path("analyze.wct");
  write_wctrace_file(path, trace);
  const MmapTraceSource streamed(path);

  const auto a = analyze(trace);
  const auto b = analyze(streamed);
  EXPECT_EQ(a.total_requests, b.total_requests);
  EXPECT_EQ(a.distinct_objects, b.distinct_objects);
  EXPECT_EQ(a.one_timers, b.one_timers);
  EXPECT_EQ(a.infinite_cache_size, b.infinite_cache_size);
  EXPECT_EQ(a.frequency, b.frequency);
  std::filesystem::remove(path);
}

// --- the tentpole: streamed == materialized, byte for byte ----------------

// Sweep a compiled trace >= 10x larger than the replay chunk through the
// mmap reader at 1 and 8 threads and demand byte-identical
// "webcache-metrics/1" exports against the in-memory run. This is the
// acceptance gate for the whole streaming refactor: any divergence in
// replay order, window clamping or page release shows up here.
TEST(StreamedSweep, GoldenDiffAgainstMaterializedAcrossThreadCounts) {
  const auto trace = small_trace();
  const auto path = temp_path("golden.wct");
  write_wctrace_file(path, trace);
  const MmapTraceSource streamed(path);

  core::SweepConfig cfg;
  cfg.schemes = {sim::Scheme::kNC, sim::Scheme::kSC, sim::Scheme::kHierGD};
  cfg.cache_percents = {20, 60};
  cfg.collect_observability = true;
  cfg.base.replay_chunk = 512;  // 20k requests: ~39 windows, >= 10x the chunk
  cfg.threads = 1;

  const auto render = [](const core::SweepResult& result) {
    std::ostringstream out;
    core::write_metrics_json(out, result, "golden");
    return out.str();
  };

  const auto reference = render(core::run_sweep(trace, cfg));
  EXPECT_GT(reference.size(), 1000u);

  for (const unsigned threads : {1u, 8u}) {
    core::SweepConfig streamed_cfg = cfg;
    streamed_cfg.threads = threads;
    const auto exported = render(core::run_sweep(streamed, streamed_cfg));
    EXPECT_EQ(reference, exported) << "threads=" << threads;
  }
  std::filesystem::remove(path);
}

TEST(StreamedSweep, ClusterInfiniteCacheSizeMatchesStreamed) {
  const auto trace = small_trace();
  const auto path = temp_path("infinite.wct");
  write_wctrace_file(path, trace);
  const MmapTraceSource streamed(path);
  for (const unsigned proxies : {1u, 2u, 3u, 7u}) {
    EXPECT_EQ(core::cluster_infinite_cache_size(trace, proxies),
              core::cluster_infinite_cache_size(streamed, proxies))
        << proxies;
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace webcache::workload
