#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace webcache {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStat, MeanVarianceMinMax) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, SingleSampleHasZeroVariance) {
  RunningStat s;
  s.add(42.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, MergeMatchesPooledComputation) {
  RunningStat all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10 + i;
    all.add(x);
    (i % 3 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmptySides) {
  RunningStat a, b;
  a.add(1.0);
  a.add(3.0);
  RunningStat a_copy = a;
  a.merge(b);  // empty rhs: no change
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a_copy);  // empty lhs: becomes rhs
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStat, NumericallyStableForLargeOffsets) {
  RunningStat s;
  for (int i = 0; i < 10'000; ++i) s.add(1e9 + (i % 2));
  EXPECT_NEAR(s.mean(), 1e9 + 0.5, 1e-3);
  EXPECT_NEAR(s.variance(), 0.25, 1e-3);
}

TEST(Histogram, CountsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(5.5);
  h.add(-3.0);   // clamps into bucket 0
  h.add(100.0);  // clamps into last bucket
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(5), 1u);
  EXPECT_EQ(h.bucket_count(9), 1u);
}

TEST(Histogram, QuantileInterpolates) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1.5);
  EXPECT_NEAR(h.quantile(1.0), 100.0, 1.5);
}

TEST(Histogram, RejectsBadGeometry) {
  EXPECT_THROW(Histogram(0.0, 0.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 0.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, RenderProducesOneLinePerBucket) {
  Histogram h(0.0, 4.0, 4);
  h.add(1.0);
  h.add(3.0);
  const std::string text = h.render(10);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
}

}  // namespace
}  // namespace webcache
