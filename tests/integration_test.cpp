// End-to-end tests across the whole stack: the experiment facade, directory
// consistency against P2P ground truth, paper-shape properties of full
// sweeps, and trace-file round trips through the simulator.
#include <gtest/gtest.h>

#include <sstream>

#include "core/experiment.hpp"
#include "workload/prowgen.hpp"
#include "workload/trace_stats.hpp"
#include "workload/ucb_like.hpp"

namespace webcache {
namespace {

workload::Trace paper_like_trace(std::uint64_t requests = 120'000, ObjectNum objects = 3'000) {
  workload::ProWGenConfig cfg;
  cfg.total_requests = requests;
  cfg.distinct_objects = objects;
  cfg.seed = 77;
  return workload::ProWGen(cfg).generate();
}

TEST(Integration, SweepProducesFullGrid) {
  const auto trace = paper_like_trace(60'000, 2'000);
  core::SweepConfig cfg;
  cfg.cache_percents = {10, 50, 100};
  const auto result = core::run_sweep(trace, cfg);
  ASSERT_EQ(result.metrics.size(), 3u);
  ASSERT_EQ(result.metrics[0].size(), sim::kAllSchemes.size());
  EXPECT_GT(result.infinite_cache_size, 0u);
  for (const auto& row : result.metrics) {
    for (const auto& m : row) {
      EXPECT_EQ(m.requests, trace.size());
    }
  }
  // NC's own gain is identically zero.
  EXPECT_EQ(result.gains[0][0], 0.0);
}

TEST(Integration, SweepIsDeterministicAcrossThreadCounts) {
  const auto trace = paper_like_trace(40'000, 1'500);
  core::SweepConfig serial;
  serial.cache_percents = {20, 60};
  serial.threads = 1;
  core::SweepConfig parallel = serial;
  parallel.threads = 8;
  const auto a = core::run_sweep(trace, serial);
  const auto b = core::run_sweep(trace, parallel);
  for (std::size_t i = 0; i < a.gains.size(); ++i) {
    for (std::size_t k = 0; k < a.gains[i].size(); ++k) {
      EXPECT_EQ(a.gains[i][k], b.gains[i][k]);
    }
  }
}

TEST(Integration, PaperOrderingAtSmallCaches) {
  // Figure 2's qualitative result at a small proxy cache: every EC scheme
  // beats its base scheme, coordination ranks FC > SC > NC, and Hier-GD
  // beats SC-EC, SC, NC-EC and FC.
  const auto trace = paper_like_trace();
  core::SweepConfig cfg;
  cfg.cache_percents = {10};
  const auto r = core::run_sweep(trace, cfg);
  const auto gain = [&](sim::Scheme s) {
    for (std::size_t k = 0; k < r.schemes.size(); ++k) {
      if (r.schemes[k] == s) return r.gains[0][k];
    }
    ADD_FAILURE() << "scheme missing";
    return 0.0;
  };
  using sim::Scheme;
  EXPECT_GT(gain(Scheme::kSC), 0.0);
  // At the smallest cache the FC-vs-SC margin is within noise on strongly
  // temporal workloads (SC's LFU-DA adapts; FC's values are frequency-only);
  // the strict ordering is asserted at 30% below.
  EXPECT_GT(gain(Scheme::kFC), gain(Scheme::kSC) - 2.0);
  EXPECT_GT(gain(Scheme::kNC_EC), 0.0);
  EXPECT_GT(gain(Scheme::kSC_EC), gain(Scheme::kSC));
  EXPECT_GT(gain(Scheme::kFC_EC), gain(Scheme::kFC));
  EXPECT_GT(gain(Scheme::kHierGD), gain(Scheme::kSC_EC) - 2.0);  // within noise or better
  EXPECT_GT(gain(Scheme::kHierGD), gain(Scheme::kSC));
  EXPECT_GT(gain(Scheme::kHierGD), gain(Scheme::kNC_EC));
  EXPECT_GT(gain(Scheme::kHierGD), gain(Scheme::kFC));
  // Hier-GD tracks the idealized FC-EC bound closely; on strongly temporal
  // workloads greedy-dual's recency sensitivity lets it edge slightly past
  // the frequency-only bound (see EXPERIMENTS.md), so allow a small margin.
  EXPECT_GE(gain(Scheme::kFC_EC), gain(Scheme::kHierGD) - 6.0);
}

TEST(Integration, PaperOrderingAtModerateCaches) {
  // At 30% of the infinite cache size every pairwise ordering of Figure 2
  // holds strictly.
  const auto trace = paper_like_trace();
  core::SweepConfig cfg;
  cfg.cache_percents = {30};
  const auto r = core::run_sweep(trace, cfg);
  const auto gain = [&](sim::Scheme s) {
    for (std::size_t k = 0; k < r.schemes.size(); ++k) {
      if (r.schemes[k] == s) return r.gains[0][k];
    }
    ADD_FAILURE() << "scheme missing";
    return 0.0;
  };
  using sim::Scheme;
  EXPECT_GT(gain(Scheme::kFC), gain(Scheme::kSC));
  EXPECT_GT(gain(Scheme::kSC), 0.0);
  EXPECT_GT(gain(Scheme::kNC_EC), 0.0);
  EXPECT_GT(gain(Scheme::kSC_EC), gain(Scheme::kSC));
  EXPECT_GT(gain(Scheme::kFC_EC), gain(Scheme::kFC));
  EXPECT_GT(gain(Scheme::kFC_EC), gain(Scheme::kSC_EC));
  EXPECT_GT(gain(Scheme::kHierGD), gain(Scheme::kSC));
  EXPECT_GT(gain(Scheme::kHierGD), gain(Scheme::kNC_EC));
  EXPECT_GE(gain(Scheme::kFC_EC), gain(Scheme::kHierGD));
}

TEST(Integration, GainsShrinkAsCachesGrow) {
  const auto trace = paper_like_trace();
  core::SweepConfig cfg;
  cfg.cache_percents = {10, 100};
  cfg.schemes = {sim::Scheme::kSC_EC, sim::Scheme::kHierGD, sim::Scheme::kFC_EC};
  const auto r = core::run_sweep(trace, cfg);
  for (std::size_t k = 0; k < r.schemes.size(); ++k) {
    EXPECT_GT(r.gains[0][k], r.gains[1][k]) << sim::to_string(r.schemes[k]);
  }
}

TEST(Integration, ExactDirectoryMirrorsP2PContents) {
  const auto trace = paper_like_trace(30'000, 1'500);
  sim::SimConfig cfg;
  cfg.scheme = sim::Scheme::kHierGD;
  cfg.proxy_capacity = 150;
  cfg.clients_per_cluster = 30;
  cfg.client_cache_capacity = 3;
  sim::Simulator sim(cfg, trace);
  (void)sim.run();
  for (unsigned p = 0; p < cfg.num_proxies; ++p) {
    const auto* p2p = sim.p2p_of(p);
    const auto* dir = sim.directory_of(p);
    ASSERT_NE(p2p, nullptr);
    ASSERT_NE(dir, nullptr);
    // Every cached object is in the directory, and the directory holds
    // exactly the cached set (no stale entries, no misses).
    EXPECT_EQ(dir->entry_count(), p2p->size());
    for (ObjectNum o = 0; o < trace.distinct_objects; ++o) {
      ASSERT_EQ(dir->may_contain(o), p2p->contains(o)) << "proxy " << p << " object " << o;
    }
  }
}

TEST(Integration, UcbLikeWorkloadShowsSameOrderingWithLowerGains) {
  workload::UcbLikeConfig ucb;
  ucb.scale = 0.01;  // ~92k requests
  const auto ucb_trace = workload::generate_ucb_like(ucb);
  const auto synth_trace = paper_like_trace(92'000, 9'200);

  core::SweepConfig cfg;
  cfg.cache_percents = {30};
  cfg.schemes = {sim::Scheme::kSC, sim::Scheme::kFC_EC, sim::Scheme::kHierGD};
  const auto r_ucb = core::run_sweep(ucb_trace, cfg);
  const auto r_synth = core::run_sweep(synth_trace, cfg);

  // Same ordering...
  EXPECT_GT(r_ucb.gains[0][1], r_ucb.gains[0][0]);  // FC-EC > SC
  EXPECT_GT(r_ucb.gains[0][2], r_ucb.gains[0][0]);  // Hier-GD > SC
  // ...and the heavier one-timer mix yields lower absolute FC-EC gains than
  // the default synthetic workload (paper Fig. 2(b) vs 2(a)).
  EXPECT_LT(r_ucb.gains[0][1], r_synth.gains[0][1]);
}

TEST(Integration, TraceFileRoundTripThroughSimulator) {
  const auto trace = paper_like_trace(20'000, 1'000);
  std::stringstream buffer;
  workload::write_trace(buffer, trace);
  const auto loaded = workload::read_trace(buffer);

  sim::SimConfig cfg;
  cfg.scheme = sim::Scheme::kSC_EC;
  cfg.proxy_capacity = 100;
  const auto a = sim::run_simulation(cfg, trace);
  const auto b = sim::run_simulation(cfg, loaded);
  EXPECT_EQ(a.total_latency, b.total_latency);
  EXPECT_EQ(a.hits_local_proxy, b.hits_local_proxy);
}

TEST(Integration, PrintGainTableFormat) {
  const auto trace = paper_like_trace(20'000, 1'000);
  core::SweepConfig cfg;
  cfg.cache_percents = {50};
  cfg.schemes = {sim::Scheme::kSC, sim::Scheme::kHierGD};
  const auto r = core::run_sweep(trace, cfg);
  std::ostringstream out;
  core::print_gain_table(out, r, "test table");
  const auto text = out.str();
  EXPECT_NE(text.find("test table"), std::string::npos);
  EXPECT_NE(text.find("SC"), std::string::npos);
  EXPECT_NE(text.find("Hier-GD"), std::string::npos);
  EXPECT_NE(text.find("50"), std::string::npos);
}

TEST(Integration, ClusterInfiniteCacheSizeMatchesDefinition) {
  workload::Trace t;
  t.distinct_objects = 3;
  // Round-robin over 2 proxies: proxy 0 sees requests 0, 2, 4, ...
  // proxy-0 stream: objects 0, 0, 1 -> one multi-referenced object.
  for (const ObjectNum o : {0u, 2u, 0u, 2u, 1u, 2u}) {
    t.requests.push_back(Request{0, 0, o, 1});
  }
  EXPECT_EQ(core::cluster_infinite_cache_size(t, 2), 1u);
  EXPECT_EQ(core::cluster_infinite_cache_size(t, 1), 2u);  // objects 0 and 2
  EXPECT_THROW((void)core::cluster_infinite_cache_size(t, 0), std::invalid_argument);
}

TEST(Integration, RunSingleComputesGain) {
  const auto trace = paper_like_trace(20'000, 1'000);
  sim::SimConfig cfg;
  cfg.scheme = sim::Scheme::kHierGD;
  cfg.proxy_capacity = 80;
  const auto single = core::run_single(trace, cfg);
  EXPECT_GT(single.gain_percent, 0.0);
  EXPECT_LT(single.metrics.mean_latency(), single.baseline.mean_latency());

  cfg.scheme = sim::Scheme::kNC;
  const auto nc = core::run_single(trace, cfg);
  EXPECT_EQ(nc.gain_percent, 0.0);
}

TEST(Integration, EmptyInputsRejected) {
  const workload::Trace empty;
  core::SweepConfig cfg;
  EXPECT_THROW((void)core::run_sweep(empty, cfg), std::invalid_argument);
  const auto trace = paper_like_trace(10'000, 500);
  cfg.cache_percents.clear();
  EXPECT_THROW((void)core::run_sweep(trace, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace webcache
