// Byte-identity contract of the pipelined execution engine
// (SimConfig::pipeline_window): prefetches are advisory and the
// address-generation phase is read-only, so EVERY window value must produce
// byte-identical exports — sequential or sharded, in memory or streamed,
// with or without churn/loss, at any sweep thread count. Also the regression
// gate for the 256-cluster cooperation digests (ClusterBitset): sharded
// cooperative runs must work above the old 64-proxy limit and stay
// shard-count independent there.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/cluster_bitset.hpp"
#include "core/experiment.hpp"
#include "fault/churn_schedule.hpp"
#include "obs/registry.hpp"
#include "sim/simulator.hpp"
#include "sim/step_pipeline.hpp"
#include "workload/prowgen.hpp"
#include "workload/wctrace.hpp"

namespace {

using namespace webcache;

workload::Trace pipeline_trace() {
  workload::ProWGenConfig wl;
  wl.total_requests = 30'000;
  wl.distinct_objects = 3'000;
  wl.seed = 1003;
  return workload::ProWGen(wl).generate();
}

sim::SimConfig pipeline_config(sim::Scheme scheme) {
  sim::SimConfig cfg;
  cfg.scheme = scheme;
  cfg.num_proxies = 8;
  cfg.proxy_capacity = 150;
  cfg.clients_per_cluster = 20;
  cfg.client_cache_capacity = 4;
  cfg.shard_epoch = 1024;
  return cfg;
}

std::string export_of(sim::SimConfig cfg, const workload::Trace& trace) {
  cfg.registry = std::make_shared<obs::Registry>();
  (void)sim::run_simulation(cfg, trace);
  std::ostringstream out;
  cfg.registry->write_json(out, "pipeline_determinism");
  return out.str();
}

std::string export_of(sim::SimConfig cfg, const workload::TraceSource& source) {
  cfg.registry = std::make_shared<obs::Registry>();
  sim::Simulator simulator(cfg, source);
  (void)simulator.run();
  std::ostringstream out;
  cfg.registry->write_json(out, "pipeline_determinism");
  return out.str();
}

std::vector<sim::Scheme> all_schemes_plus_squirrel() {
  std::vector<sim::Scheme> schemes(sim::kAllSchemes.begin(), sim::kAllSchemes.end());
  schemes.push_back(sim::Scheme::kSquirrel);
  return schemes;
}

// 0 resolves to the process default (16 unless WEBCACHE_PIPELINE overrides);
// the explicit values cover disabled, shallow, and deeper-than-default.
constexpr unsigned kWindows[] = {1U, 4U, 32U, 0U};

TEST(PipelineDeterminism, SequentialExportsAreByteIdenticalForEveryWindow) {
  const auto trace = pipeline_trace();
  for (const auto scheme : all_schemes_plus_squirrel()) {
    auto cfg = pipeline_config(scheme);
    cfg.pipeline_window = 1;
    const std::string reference = export_of(cfg, trace);
    for (const unsigned window : kWindows) {
      if (window == 1) continue;
      cfg.pipeline_window = window;
      EXPECT_EQ(reference, export_of(cfg, trace))
          << sim::to_string(scheme) << " window=" << window;
    }
  }
}

TEST(PipelineDeterminism, ShardedExportsAreWindowAndShardCountIndependent) {
  const auto trace = pipeline_trace();
  for (const auto scheme : {sim::Scheme::kSC, sim::Scheme::kSC_EC, sim::Scheme::kHierGD}) {
    auto cfg = pipeline_config(scheme);
    cfg.sim_shards = 1;
    cfg.pipeline_window = 1;
    const std::string reference = export_of(cfg, trace);
    for (const unsigned shards : {1U, 8U}) {
      cfg.sim_shards = shards;
      for (const unsigned window : kWindows) {
        cfg.pipeline_window = window;
        EXPECT_EQ(reference, export_of(cfg, trace))
            << sim::to_string(scheme) << " shards=" << shards << " window=" << window;
      }
    }
  }
}

TEST(PipelineDeterminism, StreamedWctReplayMatchesInMemoryAtEveryWindow) {
  const auto trace = pipeline_trace();
  const std::string path = ::testing::TempDir() + "pipeline_determinism.wct";
  workload::write_wctrace_file(path, trace);
  const workload::MmapTraceSource source(path);

  for (const auto scheme : {sim::Scheme::kSC, sim::Scheme::kHierGD}) {
    // The two engines differ in detail for cooperative schemes (epoch-digest
    // staleness), so each engine pins its own in-memory window=1 reference.
    for (const unsigned shards : {0U, 8U}) {
      auto cfg = pipeline_config(scheme);
      cfg.sim_shards = shards;
      cfg.pipeline_window = 1;
      const std::string reference = export_of(cfg, trace);
      // A tiny replay chunk forces blocks to straddle many windows; chunking
      // must never interact with the pipeline blocking.
      cfg.replay_chunk = 512;
      for (const unsigned window : kWindows) {
        cfg.pipeline_window = window;
        EXPECT_EQ(reference, export_of(cfg, source))
            << sim::to_string(scheme) << " shards=" << shards << " window=" << window;
      }
    }
  }
  std::filesystem::remove(path);
}

TEST(PipelineDeterminism, ChurnAndLossRunsAreWindowIndependent) {
  const auto trace = pipeline_trace();
  for (const auto scheme : {sim::Scheme::kHierGD, sim::Scheme::kSquirrel}) {
    auto cfg = pipeline_config(scheme);
    fault::ChurnSpec spec;
    spec.start = 5'000;
    spec.crashes = 4;
    spec.recover_after = 4'000;
    spec.joins = 2;
    spec.repair_every = 7'000;
    cfg.churn_events = fault::make_schedule(spec, trace.size(), cfg.num_proxies,
                                            cfg.clients_per_cluster);
    cfg.p2p_loss_rate = 0.02;
    cfg.pipeline_window = 1;
    const std::string reference = export_of(cfg, trace);
    for (const unsigned window : {4U, 32U, 0U}) {
      cfg.pipeline_window = window;
      EXPECT_EQ(reference, export_of(cfg, trace))
          << sim::to_string(scheme) << " window=" << window;
    }
  }
}

TEST(PipelineDeterminism, SweepMetricsExportIsWindowAndThreadCountIndependent) {
  const auto trace = pipeline_trace();
  core::SweepConfig sweep;
  sweep.schemes = {sim::Scheme::kSC, sim::Scheme::kHierGD};
  sweep.cache_percents = {1.0, 5.0};
  sweep.base = pipeline_config(sim::Scheme::kNC);
  sweep.collect_observability = true;

  std::string reference;
  for (const unsigned window : {1U, 0U}) {
    for (const unsigned threads : {1U, 8U}) {
      sweep.base.pipeline_window = window;
      sweep.threads = threads;
      const auto result = core::run_sweep(trace, sweep);
      std::ostringstream out;
      core::write_metrics_json(out, result, "pipeline_sweep");
      if (reference.empty()) {
        reference = out.str();
      } else {
        EXPECT_EQ(reference, out.str()) << "window=" << window << " threads=" << threads;
      }
    }
  }
}

TEST(PipelineWindow, ResolutionClampsAndDefaults) {
  // 0 defers to the process default — the engine's own (16, pipeline on)
  // unless the environment overrides it, so the suite stays green on the
  // WEBCACHE_PIPELINE=OFF sanitizer leg too.
  EXPECT_EQ(sim::resolve_pipeline_window(0), sim::default_pipeline_window());
  if (std::getenv("WEBCACHE_PIPELINE") == nullptr) {
    EXPECT_EQ(sim::default_pipeline_window(), sim::kDefaultPipelineWindow);
  }
  EXPECT_EQ(sim::resolve_pipeline_window(1), 1U);
  EXPECT_EQ(sim::resolve_pipeline_window(32), 32U);
  EXPECT_EQ(sim::resolve_pipeline_window(1'000'000), sim::kMaxPipelineWindow);
}

// --- ClusterBitset: the 256-cluster cooperation digests ----------------------

TEST(ClusterBitset, RingScanMatchesSingleWordSemanticsBelow64) {
  // Ring order from local+1 upward with wraparound, never returning local —
  // the exact contract of the old 64-bit scan.
  ClusterBitset mask;
  mask.set(3);
  mask.set(10);
  EXPECT_EQ(first_holder_in_ring(mask, 5), 10);
  EXPECT_EQ(first_holder_in_ring(mask, 10), 3);  // wraps past the top
  EXPECT_EQ(first_holder_in_ring(mask, 3), 10);
  mask.reset(10);
  EXPECT_EQ(first_holder_in_ring(mask, 3), -1);  // only the local bit left
  EXPECT_EQ(first_holder_in_ring(ClusterBitset{}, 0), -1);
}

TEST(ClusterBitset, RingScanCrossesWordBoundaries) {
  ClusterBitset mask;
  mask.set(2);    // word 0
  mask.set(70);   // word 1
  mask.set(200);  // word 3
  EXPECT_EQ(first_holder_in_ring(mask, 5), 70);    // higher word first
  EXPECT_EQ(first_holder_in_ring(mask, 70), 200);  // next word up
  EXPECT_EQ(first_holder_in_ring(mask, 200), 2);   // wraps to word 0
  EXPECT_EQ(first_holder_in_ring(mask, 255), 2);
  EXPECT_EQ(first_holder_in_ring(mask, 0), 2);     // later bit in own word
}

TEST(ManyProxies, ShardingIsSupportedUpTo256Clusters) {
  auto cfg = pipeline_config(sim::Scheme::kSC);
  cfg.num_proxies = 72;  // above the old 64-bit digest limit
  EXPECT_TRUE(sim::Simulator::sharding_supported(cfg));
  cfg.num_proxies = 256;
  EXPECT_TRUE(sim::Simulator::sharding_supported(cfg));
  cfg.num_proxies = 257;  // beyond the fixed ClusterBitset width
  EXPECT_FALSE(sim::Simulator::sharding_supported(cfg));

  auto hier = pipeline_config(sim::Scheme::kHierGD);
  hier.num_proxies = 72;
  EXPECT_TRUE(sim::Simulator::sharding_supported(hier));
}

TEST(ManyProxies, CooperativeExportsAreShardCountIndependentAt72Proxies) {
  const auto trace = pipeline_trace();
  auto cfg = pipeline_config(sim::Scheme::kSC);
  cfg.num_proxies = 72;
  cfg.proxy_capacity = 40;  // smaller per-proxy share over the same universe
  cfg.sim_shards = 1;
  const std::string one = export_of(cfg, trace);
  for (const unsigned shards : {2U, 8U}) {
    cfg.sim_shards = shards;
    EXPECT_EQ(one, export_of(cfg, trace)) << "shards=" << shards;
  }
  // The sequential engine handles > 64 cooperating proxies via its fallback
  // probe loops; it must still serve every request.
  cfg.sim_shards = 0;
  cfg.registry = std::make_shared<obs::Registry>();
  const auto metrics = sim::run_simulation(cfg, trace);
  EXPECT_EQ(metrics.requests, trace.size());
  EXPECT_EQ(metrics.total_hits() + metrics.server_fetches, metrics.requests);
}

}  // namespace
