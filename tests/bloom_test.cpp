#include "bloom/bloom_filter.hpp"
#include "bloom/counting_bloom.hpp"

#include <gtest/gtest.h>

#include "common/sha1.hpp"

namespace webcache::bloom {
namespace {

Uint128 key(std::uint64_t i) { return Sha1::hash128("key/" + std::to_string(i)); }

TEST(BloomFilter, NoFalseNegatives) {
  BloomFilter f(1000, 0.01);
  for (std::uint64_t i = 0; i < 1000; ++i) f.insert(key(i));
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EXPECT_TRUE(f.may_contain(key(i))) << i;
  }
}

TEST(BloomFilter, FalsePositiveRateNearTarget) {
  constexpr std::size_t kN = 10'000;
  constexpr double kTarget = 0.01;
  BloomFilter f(kN, kTarget);
  for (std::uint64_t i = 0; i < kN; ++i) f.insert(key(i));

  std::size_t fp = 0;
  constexpr std::size_t kProbes = 20'000;
  for (std::uint64_t i = 0; i < kProbes; ++i) {
    if (f.may_contain(key(1'000'000 + i))) ++fp;
  }
  const double rate = static_cast<double>(fp) / kProbes;
  EXPECT_LT(rate, kTarget * 3.0);
  EXPECT_GT(rate, kTarget / 10.0);  // a filter with no FPs at all is suspicious
}

TEST(BloomFilter, EstimatedFprTracksTheory) {
  BloomFilter f(5000, 0.02);
  for (std::uint64_t i = 0; i < 5000; ++i) f.insert(key(i));
  EXPECT_NEAR(f.estimated_fpr(), f.theoretical_fpr(5000), 0.01);
}

TEST(BloomFilter, ClearEmptiesFilter) {
  BloomFilter f(100, 0.01);
  for (std::uint64_t i = 0; i < 100; ++i) f.insert(key(i));
  f.clear();
  EXPECT_EQ(f.inserted_count(), 0u);
  EXPECT_EQ(f.fill_ratio(), 0.0);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_FALSE(f.may_contain(key(i)));
}

TEST(BloomFilter, TighterTargetUsesMoreMemory) {
  const BloomFilter loose(10'000, 0.1);
  const BloomFilter tight(10'000, 0.001);
  EXPECT_GT(tight.memory_bytes(), loose.memory_bytes());
  EXPECT_GT(tight.hash_count(), loose.hash_count());
}

TEST(BloomFilter, RejectsBadTarget) {
  EXPECT_THROW(BloomFilter(100, 0.0), std::invalid_argument);
  EXPECT_THROW(BloomFilter(100, 1.0), std::invalid_argument);
}

TEST(BloomFilter, ExplicitGeometryRespected) {
  const BloomFilter f(std::size_t{1024}, 3u);
  EXPECT_EQ(f.bit_count(), 1024u);
  EXPECT_EQ(f.hash_count(), 3u);
  EXPECT_EQ(f.memory_bytes(), 1024u / 8);
}

// --- counting bloom ---------------------------------------------------------

TEST(CountingBloom, InsertEraseRestoresAbsence) {
  CountingBloomFilter f(1000, 0.01);
  for (std::uint64_t i = 0; i < 500; ++i) f.insert(key(i));
  for (std::uint64_t i = 0; i < 500; ++i) EXPECT_TRUE(f.may_contain(key(i)));
  for (std::uint64_t i = 0; i < 500; ++i) f.erase(key(i));
  // After erasing everything, nothing should remain (no saturation at this
  // load, so deletions are exact).
  std::size_t still_present = 0;
  for (std::uint64_t i = 0; i < 500; ++i) {
    if (f.may_contain(key(i))) ++still_present;
  }
  EXPECT_EQ(still_present, 0u);
  EXPECT_EQ(f.saturation_events(), 0u);
}

TEST(CountingBloom, NoFalseNegativesUnderChurn) {
  // Directory-like workload: rolling window of live keys.
  CountingBloomFilter f(2000, 0.01);
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    f.insert(key(i));
    if (i >= 2000) f.erase(key(i - 2000));
    // The most recent 100 keys must always be present.
    if (i >= 100 && i % 97 == 0) {
      for (std::uint64_t j = i - 99; j <= i; ++j) {
        ASSERT_TRUE(f.may_contain(key(j))) << "i=" << i << " j=" << j;
      }
    }
  }
}

TEST(CountingBloom, SaturationCountsDuplicates) {
  CountingBloomFilter f(std::size_t{64}, 2u);
  // Insert the same key far beyond the 4-bit counter range.
  for (int i = 0; i < 40; ++i) f.insert(key(1));
  EXPECT_GT(f.saturation_events(), 0u);
  // Saturated counters never decrement: the key stays (a false positive,
  // never a false negative).
  for (int i = 0; i < 40; ++i) f.erase(key(1));
  EXPECT_TRUE(f.may_contain(key(1)));
}

TEST(CountingBloom, ClearResets) {
  CountingBloomFilter f(100, 0.01);
  f.insert(key(1));
  f.clear();
  EXPECT_FALSE(f.may_contain(key(1)));
  EXPECT_EQ(f.saturation_events(), 0u);
}

TEST(CountingBloom, EstimatedFprGrowsWithLoad) {
  CountingBloomFilter f(1000, 0.01);
  const double empty = f.estimated_fpr();
  for (std::uint64_t i = 0; i < 1000; ++i) f.insert(key(i));
  EXPECT_GT(f.estimated_fpr(), empty);
}

}  // namespace
}  // namespace webcache::bloom
