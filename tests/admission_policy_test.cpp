// Modern-policy frontier: TinyLFU admission and the W-TinyLFU/ARC eviction
// policies. Covers (a) the admission sketch's halving step, which is keyed
// to the filter's own operation count and therefore deterministic for any
// thread count, shard count, or replay chunking; (b) ARC's p-adaptation
// swinging toward recency under ghost hits in B1 and back toward frequency
// under loop workloads that hit B2; (c) W-TinyLFU's scan resistance versus
// LRU; and (d) byte-identical metrics exports for the new policies across
// 1 vs 8 worker threads and 1 vs 8 shards, including churn + loss runs.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cache/admission.hpp"
#include "cache/arc.hpp"
#include "cache/lru.hpp"
#include "cache/policy.hpp"
#include "cache/w_tinylfu.hpp"
#include "core/experiment.hpp"
#include "fault/churn_schedule.hpp"
#include "obs/registry.hpp"
#include "sim/simulator.hpp"
#include "workload/prowgen.hpp"

namespace {

using namespace webcache;

// --- AdmissionFilter ------------------------------------------------------

TEST(AdmissionFilter, HalvingIsKeyedToOperationCount) {
  cache::AdmissionFilter filter(100);
  ASSERT_EQ(filter.sample_period(), 1'000u);

  std::uint64_t signalled = 0;
  for (std::uint64_t op = 1; op <= 3 * filter.sample_period(); ++op) {
    const bool halved = filter.record_access(static_cast<ObjectNum>(op % 50));
    signalled += halved ? 1U : 0U;
    // The aging step fires on exactly every sample_period()-th reference.
    EXPECT_EQ(halved, op % filter.sample_period() == 0) << "op " << op;
  }
  EXPECT_EQ(filter.halvings(), 3u);
  EXPECT_EQ(signalled, 3u);
}

TEST(AdmissionFilter, IdenticalStreamsYieldIdenticalEstimates) {
  cache::AdmissionFilter a(64), b(64);
  for (std::uint64_t op = 0; op < 5'000; ++op) {
    const auto object = static_cast<ObjectNum>((op * op + 7) % 97);
    a.record_access(object);
    b.record_access(object);
  }
  EXPECT_EQ(a.halvings(), b.halvings());
  for (ObjectNum object = 0; object < 97; ++object) {
    EXPECT_EQ(a.estimate(object), b.estimate(object)) << "object " << object;
  }
}

TEST(AdmissionFilter, AdmitsFrequentOverRareAndDecaysOnHalving) {
  cache::AdmissionFilter filter(64);
  for (int i = 0; i < 12; ++i) filter.record_access(1);
  filter.record_access(2);
  EXPECT_GT(filter.estimate(1), filter.estimate(2));
  EXPECT_TRUE(filter.admit(1, 2));
  EXPECT_FALSE(filter.admit(2, 1));
  // Ties keep the incumbent: a never-seen candidate loses to itself.
  EXPECT_FALSE(filter.admit(3, 4));

  const unsigned before = filter.estimate(1);
  // Drive the op counter to the halving boundary with distinct one-timers.
  ObjectNum filler = 1'000;
  while (!filter.record_access(filler++)) {
  }
  EXPECT_EQ(filter.halvings(), 1u);
  EXPECT_LT(filter.estimate(1), before);
}

// --- ARC p-adaptation -----------------------------------------------------

/// Drives `arc` with one request: a hit when cached, an insert otherwise.
void request(cache::ArcCache& arc, ObjectNum object) {
  if (arc.contains(object)) {
    arc.access(object, 1.0);
  } else {
    (void)arc.insert(object, 1.0);
  }
}

TEST(ArcCache, B1GhostHitsGrowTheRecencyTarget) {
  cache::ArcCache arc(32);
  // Seed a frequency core so REPLACE has a T2 to protect.
  for (ObjectNum o = 0; o < 8; ++o) request(arc, o);
  for (ObjectNum o = 0; o < 8; ++o) request(arc, o);  // -> T2
  // Scan: fills T1, then demotes T1 LRUs into the B1 ghost list.
  for (ObjectNum o = 100; o < 140; ++o) request(arc, o);
  ASSERT_EQ(arc.target_p(), 0u);
  ASSERT_GT(arc.ghost_size(), 0u);

  // Re-request the MOST RECENTLY evicted scan objects (older ghosts have
  // already been forgotten by the B1 depth bound): each B1 ghost hit votes
  // that recency is undervalued, so p must grow.
  for (ObjectNum o = 108; o < 116; ++o) request(arc, o);
  EXPECT_GT(arc.ghost_hits_b1(), 0u);
  EXPECT_GT(arc.target_p(), 0u);
}

TEST(ArcCache, LoopWorkloadSwingsTheTargetBackTowardFrequency) {
  cache::ArcCache arc(32);
  // Seed a frequency core into T2 (a pure loop over an all-T1 cache evicts
  // without ghosts — ARC by design does not adapt there).
  for (ObjectNum o = 0; o < 8; ++o) request(arc, o);
  for (ObjectNum o = 0; o < 8; ++o) request(arc, o);
  // A cyclic loop wider than T1's share but within ghost reach (any wider
  // and the B1 window can never catch the wrap point — ARC then correctly
  // degenerates to LRU-like cycling with no adaptation): its B1 ghost hits
  // pump p up, and the growing recency share squeezes the seed core out of
  // T2 into the B2 ghost list.
  std::size_t max_p = 0;
  for (int lap = 0; lap < 12; ++lap) {
    for (ObjectNum o = 100; o < 128; ++o) {
      request(arc, o);
      max_p = std::max(max_p, arc.target_p());
    }
  }
  EXPECT_GT(arc.ghost_hits_b1(), 0u);
  ASSERT_GT(max_p, 0u);

  // Re-requesting the squeezed-out frequency core hits B2: each ghost hit
  // votes that frequency is undervalued, so p must come back down.
  for (ObjectNum o = 0; o < 8; ++o) request(arc, o);
  EXPECT_GT(arc.ghost_hits_b2(), 0u);
  EXPECT_LT(arc.target_p(), max_p);
}

TEST(ArcCache, GhostListsStayBounded) {
  cache::ArcCache arc(16);
  for (ObjectNum o = 0; o < 1'000; ++o) request(arc, o);
  EXPECT_LE(arc.size(), arc.capacity());
  // ARC's directory (cached + ghosts) is at most 2c entries.
  EXPECT_LE(arc.size() + arc.ghost_size(), 2 * arc.capacity());
}

// --- W-TinyLFU scan resistance --------------------------------------------

TEST(PolicyFrontier, WTinyLfuBeatsLruUnderAScanFloodedHotSet) {
  // 50 hot objects in a 60-slot cache, interleaved 1:1 with one-time scan
  // objects: LRU's reuse window (50 hot + 50 scans) overflows the cache and
  // thrashes, while the admission duel rejects the scans.
  const std::size_t kCapacity = 60;
  const ObjectNum kHot = 50;
  cache::WTinyLfuCache wtlfu(kCapacity);
  cache::LruCache lru(kCapacity);

  const auto drive = [](cache::Cache& cache, ObjectNum object) {
    if (cache.contains(object)) {
      cache.access(object, 1.0);
      return 1;
    }
    (void)cache.insert(object, 1.0);
    return 0;
  };

  int wtlfu_hits = 0, lru_hits = 0;
  for (ObjectNum round = 0; round < 4'000; ++round) {
    const ObjectNum hot = round % kHot;
    const ObjectNum scan = 10'000 + round;  // never repeats
    wtlfu_hits += drive(wtlfu, hot) + drive(wtlfu, scan);
    lru_hits += drive(lru, hot) + drive(lru, scan);
  }
  EXPECT_GT(wtlfu_hits, lru_hits);
  // The hot set must actually be resident, not just marginally ahead.
  EXPECT_GT(wtlfu_hits, 3'000);
}

// --- export determinism across threads and shards -------------------------

workload::Trace policy_trace() {
  workload::ProWGenConfig wl;
  wl.total_requests = 30'000;
  wl.distinct_objects = 3'000;
  wl.seed = 2003;
  return workload::ProWGen(wl).generate();
}

sim::SimConfig policy_config(sim::Scheme scheme, cache::PolicyKind proxy,
                             cache::PolicyKind client) {
  sim::SimConfig cfg;
  cfg.scheme = scheme;
  cfg.num_proxies = 8;
  cfg.proxy_capacity = 150;
  cfg.clients_per_cluster = 20;
  cfg.client_cache_capacity = 4;
  cfg.shard_epoch = 1'024;
  cfg.proxy_policy = proxy;
  cfg.client_policy = client;
  return cfg;
}

std::string export_of(sim::SimConfig cfg, const workload::Trace& trace) {
  cfg.registry = std::make_shared<obs::Registry>();
  (void)sim::run_simulation(cfg, trace);
  std::ostringstream out;
  cfg.registry->write_json(out, "admission_policy");
  return out.str();
}

TEST(PolicyDeterminism, ShardedExportsAreByteIdenticalForNewPolicies) {
  const auto trace = policy_trace();
  const struct {
    sim::Scheme scheme;
    cache::PolicyKind proxy;
    cache::PolicyKind client;
  } cases[] = {
      {sim::Scheme::kNC, cache::PolicyKind::kWTinyLfu, cache::PolicyKind::kDefault},
      {sim::Scheme::kSC, cache::PolicyKind::kArc, cache::PolicyKind::kDefault},
      {sim::Scheme::kNC_EC, cache::PolicyKind::kTinyLfuLru, cache::PolicyKind::kArc},
      {sim::Scheme::kHierGD, cache::PolicyKind::kWTinyLfu, cache::PolicyKind::kArc},
      {sim::Scheme::kSquirrel, cache::PolicyKind::kDefault, cache::PolicyKind::kWTinyLfu},
  };
  for (const auto& c : cases) {
    auto cfg = policy_config(c.scheme, c.proxy, c.client);
    cfg.sim_shards = 1;
    const std::string one = export_of(cfg, trace);
    // The exports must actually carry the policy.* namespace.
    if (c.proxy != cache::PolicyKind::kDefault) {
      EXPECT_NE(one.find("policy."), std::string::npos) << sim::to_string(c.scheme);
    }
    for (const unsigned shards : {2U, 8U}) {
      cfg.sim_shards = shards;
      EXPECT_EQ(one, export_of(cfg, trace))
          << sim::to_string(c.scheme) << " shards=" << shards;
    }
  }
}

TEST(PolicyDeterminism, ChurnAndLossExportsAreShardCountIndependent) {
  const auto trace = policy_trace();
  for (const auto scheme : {sim::Scheme::kHierGD, sim::Scheme::kSquirrel}) {
    auto cfg = policy_config(scheme, cache::PolicyKind::kWTinyLfu,
                             cache::PolicyKind::kArc);
    fault::ChurnSpec spec;
    spec.start = 5'000;
    spec.crashes = 4;
    spec.recover_after = 4'000;
    spec.joins = 2;
    spec.repair_every = 7'000;
    cfg.churn_events = fault::make_schedule(spec, trace.size(), cfg.num_proxies,
                                            cfg.clients_per_cluster);
    cfg.p2p_loss_rate = 0.02;
    cfg.sim_shards = 1;
    const std::string one = export_of(cfg, trace);
    for (const unsigned shards : {2U, 8U}) {
      cfg.sim_shards = shards;
      EXPECT_EQ(one, export_of(cfg, trace))
          << sim::to_string(scheme) << " shards=" << shards;
    }
  }
}

TEST(PolicyDeterminism, SweepExportsAreThreadCountIndependent) {
  const auto trace = policy_trace();
  const auto sweep_export = [&trace](unsigned threads) {
    core::SweepConfig sweep;
    sweep.schemes = {sim::Scheme::kNC, sim::Scheme::kHierGD};
    sweep.cache_percents = {20.0, 40.0};
    sweep.base.proxy_policy = cache::PolicyKind::kWTinyLfu;
    sweep.base.client_policy = cache::PolicyKind::kArc;
    sweep.threads = threads;
    sweep.collect_observability = true;
    const auto result = core::run_sweep(trace, sweep);
    std::ostringstream out;
    core::write_metrics_json(out, result, "admission_policy_sweep");
    return out.str();
  };
  const std::string one = sweep_export(1);
  EXPECT_NE(one.find("policy.admission_considered"), std::string::npos);
  EXPECT_EQ(one, sweep_export(8));
}

// --- policy selection plumbing --------------------------------------------

TEST(PolicySelection, NamesRoundTripAndMakeCacheHonoursKinds) {
  using cache::PolicyKind;
  for (const auto kind :
       {PolicyKind::kLru, PolicyKind::kLfu, PolicyKind::kGreedyDual,
        PolicyKind::kTinyLfuLru, PolicyKind::kWTinyLfu, PolicyKind::kArc}) {
    const auto name = std::string(cache::to_string(kind));
    const auto parsed = cache::policy_from_string(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, kind);
    const auto cache = cache::make_cache(kind, 16);
    ASSERT_NE(cache, nullptr) << name;
    EXPECT_EQ(cache->capacity(), 16u);
  }
  EXPECT_EQ(cache::make_cache(PolicyKind::kDefault, 16), nullptr);
  EXPECT_FALSE(cache::policy_from_string("clock-pro").has_value());
}

TEST(PolicySelection, ClairvoyantSchemesRejectProxyPolicyOverrides) {
  const auto trace = policy_trace();
  for (const auto scheme : {sim::Scheme::kFC, sim::Scheme::kFC_EC}) {
    auto cfg = policy_config(scheme, cache::PolicyKind::kArc,
                             cache::PolicyKind::kDefault);
    EXPECT_THROW((void)sim::run_simulation(cfg, trace), std::invalid_argument)
        << sim::to_string(scheme);
  }
}

}  // namespace
