#include "common/fenwick.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace webcache {
namespace {

TEST(Fenwick, PrefixSumsMatchNaive) {
  FenwickTree t(10);
  std::vector<double> w = {1, 0, 3, 2, 0, 5, 1, 0, 0, 4};
  for (std::size_t i = 0; i < w.size(); ++i) t.set(i, w[i]);
  double cum = 0.0;
  for (std::size_t i = 0; i <= w.size(); ++i) {
    EXPECT_NEAR(t.prefix_sum(i), cum, 1e-12);
    if (i < w.size()) cum += w[i];
  }
  EXPECT_NEAR(t.total(), 16.0, 1e-12);
}

TEST(Fenwick, SetOverwritesAndAddAccumulates) {
  FenwickTree t(4);
  t.set(2, 5.0);
  t.set(2, 3.0);
  EXPECT_NEAR(t.weight(2), 3.0, 1e-12);
  t.add(2, 2.0);
  EXPECT_NEAR(t.weight(2), 5.0, 1e-12);
  t.add(2, -5.0);
  EXPECT_NEAR(t.weight(2), 0.0, 1e-12);
  EXPECT_NEAR(t.total(), 0.0, 1e-9);
}

TEST(Fenwick, FindReturnsBucketContainingTarget) {
  FenwickTree t(5);
  t.set(0, 2.0);  // [0, 2)
  t.set(2, 3.0);  // [2, 5)
  t.set(4, 1.0);  // [5, 6)
  EXPECT_EQ(t.find(0.0), 0u);
  EXPECT_EQ(t.find(1.99), 0u);
  EXPECT_EQ(t.find(2.0), 2u);
  EXPECT_EQ(t.find(4.99), 2u);
  EXPECT_EQ(t.find(5.0), 4u);
  EXPECT_EQ(t.find(5.99), 4u);
}

TEST(Fenwick, FindNeverReturnsZeroWeightElement) {
  FenwickTree t(100);
  Rng rng(3);
  for (std::size_t i = 0; i < 100; i += 2) t.set(i, 1.0 + static_cast<double>(i % 7));
  for (int draw = 0; draw < 10'000; ++draw) {
    const auto idx = t.find(rng.next_double() * t.total());
    ASSERT_GT(t.weight(idx), 0.0);
    ASSERT_EQ(idx % 2, 0u);
  }
}

TEST(Fenwick, SamplingFollowsWeights) {
  FenwickTree t(3);
  t.set(0, 1.0);
  t.set(1, 2.0);
  t.set(2, 7.0);
  Rng rng(17);
  std::vector<int> counts(3, 0);
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) ++counts[t.find(rng.next_double() * t.total())];
  EXPECT_NEAR(counts[0], kDraws * 0.1, kDraws * 0.01);
  EXPECT_NEAR(counts[1], kDraws * 0.2, kDraws * 0.015);
  EXPECT_NEAR(counts[2], kDraws * 0.7, kDraws * 0.02);
}

TEST(Fenwick, DynamicUpdatesDuringSampling) {
  // The ProWGen pattern: weights decay to zero as references are consumed.
  FenwickTree t(50);
  std::vector<int> remaining(50, 10);
  for (std::size_t i = 0; i < 50; ++i) t.set(i, 10.0);
  Rng rng(23);
  int total_draws = 0;
  while (t.total() > 0.5) {
    const auto idx = t.find(rng.next_double() * t.total());
    ASSERT_GT(remaining[idx], 0);
    --remaining[idx];
    t.set(idx, static_cast<double>(remaining[idx]));
    ++total_draws;
  }
  EXPECT_EQ(total_draws, 500);
  for (const int r : remaining) EXPECT_EQ(r, 0);
}

}  // namespace
}  // namespace webcache
