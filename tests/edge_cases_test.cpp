// Edge-path coverage: the corners the main suites do not reach.
#include <gtest/gtest.h>

#include <sstream>

#include "core/experiment.hpp"
#include "sim/simulator.hpp"
#include "workload/prowgen.hpp"

namespace webcache {
namespace {

workload::Trace tiny_trace() {
  workload::ProWGenConfig cfg;
  cfg.total_requests = 4'000;
  cfg.distinct_objects = 300;
  cfg.seed = 55;
  return workload::ProWGen(cfg).generate();
}

TEST(EdgeCases, SingleClientCluster) {
  const auto trace = tiny_trace();
  sim::SimConfig cfg;
  cfg.scheme = sim::Scheme::kHierGD;
  cfg.proxy_capacity = 20;
  cfg.clients_per_cluster = 1;  // a P2P "cluster" of one machine
  cfg.client_cache_capacity = 5;
  const auto m = sim::run_simulation(cfg, trace);
  EXPECT_EQ(m.requests, trace.size());
  EXPECT_GT(m.hits_local_p2p, 0u);  // the lone client cache still serves
}

TEST(EdgeCases, TinyProxyCache) {
  const auto trace = tiny_trace();
  for (const auto scheme : sim::kAllSchemes) {
    sim::SimConfig cfg;
    cfg.scheme = scheme;
    cfg.proxy_capacity = 1;
    cfg.clients_per_cluster = 10;
    cfg.client_cache_capacity = 1;
    const auto m = sim::run_simulation(cfg, trace);
    EXPECT_EQ(m.requests, trace.size()) << sim::to_string(scheme);
  }
}

TEST(EdgeCases, ManyProxiesFewRequests) {
  const auto trace = tiny_trace();
  sim::SimConfig cfg;
  cfg.scheme = sim::Scheme::kSC;
  cfg.num_proxies = 16;
  cfg.proxy_capacity = 10;
  const auto m = sim::run_simulation(cfg, trace);
  EXPECT_EQ(m.requests, trace.size());
  EXPECT_GT(m.hits_remote_proxy, 0u);
}

TEST(EdgeCases, MetricsSummaryMentionsEveryOutcome) {
  const auto trace = tiny_trace();
  sim::SimConfig cfg;
  cfg.scheme = sim::Scheme::kSC_EC;
  cfg.proxy_capacity = 20;
  const auto m = sim::run_simulation(cfg, trace);
  const auto text = m.summary();
  for (const char* needle : {"requests", "mean latency", "local proxy hits",
                             "local P2P hits", "remote proxy hits", "server fetches",
                             "overall hit ratio"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

TEST(EdgeCases, SweepWithSquirrelIncluded) {
  const auto trace = tiny_trace();
  core::SweepConfig cfg;
  cfg.schemes = {sim::Scheme::kNC, sim::Scheme::kSquirrel};
  cfg.cache_percents = {50};
  const auto r = core::run_sweep(trace, cfg);
  EXPECT_EQ(r.gains[0].size(), 2u);
  EXPECT_EQ(r.gains[0][0], 0.0);  // NC vs itself
}

TEST(EdgeCases, CsvExportIsWellFormed) {
  const auto trace = tiny_trace();
  core::SweepConfig cfg;
  cfg.schemes = {sim::Scheme::kSC};
  cfg.cache_percents = {30, 70};
  const auto r = core::run_sweep(trace, cfg);
  std::ostringstream out;
  core::write_gain_csv(out, r);
  const auto text = out.str();
  // Header + one row per (size, scheme).
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
  EXPECT_NE(text.find("cache_percent,scheme"), std::string::npos);
  EXPECT_NE(text.find("30,SC"), std::string::npos);
  EXPECT_NE(text.find("70,SC"), std::string::npos);
  // Every row has the same column count.
  std::istringstream lines(text);
  std::string line;
  std::getline(lines, line);
  const auto columns = std::count(line.begin(), line.end(), ',');
  while (std::getline(lines, line)) {
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), columns);
  }
}

TEST(EdgeCases, ZeroBrowserCapacityIsDisabled) {
  const auto trace = tiny_trace();
  sim::SimConfig cfg;
  cfg.scheme = sim::Scheme::kNC;
  cfg.proxy_capacity = 20;
  cfg.browser_cache_capacity = 0;
  const auto m = sim::run_simulation(cfg, trace);
  EXPECT_EQ(m.hits_browser, 0u);
}

TEST(EdgeCases, HopLatencyChargesMeasuredHops) {
  const auto trace = tiny_trace();
  sim::SimConfig cfg;
  cfg.scheme = sim::Scheme::kHierGD;
  cfg.proxy_capacity = 20;
  cfg.clients_per_cluster = 32;
  cfg.client_cache_capacity = 2;
  const auto without = sim::run_simulation(cfg, trace);
  cfg.p2p_hop_latency = 0.2;
  const auto with = sim::run_simulation(cfg, trace);
  EXPECT_EQ(without.p2p_hop_latency_total, 0.0);
  EXPECT_GT(with.p2p_hop_latency_total, 0.0);
  EXPECT_GT(with.mean_latency(), without.mean_latency());
  // Hit/miss structure is identical — only the charged latency differs.
  EXPECT_EQ(with.hits_local_p2p, without.hits_local_p2p);
  EXPECT_EQ(with.server_fetches, without.server_fetches);
}

}  // namespace
}  // namespace webcache
