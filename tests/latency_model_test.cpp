#include "net/latency_model.hpp"

#include <gtest/gtest.h>

#include "net/message_stats.hpp"

namespace webcache::net {
namespace {

TEST(LatencyModel, PaperDefaultRatios) {
  const auto m = LatencyModel::from_ratios();
  EXPECT_DOUBLE_EQ(m.client_to_proxy(), 1.0);
  EXPECT_DOUBLE_EQ(m.p2p_fetch(), 1.4);
  EXPECT_DOUBLE_EQ(m.proxy_to_proxy(), 2.0);
  EXPECT_DOUBLE_EQ(m.server(), 20.0);
}

TEST(LatencyModel, RequestLatencyPerOutcome) {
  const auto m = LatencyModel::from_ratios();
  EXPECT_DOUBLE_EQ(m.request_latency(ServedFrom::kLocalProxy), 1.0);
  EXPECT_DOUBLE_EQ(m.request_latency(ServedFrom::kLocalP2P), 2.4);
  EXPECT_DOUBLE_EQ(m.request_latency(ServedFrom::kRemoteProxy), 3.0);
  EXPECT_DOUBLE_EQ(m.request_latency(ServedFrom::kRemoteP2P), 4.4);
  EXPECT_DOUBLE_EQ(m.request_latency(ServedFrom::kOriginServer), 21.0);
}

TEST(LatencyModel, OutcomeLatenciesAreOrdered) {
  // The hierarchy the schemes exploit: local < p2p < remote < remote p2p < server.
  for (const double ts_tc : {2.0, 5.0, 10.0}) {
    for (const double ts_tl : {5.0, 10.0, 20.0}) {
      const auto m = LatencyModel::from_ratios(ts_tc, ts_tl, 1.4);
      EXPECT_LT(m.request_latency(ServedFrom::kLocalProxy),
                m.request_latency(ServedFrom::kLocalP2P));
      EXPECT_LE(m.request_latency(ServedFrom::kRemoteProxy),
                m.request_latency(ServedFrom::kRemoteP2P));
      EXPECT_LT(m.request_latency(ServedFrom::kRemoteP2P),
                m.request_latency(ServedFrom::kOriginServer));
    }
  }
}

TEST(LatencyModel, FetchCostExcludesClientLeg) {
  const auto m = LatencyModel::from_ratios();
  EXPECT_DOUBLE_EQ(m.fetch_cost(ServedFrom::kLocalProxy), 0.0);
  EXPECT_DOUBLE_EQ(m.fetch_cost(ServedFrom::kOriginServer), 20.0);
  EXPECT_DOUBLE_EQ(m.request_latency(ServedFrom::kOriginServer),
                   m.fetch_cost(ServedFrom::kOriginServer) + m.client_to_proxy());
}

TEST(LatencyModel, AbsoluteConstructorValidates) {
  EXPECT_NO_THROW(LatencyModel(20, 2, 1, 1.4));
  EXPECT_THROW(LatencyModel(0, 0, 0, 0), std::invalid_argument);
  EXPECT_THROW(LatencyModel(2, 20, 1, 1.4), std::invalid_argument);  // Tc > Ts
  EXPECT_THROW(LatencyModel(20, -1, 1, 1.4), std::invalid_argument);
}

TEST(LatencyModel, RatioConstructorValidates) {
  EXPECT_THROW(LatencyModel::from_ratios(0.5, 20, 1.4), std::invalid_argument);
  EXPECT_THROW(LatencyModel::from_ratios(10, 0.5, 1.4), std::invalid_argument);
  EXPECT_THROW(LatencyModel::from_ratios(10, 20, 0.0), std::invalid_argument);
}

TEST(MessageStats, MergeAddsAllCounters) {
  MessageStats a, b;
  a.destage_piggybacked = 5;
  a.push_requests = 2;
  b.destage_piggybacked = 3;
  b.diversions = 7;
  b.directory_false_positives = 1;
  a.merge(b);
  EXPECT_EQ(a.destage_piggybacked, 8u);
  EXPECT_EQ(a.push_requests, 2u);
  EXPECT_EQ(a.diversions, 7u);
  EXPECT_EQ(a.directory_false_positives, 1u);
}

TEST(MessageStats, PiggybackSavingsAccounting) {
  MessageStats m;
  m.destage_piggybacked = 90;
  m.destage_dedicated = 10;
  EXPECT_EQ(m.destage_messages_without_piggyback(), 100u);
}

}  // namespace
}  // namespace webcache::net
