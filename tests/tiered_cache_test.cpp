#include "sim/tiered_cache.hpp"

#include <gtest/gtest.h>

#include "cache/greedy_dual.hpp"
#include "cache/lfu.hpp"
#include "cache/lru.hpp"
#include "common/rng.hpp"

namespace webcache::sim {
namespace {

TieredCache make_lru(std::size_t c1, std::size_t c2) {
  return TieredCache(std::make_unique<cache::LruCache>(c1),
                     std::make_unique<cache::LruCache>(c2));
}

TEST(TieredCache, AdmitGoesToTier1) {
  auto t = make_lru(2, 2);
  EXPECT_TRUE(t.admit(1, 20.0));
  EXPECT_EQ(t.locate(1), TieredCache::Where::kTier1);
}

TEST(TieredCache, Tier1EvictionDestagesToTier2) {
  auto t = make_lru(1, 2);
  t.admit(1, 20.0);
  t.admit(2, 20.0);  // 1 destaged down
  EXPECT_EQ(t.locate(2), TieredCache::Where::kTier1);
  EXPECT_EQ(t.locate(1), TieredCache::Where::kTier2);
}

TEST(TieredCache, Tier2OverflowLeavesEntirely) {
  auto t = make_lru(1, 1);
  t.admit(1, 20.0);
  t.admit(2, 20.0);  // 1 -> tier2
  t.admit(3, 20.0);  // 2 -> tier2, 1 leaves
  EXPECT_EQ(t.locate(3), TieredCache::Where::kTier1);
  EXPECT_EQ(t.locate(2), TieredCache::Where::kTier2);
  EXPECT_EQ(t.locate(1), TieredCache::Where::kMiss);
}

TEST(TieredCache, Tier2HitPromotesAndConservesOccupancy) {
  auto t = make_lru(1, 2);
  t.admit(1, 20.0);
  t.admit(2, 20.0);  // tier1: {2}, tier2: {1}
  const auto where = t.access(1, 20.0);
  EXPECT_EQ(where, TieredCache::Where::kTier2);
  EXPECT_EQ(t.locate(1), TieredCache::Where::kTier1);
  EXPECT_EQ(t.locate(2), TieredCache::Where::kTier2);
  EXPECT_EQ(t.size(), 2u);
}

TEST(TieredCache, RefreshDoesNotPromote) {
  auto t = make_lru(1, 2);
  t.admit(1, 20.0);
  t.admit(2, 20.0);
  const auto where = t.refresh(1, 20.0);
  EXPECT_EQ(where, TieredCache::Where::kTier2);
  EXPECT_EQ(t.locate(1), TieredCache::Where::kTier2);  // stayed put
}

TEST(TieredCache, ZeroCapacityTier2DropsDestages) {
  auto t = make_lru(1, 0);
  t.admit(1, 20.0);
  t.admit(2, 20.0);
  EXPECT_EQ(t.locate(1), TieredCache::Where::kMiss);
  EXPECT_EQ(t.size(), 1u);
}

TEST(TieredCache, GreedyDualCreditsSurviveDestaging) {
  // Expensive objects keep their credit when destaged: tier 2 must evict a
  // cheap object before an expensive one.
  TieredCache t(std::make_unique<cache::GreedyDualCache>(1),
                std::make_unique<cache::GreedyDualCache>(2));
  t.admit(1, 20.0);  // expensive
  t.admit(2, 1.4);   // cheap; 1 destaged with credit 20
  t.admit(3, 1.4);   // 2 destaged with credit 1.4; tier2 = {1, 2}
  t.admit(4, 1.4);   // 3 destaged; tier2 must evict 2 (credit 1.4), keep 1
  EXPECT_EQ(t.locate(1), TieredCache::Where::kTier2);
  EXPECT_EQ(t.locate(2), TieredCache::Where::kMiss);
}

TEST(TieredCache, SizeNeverExceedsCapacityUnderChurn) {
  TieredCache t(std::make_unique<cache::LfuCache>(5),
                std::make_unique<cache::LfuCache>(10));
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    const auto o = static_cast<ObjectNum>(rng.next_below(60));
    if (t.contains(o)) {
      t.access(o, 20.0);
    } else {
      t.admit(o, 20.0);
    }
    ASSERT_LE(t.size(), t.capacity());
    ASSERT_LE(t.tier1().size(), t.tier1().capacity());
    ASSERT_LE(t.tier2().size(), t.tier2().capacity());
  }
  EXPECT_EQ(t.size(), t.capacity());  // saturated universe keeps it full
}

TEST(TieredCache, NoObjectInBothTiers) {
  TieredCache t(std::make_unique<cache::LfuCache>(4),
                std::make_unique<cache::LfuCache>(6));
  Rng rng(5);
  for (int i = 0; i < 3000; ++i) {
    const auto o = static_cast<ObjectNum>(rng.next_below(40));
    if (t.contains(o)) {
      t.access(o, 20.0);
    } else {
      t.admit(o, 20.0);
    }
  }
  for (const auto o : t.tier1().contents()) {
    ASSERT_FALSE(t.tier2().contains(o)) << o;
  }
}

TEST(TieredCache, RequiresBothTiers) {
  EXPECT_THROW(TieredCache(nullptr, std::make_unique<cache::LruCache>(1)),
               std::invalid_argument);
  EXPECT_THROW(TieredCache(std::make_unique<cache::LruCache>(1), nullptr),
               std::invalid_argument);
}

}  // namespace
}  // namespace webcache::sim
