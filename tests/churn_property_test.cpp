// Property-based driver for the churn engine and the invariant-audit
// framework (fault::*): schedule expansion is a pure function of its spec,
// the engine dispatches by trace position only, the cross-layer auditor
// passes at every checkpoint across the full scheme matrix, and two
// differential oracles pin the physics — churn never *helps* a scheme, and
// Hier-GD under churn stays below its ideal pooled-cache (NC-EC) bound.
// Finally, the churn determinism test extends the repo's byte-identical
// metrics-JSON guarantee to runs with an active failure schedule.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "fault/churn_engine.hpp"
#include "fault/churn_schedule.hpp"
#include "fault/invariant_auditor.hpp"
#include "fault/loss_model.hpp"
#include "obs/registry.hpp"
#include "sim/simulator.hpp"
#include "workload/prowgen.hpp"

namespace {

using namespace webcache;

workload::Trace churn_trace(std::uint64_t requests = 40'000, ObjectNum objects = 2'000) {
  workload::ProWGenConfig cfg;
  cfg.total_requests = requests;
  cfg.distinct_objects = objects;
  cfg.seed = 733;
  return workload::ProWGen(cfg).generate();
}

sim::SimConfig base_config(sim::Scheme scheme) {
  sim::SimConfig cfg;
  cfg.scheme = scheme;
  cfg.proxy_capacity = 200;
  cfg.clients_per_cluster = 50;
  cfg.client_cache_capacity = 3;
  return cfg;
}

fault::ChurnSpec heavy_spec(std::uint64_t trace_length) {
  fault::ChurnSpec spec;
  spec.start = trace_length / 4;
  spec.crashes = 12;
  spec.recover_after = trace_length / 10;
  spec.joins = 3;
  spec.repair_every = trace_length / 8;
  spec.seed = 99;
  return spec;
}

// --- schedule expansion -----------------------------------------------------

TEST(ChurnSchedule, IsAPureFunctionOfItsInputs) {
  const auto spec = heavy_spec(40'000);
  const auto a = fault::make_schedule(spec, 40'000, 4, 50);
  const auto b = fault::make_schedule(spec, 40'000, 4, 50);
  EXPECT_EQ(a, b);

  auto reseeded = spec;
  reseeded.seed = 100;
  EXPECT_NE(a, fault::make_schedule(reseeded, 40'000, 4, 50));
}

TEST(ChurnSchedule, IsSortedInBoundsAndCrashesDistinctClients) {
  const std::uint64_t len = 40'000;
  const auto spec = heavy_spec(len);
  const auto events = fault::make_schedule(spec, len, 4, 50);
  ASSERT_FALSE(events.empty());
  EXPECT_TRUE(std::is_sorted(events.begin(), events.end(),
                             [](const auto& a, const auto& b) { return a.time < b.time; }));
  for (unsigned p = 0; p < 4; ++p) {
    std::vector<ClientNum> crashed;
    for (const auto& e : events) {
      EXPECT_GE(e.time, spec.start);
      EXPECT_LT(e.time, len);
      EXPECT_LT(e.proxy, 4u);
      if (e.proxy == p && e.action == fault::ChurnAction::kCrash) {
        EXPECT_LT(e.client, 50u);
        crashed.push_back(e.client);
      }
    }
    EXPECT_EQ(crashed.size(), spec.crashes);
    std::sort(crashed.begin(), crashed.end());
    EXPECT_EQ(std::adjacent_find(crashed.begin(), crashed.end()), crashed.end())
        << "cluster " << p << " crashes the same client twice";
  }
}

TEST(ChurnSchedule, EveryCrashGetsARejoinWithinTheTrace) {
  const std::uint64_t len = 40'000;
  auto spec = heavy_spec(len);
  spec.recover_after = 1;  // rejoin cannot fall off the end
  const auto events = fault::make_schedule(spec, len, 2, 50);
  for (const auto& e : events) {
    if (e.action != fault::ChurnAction::kCrash) continue;
    const auto rejoin = std::find_if(events.begin(), events.end(), [&](const auto& r) {
      return r.action == fault::ChurnAction::kRejoin && r.proxy == e.proxy &&
             r.client == e.client && r.time == e.time + spec.recover_after;
    });
    EXPECT_NE(rejoin, events.end()) << "crash at " << e.time << " never recovers";
  }
}

TEST(ChurnSchedule, CapsCrashesBelowClusterSizeAndValidatesInputs) {
  fault::ChurnSpec spec;
  spec.crashes = 50;  // more than the cluster holds
  const auto events = fault::make_schedule(spec, 10'000, 1, 5);
  const auto crashes = std::count_if(events.begin(), events.end(), [](const auto& e) {
    return e.action == fault::ChurnAction::kCrash;
  });
  EXPECT_EQ(crashes, 4);  // cluster of 5 always keeps one live client

  EXPECT_THROW((void)fault::make_schedule(spec, 10'000, 0, 5), std::invalid_argument);
  EXPECT_THROW((void)fault::make_schedule(spec, 10'000, 1, 0), std::invalid_argument);
  spec.start = 10'000;  // no room left for the requested events
  EXPECT_THROW((void)fault::make_schedule(spec, 10'000, 1, 5), std::invalid_argument);
}

// --- engine dispatch --------------------------------------------------------

TEST(ChurnEngine, FiresDueEventsInScheduleOrder) {
  std::vector<fault::ChurnEvent> events = {
      {30, 0, 2, fault::ChurnAction::kRejoin},
      {10, 0, 2, fault::ChurnAction::kCrash},
      {10, 1, 0, fault::ChurnAction::kRepair},
      {50, 0, 0, fault::ChurnAction::kJoin},
  };
  fault::ChurnEngine engine(events);
  EXPECT_EQ(engine.size(), 4u);

  std::vector<fault::ChurnEvent> fired;
  const auto record = [&](const fault::ChurnEvent& e) { fired.push_back(e); };
  engine.advance(9, record);
  EXPECT_TRUE(fired.empty());
  engine.advance(10, record);  // both time-10 events, authored order preserved
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0].action, fault::ChurnAction::kCrash);
  EXPECT_EQ(fired[1].action, fault::ChurnAction::kRepair);
  engine.advance(49, record);
  EXPECT_EQ(fired.size(), 3u);
  EXPECT_FALSE(engine.exhausted());
  engine.advance(1'000, record);
  EXPECT_EQ(fired.size(), 4u);
  EXPECT_TRUE(engine.exhausted());
  EXPECT_EQ(engine.applied(), 4u);
}

// --- message-loss model -----------------------------------------------------

TEST(LossModel, IsDeterministicBoundedAndValidated) {
  fault::LossModel off(0.0, 7);
  EXPECT_FALSE(off.enabled());
  for (int i = 0; i < 1'000; ++i) EXPECT_FALSE(off.lose_message());
  EXPECT_EQ(off.losses(), 0u);

  fault::LossModel a(0.25, 7);
  fault::LossModel b(0.25, 7);
  std::uint64_t losses = 0;
  for (int i = 0; i < 10'000; ++i) {
    const bool lost = a.lose_message();
    EXPECT_EQ(lost, b.lose_message());
    losses += lost ? 1 : 0;
  }
  EXPECT_EQ(a.losses(), losses);
  EXPECT_NEAR(static_cast<double>(losses) / 10'000.0, 0.25, 0.02);

  EXPECT_THROW(fault::LossModel(-0.1, 1), std::invalid_argument);
  EXPECT_THROW(fault::LossModel(1.0, 1), std::invalid_argument);
}

// --- invariant audits across the scheme matrix ------------------------------

// Every scheme must pass the cross-layer audit at every checkpoint; the
// addressable schemes (Hier-GD, Squirrel) are additionally audited while a
// heavy churn schedule and P2P message loss are active.
TEST(InvariantAudit, PassesAtEveryCheckpointForAllSchemes) {
  if (!fault::audits_enabled()) GTEST_SKIP() << "built with WEBCACHE_AUDIT=OFF";
  const auto trace = churn_trace();
  std::vector<sim::Scheme> schemes(sim::kAllSchemes.begin(), sim::kAllSchemes.end());
  schemes.push_back(sim::Scheme::kSquirrel);
  for (const auto scheme : schemes) {
    const bool addressable =
        scheme == sim::Scheme::kHierGD || scheme == sim::Scheme::kSquirrel;
    for (const std::uint64_t seed : {99ull, 424242ull}) {
      auto cfg = base_config(scheme);
      cfg.checkpoint_interval = 4'000;
      cfg.checkpoint_hook = fault::make_audit_hook();
      if (addressable) {
        auto spec = heavy_spec(trace.size());
        spec.seed = seed;
        cfg.churn_events = fault::make_schedule(spec, trace.size(), cfg.num_proxies,
                                                cfg.clients_per_cluster);
        cfg.p2p_loss_rate = 0.05;
      } else if (seed != 99ull) {
        continue;  // no churn to reseed; the run would be identical
      }
      const auto m = sim::run_simulation(cfg, trace);  // audit hook throws on violation
      EXPECT_EQ(m.requests, trace.size()) << sim::to_string(scheme);
      EXPECT_EQ(m.total_hits() + m.server_fetches, trace.size())
          << sim::to_string(scheme) << " seed " << seed;
    }
  }
}

TEST(InvariantAudit, PassesUnderChurnForBothDirectoryKinds) {
  if (!fault::audits_enabled()) GTEST_SKIP() << "built with WEBCACHE_AUDIT=OFF";
  const auto trace = churn_trace();
  for (const auto kind : {sim::DirectoryKind::kExact, sim::DirectoryKind::kBloom}) {
    for (const std::uint64_t seed : {2003ull, 7919ull}) {
      auto cfg = base_config(sim::Scheme::kHierGD);
      cfg.directory = kind;
      cfg.checkpoint_interval = 4'000;
      cfg.checkpoint_hook = fault::make_audit_hook();
      auto spec = heavy_spec(trace.size());
      spec.seed = seed;
      cfg.churn_events = fault::make_schedule(spec, trace.size(), cfg.num_proxies,
                                              cfg.clients_per_cluster);
      const auto m = sim::run_simulation(cfg, trace);
      EXPECT_EQ(m.requests, trace.size());
    }
  }
}

TEST(InvariantAudit, ReportsRealCheckCoverage) {
  if (!fault::audits_enabled()) GTEST_SKIP() << "built with WEBCACHE_AUDIT=OFF";
  const auto trace = churn_trace(10'000, 1'000);
  auto cfg = base_config(sim::Scheme::kHierGD);
  sim::Simulator sim(cfg, trace);
  (void)sim.run();
  const auto report = fault::audit(sim, trace.size());
  EXPECT_TRUE(report.ok()) << report.violations.front();
  EXPECT_GT(report.checks, 1'000u);  // walks caches, overlay, directory, ledger
}

// --- differential oracles ---------------------------------------------------

// Crashing clients can only lose cached bytes; a crash-only schedule must
// never improve on the fault-free run (small slack: a crash perturbs
// greedy-dual tie-breaks, which can accidentally help a little).
TEST(ChurnOracle, CrashOnlyChurnNeverBeatsTheFaultFreeRun) {
  const auto trace = churn_trace();
  auto healthy = base_config(sim::Scheme::kHierGD);
  const auto m_healthy = sim::run_simulation(healthy, trace);

  auto churned = base_config(sim::Scheme::kHierGD);
  auto spec = heavy_spec(trace.size());
  spec.joins = 0;  // joins add capacity, which genuinely can help
  churned.churn_events = fault::make_schedule(spec, trace.size(), churned.num_proxies,
                                              churned.clients_per_cluster);
  const auto m_churned = sim::run_simulation(churned, trace);

  EXPECT_LE(m_churned.hit_ratio(), m_healthy.hit_ratio() + 0.01);
  EXPECT_GE(m_churned.mean_latency(), m_healthy.mean_latency() - 0.5);
}

// NC-EC is the idealized pooled scheme (proxy unified with all client-cache
// capacity, no placement constraints, no failures). Fusing the *entire*
// system's bytes — both proxies, both client clusters — into one such pool
// gives an upper bound: it holds at least as many distinct objects as any
// distributed arrangement of the same capacity (cooperation can reach a
// remote copy, but never beats having no duplicates at all), and churn only
// takes bytes away. Slack absorbs eviction-order noise between the
// policies.
TEST(ChurnOracle, ChurnedHierGdStaysBelowThePooledNcEcBound) {
  const auto trace = churn_trace();
  auto real = base_config(sim::Scheme::kHierGD);
  real.num_proxies = 2;
  auto spec = heavy_spec(trace.size());
  spec.joins = 0;  // joins would grow the real system past the pooled budget
  real.churn_events = fault::make_schedule(spec, trace.size(), real.num_proxies,
                                           real.clients_per_cluster);
  const auto m_real = sim::run_simulation(real, trace);

  auto ideal = base_config(sim::Scheme::kNC_EC);
  ideal.num_proxies = 1;
  ideal.proxy_capacity = real.proxy_capacity * 2;
  ideal.clients_per_cluster = static_cast<ClientNum>(real.clients_per_cluster * 2);
  const auto m_ideal = sim::run_simulation(ideal, trace);

  EXPECT_LE(m_real.hit_ratio(), m_ideal.hit_ratio() + 0.02);
}

// --- fault counters and loss accounting -------------------------------------

TEST(FaultCounters, TrackCrashesRejoinsJoinsAndRepairs) {
  const auto trace = churn_trace();
  auto cfg = base_config(sim::Scheme::kHierGD);
  cfg.registry = std::make_shared<obs::Registry>();
  cfg.churn_events = fault::make_schedule(heavy_spec(trace.size()), trace.size(),
                                          cfg.num_proxies, cfg.clients_per_cluster);
  (void)sim::run_simulation(cfg, trace);
  const auto& reg = *cfg.registry;
  EXPECT_GT(reg.counter_value("fault.crashes"), 0u);
  EXPECT_GT(reg.counter_value("fault.rejoins"), 0u);
  EXPECT_GT(reg.counter_value("fault.joins"), 0u);
  EXPECT_GT(reg.counter_value("fault.repairs"), 0u);
  EXPECT_GT(reg.counter_value("fault.objects_lost"), 0u);
  EXPECT_LE(reg.counter_value("fault.rejoins"), reg.counter_value("fault.crashes"));
}

TEST(MessageLoss, LostTransfersAreRetriedAndCostLatency) {
  const auto trace = churn_trace();
  auto clean = base_config(sim::Scheme::kHierGD);
  const auto m_clean = sim::run_simulation(clean, trace);
  EXPECT_EQ(m_clean.messages.p2p_messages_lost, 0u);
  EXPECT_EQ(m_clean.messages.p2p_retries, 0u);

  auto lossy = base_config(sim::Scheme::kHierGD);
  lossy.p2p_loss_rate = 0.2;
  const auto m_lossy = sim::run_simulation(lossy, trace);
  EXPECT_GT(m_lossy.messages.p2p_messages_lost, 0u);
  EXPECT_EQ(m_lossy.messages.p2p_retries, m_lossy.messages.p2p_messages_lost);
  // Loss costs time, never bytes: same outcomes as hits/misses, more latency.
  EXPECT_EQ(m_lossy.requests, trace.size());
  EXPECT_GT(m_lossy.total_latency, m_clean.total_latency);
  EXPECT_GT(m_lossy.wasted_p2p_latency, m_clean.wasted_p2p_latency);
}

TEST(MessageLoss, RequiresAP2PTier) {
  const auto trace = churn_trace(5'000, 500);
  auto cfg = base_config(sim::Scheme::kSC);
  cfg.p2p_loss_rate = 0.1;
  EXPECT_THROW(sim::Simulator(cfg, trace), std::invalid_argument);
}

TEST(ChurnConfig, RejectsSchemesWithoutAddressableClients) {
  const auto trace = churn_trace(5'000, 500);
  auto cfg = base_config(sim::Scheme::kFC_EC);
  cfg.churn_events = {{100, 0, 1, fault::ChurnAction::kCrash}};
  EXPECT_THROW(sim::Simulator(cfg, trace), std::invalid_argument);
}

TEST(ChurnConfig, UnknownProxyInScheduleRejectedAtDispatch) {
  const auto trace = churn_trace(5'000, 500);
  auto cfg = base_config(sim::Scheme::kHierGD);
  cfg.churn_events = {{10, 99, 0, fault::ChurnAction::kCrash}};
  sim::Simulator sim(cfg, trace);
  EXPECT_THROW((void)sim.run(), std::invalid_argument);
}

// --- determinism ------------------------------------------------------------

// The repo's byte-identical metrics-JSON guarantee must survive an active
// churn schedule and message loss: same (schedule, seed) -> same document at
// any worker-thread count.
TEST(ChurnDeterminism, SweepJsonIsByteIdenticalAcrossThreadCountsUnderChurn) {
  const auto trace = churn_trace(20'000, 2'000);
  core::SweepConfig cfg;
  cfg.cache_percents = {20.0, 60.0};
  cfg.schemes = {sim::Scheme::kNC, sim::Scheme::kSC, sim::Scheme::kHierGD};
  cfg.collect_observability = true;
  cfg.snapshot_interval = 5'000;
  cfg.base.churn_events = fault::make_schedule(heavy_spec(trace.size()), trace.size(),
                                               cfg.base.num_proxies,
                                               cfg.base.clients_per_cluster);
  cfg.base.p2p_loss_rate = 0.05;

  cfg.threads = 1;
  const auto serial = core::run_sweep(trace, cfg);
  cfg.threads = 8;
  const auto parallel = core::run_sweep(trace, cfg);

  std::ostringstream a;
  std::ostringstream b;
  core::write_metrics_json(a, serial, "churn-determinism");
  core::write_metrics_json(b, parallel, "churn-determinism");
  ASSERT_FALSE(a.str().empty());
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find("fault.crashes"), std::string::npos);
}

// Auditing is read-only: a run with checkpoint audits must export the same
// counters as the identical run without them.
TEST(ChurnDeterminism, AuditHooksDoNotPerturbExportedMetrics) {
  if (!fault::audits_enabled()) GTEST_SKIP() << "built with WEBCACHE_AUDIT=OFF";
  const auto trace = churn_trace(20'000, 2'000);
  const auto run_with = [&](bool audited) {
    auto cfg = base_config(sim::Scheme::kHierGD);
    cfg.registry = std::make_shared<obs::Registry>();
    cfg.churn_events = fault::make_schedule(heavy_spec(trace.size()), trace.size(),
                                            cfg.num_proxies, cfg.clients_per_cluster);
    if (audited) {
      cfg.checkpoint_interval = 2'000;
      cfg.checkpoint_hook = fault::make_audit_hook();
    }
    (void)sim::run_simulation(cfg, trace);
    std::ostringstream out;
    cfg.registry->write_json_body(out, 0);
    return out.str();
  };
  EXPECT_EQ(run_with(true), run_with(false));
}

}  // namespace
