// Tests for Pastry's proximity-aware routing (locality property) and the
// route-distance accounting behind the relative-delay-penalty measurements.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/sha1.hpp"
#include "pastry/overlay.hpp"

namespace webcache::pastry {
namespace {

NodeId id_for(int i) { return node_id_for("prox/node" + std::to_string(i)); }
Uint128 key_for(int i) { return Sha1::hash128("prox/key" + std::to_string(i)); }

Overlay make_overlay(int n, bool proximity_on) {
  OverlayConfig cfg;
  cfg.proximity_routing = proximity_on;
  Overlay o(cfg);
  for (int i = 0; i < n; ++i) o.add_node(id_for(i));
  return o;
}

TEST(Proximity, MetricIsEuclidean) {
  EXPECT_DOUBLE_EQ(proximity({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(proximity({1, 1}, {1, 1}), 0.0);
}

TEST(Proximity, DefaultCoordinatesAreDeterministicAndSpread) {
  const auto a = default_coordinates(id_for(1));
  const auto b = default_coordinates(id_for(1));
  EXPECT_DOUBLE_EQ(a.x, b.x);
  EXPECT_DOUBLE_EQ(a.y, b.y);
  // Coordinates land in the unit square and differ across nodes.
  double min_x = 1, max_x = 0;
  for (int i = 0; i < 200; ++i) {
    const auto c = default_coordinates(id_for(i));
    ASSERT_GE(c.x, 0.0);
    ASSERT_LT(c.x, 1.0);
    ASSERT_GE(c.y, 0.0);
    ASSERT_LT(c.y, 1.0);
    min_x = std::min(min_x, c.x);
    max_x = std::max(max_x, c.x);
  }
  EXPECT_LT(min_x, 0.2);
  EXPECT_GT(max_x, 0.8);
}

TEST(Proximity, ExplicitCoordinatesAreStored) {
  Overlay o{{}};
  o.add_node(id_for(0), Coordinates{0.25, 0.75});
  EXPECT_DOUBLE_EQ(o.coordinates_of(id_for(0)).x, 0.25);
  EXPECT_DOUBLE_EQ(o.coordinates_of(id_for(0)).y, 0.75);
}

TEST(Proximity, RoutingStaysCorrectWithProximityTables) {
  auto overlay = make_overlay(100, /*proximity_on=*/true);
  const auto ids = overlay.nodes();
  Rng rng(8);
  for (int k = 0; k < 500; ++k) {
    const auto r = overlay.route(ids[rng.next_below(ids.size())], key_for(k));
    ASSERT_TRUE(r.success);
    EXPECT_EQ(r.destination, overlay.root_of(key_for(k)));
  }
}

TEST(Proximity, RouteDistanceIsSumOfHopDistances) {
  auto overlay = make_overlay(64, /*proximity_on=*/false);
  const auto ids = overlay.nodes();
  Rng rng(9);
  for (int k = 0; k < 200; ++k) {
    const auto& from = ids[rng.next_below(ids.size())];
    const auto r = overlay.route(from, key_for(k));
    if (r.hops == 0) {
      EXPECT_DOUBLE_EQ(r.distance, 0.0);
    } else {
      EXPECT_GT(r.distance, 0.0);
      // A route of h hops across the unit square cannot exceed h * sqrt(2).
      EXPECT_LE(r.distance, static_cast<double>(r.hops) * 1.4143);
    }
  }
}

TEST(Proximity, LocalityTablesReduceRouteDistance) {
  // The Pastry locality property: with proximity-aware table population the
  // aggregate network distance travelled drops versus arbitrary candidates,
  // without hurting hop counts.
  auto naive = make_overlay(256, false);
  auto local = make_overlay(256, true);
  const auto ids = naive.nodes();
  Rng rng(10);
  double naive_distance = 0, local_distance = 0;
  std::uint64_t naive_hops = 0, local_hops = 0;
  for (int k = 0; k < 2000; ++k) {
    const auto& from = ids[rng.next_below(ids.size())];
    const auto key = key_for(k);
    const auto rn = naive.route(from, key);
    const auto rl = local.route(from, key);
    ASSERT_TRUE(rn.success);
    ASSERT_TRUE(rl.success);
    EXPECT_EQ(rn.destination, rl.destination);
    naive_distance += rn.distance;
    local_distance += rl.distance;
    naive_hops += rn.hops;
    local_hops += rl.hops;
  }
  EXPECT_LT(local_distance, naive_distance * 0.95);
  // Hop counts remain essentially identical (same prefix-routing structure).
  EXPECT_NEAR(static_cast<double>(local_hops), static_cast<double>(naive_hops),
              0.1 * static_cast<double>(naive_hops));
}

TEST(Proximity, SurvivesChurn) {
  auto overlay = make_overlay(80, /*proximity_on=*/true);
  for (int i = 0; i < 20; ++i) overlay.fail_node(id_for(i));
  const auto ids = overlay.nodes();
  Rng rng(11);
  for (int k = 0; k < 300; ++k) {
    const auto r = overlay.route(ids[rng.next_below(ids.size())], key_for(k));
    ASSERT_TRUE(r.success);
  }
}

}  // namespace
}  // namespace webcache::pastry
