// Tests for the extension features: per-client private browser caches (the
// "local" partition of the client cache, paper Section 2) and client-crash
// fault injection against Hier-GD's P2P tier (the fault-resilience the
// paper credits to the Pastry substrate).
#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "workload/prowgen.hpp"

namespace webcache::sim {
namespace {

workload::Trace test_trace(std::uint64_t requests = 60'000, ObjectNum objects = 2'000) {
  workload::ProWGenConfig cfg;
  cfg.total_requests = requests;
  cfg.distinct_objects = objects;
  cfg.seed = 131;
  return workload::ProWGen(cfg).generate();
}

SimConfig base_config(Scheme scheme) {
  SimConfig c;
  c.scheme = scheme;
  c.proxy_capacity = 200;
  c.clients_per_cluster = 50;
  c.client_cache_capacity = 2;
  return c;
}

// --- browser caches ---------------------------------------------------------

TEST(BrowserCache, DisabledByDefault) {
  const auto trace = test_trace();
  const auto m = run_simulation(base_config(Scheme::kNC), trace);
  EXPECT_EQ(m.hits_browser, 0u);
}

TEST(BrowserCache, AbsorbsRepeatRequestsForEveryScheme) {
  const auto trace = test_trace();
  for (const auto scheme : kAllSchemes) {
    auto cfg = base_config(scheme);
    cfg.browser_cache_capacity = 10;
    const auto m = run_simulation(cfg, trace);
    EXPECT_GT(m.hits_browser, 0u) << to_string(scheme);
    EXPECT_EQ(m.requests, trace.size()) << to_string(scheme);
    EXPECT_EQ(m.total_hits() + m.server_fetches, trace.size()) << to_string(scheme);
  }
}

TEST(BrowserCache, ReducesMeanLatency) {
  const auto trace = test_trace();
  auto cfg = base_config(Scheme::kHierGD);
  const auto without = run_simulation(cfg, trace);
  cfg.browser_cache_capacity = 10;
  const auto with = run_simulation(cfg, trace);
  EXPECT_LT(with.mean_latency(), without.mean_latency());
}

TEST(BrowserCache, BiggerBrowserCachesAbsorbMore) {
  const auto trace = test_trace();
  auto small = base_config(Scheme::kSC);
  small.browser_cache_capacity = 2;
  auto large = base_config(Scheme::kSC);
  large.browser_cache_capacity = 50;
  const auto m_small = run_simulation(small, trace);
  const auto m_large = run_simulation(large, trace);
  EXPECT_GT(m_large.hits_browser, m_small.hits_browser);
}

TEST(BrowserCache, LatencyIdentityIncludesZeroCostBrowserHits) {
  const auto trace = test_trace();
  auto cfg = base_config(Scheme::kSC_EC);
  cfg.browser_cache_capacity = 10;
  const auto m = run_simulation(cfg, trace);
  const auto& L = cfg.latencies;
  const double reconstructed =
      static_cast<double>(m.hits_local_proxy) * L.request_latency(net::ServedFrom::kLocalProxy) +
      static_cast<double>(m.hits_local_p2p) * L.request_latency(net::ServedFrom::kLocalP2P) +
      static_cast<double>(m.hits_remote_proxy) *
          L.request_latency(net::ServedFrom::kRemoteProxy) +
      static_cast<double>(m.hits_remote_p2p) * L.request_latency(net::ServedFrom::kRemoteP2P) +
      static_cast<double>(m.server_fetches) *
          L.request_latency(net::ServedFrom::kOriginServer) +
      m.wasted_p2p_latency + m.p2p_hop_latency_total;
  EXPECT_NEAR(m.total_latency, reconstructed, 1e-6 * m.total_latency + 1e-9);
  EXPECT_DOUBLE_EQ(L.request_latency(net::ServedFrom::kBrowser), 0.0);
}

// --- client failures --------------------------------------------------------

std::vector<ClientFailure> spread_failures(std::uint64_t trace_len, unsigned proxies,
                                           ClientNum clients, unsigned count) {
  std::vector<ClientFailure> failures;
  for (unsigned i = 0; i < count; ++i) {
    failures.push_back(ClientFailure{
        trace_len / 4 + i * (trace_len / (2 * count)),
        i % proxies,
        static_cast<ClientNum>((i * 7) % clients),
    });
  }
  return failures;
}

TEST(FailureInjection, OnlyValidForHierGd) {
  const auto trace = test_trace(5'000, 500);
  auto cfg = base_config(Scheme::kSC);
  cfg.client_failures = {{100, 0, 1}};
  EXPECT_THROW(Simulator(cfg, trace), std::invalid_argument);
}

TEST(FailureInjection, RunsToCompletionAndStaysConsistent) {
  const auto trace = test_trace();
  auto cfg = base_config(Scheme::kHierGD);
  cfg.client_failures =
      spread_failures(trace.size(), cfg.num_proxies, cfg.clients_per_cluster, 10);
  const auto m = run_simulation(cfg, trace);
  EXPECT_EQ(m.requests, trace.size());
  EXPECT_EQ(m.total_hits() + m.server_fetches, trace.size());
}

TEST(FailureInjection, StaleDirectoryEntriesSurfaceAsFalsePositives) {
  const auto trace = test_trace();
  auto cfg = base_config(Scheme::kHierGD);
  // Fail a third of each cluster halfway through: directory entries for the
  // lost objects go stale and are discovered (and repaired) on lookup.
  cfg.client_failures =
      spread_failures(trace.size(), cfg.num_proxies, cfg.clients_per_cluster, 16);
  const auto m = run_simulation(cfg, trace);
  EXPECT_GT(m.messages.directory_false_positives, 0u);
  EXPECT_GT(m.wasted_p2p_latency, 0.0);
}

TEST(FailureInjection, DegradesGracefully) {
  const auto trace = test_trace();
  auto healthy = base_config(Scheme::kHierGD);
  const auto m_healthy = run_simulation(healthy, trace);

  auto faulty = base_config(Scheme::kHierGD);
  faulty.client_failures =
      spread_failures(trace.size(), faulty.num_proxies, faulty.clients_per_cluster, 10);
  const auto m_faulty = run_simulation(faulty, trace);

  // Losing 20% of each cluster's client caches mid-run hurts, but the
  // system keeps a clear win over no client caches at all (SC).
  EXPECT_GE(m_faulty.mean_latency(), m_healthy.mean_latency());
  const auto sc = run_simulation(base_config(Scheme::kSC), trace);
  EXPECT_LT(m_faulty.mean_latency(), sc.mean_latency());
}

TEST(FailureInjection, UnknownProxyRejected) {
  const auto trace = test_trace(5'000, 500);
  auto cfg = base_config(Scheme::kHierGD);
  cfg.client_failures = {{10, 99, 0}};
  Simulator sim(cfg, trace);
  EXPECT_THROW((void)sim.run(), std::invalid_argument);
}

}  // namespace
}  // namespace webcache::sim
