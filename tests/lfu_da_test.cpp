// Tests for the LFU-DA mode (dynamic aging) and the clairvoyant cost-benefit
// consume() extension — the two policy refinements that reconcile the
// paper's scheme orderings with its temporal-locality findings.
#include <gtest/gtest.h>

#include "cache/cost_benefit.hpp"
#include "cache/lfu.hpp"

namespace webcache::cache {
namespace {

// --- LFU-DA -----------------------------------------------------------------

TEST(LfuDa, BehavesLikeLfuBeforeFirstEviction) {
  LfuCache da(3, LfuMode::kDynamicAging);
  da.insert(1, 0);
  da.insert(2, 0);
  da.insert(3, 0);
  da.access(1, 0);
  da.access(1, 0);
  da.access(2, 0);
  EXPECT_EQ(da.peek_victim(), std::optional<ObjectNum>(3));
  EXPECT_EQ(da.aging_floor(), 0u);
}

TEST(LfuDa, AgingFloorRisesWithEvictions) {
  LfuCache da(2, LfuMode::kDynamicAging);
  da.insert(1, 0);
  for (int i = 0; i < 5; ++i) da.access(1, 0);  // key 6
  da.insert(2, 0);                              // key 1
  da.insert(3, 0);                              // evicts 2 (key 1); floor = 1
  EXPECT_EQ(da.aging_floor(), 1u);
  EXPECT_TRUE(da.contains(1));
}

TEST(LfuDa, FormerlyHotObjectsAgeOut) {
  // The defining difference from pure LFU: a burst-hot object that goes
  // cold is eventually evicted in favour of the current working set.
  LfuCache da(2, LfuMode::kDynamicAging);
  LfuCache pure(2, LfuMode::kInCache);
  for (LfuCache* c : {&da, &pure}) {
    c->insert(1, 0);
    for (int i = 0; i < 50; ++i) c->access(1, 0);  // 1 is very hot, then cold
  }
  // A stream of fresh objects, each referenced twice in quick succession.
  bool da_evicted_hot = false;
  bool pure_evicted_hot = false;
  for (ObjectNum o = 100; o < 160; ++o) {
    for (LfuCache* c : {&da, &pure}) {
      if (!c->contains(o)) {
        c->insert(o, 0);
      }
      if (c->contains(o)) c->access(o, 0);
    }
    da_evicted_hot = da_evicted_hot || !da.contains(1);
    pure_evicted_hot = pure_evicted_hot || !pure.contains(1);
  }
  EXPECT_TRUE(da_evicted_hot);     // aging reclaimed the stale object
  EXPECT_FALSE(pure_evicted_hot);  // pure LFU pins it forever
}

TEST(LfuDa, ReWarmedObjectOutlivesAgedPopulation) {
  LfuCache da(3, LfuMode::kDynamicAging);
  da.insert(1, 0);
  da.insert(2, 0);
  da.insert(3, 0);
  // Force evictions to raise the floor.
  for (ObjectNum o = 10; o < 20; ++o) da.insert(o, 0);
  const auto floor = da.aging_floor();
  EXPECT_GT(floor, 0u);
  // A fresh insert keys at floor + 1: re-accessing it immediately re-keys it
  // above the whole aged population.
  da.insert(50, 0);
  da.access(50, 0);
  da.insert(51, 0);
  da.insert(52, 0);
  da.insert(53, 0);  // two of {51,52,53} plus one other must go before 50
  EXPECT_TRUE(da.contains(50));
}

TEST(LfuDa, CapacityInvariantUnderChurn) {
  LfuCache da(16, LfuMode::kDynamicAging);
  for (ObjectNum o = 0; o < 1000; ++o) {
    if (da.contains(o % 37)) {
      da.access(o % 37, 0);
    } else {
      da.insert(o % 37, 0);
    }
    ASSERT_LE(da.size(), 16u);
  }
}

// --- clairvoyant consume() ----------------------------------------------------

TEST(CostBenefitConsume, DecrementsFutureFrequency) {
  CostBenefitCoordinator coord({10.0}, 2, 20.0, 2.0);
  EXPECT_DOUBLE_EQ(coord.frequency(0), 10.0);
  coord.consume(0);
  EXPECT_DOUBLE_EQ(coord.frequency(0), 9.5);  // one request = 1/P per proxy
  for (int i = 0; i < 100; ++i) coord.consume(0);
  EXPECT_DOUBLE_EQ(coord.frequency(0), 0.0);  // clamps at zero
  coord.consume(99);                           // out of range: no-op
}

TEST(CostBenefitConsume, RepricesCachedCopies) {
  CostBenefitCoordinator coord({10.0, 1.0}, 2, 20.0, 2.0);
  CostBenefitCache a(2, coord);
  a.insert(0, 0);
  const double before = a.value_of(0);
  coord.consume(0);
  const double after = a.value_of(0);
  EXPECT_LT(after, before);
  EXPECT_DOUBLE_EQ(after, coord.copy_value(0, 1));
}

TEST(CostBenefitConsume, ExhaustedObjectsBecomeEvictionVictims) {
  CostBenefitCoordinator coord({5.0, 4.0, 3.0}, 2, 20.0, 2.0);
  CostBenefitCache a(2, coord);
  a.insert(0, 0);
  a.insert(1, 0);
  // Object 0's references run out: its copies decay to value 0.
  for (int i = 0; i < 20; ++i) coord.consume(0);
  const auto r = a.insert(2, 0);
  ASSERT_TRUE(r.inserted);
  EXPECT_EQ(r.evicted, std::optional<ObjectNum>(0));
  EXPECT_TRUE(a.contains(1));
}

TEST(CostBenefitConsume, RepricingKeepsOrderConsistentAcrossMembers) {
  CostBenefitCoordinator coord({8.0, 6.0}, 2, 20.0, 2.0);
  CostBenefitCache a(2, coord), b(2, coord);
  a.insert(0, 0);
  b.insert(0, 0);  // duplicate: both priced as redundant
  a.insert(1, 0);
  for (int i = 0; i < 6; ++i) coord.consume(0);
  // Both copies of 0 repriced from the decayed frequency.
  EXPECT_DOUBLE_EQ(a.value_of(0), b.value_of(0));
  EXPECT_DOUBLE_EQ(a.value_of(0), coord.copy_value(0, 2));
  // Victim ordering respects the decay.
  EXPECT_EQ(a.peek_victim(), std::optional<ObjectNum>(0));
}

}  // namespace
}  // namespace webcache::cache
