// Tests for the trace tooling extensions: Squid access.log ingestion, exact
// LRU stack-distance analysis, and the text reader's error reporting.
#include <gtest/gtest.h>

#include <sstream>

#include "cache/lru.hpp"
#include "workload/prowgen.hpp"
#include "workload/squid_log.hpp"
#include "workload/stack_distance.hpp"
#include "workload/trace.hpp"

namespace webcache::workload {
namespace {

// --- text reader error reporting ---------------------------------------------

std::string read_error_of(const std::string& text) {
  std::istringstream in(text);
  try {
    (void)read_trace(in);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return {};
}

TEST(TraceReader, MalformedErrorsNameTheLineNumber) {
  // Line 1 parses, line 2 (a comment) is skipped, line 3 is broken: the
  // message must pin the failure to line 3 and quote the offending token.
  const auto error = read_error_of("0 1 2 10\n# comment\n5 oops 2 10\n");
  EXPECT_NE(error.find("line 3"), std::string::npos) << error;
  EXPECT_NE(error.find("oops"), std::string::npos) << error;

  EXPECT_NE(read_error_of("bad 1 2 10\n").find("line 1"), std::string::npos);
  EXPECT_NE(read_error_of("0 1 2 10\n0 1 2 nope\n").find("line 2"), std::string::npos);
}

TEST(TraceReader, TrailingFieldsAreRejectedWithLineNumber) {
  const auto error = read_error_of("0 1 2 10\n0 1 2 10 surplus\n");
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_NE(error.find("surplus"), std::string::npos) << error;
}

TEST(TraceReader, MissingFieldsAreRejectedWithLineNumber) {
  const auto error = read_error_of("0 1\n");
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
}

// --- squid log ----------------------------------------------------------------

constexpr const char* kSampleLog =
    "1017772599.954 1 10.0.0.7 TCP_MISS/200 1374 GET http://a.com/x - DIRECT/- text/html\n"
    "1017772600.102 5 10.0.0.8 TCP_HIT/200 512 GET http://a.com/y - NONE/- text/css\n"
    "1017772600.500 2 10.0.0.7 TCP_MISS/304 0 GET http://a.com/x - DIRECT/- -\n"
    "1017772601.000 9 10.0.0.9 TCP_MISS/200 99 POST http://a.com/form - DIRECT/- -\n"
    "1017772601.500 9 10.0.0.9 TCP_MISS/404 10 GET http://a.com/missing - DIRECT/- -\n"
    "garbage line that does not parse\n"
    "1017772602.000 3 10.0.0.8 TCP_HIT/200 512 GET http://a.com/y - NONE/- text/css\n";

TEST(SquidLog, ParsesAndFilters) {
  std::istringstream in(kSampleLog);
  const auto result = read_squid_log(in);
  EXPECT_EQ(result.lines_total, 7u);
  EXPECT_EQ(result.lines_malformed, 1u);   // the garbage line
  EXPECT_EQ(result.lines_skipped, 2u);     // POST + 404
  ASSERT_EQ(result.trace.size(), 4u);
  EXPECT_EQ(result.trace.distinct_objects, 2u);  // /x and /y
  EXPECT_EQ(result.distinct_clients, 2u);        // 10.0.0.7 and .8

  // Same URL maps to the same dense id; timestamps are milliseconds.
  EXPECT_EQ(result.trace.requests[0].object, result.trace.requests[2].object);
  EXPECT_EQ(result.trace.requests[1].object, result.trace.requests[3].object);
  EXPECT_EQ(result.trace.requests[0].time, 1017772599954ULL);
  EXPECT_EQ(result.trace.requests[0].size, 1374u);
}

TEST(SquidLog, PermissiveOptionsKeepEverythingParseable) {
  std::istringstream in(kSampleLog);
  SquidReadOptions opts;
  opts.only_get = false;
  opts.only_successful = false;
  const auto result = read_squid_log(in, opts);
  EXPECT_EQ(result.trace.size(), 6u);
  EXPECT_EQ(result.lines_skipped, 0u);
  EXPECT_EQ(result.lines_malformed, 1u);
}

TEST(SquidLog, ZeroSizeBecomesUnit) {
  std::istringstream in(
      "1.5 1 c TCP_MISS/304 0 GET http://a.com/x - DIRECT/- -\n");
  const auto result = read_squid_log(in);
  ASSERT_EQ(result.trace.size(), 1u);
  EXPECT_EQ(result.trace.requests[0].size, 1u);
}

TEST(SquidLog, MissingFileThrows) {
  EXPECT_THROW((void)read_squid_log_file("/no/such/file.log"), std::runtime_error);
}

// --- stack distances ------------------------------------------------------------

Trace trace_of(std::initializer_list<ObjectNum> objects) {
  Trace t;
  std::uint64_t time = 0;
  for (const auto o : objects) {
    t.requests.push_back(Request{time++, 0, o, 1});
    t.distinct_objects = std::max(t.distinct_objects, o + 1);
  }
  return t;
}

TEST(StackDistance, HandComputedSequence) {
  // A B C B A A:
  //   A: cold, B: cold, C: cold,
  //   B: distance 1 (C since last B),
  //   A: distance 2 (distinct {B, C} since last A),
  //   A: distance 0.
  const auto d = lru_stack_distances(trace_of({0, 1, 2, 1, 0, 0}));
  EXPECT_EQ(d[0], kColdMiss);
  EXPECT_EQ(d[1], kColdMiss);
  EXPECT_EQ(d[2], kColdMiss);
  EXPECT_EQ(d[3], 1u);
  EXPECT_EQ(d[4], 2u);
  EXPECT_EQ(d[5], 0u);
}

TEST(StackDistance, RepeatedReferencesCountDistinctOnly) {
  // A B B B A: distance of the final A is 1 (only B in between, however
  // many times it was referenced).
  const auto d = lru_stack_distances(trace_of({0, 1, 1, 1, 0}));
  EXPECT_EQ(d[4], 1u);
}

TEST(StackDistance, SummaryStatistics) {
  const auto d = lru_stack_distances(trace_of({0, 1, 2, 1, 0, 0}));
  const auto s = summarize_stack_distances(d);
  EXPECT_EQ(s.cold_misses, 3u);
  EXPECT_EQ(s.reuses, 3u);
  EXPECT_NEAR(s.mean, 1.0, 1e-12);  // distances 1, 2, 0
  EXPECT_EQ(s.median, 1u);
}

TEST(StackDistance, LruHitRatioMatchesDirectSimulation) {
  // The distance distribution must predict LRU hit ratios exactly.
  ProWGenConfig cfg;
  cfg.total_requests = 20'000;
  cfg.distinct_objects = 800;
  cfg.seed = 3;
  const auto trace = ProWGen(cfg).generate();
  const auto distances = lru_stack_distances(trace);

  for (const std::size_t capacity : {50u, 200u, 600u}) {
    // Direct simulation of an LRU cache.
    cache::LruCache lru(capacity);
    std::uint64_t hits = 0;
    for (const auto& r : trace.requests) {
      if (lru.contains(r.object)) {
        lru.access(r.object, 0);
        ++hits;
      } else {
        lru.insert(r.object, 0);
      }
    }
    const double direct = static_cast<double>(hits) / static_cast<double>(trace.size());
    EXPECT_NEAR(lru_hit_ratio(distances, capacity), direct, 1e-12) << capacity;
  }
}

TEST(StackDistance, LocalityKnobMovesTheDistribution) {
  ProWGenConfig weak;
  weak.total_requests = 30'000;
  weak.distinct_objects = 1'000;
  weak.temporal_amplifier = 1.0;
  weak.recency_bias = 0.5;
  ProWGenConfig strong = weak;
  strong.temporal_amplifier = 12.0;
  const auto d_weak = lru_stack_distances(ProWGen(weak).generate());
  const auto d_strong = lru_stack_distances(ProWGen(strong).generate());
  const auto s_weak = summarize_stack_distances(d_weak);
  const auto s_strong = summarize_stack_distances(d_strong);
  EXPECT_LT(s_strong.median, s_weak.median);
}

TEST(StackDistance, EmptyTrace) {
  const Trace empty;
  EXPECT_TRUE(lru_stack_distances(empty).empty());
  const auto s = summarize_stack_distances({});
  EXPECT_EQ(s.reuses, 0u);
  EXPECT_EQ(lru_hit_ratio({}, 10), 0.0);
}

}  // namespace
}  // namespace webcache::workload
