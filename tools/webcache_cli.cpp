// webcache_cli — command-line driver for the simulator.
//
//   webcache_cli generate [workload flags] --out trace.txt
//   webcache_cli trace compile --out trace.wct
//                         [--in trace.txt [--squid] | workload flags]
//   webcache_cli trace info --trace trace.wct [--verify]
//   webcache_cli analyze  --trace trace.txt [--squid]
//   webcache_cli simulate --scheme Hier-GD [workload/cluster flags]
//                         [--churn-crashes N --churn-recover-after N
//                          --churn-joins N --churn-repair-every N
//                          --churn-start N --churn-seed N --churn-loss X
//                          --audit-interval N]
//                         [--metrics-out m.json --trace-out t.csv
//                          --snapshot-interval N]
//   webcache_cli sweep    [--schemes NC,SC,...] [--cache-pcts 10,20,...]
//                         [workload/cluster flags] [--csv out.csv]
//                         [--metrics-out m.json --snapshot-interval N]
//
// --trace accepts either the text format or a compiled wctrace/1 binary
// (sniffed by magic). simulate and sweep replay a binary trace through the
// mmap reader in bounded memory; `trace compile` converts text/Squid logs to
// binary, or streams a ProWGen workload straight to disk without ever
// materializing it.
//
// Workload flags (synthetic ProWGen; ignored when --trace/--squid given):
//   --requests N --objects N --alpha X --one-timers X --stack X --seed N
//   --amplifier X --recency-bias X
// Cluster flags:
//   --proxies N --clients N --cache-pct X --client-cache-pct X
//   --directory exact|bloom --bloom-fpr X --no-diversion
//   --ts-tc X --ts-tl X --tp2p-tl X --browser-cache N
//   --proxy-policy P        proxy-tier replacement/admission policy override
//                           (default | lru | lfu | gd | tinylfu-lru |
//                           w-tinylfu | arc); "default" keeps each scheme's
//                           paper policy. FC/FC-EC reject overrides.
//   --client-policy P       client-tier policy override (Hier-GD/Squirrel
//                           cooperative caches, *-EC second tier); same names
//   --shards N              intra-run sharding: partition ONE simulation
//                           across N worker threads (clusters round-robin
//                           over shards; byte-identical results for any
//                           N >= 1; 0 = classic sequential engine). Default
//                           from WEBCACHE_SIM_SHARDS. See README
//                           "Sharded runs" for the determinism contract.
//   --pipeline-window K     batched lookahead of the replay hot loop: K
//                           requests address-generate (routing + advisory
//                           prefetches) ahead of execution. Byte-identical
//                           results for every K; 1 disables, 0 defers to
//                           WEBCACHE_PIPELINE (default 16).
// Observability flags (schema "webcache-metrics/1", see README):
//   --metrics-out FILE      full registry export; .csv extension selects the
//                           flat CSV form, anything else writes JSON
//   --trace-out FILE        request-level event trace CSV (simulate only;
//                           enables the ring tracer, default 1M events)
//   --trace-capacity N      ring capacity for --trace-out
//   --snapshot-interval N   counter/gauge snapshot every N requests
// Fault-injection flags (simulate only; need Hier-GD or Squirrel):
//   --churn-crashes N       client crashes per cluster (deterministic
//                           schedule from --churn-seed)
//   --churn-recover-after N crashed clients rejoin N requests later
//   --churn-joins N         fresh client machines joining per cluster
//   --churn-repair-every N  periodic Pastry maintenance pass
//   --churn-start N         first trace position eligible for churn
//                           (default: a quarter into the trace)
//   --churn-seed N          schedule seed (default 2003)
//   --churn-loss X          P2P message loss probability in [0, 1); each
//                           lost transfer costs one retry (an extra Tp2p)
//   --audit-interval N      run the cross-layer invariant auditor every N
//                           requests; any violation exits non-zero
//                           (needs a WEBCACHE_AUDIT=ON build)
//
// Environment:
//   WEBCACHE_THREADS     worker threads for sweep (default 0 = one per core;
//                        results are bitwise identical regardless).
//   WEBCACHE_SIM_SHARDS  default for --shards: worker shards WITHIN one
//                        simulation (0 = sequential engine; any value >= 1
//                        yields byte-identical results).
//   WEBCACHE_POLICY      default for --proxy-policy/--client-policy as
//                        "<proxy>[,<client>]" (e.g. "w-tinylfu" or
//                        "arc,lru"); flags win over the environment.
//   WEBCACHE_PIPELINE    default for --pipeline-window: ON (=16, the
//                        default), OFF (=1, no lookahead) or a window in
//                        [1, 1024]. Purely a throughput knob.
//
// Exit code 0 on success, 2 on usage errors.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "fault/churn_schedule.hpp"
#include "fault/invariant_auditor.hpp"
#include "workload/prowgen.hpp"
#include "workload/squid_log.hpp"
#include "workload/stack_distance.hpp"
#include "workload/trace_stats.hpp"
#include "workload/wctrace.hpp"

namespace {

using namespace webcache;

[[noreturn]] void usage(const std::string& error = {}) {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      "usage: webcache_cli <generate|trace|analyze|simulate|sweep> [flags]\n"
      "  generate --out FILE [--requests N --objects N --alpha X --one-timers X\n"
      "           --stack X --amplifier X --recency-bias X --clients N --seed N]\n"
      "  trace compile --out FILE.wct [--in FILE [--squid] | workload flags]\n"
      "  trace info --trace FILE.wct [--verify]\n"
      "  analyze  --trace FILE [--squid]\n"
      "  simulate --scheme NAME [workload flags | --trace FILE [--squid]]\n"
      "           [--proxies N --clients N --cache-pct X --client-cache-pct X\n"
      "            --directory exact|bloom --bloom-fpr X --no-diversion\n"
      "            --ts-tc X --ts-tl X --tp2p-tl X --browser-cache N\n"
      "            --proxy-policy P --client-policy P]\n"
      "           [--churn-crashes N --churn-recover-after N --churn-joins N\n"
      "            --churn-repair-every N --churn-start N --churn-seed N\n"
      "            --churn-loss X --audit-interval N]\n"
      "           [--metrics-out FILE --trace-out FILE --trace-capacity N\n"
      "            --snapshot-interval N]\n"
      "  sweep    [--schemes A,B,...] [--cache-pcts 10,20,...] [--csv FILE]\n"
      "           [same workload/cluster flags as simulate]\n"
      "           [--metrics-out FILE --snapshot-interval N]\n"
      "schemes: NC SC FC NC-EC SC-EC FC-EC Hier-GD Squirrel\n"
      "--trace accepts the text format or a compiled wctrace/1 binary (.wct);\n"
      "binary traces replay through the mmap reader in bounded memory\n";
  std::exit(2);
}

/// Minimal flag parser: --key value pairs plus boolean --key switches.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) usage("unexpected argument: " + key);
      key = key.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";  // boolean switch
      }
    }
  }

  [[nodiscard]] bool has(const std::string& key) const { return values_.contains(key); }

  [[nodiscard]] std::string str(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  [[nodiscard]] double num(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    try {
      return std::stod(it->second);
    } catch (const std::exception&) {
      usage("flag --" + key + " needs a number, got '" + it->second + "'");
    }
  }

  [[nodiscard]] std::uint64_t integer(const std::string& key, std::uint64_t fallback) const {
    return static_cast<std::uint64_t>(num(key, static_cast<double>(fallback)));
  }

  void reject_unknown(const std::vector<std::string>& known) const {
    for (const auto& [key, _] : values_) {
      bool ok = false;
      for (const auto& k : known) ok = ok || k == key;
      if (!ok) usage("unknown flag --" + key);
    }
  }

 private:
  std::map<std::string, std::string> values_;
};

const std::vector<std::string> kWorkloadFlags = {
    "requests", "objects", "alpha", "one-timers", "stack",
    "amplifier", "recency-bias", "clients", "seed",
};
const std::vector<std::string> kClusterFlags = {
    "proxies", "cache-pct", "client-cache-pct", "directory", "bloom-fpr",
    "no-diversion", "ts-tc", "ts-tl", "tp2p-tl", "browser-cache", "shards",
    "proxy-policy", "client-policy", "pipeline-window",
};
const std::vector<std::string> kChurnFlags = {
    "churn-crashes", "churn-recover-after", "churn-joins", "churn-repair-every",
    "churn-start",   "churn-seed",          "churn-loss",  "audit-interval",
};

workload::ProWGenConfig workload_from(const Flags& flags) {
  workload::ProWGenConfig cfg;
  cfg.total_requests = flags.integer("requests", 200'000);
  cfg.distinct_objects = static_cast<ObjectNum>(flags.integer("objects", 10'000));
  cfg.zipf_alpha = flags.num("alpha", cfg.zipf_alpha);
  cfg.one_timer_fraction = flags.num("one-timers", cfg.one_timer_fraction);
  cfg.lru_stack_fraction = flags.num("stack", cfg.lru_stack_fraction);
  cfg.temporal_amplifier = flags.num("amplifier", cfg.temporal_amplifier);
  cfg.recency_bias = flags.num("recency-bias", cfg.recency_bias);
  cfg.clients = static_cast<ClientNum>(flags.integer("clients", cfg.clients));
  cfg.seed = flags.integer("seed", cfg.seed);
  return cfg;
}

workload::Trace trace_from(const Flags& flags) {
  if (flags.has("trace")) {
    const auto path = flags.str("trace", "");
    if (flags.has("squid")) {
      auto result = workload::read_squid_log_file(path);
      std::cerr << "squid log: kept " << result.trace.size() << ", filtered "
                << result.lines_skipped << ", malformed " << result.lines_malformed << "\n";
      return std::move(result.trace);
    }
    if (workload::is_wctrace_file(path)) return workload::read_wctrace_file(path);
    return workload::read_trace_file(path);
  }
  return workload::ProWGen(workload_from(flags)).generate();
}

/// The streaming front door for simulate/sweep: a compiled wctrace gets the
/// mmap reader (bounded memory, zero copies); everything else materializes
/// behind the in-memory adapter.
std::shared_ptr<const workload::TraceSource> source_from(const Flags& flags) {
  if (flags.has("trace") && !flags.has("squid") &&
      workload::is_wctrace_file(flags.str("trace", ""))) {
    return workload::open_trace_source(flags.str("trace", ""));
  }
  return workload::make_source(trace_from(flags));
}

sim::SimConfig cluster_from(const Flags& flags, const workload::TraceSource& trace) {
  sim::SimConfig cfg;
  cfg.num_proxies = static_cast<unsigned>(flags.integer("proxies", 2));
  cfg.clients_per_cluster = static_cast<ClientNum>(flags.integer("clients", 100));
  cfg.latencies = net::LatencyModel::from_ratios(
      flags.num("ts-tc", 10.0), flags.num("ts-tl", 20.0), flags.num("tp2p-tl", 1.4));

  const auto infinite = core::cluster_infinite_cache_size(trace, cfg.num_proxies);
  const double cache_pct = flags.num("cache-pct", 30.0);
  const double client_pct = flags.num("client-cache-pct", 0.1);
  cfg.proxy_capacity = std::max<std::size_t>(
      1, static_cast<std::size_t>(cache_pct / 100.0 * static_cast<double>(infinite)));
  cfg.client_cache_capacity = std::max<std::size_t>(
      1, static_cast<std::size_t>(client_pct / 100.0 * static_cast<double>(infinite)));

  const auto dir = flags.str("directory", "exact");
  if (dir == "bloom") {
    cfg.directory = sim::DirectoryKind::kBloom;
  } else if (dir != "exact") {
    usage("--directory must be exact or bloom");
  }
  cfg.bloom_target_fpr = flags.num("bloom-fpr", cfg.bloom_target_fpr);
  cfg.enable_diversion = !flags.has("no-diversion");
  cfg.browser_cache_capacity = flags.integer("browser-cache", 0);
  cfg.sim_shards =
      static_cast<unsigned>(flags.integer("shards", core::sim_shards_from_env()));
  // 0 defers to the process default (WEBCACHE_PIPELINE, 16 when unset);
  // results are byte-identical for every value — this is a throughput knob.
  cfg.pipeline_window = static_cast<unsigned>(flags.integer("pipeline-window", 0));

  // Policy overrides: flags beat WEBCACHE_POLICY beats each scheme's default.
  const auto env_policies = core::policies_from_env();
  const auto parse_policy = [&flags](const std::string& flag, cache::PolicyKind fallback) {
    const auto name = flags.str(flag, "");
    if (name.empty()) return fallback;
    const auto kind = cache::policy_from_string(name);
    if (!kind) usage("--" + flag + " must be one of: " + cache::policy_names());
    return *kind;
  };
  cfg.proxy_policy = parse_policy("proxy-policy", env_policies.first);
  cfg.client_policy = parse_policy("client-policy", env_policies.second);
  return cfg;
}

/// --metrics-out writer: a .csv extension selects the flat CSV form, any
/// other name gets the JSON document.
void write_registry_to(const std::string& path, const obs::Registry& registry,
                       const std::string& name) {
  std::ofstream out(path);
  if (!out) usage("cannot open --metrics-out file for writing: " + path);
  const bool csv = path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  if (csv) {
    registry.write_csv(out);
  } else {
    registry.write_json(out, name);
  }
}

int cmd_generate(const Flags& flags) {
  auto known = kWorkloadFlags;
  known.push_back("out");
  flags.reject_unknown(known);
  if (!flags.has("out")) usage("generate needs --out FILE");
  const auto trace = workload::ProWGen(workload_from(flags)).generate();
  workload::write_trace_file(flags.str("out", ""), trace);
  std::cout << "wrote " << trace.size() << " requests over " << trace.distinct_objects
            << " objects to " << flags.str("out", "") << "\n";
  return 0;
}

int cmd_trace_compile(const Flags& flags) {
  auto known = kWorkloadFlags;
  known.insert(known.end(), {"in", "squid", "out"});
  flags.reject_unknown(known);
  if (!flags.has("out")) usage("trace compile needs --out FILE");
  const auto out = flags.str("out", "");

  workload::WctraceHeader header;
  if (flags.has("in")) {
    const auto in = flags.str("in", "");
    if (flags.has("squid")) {
      // Squid logs need the URL -> dense id mapping, so they materialize.
      auto result = workload::read_squid_log_file(in);
      std::cerr << "squid log: kept " << result.trace.size() << ", filtered "
                << result.lines_skipped << ", malformed " << result.lines_malformed << "\n";
      workload::write_wctrace_file(out, result.trace);
      header = workload::read_wctrace_header(out);
    } else if (workload::is_wctrace_file(in)) {
      usage("trace compile input is already a wctrace binary: " + in);
    } else {
      // Text traces stream straight through: bounded memory end to end.
      header = workload::compile_text_to_wctrace(in, out);
    }
  } else {
    // Stream the generator into the writer; the trace never materializes.
    const auto cfg = workload_from(flags);
    workload::WctraceWriter writer(out);
    writer.set_distinct_objects(cfg.distinct_objects);
    workload::ProWGen(cfg).generate(
        [&writer](const Request& r) { writer.append(r); });
    header = writer.finalize();
  }
  std::cout << "wrote " << header.request_count << " requests over "
            << header.distinct_objects << " objects to " << out << " (wctrace/"
            << header.version << ", checksum 0x" << std::hex << header.checksum << std::dec
            << ")\n";
  return 0;
}

int cmd_trace_info(const Flags& flags) {
  flags.reject_unknown({"trace", "verify"});
  if (!flags.has("trace")) usage("trace info needs --trace FILE");
  const auto path = flags.str("trace", "");
  const auto header = workload::read_wctrace_header(path);
  std::cout << "format            wctrace/" << header.version << "\n"
            << "requests          " << header.request_count << "\n"
            << "distinct objects  " << header.distinct_objects << "\n"
            << "record size       " << header.record_size << " bytes\n"
            << "payload           " << header.request_count * header.record_size
            << " bytes (+" << workload::kWctraceHeaderSize << "-byte header)\n"
            << "checksum          0x" << std::hex << header.checksum << std::dec << "\n";
  if (flags.has("verify")) {
    const workload::MmapTraceSource source(path);
    if (!source.verify_checksum()) {
      std::cerr << "error: checksum MISMATCH (file corrupt?)\n";
      return 1;
    }
    std::cout << "checksum verified ok\n";
  }
  return 0;
}

int cmd_trace(int argc, char** argv) {
  if (argc < 3) usage("trace needs a subcommand: compile or info");
  const std::string sub = argv[2];
  const Flags flags(argc, argv, 3);
  if (sub == "compile") return cmd_trace_compile(flags);
  if (sub == "info") return cmd_trace_info(flags);
  usage("unknown trace subcommand: " + sub);
}

int cmd_analyze(const Flags& flags) {
  flags.reject_unknown({"trace", "squid"});
  if (!flags.has("trace")) usage("analyze needs --trace FILE");
  const auto trace = trace_from(flags);
  const auto stats = workload::analyze(trace);
  const auto distances = workload::lru_stack_distances(trace);
  const auto locality = workload::summarize_stack_distances(distances);
  std::cout << "requests              " << stats.total_requests << "\n"
            << "distinct objects      " << stats.distinct_objects << "\n"
            << "one-timers            " << stats.one_timers << "\n"
            << "infinite cache size   " << stats.infinite_cache_size << "\n"
            << "top-decile share      " << stats.top_decile_share << "\n"
            << "estimated Zipf alpha  " << workload::estimate_zipf_alpha(stats) << "\n"
            << "stack distance median " << locality.median << " (p90 " << locality.p90
            << ")\n";
  return 0;
}

/// Expands the --churn-* / --audit-interval flags into the config's churn
/// schedule, loss model, and audit checkpoints.
void apply_churn_flags(const Flags& flags, sim::SimConfig& cfg,
                       std::uint64_t trace_length) {
  fault::ChurnSpec spec;
  spec.crashes = static_cast<ClientNum>(flags.integer("churn-crashes", 0));
  spec.recover_after = flags.integer("churn-recover-after", 0);
  spec.joins = static_cast<ClientNum>(flags.integer("churn-joins", 0));
  spec.repair_every = flags.integer("churn-repair-every", 0);
  spec.start = flags.integer("churn-start", trace_length / 4);
  spec.seed = flags.integer("churn-seed", spec.seed);
  if (spec.crashes > 0 || spec.joins > 0 || spec.repair_every > 0) {
    cfg.churn_events = fault::make_schedule(spec, trace_length, cfg.num_proxies,
                                            cfg.clients_per_cluster);
  }
  cfg.p2p_loss_rate = flags.num("churn-loss", 0.0);
  if (flags.has("audit-interval")) {
    if (!fault::audits_enabled()) {
      usage("--audit-interval needs a WEBCACHE_AUDIT=ON build");
    }
    cfg.checkpoint_interval = flags.integer("audit-interval", 0);
    cfg.checkpoint_hook = fault::make_audit_hook();
  }
}

int cmd_simulate(const Flags& flags) {
  auto known = kWorkloadFlags;
  known.insert(known.end(), kClusterFlags.begin(), kClusterFlags.end());
  known.insert(known.end(), kChurnFlags.begin(), kChurnFlags.end());
  known.insert(known.end(), {"scheme", "trace", "squid", "metrics-out", "trace-out",
                             "trace-capacity", "snapshot-interval"});
  flags.reject_unknown(known);

  const auto scheme = sim::scheme_from_string(flags.str("scheme", "Hier-GD"));
  if (!scheme) usage("unknown scheme: " + flags.str("scheme", ""));

  const auto source = source_from(flags);
  auto cfg = cluster_from(flags, *source);
  cfg.scheme = *scheme;
  cfg.snapshot_interval = flags.integer("snapshot-interval", 0);
  apply_churn_flags(flags, cfg, source->size());
  if (flags.has("trace-out")) {
    cfg.trace_capacity = flags.integer("trace-capacity", 1'000'000);
  }
  const auto run = core::run_single(*source, cfg);
  std::cout << "scheme: " << sim::to_string(*scheme) << "\n"
            << run.metrics.summary() << "latency gain vs NC: " << run.gain_percent
            << "%\n";
  if (!cfg.churn_events.empty() || cfg.p2p_loss_rate > 0.0) {
    const auto& reg = *run.registry;
    std::cout << "churn: " << reg.counter_value("fault.crashes") << " crashes, "
              << reg.counter_value("fault.rejoins") << " rejoins, "
              << reg.counter_value("fault.joins") << " joins, "
              << reg.counter_value("fault.repairs") << " repairs; "
              << reg.counter_value("fault.objects_lost") << " objects lost, "
              << run.metrics.messages.p2p_messages_lost << " messages lost\n";
  }
  if (flags.has("metrics-out")) {
    const auto path = flags.str("metrics-out", "");
    write_registry_to(path, *run.registry,
                      "webcache_cli simulate " + std::string(sim::to_string(*scheme)));
    std::cout << "wrote metrics to " << path << "\n";
  }
  if (flags.has("trace-out")) {
    const auto path = flags.str("trace-out", "");
    std::ofstream out(path);
    if (!out) usage("cannot open --trace-out file for writing: " + path);
    run.registry->write_trace_csv(out);
    std::cout << "wrote event trace to " << path << "\n";
  }
  return 0;
}

int cmd_sweep(const Flags& flags) {
  auto known = kWorkloadFlags;
  known.insert(known.end(), kClusterFlags.begin(), kClusterFlags.end());
  known.insert(known.end(), {"schemes", "cache-pcts", "csv", "trace", "squid",
                             "metrics-out", "snapshot-interval"});
  flags.reject_unknown(known);

  const auto source = source_from(flags);

  core::SweepConfig sweep;
  sweep.base = cluster_from(flags, *source);
  sweep.client_cache_percent = flags.num("client-cache-pct", 0.1);
  sweep.collect_observability = flags.has("metrics-out");
  sweep.snapshot_interval = flags.integer("snapshot-interval", 0);
  if (const char* env = std::getenv("WEBCACHE_THREADS")) {
    char* end = nullptr;
    const unsigned long t = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0') {
      sweep.threads = static_cast<unsigned>(t);
    } else {
      std::cerr << "ignoring invalid WEBCACHE_THREADS=" << env << "\n";
    }
  }

  if (flags.has("schemes")) {
    sweep.schemes.clear();
    std::istringstream list(flags.str("schemes", ""));
    std::string name;
    while (std::getline(list, name, ',')) {
      const auto s = sim::scheme_from_string(name);
      if (!s) usage("unknown scheme in --schemes: " + name);
      sweep.schemes.push_back(*s);
    }
    if (sweep.schemes.empty()) usage("--schemes list is empty");
  }
  if (flags.has("cache-pcts")) {
    sweep.cache_percents.clear();
    std::istringstream list(flags.str("cache-pcts", ""));
    std::string token;
    while (std::getline(list, token, ',')) {
      try {
        sweep.cache_percents.push_back(std::stod(token));
      } catch (const std::exception&) {
        usage("bad --cache-pcts entry: " + token);
      }
    }
  }

  const auto result = core::run_sweep(*source, sweep);
  core::print_gain_table(std::cout, result, "webcache_cli sweep");
  if (flags.has("csv")) {
    std::ofstream csv(flags.str("csv", ""));
    if (!csv) usage("cannot open --csv file for writing");
    core::write_gain_csv(csv, result);
    std::cout << "wrote CSV to " << flags.str("csv", "") << "\n";
  }
  if (flags.has("metrics-out")) {
    const auto path = flags.str("metrics-out", "");
    std::ofstream out(path);
    if (!out) usage("cannot open --metrics-out file for writing: " + path);
    core::write_metrics_json(out, result, "webcache_cli sweep");
    std::cout << "wrote metrics to " << path << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  try {
    if (command == "trace") return cmd_trace(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  const Flags flags(argc, argv, 2);
  try {
    if (command == "generate") return cmd_generate(flags);
    if (command == "analyze") return cmd_analyze(flags);
    if (command == "simulate") return cmd_simulate(flags);
    if (command == "sweep") return cmd_sweep(flags);
    usage("unknown command: " + command);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
