#!/usr/bin/env bash
# Metrics-export gate (run as a ctest entry): webcache_cli simulate/sweep and
# the fig2a_cache_size bench must emit documents that validate against
# scripts/check_metrics_schema.py — the executable contract behind the
# "webcache-metrics/1" schema documented in README.md.
#
# usage: metrics_gate.sh CLI_BINARY SCHEMA_CHECKER [FIG2A_BINARY]
set -euo pipefail

if [[ $# -lt 2 ]]; then
  echo "usage: $0 CLI_BINARY SCHEMA_CHECKER [FIG2A_BINARY]" >&2
  exit 2
fi
cli=$1
checker=$2
fig2a=${3:-}

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

# Single-run document + event-trace CSV from the CLI.
"$cli" simulate --scheme Hier-GD --requests 30000 --objects 3000 \
  --metrics-out "$work/sim.json" --trace-out "$work/sim_trace.csv" \
  --trace-capacity 2000 --snapshot-interval 5000 >/dev/null
# Sweep document from the CLI.
"$cli" sweep --schemes NC,SC,Hier-GD --cache-pcts 20,60 \
  --requests 30000 --objects 3000 --metrics-out "$work/sweep.json" >/dev/null

python3 "$checker" "$work/sim.json" "$work/sweep.json"

if ! head -1 "$work/sim_trace.csv" | grep -q '^seq,time,code,value,aux$'; then
  echo "error: trace CSV header mismatch in $work/sim_trace.csv" >&2
  exit 1
fi

# The flagship bench must emit a valid sweep document too (ISSUE acceptance).
if [[ -n "$fig2a" ]]; then
  WEBCACHE_BENCH_SCALE=0.05 "$fig2a" --metrics-out "$work/fig2a.json" >/dev/null
  python3 "$checker" "$work/fig2a.json"
fi

echo "metrics gate OK"
