#!/usr/bin/env python3
"""Validate a "webcache-metrics/1" JSON export.

Accepts both document shapes the repo emits:
  * single-registry documents (webcache_cli simulate --metrics-out,
    obs::Registry::write_json): {"schema", "name", "metrics": {...}}
  * sweep documents (webcache_cli sweep --metrics-out, the fig benches,
    core::write_metrics_json): {"schema", "name", "infinite_cache_size",
    "client_cache_capacity", "runs": [{"cache_percent", "scheme",
    "latency_gain_percent", "metrics": {...}}, ...]}

A metrics body must contain the five sections (counters, gauges, stats,
histograms, snapshots) with the documented value shapes, and its "sim.*"
counters — when present — must be internally consistent (hits + server
fetches == requests). Per-cache "<prefix>policy.*" counters (TinyLFU
admission, W-TinyLFU, ARC) must balance: admission_considered ==
admission_accepts + admission_rejects for every cache instance. Exits 0
when valid, 1 with a message when not.

Usage: check_metrics_schema.py FILE [FILE...]
"""

import json
import numbers
import sys

SCHEMA = "webcache-metrics/1"
SIM_OUTCOMES = [
    "sim.hits_browser",
    "sim.hits_local_proxy",
    "sim.hits_local_p2p",
    "sim.hits_remote_proxy",
    "sim.hits_remote_p2p",
    "sim.server_fetches",
]


class SchemaError(Exception):
    pass


def require(cond, where, message):
    if not cond:
        raise SchemaError(f"{where}: {message}")


def check_metrics_body(body, where):
    require(isinstance(body, dict), where, "metrics body is not an object")
    for section in ("counters", "gauges", "stats", "histograms", "snapshots"):
        require(section in body, where, f"missing section '{section}'")

    counters = body["counters"]
    require(isinstance(counters, dict), where, "'counters' is not an object")
    for name, value in counters.items():
        require(
            isinstance(value, int) and value >= 0,
            where,
            f"counter '{name}' is not a non-negative integer: {value!r}",
        )

    gauges = body["gauges"]
    require(isinstance(gauges, dict), where, "'gauges' is not an object")
    for name, value in gauges.items():
        require(
            isinstance(value, numbers.Real),
            where,
            f"gauge '{name}' is not a number: {value!r}",
        )

    for name, stat in body["stats"].items():
        for field in ("count", "mean", "min", "max", "sum"):
            require(field in stat, where, f"stat '{name}' missing '{field}'")

    for name, hist in body["histograms"].items():
        for field in ("lo", "hi", "total", "buckets"):
            require(field in hist, where, f"histogram '{name}' missing '{field}'")
        require(
            isinstance(hist["buckets"], list),
            where,
            f"histogram '{name}' buckets is not a list",
        )
        require(
            sum(hist["buckets"]) == hist["total"],
            where,
            f"histogram '{name}' bucket sum != total",
        )

    snaps = body["snapshots"]
    for field in ("interval", "columns", "gauge_columns", "rows"):
        require(field in snaps, where, f"snapshots missing '{field}'")
    width = 1 + len(snaps["columns"]) + len(snaps["gauge_columns"])
    for i, row in enumerate(snaps["rows"]):
        require(
            isinstance(row, list) and len(row) == width,
            where,
            f"snapshot row {i} has {len(row)} entries, expected {width}",
        )

    if "sim.requests" in counters:
        outcomes = sum(counters.get(name, 0) for name in SIM_OUTCOMES)
        require(
            outcomes == counters["sim.requests"],
            where,
            f"sim outcome counters sum to {outcomes}, "
            f"but sim.requests is {counters['sim.requests']}",
        )

    # Policy namespace (TinyLFU admission / W-TinyLFU / ARC): every admission
    # decision is either an accept or a reject, per cache instance. Counter
    # names are "<instance-prefix>policy.<what>", so group by the prefix.
    policy_prefixes = {
        name[: name.index("policy.")]
        for name in counters
        if "policy." in name
    }
    for prefix in sorted(policy_prefixes):
        considered = counters.get(prefix + "policy.admission_considered")
        if considered is None:
            continue  # an ARC instance: ghost counters only, no admission
        accepts = counters.get(prefix + "policy.admission_accepts", 0)
        rejects = counters.get(prefix + "policy.admission_rejects", 0)
        require(
            accepts + rejects == considered,
            where,
            f"'{prefix}policy.admission_accepts' ({accepts}) + rejects "
            f"({rejects}) != considered ({considered})",
        )

    # Fault-injection ledger: every lost P2P transfer is retried exactly
    # once, a client can only rejoin after a crash, and bytes are only ever
    # lost to crashes.
    if "net.p2p_retries" in counters or "net.p2p_messages_lost" in counters:
        lost = counters.get("net.p2p_messages_lost", 0)
        retries = counters.get("net.p2p_retries", 0)
        require(
            retries == lost,
            where,
            f"net.p2p_retries is {retries} but net.p2p_messages_lost is {lost}",
        )
    if "fault.crashes" in counters:
        crashes = counters["fault.crashes"]
        rejoins = counters.get("fault.rejoins", 0)
        require(
            rejoins <= crashes,
            where,
            f"fault.rejoins ({rejoins}) exceeds fault.crashes ({crashes})",
        )
        require(
            crashes > 0 or counters.get("fault.objects_lost", 0) == 0,
            where,
            "fault.objects_lost is non-zero without any fault.crashes",
        )


def check_document(doc, path):
    require(isinstance(doc, dict), path, "top level is not an object")
    require(doc.get("schema") == SCHEMA, path, f"schema is not '{SCHEMA}'")
    require(isinstance(doc.get("name"), str), path, "missing string 'name'")

    if "runs" in doc:
        for field in ("infinite_cache_size", "client_cache_capacity"):
            require(field in doc, path, f"sweep document missing '{field}'")
        require(isinstance(doc["runs"], list), path, "'runs' is not a list")
        require(doc["runs"], path, "'runs' is empty")
        for i, run in enumerate(doc["runs"]):
            where = f"{path}: runs[{i}]"
            for field in ("cache_percent", "scheme", "latency_gain_percent", "metrics"):
                require(field in run, where, f"missing '{field}'")
            check_metrics_body(run["metrics"], where)
    else:
        require("metrics" in doc, path, "missing 'metrics' (and no 'runs')")
        check_metrics_body(doc["metrics"], path)


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    for path in argv[1:]:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except OSError as err:
            print(f"error: cannot read {path}: {err}", file=sys.stderr)
            return 1
        except json.JSONDecodeError as err:
            print(f"error: {path} is not valid JSON: {err}", file=sys.stderr)
            return 1
        try:
            check_document(doc, path)
        except SchemaError as err:
            print(f"error: {err}", file=sys.stderr)
            return 1
        kind = "sweep" if "runs" in doc else "single-run"
        print(f"{path}: valid {SCHEMA} {kind} document")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
