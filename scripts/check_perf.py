#!/usr/bin/env python3
"""Compare a BENCH_<name>.json perf report against a committed baseline.

The bench binaries (perf_smoke, and any bench using bench::BenchReport)
emit machine-readable reports:

    {"name": "...", "sections": {"label": seconds, ...},
     "requests_per_sec": {"scheme": rps, ...},
     "gates": {"name": {"value": v, "min": m, "enforced": bool}, ...}}

("gates" is optional; benches without hard gates omit it.)

Exit codes:
  0  every baseline scheme is present and within the throughput band, and
     every enforced gate meets its minimum
  1  perf regression: a scheme's requests/sec dropped below ``--min-ratio``
     times its baseline, or an enforced gate's value is below its minimum
  2  report problem (distinct from a regression): a file is missing or not
     valid JSON, the baseline has no requests_per_sec, a scheme present in
     the baseline is absent from the current report, or the CURRENT report
     carries sections/schemes the baseline has never seen (a stale baseline
     — refresh it with ``--update-baseline``)

Every check accumulates: one run prints ALL stale-baseline problems,
regressed schemes and failed gates (exit 2 takes precedence over 1), so
perf triage needs a single CI pass instead of one per failure.

Sections are printed for context but not gated: absolute wall clock varies
too much across machines, while the *ratio* of requests/sec on the same
machine is a stable regression signal. The default band (0.5) is
deliberately generous so only real hot-path regressions trip it, not
scheduler noise. Gates are different: they assert a property of THIS run
(e.g. the 8-shard speedup ratio "sharded_speedup_8x" >= 3), so they are
compared against their own embedded minimum, not against the baseline, and
a bench disarms them (``"enforced": false``) on hardware that cannot
meaningfully measure them.

Usage:
    check_perf.py --baseline bench/baselines/BENCH_perf_smoke.json \
                  --current build/BENCH_perf_smoke.json [--min-ratio 0.5]

After a deliberate perf change (the point of comparing ratios is catching
*accidental* ones), refresh the committed baseline from a fresh run:

    check_perf.py --baseline bench/baselines/BENCH_perf_smoke.json \
                  --current build/BENCH_perf_smoke.json --update-baseline
"""

import argparse
import json
import shutil
import sys


def load(path, what):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except OSError as err:
        print(f"error: cannot read {what} report {path}: {err}", file=sys.stderr)
        sys.exit(2)
    except json.JSONDecodeError as err:
        print(f"error: {what} report {path} is not valid JSON: {err}", file=sys.stderr)
        sys.exit(2)


def added_keys(baseline, current):
    """Keys of the current report the baseline has never seen, as
    'kind:name' labels — the signal that the baseline is stale."""
    added = []
    for kind in ("sections", "requests_per_sec", "gates"):
        base_keys = set(baseline.get(kind, {}))
        for key in current.get(kind, {}):
            if key not in base_keys:
                added.append(f"{kind}:{key}")
    return sorted(added)


def refresh_command(args):
    """The exact command that refreshes the stale baseline — printed on both
    exit-2 stale paths so the fix is a copy-paste, not an archaeology dig."""
    return (
        f"python3 scripts/check_perf.py --baseline {args.baseline} "
        f"--current {args.current} --update-baseline"
    )


def check_gates(current):
    """Prints every gate; returns the list of enforced-gate failures."""
    failures = []
    for name, gate in sorted(current.get("gates", {}).items()):
        value = gate.get("value", 0.0)
        minimum = gate.get("min", 0.0)
        enforced = gate.get("enforced", False)
        ok = value >= minimum
        status = "ok" if ok else ("GATE FAILED" if enforced else "below min (not enforced)")
        print(f"gate {name}: {value:.3g} (min {minimum:.3g}, "
              f"{'enforced' if enforced else 'informational'}) {status}")
        if enforced and not ok:
            failures.append(f"gate {name}: {value:.3g} is below its minimum {minimum:.3g}")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True, help="committed baseline report")
    parser.add_argument("--current", required=True, help="freshly generated report")
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=0.5,
        help="current/baseline requests-per-sec must be >= this (default 0.5)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="overwrite the --baseline file with the --current report "
        "(after validating the current report) instead of gating",
    )
    args = parser.parse_args()

    baseline = load(args.baseline, "baseline")
    current = load(args.current, "current")

    if args.update_baseline:
        # Validate before overwriting: a half-written or schemeless report
        # must never replace a good baseline.
        if not current.get("requests_per_sec"):
            print(
                f"error: current report {args.current} has no requests_per_sec; "
                "refusing to overwrite the baseline",
                file=sys.stderr,
            )
            return 2
        added = added_keys(baseline, current)
        # Raw byte copy, not a JSON re-dump: the bench's own formatting is
        # the canonical baseline format.
        shutil.copyfile(args.current, args.baseline)
        for scheme, rps in sorted(current["requests_per_sec"].items()):
            old = baseline.get("requests_per_sec", {}).get(scheme)
            ref = f" (was {old:,.0f})" if old is not None else " (new)"
            print(f"{scheme}: baseline now {rps:,.0f} req/s{ref}")
        if added:
            print("\nnewly added baseline entries (absent from the old baseline):")
            for key in added:
                print(f"  {key}")
        print(f"\nbaseline {args.baseline} updated from {args.current}")
        return 0

    base_rps = baseline.get("requests_per_sec", {})
    cur_rps = current.get("requests_per_sec", {})
    if not base_rps:
        print(f"error: baseline {args.baseline} has no requests_per_sec", file=sys.stderr)
        return 2

    for label, secs in current.get("sections", {}).items():
        base_secs = baseline.get("sections", {}).get(label)
        ref = f" (baseline {base_secs:.3f} s)" if base_secs is not None else ""
        print(f"section {label}: {secs:.3f} s{ref}")

    # Every check below ACCUMULATES instead of returning, so one CI pass
    # shows the complete failure list: all stale-baseline problems, all
    # regressed schemes, all failed gates. Report problems (exit 2) take
    # precedence over regressions (exit 1) in the final exit code.
    problems = []  # exit-2 class: stale baseline / broken report
    failures = []  # exit-1 class: regressions and failed gates

    # A scheme the baseline knows but the current run never measured is a
    # broken/renamed bench, not a slow one — report it distinctly so CI logs
    # don't read it as a perf regression.
    missing = sorted(set(base_rps) - set(cur_rps))
    if missing:
        print(
            f"error: scheme(s) present in baseline {args.baseline} but missing "
            f"from current report {args.current}: {', '.join(missing)}",
            file=sys.stderr,
        )
        print(
            "(did the bench fail mid-run, or was a scheme renamed without "
            "refreshing the baseline?)",
            file=sys.stderr,
        )
        problems.append(f"missing from current report: {', '.join(missing)}")

    # The mirror image: the current report measures things the baseline has
    # never seen. The new entries would otherwise ride along ungated until
    # someone remembered to refresh the baseline — fail loudly instead.
    added = added_keys(baseline, current)
    if added:
        print(
            f"error: current report {args.current} has entries absent from the "
            f"baseline {args.baseline}: {', '.join(added)}",
            file=sys.stderr,
        )
        print(
            "(a bench gained a section/scheme/gate; refresh the committed "
            "baseline so the new entries are gated too)",
            file=sys.stderr,
        )
        problems.append(f"absent from baseline: {', '.join(added)}")

    for scheme, base in sorted(base_rps.items()):
        if scheme not in cur_rps:
            continue  # already reported as a missing-scheme problem
        cur = cur_rps[scheme]
        ratio = cur / base if base > 0 else float("inf")
        status = "ok" if ratio >= args.min_ratio else "REGRESSION"
        print(f"{scheme}: {cur:,.0f} req/s vs baseline {base:,.0f} "
              f"(ratio {ratio:.2f}) {status}")
        if ratio < args.min_ratio:
            failures.append(
                f"{scheme}: {cur:,.0f} req/s is below {args.min_ratio:.2f}x "
                f"baseline ({base:,.0f} req/s)"
            )

    failures.extend(check_gates(current))

    if problems or failures:
        print("\nperf check FAILED:", file=sys.stderr)
        for f in problems + failures:
            print(f"  {f}", file=sys.stderr)
        if problems:
            print(
                f"\nif the report change is deliberate, refresh with:\n"
                f"  {refresh_command(args)}",
                file=sys.stderr,
            )
            return 2
        return 1
    print("\nperf check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
