#!/usr/bin/env python3
"""Compare a BENCH_<name>.json perf report against a committed baseline.

The bench binaries (perf_smoke, and any bench using bench::BenchReport)
emit machine-readable reports:

    {"name": "...", "sections": {"label": seconds, ...},
     "requests_per_sec": {"scheme": rps, ...}}

Exit codes:
  0  every baseline scheme is present and within the throughput band
  1  perf regression: a scheme's requests/sec dropped below ``--min-ratio``
     times its baseline
  2  report problem (distinct from a regression): a file is missing or not
     valid JSON, the baseline has no requests_per_sec, or a scheme present
     in the baseline is absent from the current report

Sections are printed for context but not gated: absolute wall clock varies
too much across machines, while the *ratio* of requests/sec on the same
machine is a stable regression signal. The default band (0.5) is
deliberately generous so only real hot-path regressions trip it, not
scheduler noise.

Usage:
    check_perf.py --baseline bench/baselines/BENCH_perf_smoke.json \
                  --current build/BENCH_perf_smoke.json [--min-ratio 0.5]

After a deliberate perf change (the point of comparing ratios is catching
*accidental* ones), refresh the committed baseline from a fresh run:

    check_perf.py --baseline bench/baselines/BENCH_perf_smoke.json \
                  --current build/BENCH_perf_smoke.json --update-baseline
"""

import argparse
import json
import shutil
import sys


def load(path, what):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except OSError as err:
        print(f"error: cannot read {what} report {path}: {err}", file=sys.stderr)
        sys.exit(2)
    except json.JSONDecodeError as err:
        print(f"error: {what} report {path} is not valid JSON: {err}", file=sys.stderr)
        sys.exit(2)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True, help="committed baseline report")
    parser.add_argument("--current", required=True, help="freshly generated report")
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=0.5,
        help="current/baseline requests-per-sec must be >= this (default 0.5)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="overwrite the --baseline file with the --current report "
        "(after validating the current report) instead of gating",
    )
    args = parser.parse_args()

    baseline = load(args.baseline, "baseline")
    current = load(args.current, "current")

    if args.update_baseline:
        # Validate before overwriting: a half-written or schemeless report
        # must never replace a good baseline.
        if not current.get("requests_per_sec"):
            print(
                f"error: current report {args.current} has no requests_per_sec; "
                "refusing to overwrite the baseline",
                file=sys.stderr,
            )
            return 2
        # Raw byte copy, not a JSON re-dump: the bench's own formatting is
        # the canonical baseline format.
        shutil.copyfile(args.current, args.baseline)
        for scheme, rps in sorted(current["requests_per_sec"].items()):
            old = baseline.get("requests_per_sec", {}).get(scheme)
            ref = f" (was {old:,.0f})" if old is not None else " (new)"
            print(f"{scheme}: baseline now {rps:,.0f} req/s{ref}")
        print(f"\nbaseline {args.baseline} updated from {args.current}")
        return 0

    base_rps = baseline.get("requests_per_sec", {})
    cur_rps = current.get("requests_per_sec", {})
    if not base_rps:
        print(f"error: baseline {args.baseline} has no requests_per_sec", file=sys.stderr)
        return 2

    for label, secs in current.get("sections", {}).items():
        base_secs = baseline.get("sections", {}).get(label)
        ref = f" (baseline {base_secs:.3f} s)" if base_secs is not None else ""
        print(f"section {label}: {secs:.3f} s{ref}")

    # A scheme the baseline knows but the current run never measured is a
    # broken/renamed bench, not a slow one — report it distinctly so CI logs
    # don't read it as a perf regression.
    missing = sorted(set(base_rps) - set(cur_rps))
    if missing:
        print(
            f"error: scheme(s) present in baseline {args.baseline} but missing "
            f"from current report {args.current}: {', '.join(missing)}",
            file=sys.stderr,
        )
        print(
            "(did the bench fail mid-run, or was a scheme renamed without "
            "refreshing the baseline?)",
            file=sys.stderr,
        )
        return 2

    failures = []
    for scheme, base in sorted(base_rps.items()):
        cur = cur_rps[scheme]
        ratio = cur / base if base > 0 else float("inf")
        status = "ok" if ratio >= args.min_ratio else "REGRESSION"
        print(f"{scheme}: {cur:,.0f} req/s vs baseline {base:,.0f} "
              f"(ratio {ratio:.2f}) {status}")
        if ratio < args.min_ratio:
            failures.append(
                f"{scheme}: {cur:,.0f} req/s is below {args.min_ratio:.2f}x "
                f"baseline ({base:,.0f} req/s)"
            )

    if failures:
        print("\nperf check FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nperf check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
