#!/usr/bin/env sh
# Regenerates every paper figure and ablation table (stdout is the report;
# redirect to bench_output.txt to keep it).
#
# usage: run_all_figures.sh [BUILD_DIR]
#
# Environment:
#   WEBCACHE_BENCH_SCALE   scales the request volume (e.g. 0.1 for quick runs)
#   WEBCACHE_THREADS       run_sweep worker threads, forwarded to every bench
#                          (results are bitwise identical regardless)
#   WEBCACHE_SIM_SHARDS    intra-run worker shards WITHIN each simulation,
#                          forwarded to every bench (0 = sequential engine;
#                          any value >= 1 is byte-identical — see README
#                          "Sharded runs"). Composes with WEBCACHE_THREADS:
#                          threads parallelize across a sweep's runs, shards
#                          inside each run.
#   WEBCACHE_METRICS_OUT_DIR  when set, each bench also writes its
#                          "webcache-metrics/1" JSON export(s) into this
#                          directory as <bench>.metrics[.<label>].json
set -eu

BUILD_DIR="${1:-build}"

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "error: '$BUILD_DIR/bench' does not exist." >&2
  echo "Build the bench harnesses first:" >&2
  echo "  cmake -B $BUILD_DIR -S . -DCMAKE_BUILD_TYPE=Release && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

found=0
for b in "$BUILD_DIR"/bench/*; do
  case "$b" in
    *micro_components) continue ;;  # google-benchmark micro suite, run separately
  esac
  [ -x "$b" ] && [ -f "$b" ] || continue
  found=$((found + 1))
  echo "===== $b ====="
  if [ -n "${WEBCACHE_METRICS_OUT_DIR:-}" ]; then
    mkdir -p "$WEBCACHE_METRICS_OUT_DIR"
    # Benches without an export path (the ablations, perf_smoke) ignore it.
    WEBCACHE_THREADS="${WEBCACHE_THREADS:-0}" WEBCACHE_SIM_SHARDS="${WEBCACHE_SIM_SHARDS:-0}" "$b" \
      --metrics-out "$WEBCACHE_METRICS_OUT_DIR/$(basename "$b").metrics.json"
  else
    WEBCACHE_THREADS="${WEBCACHE_THREADS:-0}" WEBCACHE_SIM_SHARDS="${WEBCACHE_SIM_SHARDS:-0}" "$b"
  fi
done

if [ "$found" -eq 0 ]; then
  echo "error: no bench executables found under '$BUILD_DIR/bench'." >&2
  exit 1
fi
echo "ran $found bench binaries from $BUILD_DIR/bench"
