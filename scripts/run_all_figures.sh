#!/usr/bin/env sh
# Regenerates every paper figure and ablation table into bench_output.txt.
# WEBCACHE_BENCH_SCALE (e.g. 0.1) scales the request volume for quick runs.
set -eu

BUILD_DIR="${1:-build}"

for b in "$BUILD_DIR"/bench/*; do
  case "$b" in
    *micro_components) continue ;;  # google-benchmark micro suite, run separately
  esac
  [ -x "$b" ] || continue
  echo "===== $b ====="
  "$b"
done
