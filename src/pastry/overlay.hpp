// Simulated Pastry overlay (Rowstron & Druschel, Middleware 2001).
//
// The paper organizes the cooperative halves of all client browser caches in
// a cluster into one P2P client cache on a Pastry ring: destaged objects are
// routed by objectId = SHA-1(URL) to the live node whose cacheId is
// numerically closest (the "root"), in ceil(log_{2^b} N) expected hops.
//
// This class simulates the overlay at the protocol-state level: every node
// keeps its own routing table and leaf set, and route() makes forwarding
// decisions *using only that per-node state*, so measured hop counts are the
// real Pastry hop counts. What is abstracted away is the message exchange of
// the join/repair protocols themselves: joins and repairs install the state
// those protocols converge to, taking the global membership view as ground
// truth. Failures leave stale references behind exactly as real crashes do;
// they are discovered on use (modelling timeouts) and repaired per-entry.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/registry.hpp"
#include "pastry/leaf_set.hpp"
#include "pastry/node_id.hpp"
#include "pastry/routing_table.hpp"

namespace webcache::pastry {

struct OverlayConfig {
  /// Pastry's b: bits per id digit. b = 4 (hex digits) is the value the
  /// paper quotes (log_16 N hops for N = 1024 clients).
  unsigned bits_per_digit = 4;
  /// Pastry's l: leaf-set size (typical value 16 per the paper, Section 4.3).
  unsigned leaf_set_size = 16;
  /// When a dead next-hop is detected during routing, immediately install a
  /// replacement (models Pastry's routing-table repair).
  bool repair_on_detect = true;
  /// Proximity-aware routing-table population: among the id-eligible
  /// candidates for a slot, prefer the one closest to the owner under the
  /// network proximity metric (Pastry's locality property — the reason
  /// overlay hops stay cheap LAN hops, which the paper's Tp2p argument
  /// leans on). When off, the numerically first candidate is used.
  bool proximity_routing = false;
};

/// Position of a node in the proximity space: an abstract 2-D unit square
/// whose Euclidean distances stand in for pairwise network latencies.
/// Coordinates are derived deterministically from the node id unless
/// supplied explicitly at join time.
struct Coordinates {
  double x = 0.0;
  double y = 0.0;
};

/// Network proximity between two points (Euclidean distance).
[[nodiscard]] double proximity(const Coordinates& a, const Coordinates& b);

/// Default coordinates for a node id (uniform hash into the unit square).
[[nodiscard]] Coordinates default_coordinates(const NodeId& id);

/// Outcome of routing one message.
struct RouteResult {
  NodeId destination;      ///< node the message was delivered to
  std::uint32_t destination_slot = 0;  ///< dense slot of the destination (see slot_of)
  unsigned hops = 0;       ///< overlay hops traversed (0 = delivered locally)
  bool success = false;    ///< destination is the true root of the key
  /// Sum of proximity distances along the route (the "network distance"
  /// the message actually travelled; compare against the direct
  /// source-to-destination proximity for the relative delay penalty).
  double distance = 0.0;
};

/// Cumulative overlay health/activity counters. A read-time view over the
/// overlay's obs::Registry instruments (see Overlay::stats()).
struct OverlayStats {
  std::uint64_t messages_routed = 0;
  std::uint64_t total_hops = 0;
  std::uint64_t dead_hop_detections = 0;  ///< stale entries hit during routing
  std::uint64_t fallback_hops = 0;        ///< rare-case routing (neither leaf nor table)
  std::uint64_t repairs = 0;              ///< entries re-populated after failures
};

class Overlay {
 public:
  /// `registry` (optional) receives the overlay's counters and the per-route
  /// hop histogram under `prefix`; without one the overlay keeps a private
  /// registry, so standalone use needs no wiring.
  explicit Overlay(OverlayConfig config = {}, obs::Registry* registry = nullptr,
                   const std::string& prefix = "pastry.");

  const OverlayConfig& config() const { return config_; }

  /// Joins a node. Builds the newcomer's state and updates existing nodes'
  /// leaf sets / routing tables to the post-join steady state. Returns the
  /// node's dense slot (see slot_of). Throws std::invalid_argument on
  /// duplicate ids.
  std::uint32_t add_node(const NodeId& id);

  /// Joins a node at an explicit position in the proximity space.
  std::uint32_t add_node(const NodeId& id, const Coordinates& where);

  /// The node's position in the proximity space.
  [[nodiscard]] const Coordinates& coordinates_of(const NodeId& id) const;

  /// Graceful departure: state of the remaining nodes is updated eagerly.
  void remove_node(const NodeId& id);

  /// Crash failure: the node stops responding but remains in other nodes'
  /// tables until detected. Repairs happen on detection (if configured) or
  /// via repair_all(). The node's proximity coordinates are archived so a
  /// later rejoin_node() restores its network position.
  void fail_node(const NodeId& id);

  /// Re-admits a previously crashed node (same id, fresh protocol state) at
  /// its archived proximity coordinates — default coordinates if the id was
  /// never seen. Throws std::invalid_argument if the id is currently alive.
  void rejoin_node(const NodeId& id);

  /// Periodic repair pass over every live node: prunes dead references and
  /// refills what can be refilled. Models Pastry's background maintenance.
  void repair_all();

  [[nodiscard]] bool contains(const NodeId& id) const;   ///< alive?
  [[nodiscard]] std::size_t size() const { return ring_.size(); }

  /// Dense slot permanently assigned to `id` at its first join. Slots are
  /// handed out sequentially (0, 1, 2, ...) and survive crash/rejoin, so
  /// callers can replace NodeId-keyed hash maps with plain arrays. Throws
  /// std::out_of_range for ids that never joined.
  [[nodiscard]] std::uint32_t slot_of(const NodeId& id) const;

  /// True iff the node occupying `slot` is currently alive.
  [[nodiscard]] bool slot_alive(std::uint32_t slot) const {
    return slot < slots_.size() && slots_[slot] != nullptr;
  }

  /// Monotone counter bumped on every membership or repair event that can
  /// change any node's leaf set or routing table. Callers caching derived
  /// views (e.g. a root's leaf members) revalidate against this.
  [[nodiscard]] std::uint64_t topology_version() const { return topology_version_; }

  /// Ground-truth root: the live node numerically closest to `key`.
  /// Requires a non-empty overlay.
  [[nodiscard]] NodeId root_of(const Uint128& key) const;

  /// Routes a message from `from` toward `key` using per-node state only.
  /// `from` must be alive.
  RouteResult route(const NodeId& from, const Uint128& key);

  /// Same, addressing the origin by its dense slot (hot path: skips the
  /// NodeId hash lookup). The slot must be alive.
  RouteResult route(std::uint32_t from_slot, const Uint128& key);

  /// Per-node state access (tests, diversion logic).
  [[nodiscard]] const LeafSet& leaf_set(const NodeId& id) const;
  [[nodiscard]] const RoutingTable& routing_table(const NodeId& id) const;

  /// Counter view, rebuilt from the registry on each call.
  [[nodiscard]] OverlayStats stats() const {
    OverlayStats s;
    s.messages_routed = counters_.messages_routed.value();
    s.total_hops = counters_.total_hops.value();
    s.dead_hop_detections = counters_.dead_hop_detections.value();
    s.fallback_hops = counters_.fallback_hops.value();
    s.repairs = counters_.repairs.value();
    return s;
  }
  void reset_stats() {
    counters_.messages_routed.reset();
    counters_.total_hops.reset();
    counters_.dead_hop_detections.reset();
    counters_.fallback_hops.reset();
    counters_.repairs.reset();
  }

  /// All live node ids in ring order (ascending id).
  [[nodiscard]] std::vector<NodeId> nodes() const;

  /// Expected upper bound on hops for the current size: ceil(log_{2^b} N).
  [[nodiscard]] unsigned expected_hop_bound() const;

 private:
  struct Counters {
    Counters(obs::Registry& registry, const std::string& prefix)
        : messages_routed(registry.counter(prefix + "messages_routed")),
          total_hops(registry.counter(prefix + "total_hops")),
          dead_hop_detections(registry.counter(prefix + "dead_hop_detections")),
          fallback_hops(registry.counter(prefix + "fallback_hops")),
          repairs(registry.counter(prefix + "repairs")),
          hops(registry.histogram(prefix + "hops", 0.0, 16.0, 16)) {}
    obs::Counter& messages_routed;
    obs::Counter& total_hops;
    obs::Counter& dead_hop_detections;
    obs::Counter& fallback_hops;
    obs::Counter& repairs;
    Histogram& hops;  ///< per-route hop distribution (webcache::Histogram)
  };

  struct NodeState {
    NodeState(const NodeId& id, const OverlayConfig& cfg, const Coordinates& where)
        : table(id, cfg.bits_per_digit), leaves(id, cfg.leaf_set_size), coords(where) {}
    RoutingTable table;
    LeafSet leaves;
    Coordinates coords;
    std::uint32_t slot = 0;  ///< permanent dense slot (set at join)
  };

  /// One live node in ring order: the id plus its state pointer, so ring
  /// walks and root lookups never go back through a hash index.
  struct RingEntry {
    NodeId id;
    NodeState* state;
  };

  NodeState& state_of(const NodeId& id);
  [[nodiscard]] const NodeState& state_of(const NodeId& id) const;

  /// Ground-truth root of `key` with its state (binary search over sorted_).
  [[nodiscard]] const RingEntry& root_entry(const Uint128& key) const;

  RouteResult route_from(NodeState* origin, const Uint128& key);

  /// True iff `id` is a live node. O(1) via the hash index; routing calls
  /// this once per leaf-set member per hop, which made the tree-based
  /// ring_.contains() the single hottest operation of the Hier-GD scheme.
  [[nodiscard]] bool alive(const NodeId& id) const {
    return index_.find(id) != index_.end();
  }

  /// Smallest live node id within [lo, hi], if any.
  [[nodiscard]] std::optional<NodeId> first_alive_in(const Uint128& lo, const Uint128& hi) const;

  /// Refills one routing-table slot of `node` from the live membership.
  bool refill_slot(NodeState& node, unsigned row, unsigned column);

  /// Rebuilds a node's leaf set from the live ring (protocol steady state).
  void rebuild_leaf_set(NodeState& node);

  /// Handles a discovered-dead reference held by `holder` toward `dead`.
  void on_dead_reference(NodeState& holder, const NodeId& dead);

  OverlayConfig config_;
  std::map<NodeId, NodeState> ring_;  // live nodes, sorted by id
  /// Hash index over ring_ for O(1) liveness checks and state lookups on the
  /// routing hot path; the ordered map remains the source of truth for every
  /// ring walk (leaf-set/table rebuilds). std::map nodes are pointer-stable,
  /// so the cached NodeState* survive unrelated joins.
  std::unordered_map<NodeId, NodeState*, Uint128Hash> index_;
  /// Proximity coordinates of crashed nodes, keyed by id: removed from the
  /// live tables on fail_node (so joins never pick a dead neighbor) and
  /// restored on rejoin_node.
  std::unordered_map<NodeId, Coordinates, Uint128Hash> failed_coords_;
  /// Live nodes in ascending id order, mirroring ring_'s keys: root lookups
  /// run once per routed message, and binary search over contiguous entries
  /// beats walking the red-black tree; carrying the state pointer lets the
  /// fast path forward to the root without a hash lookup.
  std::vector<RingEntry> sorted_;
  /// Dense slot -> live node state (nullptr while the occupant is dead).
  /// Slots are assigned sequentially at first join and never reused for a
  /// different id, so external structures can index by slot.
  std::vector<NodeState*> slots_;
  /// Permanent id -> slot assignment (survives crashes; grows only on the
  /// first join of a brand-new id).
  std::unordered_map<NodeId, std::uint32_t, Uint128Hash> slot_ids_;
  /// Bumped whenever any node's leaf set or routing table may have changed.
  std::uint64_t topology_version_ = 0;
  /// False while no crash has occurred since the last full repair pass. In
  /// that state no node can hold a stale reference (joins and graceful
  /// departures keep all state fresh), so route() skips every per-member
  /// liveness probe — the dominant cost of a hop.
  bool stale_possible_ = false;
  /// Fallback registry when none was supplied (declared before counters_ so
  /// the counter references outlive nothing).
  std::unique_ptr<obs::Registry> owned_registry_;
  Counters counters_;
};

}  // namespace webcache::pastry
