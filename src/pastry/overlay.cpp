#include "pastry/overlay.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace webcache::pastry {

double proximity(const Coordinates& a, const Coordinates& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

Coordinates default_coordinates(const NodeId& id) {
  // Hash the id into the unit square; independent of the ring position so
  // id-space neighbours are not network neighbours (the realistic case).
  Uint128Hash h;
  const auto a = static_cast<std::uint32_t>(h(id));
  const auto b = static_cast<std::uint32_t>(h(id ^ Uint128{0x5bd1e995u, 0x9e3779b9u}));
  return Coordinates{static_cast<double>(a) / 4294967296.0,
                     static_cast<double>(b) / 4294967296.0};
}

Overlay::Overlay(OverlayConfig config, obs::Registry* registry, const std::string& prefix)
    : config_(config), counters_(obs::ensure_registry(registry, owned_registry_), prefix) {
  // Validate eagerly via throwaway component construction.
  RoutingTable probe_table(NodeId{}, config_.bits_per_digit);
  LeafSet probe_leaves(NodeId{}, config_.leaf_set_size);
}

Overlay::NodeState& Overlay::state_of(const NodeId& id) {
  const auto it = index_.find(id);
  if (it == index_.end()) throw std::out_of_range("Overlay: unknown or dead node");
  return *it->second;
}

const Overlay::NodeState& Overlay::state_of(const NodeId& id) const {
  const auto it = index_.find(id);
  if (it == index_.end()) throw std::out_of_range("Overlay: unknown or dead node");
  return *it->second;
}

bool Overlay::contains(const NodeId& id) const { return alive(id); }

std::vector<NodeId> Overlay::nodes() const {
  std::vector<NodeId> out;
  out.reserve(ring_.size());
  for (const auto& [id, _] : ring_) out.push_back(id);
  return out;
}

unsigned Overlay::expected_hop_bound() const {
  if (ring_.size() <= 1) return 0;
  const double base = static_cast<double>(1u << config_.bits_per_digit);
  return static_cast<unsigned>(
      std::ceil(std::log(static_cast<double>(ring_.size())) / std::log(base)));
}

std::optional<NodeId> Overlay::first_alive_in(const Uint128& lo, const Uint128& hi) const {
  const auto it = ring_.lower_bound(lo);
  if (it != ring_.end() && it->first <= hi) return it->first;
  return std::nullopt;
}

const Overlay::RingEntry& Overlay::root_entry(const Uint128& key) const {
  if (sorted_.empty()) throw std::logic_error("Overlay::root_of: empty overlay");
  const auto it = std::lower_bound(
      sorted_.begin(), sorted_.end(), key,
      [](const RingEntry& e, const Uint128& k) { return e.id < k; });
  // Candidates: successor (with wrap) and predecessor (with wrap).
  const RingEntry& succ = (it == sorted_.end()) ? sorted_.front() : *it;
  const RingEntry& pred = (it == sorted_.begin()) ? sorted_.back() : *std::prev(it);
  return closer_to(key, pred.id, succ.id) ? pred : succ;
}

NodeId Overlay::root_of(const Uint128& key) const { return root_entry(key).id; }

std::uint32_t Overlay::slot_of(const NodeId& id) const {
  const auto it = slot_ids_.find(id);
  if (it == slot_ids_.end()) throw std::out_of_range("Overlay::slot_of: unknown node id");
  return it->second;
}

void Overlay::rebuild_leaf_set(NodeState& node) {
  LeafSet fresh(node.leaves.owner(), config_.leaf_set_size);
  const NodeId owner = node.leaves.owner();
  const unsigned per_side = config_.leaf_set_size / 2;

  // Walk the sorted ring outward from the owner in both directions.
  auto fwd = ring_.upper_bound(owner);
  for (unsigned i = 0; i < per_side && ring_.size() > 1; ++i) {
    if (fwd == ring_.end()) fwd = ring_.begin();
    if (fwd->first == owner) break;  // wrapped all the way around
    fresh.insert(fwd->first);
    ++fwd;
  }
  auto bwd = ring_.lower_bound(owner);
  for (unsigned i = 0; i < per_side && ring_.size() > 1; ++i) {
    if (bwd == ring_.begin()) bwd = ring_.end();
    --bwd;
    if (bwd->first == owner) break;
    fresh.insert(bwd->first);
  }
  node.leaves = fresh;
}

bool Overlay::refill_slot(NodeState& node, unsigned row, unsigned column) {
  const NodeId owner = node.table.owner();
  const unsigned b = config_.bits_per_digit;

  // Id interval of nodes that share the first `row` digits with the owner
  // and have digit `column` at position `row`.
  const unsigned keep_shift = 128 - row * b;  // bits of owner prefix to keep
  const Uint128 kept = row == 0 ? Uint128{} : (owner >> keep_shift) << keep_shift;
  const unsigned digit_shift = 128 - (row + 1) * b;
  const Uint128 lo = kept | (Uint128{0, column} << digit_shift);
  const Uint128 mask = digit_shift == 0 ? Uint128{} : ((Uint128{0, 1} << digit_shift) - Uint128{0, 1});
  const Uint128 hi = lo | mask;

  if (config_.proximity_routing) {
    // Pastry's locality heuristic: of all id-eligible candidates, install
    // the one nearest to the owner in the proximity space.
    const NodeId* best = nullptr;
    double best_distance = 0.0;
    for (auto it = ring_.lower_bound(lo); it != ring_.end() && it->first <= hi; ++it) {
      if (it->first == owner) continue;
      const double d = proximity(node.coords, it->second.coords);
      if (best == nullptr || d < best_distance) {
        best = &it->first;
        best_distance = d;
      }
    }
    if (best == nullptr) return false;
    return node.table.insert(*best, /*replace=*/true);
  }

  auto candidate = first_alive_in(lo, hi);
  if (candidate && *candidate == owner) {
    // The owner itself occupies this range; look for the next live node.
    auto it = ring_.upper_bound(owner);
    if (it != ring_.end() && it->first <= hi) {
      candidate = it->first;
    } else {
      candidate.reset();
    }
  }
  if (!candidate) return false;
  return node.table.insert(*candidate, /*replace=*/true);
}

std::uint32_t Overlay::add_node(const NodeId& id) {
  return add_node(id, default_coordinates(id));
}

const Coordinates& Overlay::coordinates_of(const NodeId& id) const {
  return state_of(id).coords;
}

std::uint32_t Overlay::add_node(const NodeId& id, const Coordinates& where) {
  if (ring_.contains(id)) throw std::invalid_argument("Overlay: duplicate node id");
  auto [it, _] = ring_.emplace(id, NodeState(id, config_, where));
  NodeState& self = it->second;
  index_.emplace(id, &self);
  // Permanent slot: a rejoining id gets its old slot back, a new id the next
  // sequential one, so slot-indexed arrays outside the overlay stay valid
  // across churn.
  const auto [slot_it, fresh] =
      slot_ids_.emplace(id, static_cast<std::uint32_t>(slots_.size()));
  self.slot = slot_it->second;
  if (fresh) slots_.push_back(nullptr);
  slots_[self.slot] = &self;
  const auto pos = std::lower_bound(
      sorted_.begin(), sorted_.end(), id,
      [](const RingEntry& e, const NodeId& k) { return e.id < k; });
  sorted_.insert(pos, RingEntry{id, &self});
  ++topology_version_;

  // Newcomer state: the join protocol copies routing rows from the nodes on
  // the join path and the leaf set from the root; the converged result is
  // what we install directly.
  rebuild_leaf_set(self);
  for (unsigned row = 0; row < self.table.rows(); ++row) {
    for (unsigned col = 0; col < self.table.columns(); ++col) {
      refill_slot(self, row, col);
    }
    // Once the owner is the only node sharing this prefix length, deeper
    // rows can only ever contain the owner itself; stop early.
    const unsigned b = config_.bits_per_digit;
    const unsigned keep_shift = 128 - (row + 1) * b;
    const Uint128 kept = (id >> keep_shift) << keep_shift;
    const Uint128 hi = kept | (keep_shift == 0
                                   ? Uint128{}
                                   : ((Uint128{0, 1} << keep_shift) - Uint128{0, 1}));
    auto lo_it = ring_.lower_bound(kept);
    auto next = lo_it;
    bool only_self = true;
    for (; next != ring_.end() && next->first <= hi; ++next) {
      if (next->first != id) {
        only_self = false;
        break;
      }
    }
    if (only_self) break;
  }

  // Existing nodes learn about the newcomer: neighbors adjust leaf sets and
  // everyone fills the matching empty routing slot (steady state of Pastry's
  // join announcement). Under proximity routing, a newcomer closer than the
  // incumbent also replaces it (Pastry's routing-table optimization).
  for (auto& [other_id, other] : ring_) {
    if (other_id == id) continue;
    other.leaves.insert(id);
    if (config_.proximity_routing) {
      if (const auto slot = other.table.slot_of(id)) {
        const auto incumbent = other.table.entry(slot->first, slot->second);
        bool replace = false;
        bool incumbent_dead = false;
        if (incumbent) {
          const auto inc_it = ring_.find(*incumbent);
          incumbent_dead = inc_it == ring_.end();
          replace = incumbent_dead ||
                    proximity(other.coords, self.coords) <
                        proximity(other.coords, inc_it->second.coords);
        }
        other.table.insert(id, replace);
        if (incumbent_dead) counters_.repairs.inc();
      }
    } else {
      // A crashed incumbent must not keep the slot: insert(replace=false)
      // would leave the dead reference in place and the newcomer unknown, so
      // later routes through this slot would hit a guaranteed timeout. Evict
      // dead incumbents here (and count the repair), keep live ones.
      const auto slot = other.table.slot_of(id);
      bool replace_dead = false;
      if (slot) {
        const auto incumbent = other.table.entry(slot->first, slot->second);
        replace_dead = incumbent.has_value() && !ring_.contains(*incumbent);
      }
      other.table.insert(id, replace_dead);
      if (replace_dead) counters_.repairs.inc();
    }
  }
  return self.slot;
}

void Overlay::remove_node(const NodeId& id) {
  const auto it = ring_.find(id);
  if (it == ring_.end()) throw std::invalid_argument("Overlay: unknown node id");
  slots_[it->second.slot] = nullptr;
  ring_.erase(it);
  index_.erase(id);
  sorted_.erase(std::lower_bound(
      sorted_.begin(), sorted_.end(), id,
      [](const RingEntry& e, const NodeId& k) { return e.id < k; }));
  ++topology_version_;
  // Graceful leave: departure is announced, peers repair immediately.
  for (auto& [other_id, other] : ring_) {
    if (other.leaves.erase(id)) rebuild_leaf_set(other);
    if (const auto slot = other.table.slot_of(id);
        slot && other.table.entry(slot->first, slot->second) == std::optional<NodeId>(id)) {
      other.table.erase(id);
      refill_slot(other, slot->first, slot->second);
      counters_.repairs.inc();
    }
  }
}

void Overlay::fail_node(const NodeId& id) {
  const auto it = ring_.find(id);
  if (it == ring_.end()) throw std::invalid_argument("Overlay: unknown node id");
  // The node's proximity coordinates must leave the live tables with it —
  // otherwise a later join could pick the dead node as a "nearby" incumbent.
  // They are archived (a machine's network position survives its crash) so a
  // rejoin comes back at the same spot.
  failed_coords_.insert_or_assign(id, it->second.coords);
  // Crash: the node vanishes from the live set but peers keep stale
  // references until they detect the failure.
  slots_[it->second.slot] = nullptr;
  ring_.erase(it);
  index_.erase(id);
  sorted_.erase(std::lower_bound(
      sorted_.begin(), sorted_.end(), id,
      [](const RingEntry& e, const NodeId& k) { return e.id < k; }));
  stale_possible_ = true;
  ++topology_version_;
}

void Overlay::rejoin_node(const NodeId& id) {
  const auto arch = failed_coords_.find(id);
  const Coordinates where =
      arch != failed_coords_.end() ? arch->second : default_coordinates(id);
  add_node(id, where);  // throws if the id is still alive
  failed_coords_.erase(id);
}

void Overlay::repair_all() {
  for (auto& [id, node] : ring_) {
    // Prune dead leaf references, then rebuild from the live ring.
    bool leaf_dirty = false;
    for (const auto& member : node.leaves.members()) {
      if (!ring_.contains(member)) {
        node.leaves.erase(member);
        leaf_dirty = true;
      }
    }
    if (leaf_dirty) {
      rebuild_leaf_set(node);
      counters_.repairs.inc();
    }
    for (unsigned row = 0; row < node.table.rows(); ++row) {
      for (unsigned col = 0; col < node.table.columns(); ++col) {
        const auto e = node.table.entry(row, col);
        if (e && !ring_.contains(*e)) {
          node.table.erase(*e);
          refill_slot(node, row, col);
          counters_.repairs.inc();
        }
      }
    }
  }
  // Every live node has now been purged of dead references, so routing can
  // drop back to the stale-free fast path.
  stale_possible_ = false;
  ++topology_version_;
}

void Overlay::on_dead_reference(NodeState& holder, const NodeId& dead) {
  counters_.dead_hop_detections.inc();
  ++topology_version_;
  const auto slot = holder.table.slot_of(dead);
  holder.table.erase(dead);
  const bool was_leaf = holder.leaves.erase(dead);
  if (config_.repair_on_detect) {
    if (was_leaf) rebuild_leaf_set(holder);
    if (slot) refill_slot(holder, slot->first, slot->second);
    counters_.repairs.inc();
  }
}

RouteResult Overlay::route(const NodeId& from, const Uint128& key) {
  const auto origin = index_.find(from);
  if (origin == index_.end()) throw std::invalid_argument("Overlay::route: dead origin");
  return route_from(origin->second, key);
}

RouteResult Overlay::route(std::uint32_t from_slot, const Uint128& key) {
  NodeState* origin = from_slot < slots_.size() ? slots_[from_slot] : nullptr;
  if (origin == nullptr) throw std::invalid_argument("Overlay::route: dead origin");
  return route_from(origin, key);
}

RouteResult Overlay::route_from(NodeState* origin, const Uint128& key) {
  // The ground-truth root is fixed for the whole route: forwarding never
  // changes membership (dead-reference repairs only touch tables and leaf
  // sets), so one lookup serves both the leaf-set fast path and the final
  // success check.
  const RingEntry root = root_entry(key);

  NodeId current = origin->table.owner();
  NodeState* node = origin;  // carried across hops; map nodes are stable
  unsigned hops = 0;
  double travelled = 0.0;
  const auto forward_to = [&](const NodeId& next_id, NodeState& next_state) {
    travelled += proximity(node->coords, next_state.coords);
    current = next_id;
    node = &next_state;
    ++hops;
  };
  const auto forward = [&](const NodeId& next) { forward_to(next, state_of(next)); };
  constexpr unsigned kMaxHops = 256;  // loop guard; never hit in practice

  while (hops < kMaxHops) {
    // (1) Leaf-set delivery: key within the leaf span ends routing at the
    // numerically closest live member.
    if (node->leaves.covers(key)) {
      if (!stale_possible_) {
        // No crash since the last repair pass, so leaf sets are exactly the
        // nearest-per-side live nodes: every node in the covered arc is a
        // member, which makes the closest member *the global root* — found
        // by binary search instead of a member-by-member distance scan. The
        // root's own leaf set covers the key too, so routing ends there.
        if (root.id != current) forward_to(root.id, *root.state);
        break;
      }
      // Scan for the closest live member; collect stale references.
      NodeId best = current;
      std::vector<NodeId> dead;
      node->leaves.visit_members([&](const NodeId& member) {
        if (!alive(member)) {
          dead.push_back(member);
        } else if (closer_to(key, member, best)) {
          best = member;
        }
        return false;
      });
      for (const auto& d : dead) on_dead_reference(*node, d);
      if (best == current) break;  // delivered locally
      forward(best);
      continue;
    }

    // (2) Prefix routing: forward to the table entry matching one more digit.
    auto next = node->table.next_hop(key);
    if (stale_possible_ && next && !alive(*next)) {
      on_dead_reference(*node, *next);
      next = node->table.next_hop(key);  // may have been refilled
      if (next && !alive(*next)) next.reset();
    }
    if (next) {
      forward(*next);
      continue;
    }

    // (3) Rare case: no matching entry. Forward to any known live node
    // strictly closer to the key than the current node.
    NodeId best = current;
    if (!stale_possible_) {
      best = node->leaves.closest_to(key);
      node->table.for_each_populated([&](const NodeId& entry) {
        if (closer_to(key, entry, best)) best = entry;
      });
    } else {
      std::vector<NodeId> dead;
      node->leaves.visit_members([&](const NodeId& member) {
        if (!alive(member)) {
          dead.push_back(member);
        } else if (closer_to(key, member, best)) {
          best = member;
        }
        return false;
      });
      node->table.for_each_populated([&](const NodeId& entry) {
        if (!alive(entry)) {
          dead.push_back(entry);
          return;
        }
        if (closer_to(key, entry, best)) best = entry;
      });
      for (const auto& d : dead) on_dead_reference(*node, d);
    }
    if (best == current) break;  // best effort delivery at a local optimum
    forward(best);
    counters_.fallback_hops.inc();
  }

  counters_.messages_routed.inc();
  counters_.total_hops.inc(hops);
  counters_.hops.add(static_cast<double>(hops));
  return RouteResult{current, node->slot, hops, current == root.id, travelled};
}

const LeafSet& Overlay::leaf_set(const NodeId& id) const { return state_of(id).leaves; }

const RoutingTable& Overlay::routing_table(const NodeId& id) const {
  return state_of(id).table;
}

}  // namespace webcache::pastry
