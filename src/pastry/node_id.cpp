// node_id.hpp is header-only; this translation unit exists to give the
// header a home in the library and catch ODR/include errors at build time.
#include "pastry/node_id.hpp"
