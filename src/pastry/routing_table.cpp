#include "pastry/routing_table.hpp"

#include <stdexcept>

namespace webcache::pastry {

RoutingTable::RoutingTable(NodeId owner, unsigned bits_per_digit)
    : owner_(owner), bits_per_digit_(bits_per_digit) {
  if (bits_per_digit == 0 || 128 % bits_per_digit != 0 || bits_per_digit > 8) {
    throw std::invalid_argument("RoutingTable: bits_per_digit must divide 128 and be in [1,8]");
  }
  rows_ = 128 / bits_per_digit;
  columns_ = 1u << bits_per_digit;
  slots_.resize(static_cast<std::size_t>(rows_) * columns_);
}

std::optional<NodeId> RoutingTable::entry(unsigned row, unsigned column) const {
  if (row >= rows_ || column >= columns_) return std::nullopt;
  return slots_[index(row, column)];
}

std::optional<std::pair<unsigned, unsigned>> RoutingTable::slot_of(const NodeId& node) const {
  if (node == owner_) return std::nullopt;
  const unsigned row = owner_.shared_prefix_length(node, bits_per_digit_);
  const unsigned column = node.digit(row, bits_per_digit_);
  return std::make_pair(row, column);
}

bool RoutingTable::insert(const NodeId& node, bool replace) {
  const auto slot = slot_of(node);
  if (!slot) return false;
  auto& cell = slots_[index(slot->first, slot->second)];
  if (cell.has_value()) {
    if (!replace || *cell == node) return false;
    cell = node;
    return true;
  }
  cell = node;
  ++populated_count_;
  return true;
}

bool RoutingTable::erase(const NodeId& node) {
  const auto slot = slot_of(node);
  if (!slot) return false;
  auto& cell = slots_[index(slot->first, slot->second)];
  if (cell.has_value() && *cell == node) {
    cell.reset();
    --populated_count_;
    return true;
  }
  return false;
}

std::optional<NodeId> RoutingTable::next_hop(const Uint128& key) const {
  const unsigned row = owner_.shared_prefix_length(key, bits_per_digit_);
  if (row >= rows_) return std::nullopt;  // key == owner id
  const unsigned column = key.digit(row, bits_per_digit_);
  return slots_[index(row, column)];
}

std::vector<NodeId> RoutingTable::populated() const {
  std::vector<NodeId> out;
  out.reserve(populated_count_);
  for (const auto& s : slots_) {
    if (s.has_value()) out.push_back(*s);
  }
  return out;
}

}  // namespace webcache::pastry
