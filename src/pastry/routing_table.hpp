// Pastry routing table: rows indexed by shared-prefix length, columns by the
// next digit. Entry [r][c] names some node whose id shares the first r digits
// with the owner and whose digit r equals c. One routing hop corrects one
// digit, so a lookup takes at most ceil(128/b) hops and in expectation
// ceil(log_{2^b} N).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "pastry/node_id.hpp"

namespace webcache::pastry {

class RoutingTable {
 public:
  /// `bits_per_digit` is Pastry's b (default 4 → hexadecimal digits,
  /// 32 rows x 16 columns).
  RoutingTable(NodeId owner, unsigned bits_per_digit);

  [[nodiscard]] unsigned rows() const { return rows_; }
  [[nodiscard]] unsigned columns() const { return columns_; }
  [[nodiscard]] unsigned bits_per_digit() const { return bits_per_digit_; }
  [[nodiscard]] const NodeId& owner() const { return owner_; }

  /// Entry lookup; empty when no node with that prefix/digit is known.
  [[nodiscard]] std::optional<NodeId> entry(unsigned row, unsigned column) const;

  /// Installs `node` at its canonical position (derived from its shared
  /// prefix with the owner). Keeps an existing entry when one is present and
  /// `replace` is false. Returns true if the table changed.
  bool insert(const NodeId& node, bool replace = false);

  /// Removes `node` wherever it appears (after a failure). Returns true if
  /// an entry was cleared.
  bool erase(const NodeId& node);

  /// Canonical (row, column) coordinates for `node` relative to the owner,
  /// or nullopt when node == owner.
  [[nodiscard]] std::optional<std::pair<unsigned, unsigned>> slot_of(const NodeId& node) const;

  /// The next-hop candidate for `key`: entry at row = shared prefix length,
  /// column = key's next digit. Empty when that slot is unfilled.
  [[nodiscard]] std::optional<NodeId> next_hop(const Uint128& key) const;

  /// All populated entries (for repair protocols and tests).
  [[nodiscard]] std::vector<NodeId> populated() const;

  /// Visits populated entries in slot order (same enumeration as populated())
  /// without materializing a vector — the routing fallback path is hot.
  template <typename Fn>
  void for_each_populated(Fn&& fn) const {
    for (const auto& s : slots_) {
      if (s.has_value()) fn(*s);
    }
  }

  [[nodiscard]] std::size_t populated_count() const { return populated_count_; }

 private:
  [[nodiscard]] std::size_t index(unsigned row, unsigned column) const {
    return static_cast<std::size_t>(row) * columns_ + column;
  }

  NodeId owner_;
  unsigned bits_per_digit_;
  unsigned rows_;
  unsigned columns_;
  std::size_t populated_count_ = 0;
  std::vector<std::optional<NodeId>> slots_;
};

}  // namespace webcache::pastry
