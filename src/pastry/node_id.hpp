// Pastry node identifiers (Rowstron & Druschel, Middleware 2001).
//
// Node ids and message keys are 128-bit values on a circular identifier
// space. Ids are read as sequences of digits in base 2^b; routing corrects
// one digit per hop, giving the ceil(log_{2^b} N) hop bound the paper's
// Section 4.1 cites for P2P client-cache lookups.
#pragma once

#include <string>

#include "common/sha1.hpp"
#include "common/uint128.hpp"

namespace webcache::pastry {

using NodeId = Uint128;

/// Derives a cacheId for a client machine the way the paper assigns them:
/// a uniform hash of the node's name/address.
[[nodiscard]] inline NodeId node_id_for(const std::string& name) {
  return Sha1::hash128(name);
}

/// Derives the objectId for a URL: SHA-1(URL) truncated to 128 bits
/// (paper Section 4.1).
[[nodiscard]] inline Uint128 object_id_for_url(const std::string& url) {
  return Sha1::hash128(url);
}

/// True if `candidate` is numerically closer to `key` on the ring than
/// `incumbent`; ties break toward the lower id so closeness is a total order.
[[nodiscard]] inline bool closer_to(const Uint128& key, const NodeId& candidate,
                                    const NodeId& incumbent) {
  const Uint128 dc = Uint128::ring_distance(candidate, key);
  const Uint128 di = Uint128::ring_distance(incumbent, key);
  if (dc != di) return dc < di;
  return candidate < incumbent;
}

}  // namespace webcache::pastry
