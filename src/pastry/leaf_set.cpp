#include "pastry/leaf_set.hpp"

#include <algorithm>
#include <stdexcept>

namespace webcache::pastry {

LeafSet::LeafSet(NodeId owner, unsigned size) : owner_(owner), capacity_(size) {
  if (size == 0 || size % 2 != 0) {
    throw std::invalid_argument("LeafSet: size must be a positive even number");
  }
  per_side_ = size / 2;
  clockwise_.reserve(per_side_);
  counter_.reserve(per_side_);
}

namespace {
// Inserts `node` into `side`, kept sorted by `dist` from the owner (nearest
// first), bounded to `limit` entries. Returns true if the side changed.
bool insert_side(std::vector<NodeId>& side, const NodeId& owner, const NodeId& node,
                 unsigned limit, bool clockwise) {
  const auto dist = [&](const NodeId& n) {
    return clockwise ? Uint128::clockwise_distance(owner, n)
                     : Uint128::clockwise_distance(n, owner);
  };
  const auto pos = std::lower_bound(side.begin(), side.end(), node,
                                    [&](const NodeId& a, const NodeId& b) {
                                      return dist(a) < dist(b);
                                    });
  if (pos != side.end() && *pos == node) return false;
  if (side.size() == limit) {
    if (pos == side.end()) return false;  // farther than every current member
    side.pop_back();
  }
  side.insert(std::lower_bound(side.begin(), side.end(), node,
                               [&](const NodeId& a, const NodeId& b) {
                                 return dist(a) < dist(b);
                               }),
              node);
  return true;
}
}  // namespace

bool LeafSet::insert(const NodeId& node) {
  if (node == owner_) return false;
  // A node appears on the side where it is nearer; with fewer than l nodes
  // in the network it can legitimately sit in both half-sets (the ring wraps
  // around), which Pastry handles identically.
  bool changed = insert_side(clockwise_, owner_, node, per_side_, /*clockwise=*/true);
  changed |= insert_side(counter_, owner_, node, per_side_, /*clockwise=*/false);
  return changed;
}

bool LeafSet::erase(const NodeId& node) {
  bool changed = false;
  if (const auto it = std::find(clockwise_.begin(), clockwise_.end(), node);
      it != clockwise_.end()) {
    clockwise_.erase(it);
    changed = true;
  }
  if (const auto it = std::find(counter_.begin(), counter_.end(), node); it != counter_.end()) {
    counter_.erase(it);
    changed = true;
  }
  return changed;
}

bool LeafSet::contains(const NodeId& node) const {
  return std::find(clockwise_.begin(), clockwise_.end(), node) != clockwise_.end() ||
         std::find(counter_.begin(), counter_.end(), node) != counter_.end();
}

bool LeafSet::covers(const Uint128& key) const {
  if (clockwise_.size() < per_side_ || counter_.size() < per_side_) {
    // Leaf set not full: it holds every known node, so it spans the ring.
    return true;
  }
  const Uint128 cw_extent = Uint128::clockwise_distance(owner_, clockwise_.back());
  const Uint128 ccw_extent = Uint128::clockwise_distance(counter_.back(), owner_);
  const Uint128 cw_key = Uint128::clockwise_distance(owner_, key);
  const Uint128 ccw_key = Uint128::clockwise_distance(key, owner_);
  return cw_key <= cw_extent || ccw_key <= ccw_extent;
}

NodeId LeafSet::closest_to(const Uint128& key) const {
  NodeId best = owner_;
  for (const auto& n : clockwise_) {
    if (closer_to(key, n, best)) best = n;
  }
  for (const auto& n : counter_) {
    if (closer_to(key, n, best)) best = n;
  }
  return best;
}

std::vector<NodeId> LeafSet::members() const {
  std::vector<NodeId> out;
  out.reserve(clockwise_.size() + counter_.size());
  out.insert(out.end(), clockwise_.begin(), clockwise_.end());
  for (const auto& n : counter_) {
    if (std::find(out.begin(), out.end(), n) == out.end()) out.push_back(n);
  }
  return out;
}

}  // namespace webcache::pastry
