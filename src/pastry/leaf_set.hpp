// Pastry leaf set: the l nodes with ids numerically closest to the owner,
// half clockwise (larger ids, wrapping) and half counter-clockwise. The leaf
// set terminates routing (any key falling between the extremes is delivered
// in one hop to the closest leaf) and — central to this paper — defines the
// neighborhood used for *object diversion*: a full client cache offloads a
// destaged object onto a leaf-set member with free space (Section 4.3,
// following PAST).
#pragma once

#include <algorithm>
#include <vector>

#include "pastry/node_id.hpp"

namespace webcache::pastry {

class LeafSet {
 public:
  /// `size` is Pastry's l (typical value 16); half the entries sit on each
  /// side of the owner.
  LeafSet(NodeId owner, unsigned size);

  [[nodiscard]] const NodeId& owner() const { return owner_; }
  [[nodiscard]] unsigned capacity() const { return capacity_; }

  /// Inserts a candidate; keeps only the l closest per side. Returns true
  /// if the set changed.
  bool insert(const NodeId& node);

  /// Removes a departed/failed node. Returns true if it was present.
  bool erase(const NodeId& node);

  [[nodiscard]] bool contains(const NodeId& node) const;

  /// True when `key` lies within [smallest leaf, largest leaf] arc covered
  /// by this leaf set (the Pastry delivery condition). Always true when the
  /// set is not yet full (small networks: the leaf set spans the ring).
  [[nodiscard]] bool covers(const Uint128& key) const;

  /// The member (possibly the owner) numerically closest to `key`.
  [[nodiscard]] NodeId closest_to(const Uint128& key) const;

  /// All members, owner excluded. Clockwise side first.
  [[nodiscard]] std::vector<NodeId> members() const;

  /// Visits every member exactly once, in members() order (clockwise side
  /// first, counter-clockwise members not already seen after), without
  /// materializing a vector — members() copies dominate the routing hot
  /// path. The visitor returns true to stop early; visit_members returns
  /// true iff a visitor stopped it. Must not mutate the leaf set mid-visit.
  template <typename Visitor>
  bool visit_members(Visitor&& visit) const {
    for (const auto& n : clockwise_) {
      if (visit(n)) return true;
    }
    for (const auto& n : counter_) {
      // In small networks a node legitimately sits in both half-sets.
      if (std::find(clockwise_.begin(), clockwise_.end(), n) != clockwise_.end()) continue;
      if (visit(n)) return true;
    }
    return false;
  }

  [[nodiscard]] std::size_t size() const { return clockwise_.size() + counter_.size(); }
  [[nodiscard]] const std::vector<NodeId>& clockwise() const { return clockwise_; }
  [[nodiscard]] const std::vector<NodeId>& counter_clockwise() const { return counter_; }

 private:
  NodeId owner_;
  unsigned capacity_;        // total l
  unsigned per_side_;        // l / 2
  // Sorted by clockwise (resp. counter-clockwise) distance from the owner,
  // nearest first.
  std::vector<NodeId> clockwise_;
  std::vector<NodeId> counter_;
};

}  // namespace webcache::pastry
