// Core value types shared across the simulator: objects, requests, and the
// strongly-typed integer ids that keep proxy/client/object indices from being
// mixed up at call sites.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace webcache {

/// Dense integer identifying a distinct web object within a trace.
/// ObjectNum 0 is the most popular object of the synthetic workloads.
using ObjectNum = std::uint32_t;

/// Index of a client within its client cluster.
using ClientNum = std::uint32_t;

/// Index of a proxy within the proxy cluster.
using ProxyNum = std::uint32_t;

/// Simulated object size in bytes. The paper's experiments use unit-size
/// objects; the workload library still carries true sizes for trace tooling.
using ObjectSize = std::uint64_t;

/// One HTTP request as consumed by the simulator.
struct Request {
  std::uint64_t time = 0;   ///< logical timestamp (request sequence number)
  ClientNum client = 0;     ///< issuing client within its cluster
  ObjectNum object = 0;     ///< dense object id
  ObjectSize size = 1;      ///< object size (1 in the paper's experiments)
};

/// Canonical URL for a dense object id. The simulator mostly works with
/// dense ids; URLs only matter where the paper specifies SHA-1(URL), i.e.
/// when placing objects on the Pastry ring.
[[nodiscard]] inline std::string object_url(ObjectNum object) {
  return "http://origin.example.com/object/" + std::to_string(object);
}

}  // namespace webcache
