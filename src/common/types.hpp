// Core value types shared across the simulator: objects, requests, and the
// strongly-typed integer ids that keep proxy/client/object indices from being
// mixed up at call sites.
#pragma once

#include <charconv>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <string_view>

namespace webcache {

/// Dense integer identifying a distinct web object within a trace.
/// ObjectNum 0 is the most popular object of the synthetic workloads.
using ObjectNum = std::uint32_t;

/// Index of a client within its client cluster.
using ClientNum = std::uint32_t;

/// Index of a proxy within the proxy cluster.
using ProxyNum = std::uint32_t;

/// Simulated object size in bytes. The paper's experiments use unit-size
/// objects; the workload library still carries true sizes for trace tooling.
using ObjectSize = std::uint64_t;

/// One HTTP request as consumed by the simulator.
struct Request {
  std::uint64_t time = 0;   ///< logical timestamp (request sequence number)
  ClientNum client = 0;     ///< issuing client within its cluster
  ObjectNum object = 0;     ///< dense object id
  ObjectSize size = 1;      ///< object size (1 in the paper's experiments)
};

/// Prefix of every canonical object URL (see object_url).
inline constexpr std::string_view kObjectUrlPrefix = "http://origin.example.com/object/";

/// Stack buffer large enough for any canonical object URL: the 33-byte
/// prefix plus at most 10 decimal digits of a 32-bit id.
struct ObjectUrlBuffer {
  char data[48];
};

/// Formats the canonical URL of a dense object id into `buf` and returns a
/// view of it — no heap allocation, for hot loops that hash millions of URLs
/// (ring-placement table construction).
[[nodiscard]] inline std::string_view object_url(ObjectNum object, ObjectUrlBuffer& buf) {
  std::memcpy(buf.data, kObjectUrlPrefix.data(), kObjectUrlPrefix.size());
  const auto [end, ec] = std::to_chars(buf.data + kObjectUrlPrefix.size(),
                                       buf.data + sizeof(buf.data), object);
  (void)ec;  // cannot fail: the buffer fits any 32-bit value
  return {buf.data, static_cast<std::size_t>(end - buf.data)};
}

/// Canonical URL for a dense object id. The simulator mostly works with
/// dense ids; URLs only matter where the paper specifies SHA-1(URL), i.e.
/// when placing objects on the Pastry ring.
[[nodiscard]] inline std::string object_url(ObjectNum object) {
  ObjectUrlBuffer buf;
  return std::string(object_url(object, buf));
}

}  // namespace webcache
