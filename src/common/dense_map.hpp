// Flat, preallocated replacements for the unordered containers that used to
// sit on the simulator's hot path. ObjectNum (and the overlay's node slots)
// are *dense* uint32 ids, so hashing them into bucket chains pays for
// generality nothing here needs:
//
//   * DenseMap<T> / DenseSet — direct-indexed value array over the dense id
//     universe, with a per-slot epoch stamp so clear() is O(1) (bump the
//     epoch) and erase() is a single store. The right shape for structures
//     keyed by "any object in the trace" held once per cluster or proxy
//     (residency/location indices, per-proxy fetch costs, the exact lookup
//     directory): one cache-missing array read replaces hash+probe.
//   * FlatMap<T> — open-addressing linear-probe table with backward-shift
//     deletion over power-of-two capacity. The right shape for structures
//     bounded by a *cache's* capacity rather than the universe (a client
//     cache holds ~5 objects out of 10^6; a universe-sized array per client
//     would be absurd). Lookup is one multiply + shift and a short probe run
//     over contiguous memory.
//
// Both containers are deterministic: given the same operation sequence they
// produce the same layout and the same iteration order, which keeps every
// metrics/sweep export byte-identical across runs and thread counts.
// Iteration order is ascending-key for DenseMap and probe-slot order for
// FlatMap — callers that need a canonical order must sort (they did with the
// unordered containers too).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/prefetch.hpp"
#include "common/types.hpp"

namespace webcache {

/// Direct-indexed map over dense uint32 keys. A slot is live iff its stamp
/// equals the current epoch; clear() bumps the epoch instead of touching the
/// slots. Grows on demand to the largest key inserted (amortized O(1)), so
/// callers that know the universe should reserve() it up front.
template <typename T>
class DenseMap {
 public:
  DenseMap() = default;
  explicit DenseMap(std::size_t universe) { reserve(universe); }

  /// Preallocates slots for keys [0, universe). Never shrinks.
  void reserve(std::size_t universe) {
    if (universe > slots_.size()) slots_.resize(universe);
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  /// Number of allocated slots (the key universe touched so far).
  [[nodiscard]] std::size_t universe() const { return slots_.size(); }

  [[nodiscard]] bool contains(std::uint32_t key) const {
    return key < slots_.size() && slots_[key].stamp == epoch_;
  }

  /// Advisory prefetch of `key`'s slot — the line a subsequent contains/
  /// find/operator[] reads first. No-op when the key is out of range; never
  /// observable in results.
  void prefetch(std::uint32_t key) const {
    if (key < slots_.size()) WEBCACHE_PREFETCH(&slots_[key]);
  }

  [[nodiscard]] T* find(std::uint32_t key) {
    return contains(key) ? &slots_[key].value : nullptr;
  }
  [[nodiscard]] const T* find(std::uint32_t key) const {
    return contains(key) ? &slots_[key].value : nullptr;
  }

  /// Inserts a default-constructed value if absent.
  T& operator[](std::uint32_t key) {
    if (key >= slots_.size()) slots_.resize(static_cast<std::size_t>(key) + 1);
    Slot& s = slots_[key];
    if (s.stamp != epoch_) {
      s.stamp = epoch_;
      s.value = T{};
      ++size_;
    }
    return s.value;
  }

  void insert_or_assign(std::uint32_t key, T value) { (*this)[key] = std::move(value); }

  bool erase(std::uint32_t key) {
    if (!contains(key)) return false;
    slots_[key].stamp = 0;
    --size_;
    return true;
  }

  /// O(1): live slots are invalidated by moving to a fresh epoch.
  void clear() {
    size_ = 0;
    if (++epoch_ == 0) {  // epoch wrapped: hard-reset stamps once per 2^32 clears
      for (Slot& s : slots_) s.stamp = 0;
      epoch_ = 1;
    }
  }

  /// Visits live entries in ascending key order: fn(key, value).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::uint32_t key = 0; key < slots_.size(); ++key) {
      if (slots_[key].stamp == epoch_) fn(key, slots_[key].value);
    }
  }

 private:
  struct Slot {
    std::uint32_t stamp = 0;
    T value{};
  };

  std::vector<Slot> slots_;
  std::uint32_t epoch_ = 1;  // 0 is the never-live stamp
  std::size_t size_ = 0;
};

/// Direct-indexed set over dense uint32 keys: DenseMap's epoch-stamp array
/// without the values. memory_bytes() reports the flat representation
/// honestly (one stamp per universe slot).
class DenseSet {
 public:
  DenseSet() = default;
  explicit DenseSet(std::size_t universe) { reserve(universe); }

  void reserve(std::size_t universe) {
    if (universe > stamps_.size()) stamps_.resize(universe, 0);
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t universe() const { return stamps_.size(); }
  [[nodiscard]] std::size_t memory_bytes() const {
    return stamps_.capacity() * sizeof(std::uint32_t);
  }

  [[nodiscard]] bool contains(std::uint32_t key) const {
    return key < stamps_.size() && stamps_[key] == epoch_;
  }

  /// Advisory prefetch of `key`'s stamp (no-op out of range).
  void prefetch(std::uint32_t key) const {
    if (key < stamps_.size()) WEBCACHE_PREFETCH(&stamps_[key]);
  }

  /// Returns true if the key was newly inserted.
  bool insert(std::uint32_t key) {
    if (key >= stamps_.size()) stamps_.resize(static_cast<std::size_t>(key) + 1, 0);
    if (stamps_[key] == epoch_) return false;
    stamps_[key] = epoch_;
    ++size_;
    return true;
  }

  bool erase(std::uint32_t key) {
    if (!contains(key)) return false;
    stamps_[key] = 0;
    --size_;
    return true;
  }

  void clear() {
    size_ = 0;
    if (++epoch_ == 0) {
      for (auto& s : stamps_) s = 0;
      epoch_ = 1;
    }
  }

  /// Visits members in ascending key order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::uint32_t key = 0; key < stamps_.size(); ++key) {
      if (stamps_[key] == epoch_) fn(key);
    }
  }

 private:
  std::vector<std::uint32_t> stamps_;
  std::uint32_t epoch_ = 1;
  std::size_t size_ = 0;
};

/// Open-addressing hash map for dense uint32 keys whose population is
/// bounded by a cache capacity, not the universe: linear probing over a
/// power-of-two slot array, Fibonacci hashing, backward-shift deletion (no
/// tombstones, so load factor never degrades). Key 0xFFFFFFFF is reserved as
/// the empty marker — dense ids never reach it.
template <typename T>
class FlatMap {
 public:
  FlatMap() = default;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] bool contains(std::uint32_t key) const { return find(key) != nullptr; }

  /// Advisory prefetch of `key`'s ideal bucket — where a probe run starts.
  /// Probe runs are short (7/8 load ceiling) and contiguous, so the first
  /// line covers the common case.
  void prefetch(std::uint32_t key) const {
    if (!slots_.empty()) WEBCACHE_PREFETCH(&slots_[ideal(key)]);
  }

  [[nodiscard]] const T* find(std::uint32_t key) const {
    if (slots_.empty()) return nullptr;
    for (std::size_t i = ideal(key);; i = (i + 1) & mask_) {
      if (slots_[i].key == key) return &slots_[i].value;
      if (slots_[i].key == kEmpty) return nullptr;
    }
  }
  [[nodiscard]] T* find(std::uint32_t key) {
    return const_cast<T*>(std::as_const(*this).find(key));
  }

  /// Inserts a default-constructed value if absent.
  T& operator[](std::uint32_t key) {
    assert(key != kEmpty && "FlatMap: key 0xFFFFFFFF is reserved");
    if (slots_.empty() || (size_ + 1) * 8 > slots_.size() * 7) grow();
    for (std::size_t i = ideal(key);; i = (i + 1) & mask_) {
      if (slots_[i].key == key) return slots_[i].value;
      if (slots_[i].key == kEmpty) {
        slots_[i].key = key;
        slots_[i].value = T{};
        ++size_;
        return slots_[i].value;
      }
    }
  }

  bool erase(std::uint32_t key) {
    if (slots_.empty()) return false;
    std::size_t i = ideal(key);
    for (;; i = (i + 1) & mask_) {
      if (slots_[i].key == key) break;
      if (slots_[i].key == kEmpty) return false;
    }
    // Backward-shift deletion: pull displaced entries of the probe run into
    // the hole so lookups never need tombstones.
    std::size_t j = i;
    for (;;) {
      slots_[i].key = kEmpty;
      std::size_t k;
      do {
        j = (j + 1) & mask_;
        if (slots_[j].key == kEmpty) {
          --size_;
          return true;
        }
        k = ideal(slots_[j].key);
        // Keep scanning while entry j's ideal slot k lies within (i, j]
        // cyclically — moving it to i would lift it before its probe start.
      } while (i <= j ? (i < k && k <= j) : (i < k || k <= j));
      slots_[i] = std::move(slots_[j]);
      i = j;
    }
  }

  void clear() {
    slots_.clear();
    mask_ = 0;
    size_ = 0;
  }

  /// Pre-sizes the table so `expected` entries stay under the 7/8 load
  /// ceiling without any mid-run rehash (the Cache::reserve_universe hint
  /// for policies whose index is a FlatMap). Never shrinks.
  void reserve(std::size_t expected) {
    std::size_t capacity = 16;
    while (capacity * 7 < expected * 8) capacity *= 2;
    if (capacity > slots_.size()) rehash(capacity);
  }

  /// Visits entries in probe-slot order (deterministic for a given operation
  /// history): fn(key, value).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.key != kEmpty) fn(s.key, s.value);
    }
  }

 private:
  static constexpr std::uint32_t kEmpty = 0xFFFFFFFFu;

  struct Slot {
    std::uint32_t key = kEmpty;
    T value{};
  };

  [[nodiscard]] std::size_t ideal(std::uint32_t key) const {
    // Fibonacci hash: one multiply spreads consecutive dense ids across the
    // table; the shift keeps exactly log2(capacity) top bits.
    return static_cast<std::size_t>(
               (static_cast<std::uint64_t>(key) * 0x9E3779B97F4A7C15ull) >> 32) &
           mask_;
  }

  void grow() { rehash(slots_.empty() ? 16 : slots_.size() * 2); }

  void rehash(std::size_t capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(capacity, Slot{});
    mask_ = capacity - 1;
    for (Slot& s : old) {
      if (s.key == kEmpty) continue;
      for (std::size_t i = ideal(s.key);; i = (i + 1) & mask_) {
        if (slots_[i].key == kEmpty) {
          slots_[i] = std::move(s);
          break;
        }
      }
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace webcache
