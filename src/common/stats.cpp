#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace webcache {

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  if (buckets == 0 || !(lo < hi)) {
    throw std::invalid_argument("Histogram: need lo < hi and buckets >= 1");
  }
}

void Histogram::add(double x) {
  const double f = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(f * static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

void Histogram::merge(const Histogram& other) {
  if (lo_ != other.lo_ || hi_ != other.hi_ || counts_.size() != other.counts_.size()) {
    throw std::invalid_argument("Histogram::merge: incompatible bounds or bucket count");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  const double bucket_width = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double inside = counts_[i] == 0 ? 0.0
                                            : (target - cum) / static_cast<double>(counts_[i]);
      return lo_ + (static_cast<double>(i) + inside) * bucket_width;
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  const double bucket_width = (hi_ - lo_) / static_cast<double>(counts_.size());
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) * static_cast<double>(width));
    out << "[" << lo_ + static_cast<double>(i) * bucket_width << ", "
        << lo_ + static_cast<double>(i + 1) * bucket_width << ") "
        << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return out.str();
}

}  // namespace webcache
