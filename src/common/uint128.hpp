// 128-bit unsigned integer used for Pastry node identifiers and SHA-1-derived
// object identifiers. Pastry needs digit extraction in base 2^b, prefix
// comparison, and numeric (ring) distance; all are provided here without any
// dependency on compiler-specific __int128 so the representation is portable
// and its layout explicit.
#pragma once

#include <array>
#include <bit>
#include <compare>
#include <cstdint>
#include <string>

namespace webcache {

/// Fixed-width 128-bit unsigned integer, big-endian by limb: hi holds the
/// most significant 64 bits. Identifiers live on a ring of size 2^128.
struct Uint128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  constexpr Uint128() = default;
  constexpr Uint128(std::uint64_t high, std::uint64_t low) : hi(high), lo(low) {}

  /// Implicit widening from 64-bit values keeps call sites readable.
  constexpr Uint128(std::uint64_t low) : hi(0), lo(low) {}  // NOLINT(google-explicit-constructor)

  friend constexpr bool operator==(const Uint128&, const Uint128&) = default;
  friend constexpr std::strong_ordering operator<=>(const Uint128& a, const Uint128& b) {
    if (auto c = a.hi <=> b.hi; c != 0) return c;
    return a.lo <=> b.lo;
  }

  friend constexpr Uint128 operator+(Uint128 a, Uint128 b) {
    Uint128 r;
    r.lo = a.lo + b.lo;
    r.hi = a.hi + b.hi + (r.lo < a.lo ? 1 : 0);
    return r;
  }

  friend constexpr Uint128 operator-(Uint128 a, Uint128 b) {
    Uint128 r;
    r.lo = a.lo - b.lo;
    r.hi = a.hi - b.hi - (a.lo < b.lo ? 1 : 0);
    return r;
  }

  friend constexpr Uint128 operator^(Uint128 a, Uint128 b) {
    return {a.hi ^ b.hi, a.lo ^ b.lo};
  }

  friend constexpr Uint128 operator&(Uint128 a, Uint128 b) {
    return {a.hi & b.hi, a.lo & b.lo};
  }

  friend constexpr Uint128 operator|(Uint128 a, Uint128 b) {
    return {a.hi | b.hi, a.lo | b.lo};
  }

  friend constexpr Uint128 operator<<(Uint128 a, unsigned n) {
    if (n == 0) return a;
    if (n >= 128) return {};
    if (n >= 64) return {a.lo << (n - 64), 0};
    return {(a.hi << n) | (a.lo >> (64 - n)), a.lo << n};
  }

  friend constexpr Uint128 operator>>(Uint128 a, unsigned n) {
    if (n == 0) return a;
    if (n >= 128) return {};
    if (n >= 64) return {0, a.hi >> (n - 64)};
    return {a.hi >> n, (a.lo >> n) | (a.hi << (64 - n))};
  }

  /// Extracts the digit at position `index` (0 = most significant) when the
  /// 128-bit value is read as a string of digits in base 2^bits_per_digit.
  /// Pastry routes by correcting one such digit per hop.
  [[nodiscard]] constexpr unsigned digit(unsigned index, unsigned bits_per_digit) const {
    const unsigned shift = 128 - (index + 1) * bits_per_digit;
    const Uint128 d = (*this >> shift) & Uint128{0, (1ULL << bits_per_digit) - 1};
    return static_cast<unsigned>(d.lo);
  }

  /// Length of the shared digit prefix with `other` in base 2^bits_per_digit.
  /// Digits are aligned b-bit blocks, so the first differing digit index is
  /// the number of leading shared *bits* divided by b — one countl_zero
  /// instead of a digit-by-digit loop (this runs once per Pastry prefix hop).
  [[nodiscard]] constexpr unsigned shared_prefix_length(const Uint128& other,
                                                        unsigned bits_per_digit) const {
    const Uint128 x = *this ^ other;
    if (x.hi == 0 && x.lo == 0) return 128 / bits_per_digit;
    const unsigned leading_bits =
        x.hi != 0 ? static_cast<unsigned>(std::countl_zero(x.hi))
                  : 64 + static_cast<unsigned>(std::countl_zero(x.lo));
    return leading_bits / bits_per_digit;
  }

  /// Distance on the 2^128 identifier ring (minimum of the two arc lengths).
  [[nodiscard]] static constexpr Uint128 ring_distance(const Uint128& a, const Uint128& b) {
    const Uint128 d1 = a - b;
    const Uint128 d2 = b - a;
    return d1 < d2 ? d1 : d2;
  }

  /// Clockwise (increasing-id, wrapping) distance from `from` to `to`.
  [[nodiscard]] static constexpr Uint128 clockwise_distance(const Uint128& from,
                                                            const Uint128& to) {
    return to - from;
  }

  /// 32-hex-digit representation, most significant nibble first.
  [[nodiscard]] std::string to_hex() const;

  /// Parses a hex string (up to 32 digits, no prefix). Throws std::invalid_argument.
  [[nodiscard]] static Uint128 from_hex(const std::string& hex);

  /// Constructs from the leading 16 bytes of a byte array (big-endian),
  /// the form in which SHA-1 digests are consumed.
  [[nodiscard]] static constexpr Uint128 from_bytes(const std::array<std::uint8_t, 16>& bytes) {
    Uint128 v;
    for (int i = 0; i < 8; ++i) v.hi = (v.hi << 8) | bytes[static_cast<std::size_t>(i)];
    for (int i = 8; i < 16; ++i) v.lo = (v.lo << 8) | bytes[static_cast<std::size_t>(i)];
    return v;
  }
};

/// Hash functor so identifiers can key unordered containers.
struct Uint128Hash {
  std::size_t operator()(const Uint128& v) const noexcept {
    // splitmix-style mix of the two limbs; cheap and well distributed.
    std::uint64_t x = v.hi * 0x9e3779b97f4a7c15ULL ^ v.lo;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};

}  // namespace webcache
