#include "common/zipf.hpp"

#include <cmath>
#include <stdexcept>

namespace webcache {

ZipfSampler::ZipfSampler(std::size_t n, double alpha) : alpha_(alpha) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be >= 1");
  if (alpha < 0) throw std::invalid_argument("ZipfSampler: alpha must be >= 0");

  pmf_.resize(n);
  double norm = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    pmf_[i] = 1.0 / std::pow(static_cast<double>(i + 1), alpha);
    norm += pmf_[i];
  }
  for (auto& p : pmf_) p /= norm;

  // Walker/Vose alias construction.
  probability_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = pmf_[i] * static_cast<double>(n);
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    probability_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Numerical leftovers get probability 1 (self-alias).
  for (const std::uint32_t i : large) probability_[i] = 1.0;
  for (const std::uint32_t i : small) probability_[i] = 1.0;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const std::size_t column = static_cast<std::size_t>(rng.next_below(probability_.size()));
  return rng.next_double() < probability_[column] ? column : alias_[column];
}

// --- rejection-inversion ---------------------------------------------------

ZipfRejection::ZipfRejection(std::uint64_t n, double alpha) : n_(n), alpha_(alpha) {
  if (n == 0) throw std::invalid_argument("ZipfRejection: n must be >= 1");
  if (alpha < 0) throw std::invalid_argument("ZipfRejection: alpha must be >= 0");
  h_integral_x1_ = h_integral(1.5) - 1.0;
  h_integral_n_ = h_integral(static_cast<double>(n) + 0.5);
  s_ = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
}

double ZipfRejection::h(double x) const { return std::exp(-alpha_ * std::log(x)); }

double ZipfRejection::h_integral(double x) const {
  const double log_x = std::log(x);
  // Integral of x^-alpha; the helper below is numerically stable near
  // alpha = 1 where the closed form degenerates to log(x).
  const double t = (1.0 - alpha_) * log_x;
  double helper;  // (exp(t) - 1) / t, stable for small t
  if (std::abs(t) > 1e-8) {
    helper = std::expm1(t) / t;
  } else {
    helper = 1.0 + t * 0.5 * (1.0 + t / 3.0 * (1.0 + 0.25 * t));
  }
  return log_x * helper;
}

double ZipfRejection::h_integral_inverse(double x) const {
  double t = x * (1.0 - alpha_);
  if (t < -1.0) t = -1.0;  // guard against rounding below the branch point
  double log_result;
  if (std::abs(t) > 1e-8) {
    log_result = std::log1p(t) / (1.0 - alpha_);
  } else {
    log_result = x * (1.0 - 0.5 * t * (1.0 - t * (2.0 / 3.0)));
  }
  return std::exp(log_result);
}

std::uint64_t ZipfRejection::sample(Rng& rng) const {
  for (;;) {
    const double u = h_integral_n_ + rng.next_double() * (h_integral_x1_ - h_integral_n_);
    const double x = h_integral_inverse(u);
    std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    const double kd = static_cast<double>(k);
    if (kd - x <= s_ || u >= h_integral(kd + 0.5) - h(kd)) {
      return k;
    }
  }
}

}  // namespace webcache
