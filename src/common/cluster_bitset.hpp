// Fixed multi-word bitset over proxy-cluster indices.
//
// The sharded engine's cooperation digests record, per object, which
// clusters advertise a copy. They were plain uint64 masks, which capped
// cooperative sharded runs at 64 proxies; this fixed four-word bitset lifts
// the ceiling to 256 clusters while keeping the digest a small, flat,
// trivially copyable value the hot path can read with one indexed load per
// word. The width is a compile-time constant on purpose: a digest array is
// sized `universe x sizeof(ClusterBitset)`, so an unbounded dynamic bitset
// would turn every digest read into a pointer chase.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

namespace webcache {

struct ClusterBitset {
  static constexpr unsigned kWords = 4;
  /// Hard ceiling on cooperating clusters in a sharded run (Simulator::
  /// sharding_supported falls back to the sequential engine above it).
  static constexpr unsigned kMaxClusters = kWords * 64;

  std::array<std::uint64_t, kWords> words{};

  constexpr void set(unsigned i) { words[i >> 6] |= std::uint64_t{1} << (i & 63); }
  constexpr void reset(unsigned i) { words[i >> 6] &= ~(std::uint64_t{1} << (i & 63)); }
  [[nodiscard]] constexpr bool test(unsigned i) const {
    return ((words[i >> 6] >> (i & 63)) & 1) != 0;
  }
  [[nodiscard]] constexpr bool any() const {
    for (const std::uint64_t w : words) {
      if (w != 0) return true;
    }
    return false;
  }

  friend constexpr bool operator==(const ClusterBitset&, const ClusterBitset&) = default;
};

/// First set cluster in ring order from `local` — local+1, local+2, ...
/// wrapping past the top word to 0 — never `local` itself; -1 when no other
/// cluster is set. Exactly the holder the historical single-word
/// first_remote_holder scan (and before it, the per-proxy probe loop)
/// selected, generalized to kWords words.
[[nodiscard]] constexpr int first_holder_in_ring(const ClusterBitset& mask,
                                                 unsigned local) {
  const unsigned local_word = local >> 6;
  const unsigned local_bit = local & 63;
  // Bits strictly above `local` within its own word.
  const std::uint64_t above =
      local_bit == 63 ? 0 : mask.words[local_word] & (~std::uint64_t{0} << (local_bit + 1));
  if (above != 0) {
    return static_cast<int>((local_word << 6) + static_cast<unsigned>(std::countr_zero(above)));
  }
  for (unsigned w = local_word + 1; w < ClusterBitset::kWords; ++w) {
    if (mask.words[w] != 0) {
      return static_cast<int>((w << 6) + static_cast<unsigned>(std::countr_zero(mask.words[w])));
    }
  }
  for (unsigned w = 0; w < local_word; ++w) {
    if (mask.words[w] != 0) {
      return static_cast<int>((w << 6) + static_cast<unsigned>(std::countr_zero(mask.words[w])));
    }
  }
  // Bits strictly below `local` within its own word (the wrap's tail).
  const std::uint64_t below =
      local_bit == 0 ? 0 : mask.words[local_word] & (~std::uint64_t{0} >> (64 - local_bit));
  if (below != 0) {
    return static_cast<int>((local_word << 6) + static_cast<unsigned>(std::countr_zero(below)));
  }
  return -1;
}

}  // namespace webcache
