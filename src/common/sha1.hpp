// SHA-1 implemented from scratch per RFC 3174 / FIPS 180-1.
//
// The paper hashes object URLs with SHA-1 to produce 128-bit objectIds that
// are mapped onto the Pastry identifier ring, and assigns client cacheIds the
// same way. SHA-1 is not used here for any security purpose — only as the
// uniform hash the original system specifies — so the known collision
// weaknesses are irrelevant to the simulation.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/uint128.hpp"

namespace webcache {

/// Incremental SHA-1 hasher. Feed bytes with update(), then call digest().
/// A Sha1 instance can be reused after reset().
class Sha1 {
 public:
  static constexpr std::size_t kDigestBytes = 20;
  using Digest = std::array<std::uint8_t, kDigestBytes>;

  Sha1() { reset(); }

  /// Restores the initial hash state, discarding any buffered input.
  void reset();

  /// Absorbs `len` bytes starting at `data`.
  void update(const void* data, std::size_t len);
  void update(std::string_view s) { update(s.data(), s.size()); }

  /// Finalizes and returns the 20-byte digest. The instance must be reset()
  /// before further use.
  [[nodiscard]] Digest digest();

  /// One-shot convenience: SHA-1 of a string.
  [[nodiscard]] static Digest hash(std::string_view s) {
    Sha1 h;
    h.update(s);
    return h.digest();
  }

  /// First 128 bits of SHA-1(s), big-endian — the identifier form used for
  /// both objectIds (SHA-1 of the URL) and cacheIds on the Pastry ring.
  [[nodiscard]] static Uint128 hash128(std::string_view s);

  /// Lowercase hex string of a digest.
  [[nodiscard]] static std::string to_hex(const Digest& d);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 5> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_bits_ = 0;
};

}  // namespace webcache
