// Streaming statistics used throughout the simulator and benches.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace webcache {

/// Welford single-pass accumulator: mean / variance / min / max without
/// storing samples. Numerically stable for the billions of latency samples
/// a full sweep produces.
class RunningStat {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    sum_ += x;
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return count_ == 0 ? 0.0 : mean_; }
  [[nodiscard]] double variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return count_ == 0 ? 0.0 : max_; }

  /// Pools another accumulator into this one (Chan et al. parallel update),
  /// so per-shard stats can be merged exactly.
  void merge(const RunningStat& other);

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket histogram over [lo, hi); samples outside are clamped into the
/// end buckets. Used for latency and hop-count distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::size_t buckets() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }

  /// Value below which `q` (0..1) of the mass lies, linearly interpolated
  /// within the containing bucket.
  [[nodiscard]] double quantile(double q) const;

  /// Pools another histogram into this one (bucket-wise count sum), so
  /// per-shard distributions merge exactly. Both histograms must have been
  /// constructed with identical bounds and bucket counts.
  void merge(const Histogram& other);

  /// Multi-line ASCII rendering for bench output.
  [[nodiscard]] std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace webcache
