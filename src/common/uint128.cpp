#include "common/uint128.hpp"

#include <stdexcept>

namespace webcache {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string Uint128::to_hex() const {
  std::string s(32, '0');
  for (int i = 0; i < 16; ++i) {
    s[static_cast<std::size_t>(i)] = kHexDigits[(hi >> (60 - 4 * i)) & 0xF];
    s[static_cast<std::size_t>(16 + i)] = kHexDigits[(lo >> (60 - 4 * i)) & 0xF];
  }
  return s;
}

Uint128 Uint128::from_hex(const std::string& hex) {
  if (hex.empty() || hex.size() > 32) {
    throw std::invalid_argument("Uint128::from_hex: need 1..32 hex digits");
  }
  Uint128 v;
  for (char c : hex) {
    const int d = hex_value(c);
    if (d < 0) throw std::invalid_argument("Uint128::from_hex: invalid hex digit");
    v = (v << 4) | Uint128{0, static_cast<std::uint64_t>(d)};
  }
  return v;
}

}  // namespace webcache
