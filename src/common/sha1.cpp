#include "common/sha1.hpp"

#include <cstring>

namespace webcache {

namespace {
constexpr std::uint32_t rotl(std::uint32_t x, unsigned n) {
  return (x << n) | (x >> (32 - n));
}
}  // namespace

void Sha1::reset() {
  state_ = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u};
  buffer_len_ = 0;
  total_bits_ = 0;
}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int t = 0; t < 16; ++t) {
    w[t] = (static_cast<std::uint32_t>(block[t * 4]) << 24) |
           (static_cast<std::uint32_t>(block[t * 4 + 1]) << 16) |
           (static_cast<std::uint32_t>(block[t * 4 + 2]) << 8) |
           static_cast<std::uint32_t>(block[t * 4 + 3]);
  }
  for (int t = 16; t < 80; ++t) {
    w[t] = rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3], e = state_[4];

  for (int t = 0; t < 80; ++t) {
    std::uint32_t f, k;
    if (t < 20) {
      f = (b & c) | ((~b) & d);
      k = 0x5A827999u;
    } else if (t < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (t < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const std::uint32_t temp = rotl(a, 5) + f + e + w[t] + k;
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = temp;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

void Sha1::update(const void* data, std::size_t len) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  total_bits_ += static_cast<std::uint64_t>(len) * 8;

  if (buffer_len_ != 0) {
    const std::size_t take = std::min(len, buffer_.size() - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, bytes, take);
    buffer_len_ += take;
    bytes += take;
    len -= take;
    if (buffer_len_ == buffer_.size()) {
      process_block(buffer_.data());
      buffer_len_ = 0;
    }
  }

  while (len >= 64) {
    process_block(bytes);
    bytes += 64;
    len -= 64;
  }

  if (len != 0) {
    std::memcpy(buffer_.data(), bytes, len);
    buffer_len_ = len;
  }
}

Sha1::Digest Sha1::digest() {
  const std::uint64_t bits = total_bits_;

  // Pad: 0x80, zeros, then the 64-bit big-endian bit count.
  const std::uint8_t pad_byte = 0x80;
  update(&pad_byte, 1);
  const std::uint8_t zero = 0;
  while (buffer_len_ != 56) update(&zero, 1);

  std::uint8_t length_bytes[8];
  for (int i = 0; i < 8; ++i) {
    length_bytes[i] = static_cast<std::uint8_t>(bits >> (56 - 8 * i));
  }
  // Bypass total_bits_ accounting for the length field itself.
  std::memcpy(buffer_.data() + 56, length_bytes, 8);
  process_block(buffer_.data());
  buffer_len_ = 0;

  Digest out;
  for (int i = 0; i < 5; ++i) {
    out[static_cast<std::size_t>(i * 4)] = static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >> 24);
    out[static_cast<std::size_t>(i * 4 + 1)] = static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >> 16);
    out[static_cast<std::size_t>(i * 4 + 2)] = static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >> 8);
    out[static_cast<std::size_t>(i * 4 + 3)] = static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)]);
  }
  return out;
}

Uint128 Sha1::hash128(std::string_view s) {
  const Digest d = hash(s);
  std::array<std::uint8_t, 16> first16{};
  std::memcpy(first16.data(), d.data(), 16);
  return Uint128::from_bytes(first16);
}

std::string Sha1::to_hex(const Digest& d) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string s(kDigestBytes * 2, '0');
  for (std::size_t i = 0; i < kDigestBytes; ++i) {
    s[i * 2] = kHex[d[i] >> 4];
    s[i * 2 + 1] = kHex[d[i] & 0xF];
  }
  return s;
}

}  // namespace webcache
