// Zipf-like popularity sampling.
//
// Web object popularity follows a Zipf-like law: the i-th most popular
// object is requested with probability proportional to 1/i^alpha (Breslau et
// al., INFOCOM'99). ProWGen and the paper's experiments vary alpha in
// {0.5, 0.7, 1.0}. Two samplers are provided:
//   * ZipfSampler     — O(1) per sample via Walker/Vose alias tables; used by
//                       the workload generators (fixed, known N).
//   * ZipfRejection   — O(1) amortized rejection-inversion (Hörmann) with no
//                       O(N) table; used in tests and for very large N.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace webcache {

/// Alias-method sampler over ranks {0, ..., n-1} with P(i) ∝ 1/(i+1)^alpha.
class ZipfSampler {
 public:
  /// Builds the alias table in O(n). alpha must be >= 0 (alpha = 0 degrades
  /// to the uniform distribution); n must be >= 1.
  ZipfSampler(std::size_t n, double alpha);

  /// Draws a rank in [0, n). Rank 0 is the most popular object.
  [[nodiscard]] std::size_t sample(Rng& rng) const;

  [[nodiscard]] std::size_t size() const { return probability_.size(); }
  [[nodiscard]] double alpha() const { return alpha_; }

  /// Exact probability of rank i under the distribution (for tests).
  [[nodiscard]] double probability(std::size_t i) const { return pmf_[i]; }

 private:
  double alpha_;
  std::vector<double> pmf_;          // normalized probabilities, by rank
  std::vector<double> probability_;  // alias-table acceptance thresholds
  std::vector<std::uint32_t> alias_; // alias targets
};

/// Rejection-inversion sampler (W. Hörmann & G. Derflinger, "Rejection-
/// inversion to generate variates from monotone discrete distributions",
/// TOMACS 1996) for P(i) ∝ 1/i^alpha over i in [1, n]. No per-element state.
class ZipfRejection {
 public:
  ZipfRejection(std::uint64_t n, double alpha);

  /// Draws a value in [1, n].
  [[nodiscard]] std::uint64_t sample(Rng& rng) const;

 private:
  [[nodiscard]] double h(double x) const;
  [[nodiscard]] double h_integral(double x) const;
  [[nodiscard]] double h_integral_inverse(double x) const;

  std::uint64_t n_;
  double alpha_;
  double h_integral_x1_;
  double h_integral_n_;
  double s_;
};

}  // namespace webcache
