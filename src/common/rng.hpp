// Deterministic pseudo-random number generation for the simulator.
//
// Every stochastic component (workload generation, client selection, bloom
// seeds, ...) takes an explicit Rng so that a single experiment seed fully
// determines the run; two simulations with the same configuration and seed
// produce bit-identical metrics, which the integration tests rely on.
#pragma once

#include <cstdint>
#include <limits>

namespace webcache {

/// SplitMix64: used to expand a single user seed into independent stream
/// seeds. Passes BigCrush when used as a generator; here it is the seeding
/// function recommended by the xoshiro authors.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna) — the workhorse generator. Small,
/// fast, and high quality; satisfies the C++ UniformRandomBitGenerator
/// concept so it can drive <random> distributions where convenient.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  constexpr double next_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method
  /// simplified to the rejection-free multiply-shift for 64-bit bounds that
  /// fit well under 2^64, which all simulator bounds do).
  constexpr std::uint64_t next_below(std::uint64_t bound) {
    // Debiased multiply-shift; for the bounds used here (< 2^32) the bias of
    // the plain multiply-shift is < 2^-32 and irrelevant, but we keep the
    // rejection loop for correctness at any bound.
    if (bound == 0) return 0;
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  /// Derives an independent sub-stream generator. Used to give each module a
  /// private stream so adding randomness in one place never perturbs another.
  [[nodiscard]] constexpr Rng fork(std::uint64_t stream_id) {
    return Rng((*this)() ^ (stream_id * 0x9e3779b97f4a7c15ULL + 0x7f4a7c159e3779b9ULL));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace webcache
