// Advisory software-prefetch shim for the pipelined request engine.
//
// WEBCACHE_PREFETCH(addr) hints the memory system to pull the cache line of
// `addr` toward the core for a read. It is never an access in the language
// sense: no load is observable, no fault is taken for bad addresses on the
// architectures GCC/Clang target, and results of a run are byte-identical
// with the macro compiled out. Callers still bounds-check the address the
// hint is derived from, so the hint always points into live storage.
#pragma once

#if defined(__GNUC__) || defined(__clang__)
// rw=0 (read), locality=3 (keep in all cache levels): every prefetched slot
// is probed by the execution phase a few requests later.
#define WEBCACHE_PREFETCH(addr) __builtin_prefetch((addr), 0, 3)
#else
#define WEBCACHE_PREFETCH(addr) ((void)(addr))
#endif
