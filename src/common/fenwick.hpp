// Fenwick (binary indexed) tree over non-negative weights with prefix-sum
// sampling. ProWGen draws every request from a dynamically-weighted object
// population (weights = remaining reference counts, split between the LRU
// stack and the pool), which needs O(log n) weight updates and O(log n)
// sample-by-cumulative-weight.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace webcache {

class FenwickTree {
 public:
  explicit FenwickTree(std::size_t n) : tree_(n + 1, 0), weights_(n, 0) {}

  [[nodiscard]] std::size_t size() const { return weights_.size(); }
  [[nodiscard]] double total() const { return total_; }
  [[nodiscard]] double weight(std::size_t i) const { return weights_[i]; }

  /// Sets the weight of element i.
  void set(std::size_t i, double w) {
    assert(w >= 0.0);
    add(i, w - weights_[i]);
  }

  /// Adds delta (may be negative) to element i's weight.
  void add(std::size_t i, double delta) {
    if (delta == 0.0) return;
    weights_[i] += delta;
    // Clamp tiny negative residue from floating-point cancellation.
    if (weights_[i] < 0.0) {
      delta -= weights_[i];
      weights_[i] = 0.0;
    }
    total_ += delta;
    for (std::size_t j = i + 1; j < tree_.size(); j += j & (~j + 1)) {
      tree_[j] += delta;
    }
  }

  /// Sum of weights of elements [0, i).
  [[nodiscard]] double prefix_sum(std::size_t i) const {
    double s = 0.0;
    for (std::size_t j = i; j > 0; j -= j & (~j + 1)) s += tree_[j];
    return s;
  }

  /// Smallest index i with prefix_sum(i+1) > target, i.e. the element a
  /// uniform draw `target` in [0, total()) lands on. Elements with zero
  /// weight are never returned (given target < total()).
  [[nodiscard]] std::size_t find(double target) const {
    std::size_t idx = 0;
    std::size_t bit = highest_bit(tree_.size() - 1);
    while (bit != 0) {
      const std::size_t next = idx + bit;
      if (next < tree_.size() && tree_[next] <= target) {
        target -= tree_[next];
        idx = next;
      }
      bit >>= 1;
    }
    // idx is now the count of elements wholly before the target. Guard
    // against floating-point drift pushing the draw past the last element or
    // onto a zero-weight slot.
    if (idx >= weights_.size()) idx = weights_.size() - 1;
    while (idx > 0 && weights_[idx] == 0.0) --idx;
    while (idx + 1 < weights_.size() && weights_[idx] == 0.0) ++idx;
    return idx;
  }

 private:
  static std::size_t highest_bit(std::size_t n) {
    std::size_t b = 1;
    while ((b << 1) <= n) b <<= 1;
    return n == 0 ? 0 : b;
  }

  std::vector<double> tree_;
  std::vector<double> weights_;
  double total_ = 0.0;
};

}  // namespace webcache
