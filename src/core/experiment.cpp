#include "core/experiment.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <memory>
#include <ostream>
#include <stdexcept>
#include <thread>

#include "directory/directory.hpp"
#include "workload/trace_stats.hpp"

namespace webcache::core {

std::vector<double> default_cache_percents() {
  return {10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
}

unsigned sim_shards_from_env() {
  static const unsigned shards = [] {
    if (const char* env = std::getenv("WEBCACHE_SIM_SHARDS")) {
      char* end = nullptr;
      const unsigned long long n = std::strtoull(env, &end, 10);
      if (end != env && *end == '\0' && n <= 1024) return static_cast<unsigned>(n);
    }
    return 0U;
  }();
  return shards;
}

std::pair<cache::PolicyKind, cache::PolicyKind> policies_from_env() {
  static const std::pair<cache::PolicyKind, cache::PolicyKind> kinds = [] {
    std::pair<cache::PolicyKind, cache::PolicyKind> result{cache::PolicyKind::kDefault,
                                                           cache::PolicyKind::kDefault};
    const char* env = std::getenv("WEBCACHE_POLICY");
    if (env == nullptr) return result;
    const std::string value(env);
    const auto comma = value.find(',');
    const std::string proxy = value.substr(0, comma);
    const std::string client =
        comma == std::string::npos ? std::string() : value.substr(comma + 1);
    const auto parse = [](const std::string& name, cache::PolicyKind& out) {
      if (name.empty()) return;
      if (const auto kind = cache::policy_from_string(name)) {
        out = *kind;
      } else {
        std::cerr << "ignoring unknown policy '" << name << "' in WEBCACHE_POLICY (valid: "
                  << cache::policy_names() << ")\n";
      }
    };
    parse(proxy, result.first);
    parse(client, result.second);
    return result;
  }();
  return kinds;
}

ObjectNum cluster_infinite_cache_size(const workload::TraceSource& source,
                                      unsigned num_proxies) {
  if (num_proxies == 0) {
    throw std::invalid_argument("cluster_infinite_cache_size: num_proxies must be >= 1");
  }
  // Frequency of each object within proxy 0's round-robin substream; the
  // streams are statistically identical, so one cluster stands for all. One
  // chunked pass, O(distinct objects) working memory.
  std::vector<std::uint64_t> freq(source.distinct_objects(), 0);
  const std::uint64_t total = source.size();
  const std::size_t chunk = workload::default_replay_chunk();
  for (std::uint64_t base = 0; base < total;) {
    const auto win = source.window(base, chunk);
    if (win.empty()) break;
    // First position in this window landing on proxy 0's substream.
    std::uint64_t i = (num_proxies - base % num_proxies) % num_proxies;
    for (; i < win.size(); i += num_proxies) {
      const ObjectNum object = win[i].object;
      if (object >= freq.size()) {
        throw std::invalid_argument(
            "cluster_infinite_cache_size: request references object outside the universe");
      }
      ++freq[object];
    }
    base += win.size();
  }
  ObjectNum multi = 0;
  for (const auto f : freq) {
    if (f > 1) ++multi;
  }
  return multi;
}

ObjectNum cluster_infinite_cache_size(const workload::Trace& trace, unsigned num_proxies) {
  return cluster_infinite_cache_size(workload::MaterializedTraceSource(trace), num_proxies);
}

namespace {

std::size_t capacity_from_percent(double percent, ObjectNum infinite_size) {
  const auto cap = static_cast<std::size_t>(
      std::llround(percent / 100.0 * static_cast<double>(infinite_size)));
  return std::max<std::size_t>(1, cap);
}

}  // namespace

SweepResult run_sweep(const workload::TraceSource& source, const SweepConfig& config) {
  if (config.cache_percents.empty()) {
    throw std::invalid_argument("run_sweep: no cache sizes given");
  }
  if (source.empty()) {
    throw std::invalid_argument("run_sweep: empty trace");
  }

  SweepResult result;
  result.cache_percents = config.cache_percents;
  result.schemes = config.schemes;
  result.infinite_cache_size = cluster_infinite_cache_size(source, config.base.num_proxies);
  result.client_cache_capacity = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::llround(config.client_cache_percent / 100.0 *
                          static_cast<double>(result.infinite_cache_size))));

  const std::size_t num_sizes = config.cache_percents.size();
  const std::size_t num_schemes = config.schemes.size();
  result.metrics.assign(num_sizes, std::vector<sim::Metrics>(num_schemes));
  result.baseline.assign(num_sizes, sim::Metrics{});
  result.gains.assign(num_sizes, std::vector<double>(num_schemes, 0.0));
  if (config.collect_observability) {
    // Pre-allocate one registry per run slot before the workers start; each
    // registry is then populated by exactly one job and read only after the
    // join, keeping both the threading race-free and the export
    // byte-deterministic.
    result.registries.assign(num_sizes, std::vector<std::shared_ptr<obs::Registry>>(num_schemes));
    result.baseline_registries.assign(num_sizes, nullptr);
    for (std::size_t i = 0; i < num_sizes; ++i) {
      result.baseline_registries[i] = std::make_shared<obs::Registry>();
      for (std::size_t k = 0; k < num_schemes; ++k) {
        result.registries[i][k] = config.schemes[k] == sim::Scheme::kNC
                                      ? result.baseline_registries[i]
                                      : std::make_shared<obs::Registry>();
      }
    }
  }

  // One trace analysis shared by every FC/FC-EC job. Without this, each of
  // those simulators re-scans the full trace in its constructor — ~2 extra
  // O(trace) passes per swept cache size.
  std::shared_ptr<const workload::TraceStats> shared_stats;
  if (std::any_of(config.schemes.begin(), config.schemes.end(), [](sim::Scheme s) {
        return s == sim::Scheme::kFC || s == sim::Scheme::kFC_EC;
      })) {
    shared_stats = std::make_shared<const workload::TraceStats>(workload::analyze(source));
  }

  // Likewise, one ring-placement table (objectId = SHA-1 of the object URL)
  // shared by every Hier-GD/Squirrel job: the table is a pure function of the
  // object universe, and hashing it is O(objects) per simulator otherwise.
  std::shared_ptr<const std::vector<Uint128>> shared_object_ids;
  if (std::any_of(config.schemes.begin(), config.schemes.end(), [](sim::Scheme s) {
        return s == sim::Scheme::kHierGD || s == sim::Scheme::kSquirrel;
      })) {
    shared_object_ids = directory::build_object_id_table(source.distinct_objects());
  }

  // Flatten all independent runs into one job list. Job index j encodes
  // (size i, scheme k) with k == num_schemes meaning the NC baseline.
  struct Job {
    std::size_t size_index;
    std::size_t scheme_index;  // == num_schemes -> baseline NC
  };
  std::vector<Job> jobs;
  for (std::size_t i = 0; i < num_sizes; ++i) {
    jobs.push_back({i, num_schemes});
    for (std::size_t k = 0; k < num_schemes; ++k) {
      if (config.schemes[k] == sim::Scheme::kNC) continue;  // reuse the baseline
      jobs.push_back({i, k});
    }
  }

  const auto make_config = [&](std::size_t size_index, sim::Scheme scheme) {
    sim::SimConfig c = config.base;
    c.scheme = scheme;
    c.trace_stats = shared_stats;      // only FC/FC-EC read it
    c.object_ids = shared_object_ids;  // only Hier-GD/Squirrel read it
    c.proxy_capacity =
        capacity_from_percent(config.cache_percents[size_index], result.infinite_cache_size);
    c.client_cache_capacity = result.client_cache_capacity;
    // A shared registry across concurrent jobs would both race and conflate
    // runs; each job gets its own pre-allocated slot (or a private one).
    c.registry = nullptr;
    c.snapshot_interval = config.collect_observability ? config.snapshot_interval : 0;
    c.trace_capacity = 0;  // the event tracer is a single-run tool
    // Failure/churn/loss injection only applies to schemes with addressable
    // client caches.
    if (scheme != sim::Scheme::kHierGD && scheme != sim::Scheme::kSquirrel) {
      c.client_failures.clear();
      c.churn_events.clear();
      c.p2p_loss_rate = 0.0;
    }
    return c;
  };

  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    for (;;) {
      const std::size_t j = next.fetch_add(1);
      if (j >= jobs.size()) return;
      const Job& job = jobs[j];
      const sim::Scheme scheme =
          job.scheme_index == num_schemes ? sim::Scheme::kNC : config.schemes[job.scheme_index];
      auto job_config = make_config(job.size_index, scheme);
      if (config.collect_observability) {
        job_config.registry = job.scheme_index == num_schemes
                                  ? result.baseline_registries[job.size_index]
                                  : result.registries[job.size_index][job.scheme_index];
      }
      const auto metrics = sim::run_simulation(job_config, source);
      if (job.scheme_index == num_schemes) {
        result.baseline[job.size_index] = metrics;
      } else {
        result.metrics[job.size_index][job.scheme_index] = metrics;
      }
    }
  };

  unsigned threads = config.threads == 0 ? std::thread::hardware_concurrency() : config.threads;
  threads = std::max(1u, std::min<unsigned>(threads, static_cast<unsigned>(jobs.size())));
  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }

  for (std::size_t i = 0; i < num_sizes; ++i) {
    for (std::size_t k = 0; k < num_schemes; ++k) {
      if (config.schemes[k] == sim::Scheme::kNC) {
        result.metrics[i][k] = result.baseline[i];
        result.gains[i][k] = 0.0;
      } else {
        result.gains[i][k] =
            100.0 * sim::latency_gain(result.baseline[i], result.metrics[i][k]);
      }
    }
  }
  return result;
}

SweepResult run_sweep(const workload::Trace& trace, const SweepConfig& config) {
  return run_sweep(workload::MaterializedTraceSource(trace), config);
}

void print_gain_table(std::ostream& out, const SweepResult& result, const std::string& title) {
  out << "# " << title << "\n";
  out << "# infinite cache size = " << result.infinite_cache_size
      << " objects; client cache = " << result.client_cache_capacity << " objects\n";
  out << std::left << std::setw(10) << "# cache%";
  for (const auto s : result.schemes) {
    out << std::setw(10) << sim::to_string(s);
  }
  out << "\n" << std::fixed << std::setprecision(2);
  for (std::size_t i = 0; i < result.cache_percents.size(); ++i) {
    out << std::setw(10) << result.cache_percents[i];
    for (std::size_t k = 0; k < result.schemes.size(); ++k) {
      out << std::setw(10) << result.gains[i][k];
    }
    out << "\n";
  }
  out.flush();
}

void write_gain_csv(std::ostream& out, const SweepResult& result) {
  out << "cache_percent,scheme,latency_gain_percent,mean_latency,hit_ratio,"
         "local_proxy_hits,local_p2p_hits,remote_proxy_hits,remote_p2p_hits,"
         "server_fetches\n";
  for (std::size_t i = 0; i < result.cache_percents.size(); ++i) {
    for (std::size_t k = 0; k < result.schemes.size(); ++k) {
      const auto& m = result.metrics[i][k];
      out << result.cache_percents[i] << ',' << sim::to_string(result.schemes[k]) << ','
          << result.gains[i][k] << ',' << m.mean_latency() << ',' << m.hit_ratio() << ','
          << m.hits_local_proxy << ',' << m.hits_local_p2p << ',' << m.hits_remote_proxy
          << ',' << m.hits_remote_p2p << ',' << m.server_fetches << '\n';
    }
  }
  out.flush();
}

void write_metrics_json(std::ostream& out, const SweepResult& result,
                        const std::string& name) {
  if (result.registries.empty() || result.baseline_registries.empty()) {
    throw std::logic_error(
        "write_metrics_json: sweep was run without collect_observability");
  }
  out << "{\n  \"schema\": \"" << obs::kSchemaVersion << "\",\n  \"name\": \"" << name
      << "\",\n  \"infinite_cache_size\": " << result.infinite_cache_size
      << ",\n  \"client_cache_capacity\": " << result.client_cache_capacity
      << ",\n  \"runs\": [\n";
  bool first = true;
  for (std::size_t i = 0; i < result.cache_percents.size(); ++i) {
    for (std::size_t k = 0; k < result.schemes.size(); ++k) {
      if (!first) out << ",\n";
      first = false;
      out << "    {\"cache_percent\": " << obs::format_double(result.cache_percents[i])
          << ", \"scheme\": \"" << sim::to_string(result.schemes[k])
          << "\", \"latency_gain_percent\": " << obs::format_double(result.gains[i][k])
          << ",\n     \"metrics\":\n";
      result.registries[i][k]->write_json_body(out, 5);
      out << "}";
    }
  }
  out << "\n  ]\n}\n";
}

SingleRun run_single(const workload::TraceSource& source, sim::SimConfig config) {
  SingleRun r;
  if (!config.registry) config.registry = std::make_shared<obs::Registry>();
  r.registry = config.registry;
  r.metrics = sim::run_simulation(config, source);
  sim::SimConfig nc = config;
  nc.scheme = sim::Scheme::kNC;
  // NC has no addressable client caches: no failures, churn, or P2P loss.
  nc.client_failures.clear();
  nc.churn_events.clear();
  nc.p2p_loss_rate = 0.0;
  nc.checkpoint_hook = {};  // audits target the scheme under test
  // The baseline must not pollute (or double-count into) the scheme run's
  // registry; it accounts into a private one.
  nc.registry = std::make_shared<obs::Registry>();
  nc.trace_capacity = 0;
  r.baseline_registry = nc.registry;
  r.baseline = config.scheme == sim::Scheme::kNC ? r.metrics : sim::run_simulation(nc, source);
  r.gain_percent = 100.0 * sim::latency_gain(r.baseline, r.metrics);
  return r;
}

SingleRun run_single(const workload::Trace& trace, sim::SimConfig config) {
  return run_single(workload::MaterializedTraceSource(trace), std::move(config));
}

}  // namespace webcache::core
