// Public experiment facade: runs the paper's experiment shape — a sweep of
// proxy cache sizes (as a percentage of the "infinite cache size") for a set
// of schemes over one trace — and prints latency-gain tables in the layout
// of the paper's figures. Every bench binary is a thin wrapper around this.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "workload/trace.hpp"

namespace webcache::core {

/// The paper's x-axis: 10% .. 100% of the infinite cache size.
[[nodiscard]] std::vector<double> default_cache_percents();

/// The "infinite cache size" of one client cluster's request stream: the
/// number of distinct objects requested more than once by the clients of a
/// single proxy under round-robin request partitioning (paper Section 5.1).
[[nodiscard]] ObjectNum cluster_infinite_cache_size(const workload::Trace& trace,
                                                    unsigned num_proxies);

struct SweepConfig {
  std::vector<sim::Scheme> schemes{sim::kAllSchemes.begin(), sim::kAllSchemes.end()};
  std::vector<double> cache_percents = default_cache_percents();
  /// Per-client cooperative cache, as a percent of the infinite cache size
  /// (paper: 0.1%, so a 100-client cluster pools 10%).
  double client_cache_percent = 0.1;
  /// Template for everything not swept (scheme/capacities are overwritten).
  sim::SimConfig base{};
  /// Worker threads for the independent (size x scheme) runs; 0 = hardware
  /// concurrency.
  unsigned threads = 0;
};

struct SweepResult {
  std::vector<double> cache_percents;
  std::vector<sim::Scheme> schemes;
  /// metrics[i][j]: cache_percents[i] x schemes[j].
  std::vector<std::vector<sim::Metrics>> metrics;
  /// NC baseline per cache size (for the gain denominator).
  std::vector<sim::Metrics> baseline;
  /// gains[i][j] = 1 - L_scheme / L_NC, as a percentage.
  std::vector<std::vector<double>> gains;
  ObjectNum infinite_cache_size = 0;
  std::size_t client_cache_capacity = 0;
};

/// Runs the sweep. The NC baseline is always computed (reused when NC is in
/// `schemes`). Deterministic regardless of thread count.
[[nodiscard]] SweepResult run_sweep(const workload::Trace& trace, const SweepConfig& config);

/// Prints the gnuplot-style series table the paper's figures plot:
/// one row per cache size, one latency-gain column per scheme.
void print_gain_table(std::ostream& out, const SweepResult& result, const std::string& title);

/// Machine-readable CSV: cache_percent, scheme, latency gain, mean latency,
/// hit ratios per outcome. One row per (size, scheme).
void write_gain_csv(std::ostream& out, const SweepResult& result);

/// Single-configuration convenience used by examples: runs `scheme` and NC
/// at one cache size and returns (metrics, gain%).
struct SingleRun {
  sim::Metrics metrics;
  sim::Metrics baseline;
  double gain_percent = 0.0;
};
[[nodiscard]] SingleRun run_single(const workload::Trace& trace, sim::SimConfig config);

}  // namespace webcache::core
