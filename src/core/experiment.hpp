// Public experiment facade: runs the paper's experiment shape — a sweep of
// proxy cache sizes (as a percentage of the "infinite cache size") for a set
// of schemes over one trace — and prints latency-gain tables in the layout
// of the paper's figures. Every bench binary is a thin wrapper around this.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/registry.hpp"
#include "sim/simulator.hpp"
#include "workload/trace.hpp"
#include "workload/trace_source.hpp"

namespace webcache::core {

/// The paper's x-axis: 10% .. 100% of the infinite cache size.
[[nodiscard]] std::vector<double> default_cache_percents();

/// Default SimConfig::sim_shards, from WEBCACHE_SIM_SHARDS (0 — the classic
/// sequential engine — when unset or unparsable). The CLI and every bench
/// binary seed their configs from this, so one environment variable turns on
/// intra-run sharding across the whole tool surface (see README "Sharded
/// runs").
[[nodiscard]] unsigned sim_shards_from_env();

/// Default {proxy_policy, client_policy} overrides, from WEBCACHE_POLICY
/// ("<proxy>[,<client>]", names per cache::policy_from_string; unparseable
/// names warn to stderr and fall back to kDefault). The CLI seeds its
/// configs from this, so one environment variable re-policies a whole
/// scripted experiment without touching its flag lists.
[[nodiscard]] std::pair<cache::PolicyKind, cache::PolicyKind> policies_from_env();

/// The "infinite cache size" of one client cluster's request stream: the
/// number of distinct objects requested more than once by the clients of a
/// single proxy under round-robin request partitioning (paper Section 5.1).
/// The streaming overload runs one chunked pass with O(distinct objects)
/// working memory, so it handles out-of-core traces.
[[nodiscard]] ObjectNum cluster_infinite_cache_size(const workload::TraceSource& source,
                                                    unsigned num_proxies);
[[nodiscard]] ObjectNum cluster_infinite_cache_size(const workload::Trace& trace,
                                                    unsigned num_proxies);

struct SweepConfig {
  std::vector<sim::Scheme> schemes{sim::kAllSchemes.begin(), sim::kAllSchemes.end()};
  std::vector<double> cache_percents = default_cache_percents();
  /// Per-client cooperative cache, as a percent of the infinite cache size
  /// (paper: 0.1%, so a 100-client cluster pools 10%).
  double client_cache_percent = 0.1;
  /// Template for everything not swept (scheme/capacities are overwritten).
  sim::SimConfig base{};
  /// Worker threads for the independent (size x scheme) runs; 0 = hardware
  /// concurrency.
  unsigned threads = 0;
  /// Keep each run's obs::Registry in the result (SweepResult::registries /
  /// baseline_registries) for write_metrics_json. Registries are
  /// pre-allocated per job slot on the calling thread and each one is
  /// populated by exactly one run, so their contents — and the exported
  /// JSON — are identical for any thread count.
  bool collect_observability = false;
  /// Snapshot interval forwarded to every run (0 = off; only meaningful
  /// with collect_observability).
  std::uint64_t snapshot_interval = 0;
};

struct SweepResult {
  std::vector<double> cache_percents;
  std::vector<sim::Scheme> schemes;
  /// metrics[i][j]: cache_percents[i] x schemes[j].
  std::vector<std::vector<sim::Metrics>> metrics;
  /// NC baseline per cache size (for the gain denominator).
  std::vector<sim::Metrics> baseline;
  /// gains[i][j] = 1 - L_scheme / L_NC, as a percentage.
  std::vector<std::vector<double>> gains;
  ObjectNum infinite_cache_size = 0;
  std::size_t client_cache_capacity = 0;
  /// Per-run registries, indexed like metrics/baseline. Empty unless
  /// SweepConfig::collect_observability; for an NC scheme column the entry
  /// aliases the baseline registry of the same cache size.
  std::vector<std::vector<std::shared_ptr<obs::Registry>>> registries;
  std::vector<std::shared_ptr<obs::Registry>> baseline_registries;
};

/// Runs the sweep. The NC baseline is always computed (reused when NC is in
/// `schemes`). Deterministic regardless of thread count. The TraceSource
/// overload is the primary: workers share one source and replay it through
/// positional windows, so a compiled (mmap) trace never materializes and the
/// exports are byte-identical to the in-memory path.
[[nodiscard]] SweepResult run_sweep(const workload::TraceSource& source,
                                    const SweepConfig& config);
[[nodiscard]] SweepResult run_sweep(const workload::Trace& trace, const SweepConfig& config);

/// Prints the gnuplot-style series table the paper's figures plot:
/// one row per cache size, one latency-gain column per scheme.
void print_gain_table(std::ostream& out, const SweepResult& result, const std::string& title);

/// Machine-readable CSV: cache_percent, scheme, latency gain, mean latency,
/// hit ratios per outcome. One row per (size, scheme).
void write_gain_csv(std::ostream& out, const SweepResult& result);

/// Full observability export of a sweep (schema "webcache-metrics/1"): one
/// JSON document with a "runs" array holding, per (cache size, scheme), the
/// latency gain plus that run's complete registry body. Requires the sweep
/// to have been run with collect_observability; throws std::logic_error
/// otherwise. Byte-identical output for any thread count.
void write_metrics_json(std::ostream& out, const SweepResult& result,
                        const std::string& name);

/// Single-configuration convenience used by examples: runs `scheme` and NC
/// at one cache size and returns (metrics, gain%).
struct SingleRun {
  sim::Metrics metrics;
  sim::Metrics baseline;
  double gain_percent = 0.0;
  /// The scheme run's registry (config.registry when supplied, else the one
  /// created for the run) and the NC baseline's private registry.
  std::shared_ptr<obs::Registry> registry;
  std::shared_ptr<obs::Registry> baseline_registry;
};
[[nodiscard]] SingleRun run_single(const workload::TraceSource& source, sim::SimConfig config);
[[nodiscard]] SingleRun run_single(const workload::Trace& trace, sim::SimConfig config);

}  // namespace webcache::core
