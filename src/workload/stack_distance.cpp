#include "workload/stack_distance.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/fenwick.hpp"

namespace webcache::workload {

std::vector<std::uint64_t> lru_stack_distances(const Trace& trace) {
  const std::size_t n = trace.requests.size();
  std::vector<std::uint64_t> distances(n, kColdMiss);

  // occupied[t] = 1 iff position t holds the *most recent* reference of
  // some object. The distance of a re-reference at time t to an object last
  // seen at time s is the number of occupied positions in (s, t) — i.e. the
  // count of distinct objects touched in between.
  FenwickTree occupied(n);
  std::unordered_map<ObjectNum, std::size_t> last_seen;
  last_seen.reserve(trace.distinct_objects);

  for (std::size_t t = 0; t < n; ++t) {
    const ObjectNum object = trace.requests[t].object;
    if (const auto it = last_seen.find(object); it != last_seen.end()) {
      const std::size_t s = it->second;
      const double between = occupied.prefix_sum(t) - occupied.prefix_sum(s + 1);
      distances[t] = static_cast<std::uint64_t>(between + 0.5);
      occupied.set(s, 0.0);  // that position is no longer the most recent
      it->second = t;
    } else {
      last_seen.emplace(object, t);
    }
    occupied.set(t, 1.0);
  }
  return distances;
}

StackDistanceSummary summarize_stack_distances(const std::vector<std::uint64_t>& distances) {
  StackDistanceSummary s;
  std::vector<std::uint64_t> finite;
  finite.reserve(distances.size());
  double total = 0.0;
  for (const auto d : distances) {
    if (d == kColdMiss) {
      ++s.cold_misses;
    } else {
      finite.push_back(d);
      total += static_cast<double>(d);
    }
  }
  s.reuses = finite.size();
  if (finite.empty()) return s;
  s.mean = total / static_cast<double>(finite.size());
  std::sort(finite.begin(), finite.end());
  s.median = finite[finite.size() / 2];
  s.p90 = finite[std::min(finite.size() - 1, finite.size() * 9 / 10)];
  return s;
}

double lru_hit_ratio(const std::vector<std::uint64_t>& distances, std::size_t capacity) {
  if (distances.empty()) return 0.0;
  std::uint64_t hits = 0;
  for (const auto d : distances) {
    if (d != kColdMiss && d < capacity) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(distances.size());
}

}  // namespace webcache::workload
