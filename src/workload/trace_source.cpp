#include "workload/trace_source.hpp"

#include <cstdlib>

namespace webcache::workload {

Trace materialize(const TraceSource& source) {
  Trace trace;
  trace.distinct_objects = source.distinct_objects();
  const std::uint64_t n = source.size();
  trace.requests.reserve(static_cast<std::size_t>(n));
  const std::size_t chunk = default_replay_chunk();
  for (std::uint64_t pos = 0; pos < n;) {
    const auto win = source.window(pos, chunk);
    trace.requests.insert(trace.requests.end(), win.begin(), win.end());
    pos += win.size();
  }
  return trace;
}

std::size_t default_replay_chunk() {
  static const std::size_t chunk = [] {
    if (const char* env = std::getenv("WEBCACHE_REPLAY_CHUNK")) {
      char* end = nullptr;
      const unsigned long long n = std::strtoull(env, &end, 10);
      if (end != env && *end == '\0' && n > 0) return static_cast<std::size_t>(n);
    }
    return std::size_t{65536};
  }();
  return chunk;
}

}  // namespace webcache::workload
