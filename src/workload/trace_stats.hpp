// Trace characterization: the statistics the paper's experiment setup is
// defined in terms of — most importantly the "infinite cache size" (number
// of distinct objects accessed more than once), which every cache-size axis
// in the evaluation is expressed as a percentage of.
#pragma once

#include <cstdint>
#include <vector>

#include "workload/trace_source.hpp"

namespace webcache::workload {

struct TraceStats {
  std::uint64_t total_requests = 0;
  ObjectNum distinct_objects = 0;
  ObjectNum one_timers = 0;          ///< objects referenced exactly once
  /// The paper's "infinite cache size": distinct objects accessed more than
  /// once. A cache this large never takes a capacity miss on a re-reference.
  ObjectNum infinite_cache_size = 0;
  std::uint64_t max_frequency = 0;
  double mean_frequency = 0.0;
  /// Share of all requests going to the top 10% most popular objects — a
  /// quick skew indicator.
  double top_decile_share = 0.0;
  /// Per-object request counts, indexed by object id.
  std::vector<std::uint64_t> frequency;
};

/// Single chunked pass over the stream; working memory is O(distinct
/// objects), never O(requests), so analysis handles out-of-core traces.
[[nodiscard]] TraceStats analyze(const TraceSource& source);
[[nodiscard]] TraceStats analyze(const Trace& trace);

/// Per-proxy frequency table for the cost-benefit coordinator: global counts
/// scaled by 1/cluster_size (clients at different proxies are statistically
/// identical, paper assumption 2).
[[nodiscard]] std::vector<double> per_proxy_frequency(const TraceStats& stats,
                                                      unsigned cluster_size);

/// Least-squares estimate of the Zipf slope alpha from the frequency-vs-rank
/// line in log-log space, over objects referenced more than once. Used by
/// tests and the trace_explorer example.
[[nodiscard]] double estimate_zipf_alpha(const TraceStats& stats);

}  // namespace webcache::workload
