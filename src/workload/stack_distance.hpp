// Exact LRU stack-distance analysis.
//
// The stack distance of a request is the number of *distinct* objects
// referenced since the previous reference to the same object — position in
// an infinite LRU stack. Its distribution is the canonical measure of
// temporal locality (and directly gives the hit ratio of an LRU cache of
// any size: hits = requests with distance < capacity). Used to validate the
// ProWGen locality knobs and by the trace_explorer example.
//
// Computed in O(R log R) with a Fenwick tree over request positions
// (Bennett & Kruskal's classic algorithm).
#pragma once

#include <cstdint>
#include <vector>

#include "workload/trace.hpp"

namespace webcache::workload {

/// Sentinel distance for first references (infinite stack depth).
inline constexpr std::uint64_t kColdMiss = ~0ULL;

/// Per-request stack distances, aligned with trace.requests. First
/// references get kColdMiss.
[[nodiscard]] std::vector<std::uint64_t> lru_stack_distances(const Trace& trace);

struct StackDistanceSummary {
  std::uint64_t reuses = 0;        ///< requests with a finite distance
  std::uint64_t cold_misses = 0;   ///< first references
  double mean = 0.0;               ///< mean finite distance
  std::uint64_t median = 0;        ///< median finite distance
  std::uint64_t p90 = 0;           ///< 90th percentile finite distance
};

[[nodiscard]] StackDistanceSummary summarize_stack_distances(
    const std::vector<std::uint64_t>& distances);

/// Hit ratio an LRU cache of `capacity` objects would achieve on the trace
/// (computed exactly from the distance distribution, no simulation).
[[nodiscard]] double lru_hit_ratio(const std::vector<std::uint64_t>& distances,
                                   std::size_t capacity);

}  // namespace webcache::workload
