// ProWGen synthetic Web-proxy workload generator, reimplemented after
// Busari & Williamson, "On the sensitivity of Web proxy cache performance to
// workload characteristics" (INFOCOM 2001) — the generator the paper drives
// all synthetic experiments with.
//
// Modelled characteristics and their knobs:
//   * one-time referencing  — fraction of distinct objects requested exactly
//     once (default 50%, the paper's default);
//   * object popularity     — Zipf-like with slope alpha over the remaining
//     objects (default 0.7; the paper sweeps {0.5, 0.7, 1.0});
//   * distinct objects      — object universe size (default 10,000);
//   * temporal locality     — finite LRU-stack model: the next request is
//     drawn either from the stack of recently referenced objects or from the
//     pool of not-recently-referenced ones, in proportion to their remaining
//     reference mass (amplified by `temporal_amplifier`); a larger stack
//     makes more objects eligible for temporally-clustered re-reference
//     (default stack = 20% of multi-referenced objects; the paper sweeps
//     {5%, 20%, 60%});
//   * file sizes            — lognormal body with a Pareto tail, with an
//     optional size-popularity correlation (the paper fixes unit sizes for
//     its experiments; sizes are generated for trace tooling completeness).
//
// Reference counts are assigned exactly (the stream consumes precomputed
// per-object counts), so the delivered popularity distribution matches the
// configured one by construction, not just in expectation.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "workload/trace.hpp"

namespace webcache::workload {

/// Size-popularity correlation modes (ProWGen supports all three; zero
/// correlation is both its and our default).
enum class SizeCorrelation {
  kNone,      ///< sizes independent of popularity
  kPositive,  ///< popular objects tend to be larger
  kNegative,  ///< popular objects tend to be smaller
};

struct ProWGenConfig {
  std::uint64_t total_requests = 1'000'000;
  ObjectNum distinct_objects = 10'000;
  /// Fraction of distinct objects referenced exactly once.
  double one_timer_fraction = 0.5;
  /// Zipf slope for the popularity of multi-referenced objects.
  double zipf_alpha = 0.7;
  /// LRU stack size as a fraction of the multi-referenced object count.
  double lru_stack_fraction = 0.2;
  /// How strongly the stack's reference mass is favoured over the pool's;
  /// 1.0 = no temporal clustering beyond natural popularity, larger values
  /// concentrate re-references while objects sit in the stack.
  double temporal_amplifier = 4.0;
  /// Fraction of stack draws that re-reference an entry of the recent-
  /// reference window (recency-weighted) instead of sampling the stack by
  /// remaining mass. This is what makes stack draws genuinely *temporal*
  /// rather than a restatement of popularity.
  double recency_bias = 0.25;
  /// Length of the recent-reference window, in requests. Deliberately
  /// independent of the LRU stack size: as in ProWGen's stack-depth model,
  /// temporally-local re-references land near the top of the stack no
  /// matter how large the stack is — the stack size only controls how much
  /// of the reference mass flows through the stack at all. This is what
  /// makes a larger stack help a *single* cache (short re-reference
  /// distances on more of the stream) rather than hurt it.
  std::size_t recency_window = 256;
  /// Number of clients the requests are attributed to (round-robin client
  /// ids randomized per request).
  ClientNum clients = 100;

  // --- size model (unused by the unit-size experiments) ---
  bool generate_sizes = false;
  double lognormal_mu = 8.35;     ///< ln-space mean  (~ e^8.35 ≈ 4.2 KB median)
  double lognormal_sigma = 1.3;   ///< ln-space stddev
  double pareto_tail_fraction = 0.07;
  double pareto_alpha = 1.2;
  double pareto_scale = 10'000.0;  ///< tail minimum (bytes)
  SizeCorrelation size_correlation = SizeCorrelation::kNone;

  std::uint64_t seed = 42;
};

class ProWGen {
 public:
  explicit ProWGen(ProWGenConfig config);

  /// Generates the full trace. Deterministic in (config, seed).
  [[nodiscard]] Trace generate() const;

  /// Streaming generation: hands each request to `sink` in stream order
  /// instead of building a vector, so `trace compile` can write a
  /// billion-request trace straight to disk in bounded memory (the working
  /// set stays O(distinct_objects) for the popularity/stack bookkeeping).
  /// Identical request sequence to generate() for the same config.
  void generate(const RequestSink& sink) const;

  [[nodiscard]] const ProWGenConfig& config() const { return config_; }

 private:
  ProWGenConfig config_;
};

}  // namespace webcache::workload
