// Squid access.log reader (native format), so real proxy logs — the kind
// the UCB trace was distilled from — can be replayed directly:
//
//   timestamp elapsed client action/code size method URL ident hierarchy type
//   1017772599.954 1 10.0.0.7 TCP_MISS/200 1374 GET http://a.com/x - DIRECT/- text/html
//
// Clients and URLs are mapped to dense ids in first-seen order; timestamps
// become milliseconds. Lines that do not parse are skipped and counted, so
// a hand-edited or truncated log degrades gracefully.
#pragma once

#include <iosfwd>
#include <string>

#include "workload/trace.hpp"

namespace webcache::workload {

struct SquidReadOptions {
  /// Keep only GET requests (what a cache can serve); everything else is
  /// skipped but counted.
  bool only_get = true;
  /// Keep only responses with 2xx/3xx status codes.
  bool only_successful = true;
};

struct SquidReadResult {
  Trace trace;
  std::uint64_t lines_total = 0;
  std::uint64_t lines_skipped = 0;     ///< filtered (method/status)
  std::uint64_t lines_malformed = 0;   ///< unparseable
  ClientNum distinct_clients = 0;
};

[[nodiscard]] SquidReadResult read_squid_log(std::istream& in, SquidReadOptions options = {});
[[nodiscard]] SquidReadResult read_squid_log_file(const std::string& path,
                                                  SquidReadOptions options = {});

}  // namespace webcache::workload
