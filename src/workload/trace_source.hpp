// TraceSource: the streaming request-stream abstraction the simulator, the
// sweep driver and the benches replay from. A source describes an ordered
// request stream over a dense object universe without prescribing where the
// records live: the in-memory adapter wraps the classic workload::Trace
// vector (zero overhead, the historical behaviour), while the wctrace/1
// mmap reader (wctrace.hpp) serves sequential windows straight out of a
// file mapping so traces far larger than RAM replay in bounded memory.
//
// The contract is positional and stateless: `window(pos, max_len)` returns a
// zero-copy span of consecutive records starting at `pos`, clamped to the
// stream length, and is safe to call concurrently (run_sweep replays one
// shared source from many worker threads). `discard_consumed(pos)` is a
// best-effort hint that records before `pos` are no longer needed by the
// caller; the mmap source translates it into page release so a sequential
// replay's resident set stays bounded by the chunk budget, not the trace.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "workload/trace.hpp"

namespace webcache::workload {

/// An ordered, positionally addressable request stream (see file comment).
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Total number of requests in the stream.
  [[nodiscard]] virtual std::uint64_t size() const = 0;

  /// Object ids in the stream are in [0, distinct_objects()).
  [[nodiscard]] virtual ObjectNum distinct_objects() const = 0;

  /// Zero-copy view of records [pos, pos + max_len), clamped to the stream
  /// length (empty once pos >= size()). The span stays valid for the
  /// source's lifetime, though a later discard_consumed() may make
  /// re-reading it cost page faults. Thread-safe.
  [[nodiscard]] virtual std::span<const Request> window(std::uint64_t pos,
                                                        std::size_t max_len) const = 0;

  /// Best-effort hint that this reader is done with records before `pos`.
  /// Sequential replays call it once per consumed chunk; sources backed by
  /// RAM ignore it. Thread-safe; never affects correctness.
  virtual void discard_consumed(std::uint64_t pos) const { (void)pos; }

  [[nodiscard]] bool empty() const { return size() == 0; }
};

/// In-memory adapter: a TraceSource view over a workload::Trace. Either
/// borrows a caller-owned trace (which must outlive the source — the classic
/// Simulator contract) or takes ownership of a moved-in one.
class MaterializedTraceSource final : public TraceSource {
 public:
  /// Non-owning view; `trace` must outlive this source.
  explicit MaterializedTraceSource(const Trace& trace) : trace_(&trace) {}

  /// Owning: the source keeps the trace alive itself.
  explicit MaterializedTraceSource(Trace&& trace)
      : owned_(std::make_unique<Trace>(std::move(trace))), trace_(owned_.get()) {}

  [[nodiscard]] std::uint64_t size() const override { return trace_->requests.size(); }

  [[nodiscard]] ObjectNum distinct_objects() const override { return trace_->distinct_objects; }

  [[nodiscard]] std::span<const Request> window(std::uint64_t pos,
                                                std::size_t max_len) const override {
    const std::uint64_t n = trace_->requests.size();
    if (pos >= n) return {};
    const auto len = static_cast<std::size_t>(
        std::min<std::uint64_t>(max_len, n - pos));
    return {trace_->requests.data() + pos, len};
  }

  [[nodiscard]] const Trace& trace() const { return *trace_; }

 private:
  std::unique_ptr<Trace> owned_;
  const Trace* trace_;
};

/// Wraps a trace into a shared owning source (the benches' default path).
[[nodiscard]] inline std::shared_ptr<const TraceSource> make_source(Trace&& trace) {
  return std::make_shared<MaterializedTraceSource>(std::move(trace));
}

/// Copies a full stream back into a materialized Trace (tools/tests; the
/// whole point of the streaming pipeline is that hot paths never need this).
[[nodiscard]] Trace materialize(const TraceSource& source);

/// Replay chunk budget, in requests per window, used by sequential replays
/// (Simulator::run, analyze, cluster_infinite_cache_size). Defaults to
/// 65536 requests (1.5 MiB of records); WEBCACHE_REPLAY_CHUNK overrides.
[[nodiscard]] std::size_t default_replay_chunk();

}  // namespace webcache::workload
