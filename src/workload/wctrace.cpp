#include "workload/wctrace.hpp"

#include <bit>
#include <cstring>
#include <fstream>
#include <limits>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#define WEBCACHE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace webcache::workload {

// The record IS the in-memory Request on little-endian hosts — pin the
// layout the file format depends on.
static_assert(sizeof(Request) == kWctraceRecordSize);
static_assert(std::is_trivially_copyable_v<Request>);
static_assert(offsetof(Request, time) == 0);
static_assert(offsetof(Request, client) == 8);
static_assert(offsetof(Request, object) == 12);
static_assert(offsetof(Request, size) == 16);

namespace {

constexpr bool kLittleEndian = std::endian::native == std::endian::little;

/// Folds one record into the running checksum. Defined arithmetically over
/// the field values, which equals FNV-1a over the little-endian record's
/// 8-byte words on every host.
std::uint64_t checksum_record(std::uint64_t state, const Request& r) {
  state = wctrace_checksum_step(state, r.time);
  state = wctrace_checksum_step(
      state, std::uint64_t{r.client} | (std::uint64_t{r.object} << 32));
  return wctrace_checksum_step(state, r.size);
}

void put_u32(unsigned char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}
void put_u64(unsigned char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}
std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}
std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

void encode_header(const WctraceHeader& h, unsigned char (&bytes)[kWctraceHeaderSize]) {
  std::memset(bytes, 0, sizeof(bytes));
  std::memcpy(bytes, h.magic, sizeof(h.magic));
  put_u32(bytes + 8, h.version);
  put_u32(bytes + 12, h.record_size);
  put_u64(bytes + 16, h.request_count);
  put_u64(bytes + 24, h.distinct_objects);
  put_u64(bytes + 32, h.checksum);
}

/// Decodes and validates a header against the known total file size.
/// `what` names the file in error messages.
WctraceHeader decode_header(const unsigned char (&bytes)[kWctraceHeaderSize],
                            std::uint64_t file_bytes, const std::string& what) {
  WctraceHeader h;
  std::memcpy(h.magic, bytes, sizeof(h.magic));
  if (std::memcmp(h.magic, kWctraceMagic, sizeof(kWctraceMagic)) != 0) {
    throw std::runtime_error(what + ": not a wctrace file (bad magic)");
  }
  h.version = get_u32(bytes + 8);
  if (h.version != kWctraceVersion) {
    throw std::runtime_error(what + ": unsupported wctrace version " +
                             std::to_string(h.version));
  }
  h.record_size = get_u32(bytes + 12);
  if (h.record_size != kWctraceRecordSize) {
    throw std::runtime_error(what + ": corrupt header (record size " +
                             std::to_string(h.record_size) + ", expected " +
                             std::to_string(kWctraceRecordSize) + ")");
  }
  h.request_count = get_u64(bytes + 16);
  h.distinct_objects = get_u64(bytes + 24);
  h.checksum = get_u64(bytes + 32);
  const std::uint64_t expected =
      kWctraceHeaderSize + h.request_count * std::uint64_t{kWctraceRecordSize};
  if (file_bytes != expected) {
    throw std::runtime_error(
        what + ": truncated or corrupt (header promises " + std::to_string(expected) +
        " bytes for " + std::to_string(h.request_count) + " requests, file has " +
        std::to_string(file_bytes) + ")");
  }
  if (h.distinct_objects > std::uint64_t{std::numeric_limits<ObjectNum>::max()} + 1) {
    throw std::runtime_error(what + ": object universe too large for this build");
  }
  return h;
}

std::uint64_t stream_file_bytes(std::istream& in) {
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  in.seekg(0, std::ios::beg);
  return end < 0 ? 0 : static_cast<std::uint64_t>(end);
}

}  // namespace

// --- writer -----------------------------------------------------------------

struct WctraceWriter::Impl {
  std::ofstream out;
  std::vector<Request> buffer;
  std::size_t buffer_records = 0;
  std::uint64_t count = 0;
  std::uint64_t checksum = kWctraceChecksumSeed;
  ObjectNum derived_distinct = 0;   ///< max referenced id + 1
  ObjectNum explicit_distinct = 0;  ///< set_distinct_objects override
  bool has_explicit_distinct = false;
  bool finalized = false;
};

WctraceWriter::WctraceWriter(const std::string& path, std::size_t buffer_records)
    : path_(path), impl_(std::make_unique<Impl>()) {
  if (buffer_records == 0) buffer_records = 1;
  impl_->buffer_records = buffer_records;
  impl_->buffer.reserve(buffer_records);
  impl_->out.open(path, std::ios::binary | std::ios::trunc);
  if (!impl_->out) {
    throw std::runtime_error("cannot open wctrace file for writing: " + path);
  }
  // Placeholder header; finalize() seeks back and writes the real one.
  unsigned char zeros[kWctraceHeaderSize] = {};
  impl_->out.write(reinterpret_cast<const char*>(zeros), sizeof(zeros));
}

WctraceWriter::~WctraceWriter() {
  if (impl_ && !impl_->finalized) {
    try {
      finalize();
    } catch (...) {  // NOLINT(bugprone-empty-catch): dtor must not throw
    }
  }
}

void WctraceWriter::append(const Request& request) {
  Impl& im = *impl_;
  if (request.object + 1 > im.derived_distinct) im.derived_distinct = request.object + 1;
  im.buffer.push_back(request);
  ++im.count;
  if (im.buffer.size() >= im.buffer_records) flush();
}

void WctraceWriter::set_distinct_objects(ObjectNum distinct) {
  impl_->explicit_distinct = distinct;
  impl_->has_explicit_distinct = true;
}

void WctraceWriter::flush() {
  Impl& im = *impl_;
  if (im.buffer.empty()) return;
  for (const auto& r : im.buffer) im.checksum = checksum_record(im.checksum, r);
  if constexpr (kLittleEndian) {
    im.out.write(reinterpret_cast<const char*>(im.buffer.data()),
                 static_cast<std::streamsize>(im.buffer.size() * sizeof(Request)));
  } else {
    // Big-endian host: serialize each record to its little-endian image.
    std::vector<unsigned char> bytes(im.buffer.size() * kWctraceRecordSize);
    unsigned char* p = bytes.data();
    for (const auto& r : im.buffer) {
      put_u64(p, r.time);
      put_u32(p + 8, r.client);
      put_u32(p + 12, r.object);
      put_u64(p + 16, r.size);
      p += kWctraceRecordSize;
    }
    im.out.write(reinterpret_cast<const char*>(bytes.data()),
                 static_cast<std::streamsize>(bytes.size()));
  }
  im.buffer.clear();
}

WctraceHeader WctraceWriter::finalize() {
  Impl& im = *impl_;
  if (im.finalized) {
    throw std::logic_error("WctraceWriter::finalize: already finalized");
  }
  flush();
  im.finalized = true;
  if (im.has_explicit_distinct && im.explicit_distinct < im.derived_distinct) {
    throw std::runtime_error(
        "WctraceWriter: declared universe (" + std::to_string(im.explicit_distinct) +
        ") smaller than max referenced id + 1 (" + std::to_string(im.derived_distinct) +
        ")");
  }
  WctraceHeader header;
  std::memcpy(header.magic, kWctraceMagic, sizeof(kWctraceMagic));
  header.request_count = im.count;
  header.distinct_objects =
      im.has_explicit_distinct ? im.explicit_distinct : im.derived_distinct;
  header.checksum = im.checksum;
  unsigned char bytes[kWctraceHeaderSize];
  encode_header(header, bytes);
  im.out.seekp(0);
  im.out.write(reinterpret_cast<const char*>(bytes), sizeof(bytes));
  im.out.flush();
  if (!im.out) {
    throw std::runtime_error("failed writing wctrace file: " + path_);
  }
  im.out.close();
  return header;
}

void write_wctrace_file(const std::string& path, const Trace& trace) {
  WctraceWriter writer(path);
  writer.set_distinct_objects(trace.distinct_objects);
  for (const auto& r : trace.requests) writer.append(r);
  writer.finalize();
}

// --- readers ----------------------------------------------------------------

WctraceHeader read_wctrace_header(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open wctrace file: " + path);
  const std::uint64_t file_bytes = stream_file_bytes(in);
  unsigned char bytes[kWctraceHeaderSize];
  in.read(reinterpret_cast<char*>(bytes), sizeof(bytes));
  if (in.gcount() != static_cast<std::streamsize>(sizeof(bytes))) {
    throw std::runtime_error(path + ": truncated wctrace header (" +
                             std::to_string(file_bytes) + " bytes)");
  }
  return decode_header(bytes, file_bytes, path);
}

bool is_wctrace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[sizeof(kWctraceMagic)];
  in.read(magic, sizeof(magic));
  return in.gcount() == static_cast<std::streamsize>(sizeof(magic)) &&
         std::memcmp(magic, kWctraceMagic, sizeof(magic)) == 0;
}

MmapTraceSource::MmapTraceSource(const std::string& path) {
  header_ = read_wctrace_header(path);
  count_ = header_.request_count;
  distinct_ = static_cast<ObjectNum>(header_.distinct_objects);
  const std::size_t total_bytes = static_cast<std::size_t>(
      kWctraceHeaderSize + count_ * std::uint64_t{kWctraceRecordSize});

#if defined(WEBCACHE_HAVE_MMAP)
  if constexpr (kLittleEndian) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) throw std::runtime_error("cannot open wctrace file: " + path);
    void* map = ::mmap(nullptr, total_bytes, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);  // the mapping keeps its own reference
    if (map == MAP_FAILED) {
      throw std::runtime_error("mmap failed for wctrace file: " + path);
    }
    ::madvise(map, total_bytes, MADV_SEQUENTIAL);
    map_ = map;
    map_bytes_ = total_bytes;
    if (count_ > 0) {
      records_ = reinterpret_cast<const Request*>(static_cast<const char*>(map_) +
                                                  kWctraceHeaderSize);
    }
    return;
  }
#endif
  // Portable / big-endian fallback: decode the whole file up front. Loses
  // the out-of-core property but keeps every wctrace consumer correct.
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open wctrace file: " + path);
  in.seekg(kWctraceHeaderSize);
  converted_.resize(static_cast<std::size_t>(count_));
  for (auto& r : converted_) {
    unsigned char rec[kWctraceRecordSize];
    in.read(reinterpret_cast<char*>(rec), sizeof(rec));
    r.time = get_u64(rec);
    r.client = get_u32(rec + 8);
    r.object = get_u32(rec + 12);
    r.size = get_u64(rec + 16);
  }
  if (!in) throw std::runtime_error(path + ": failed reading wctrace records");
}

MmapTraceSource::~MmapTraceSource() {
#if defined(WEBCACHE_HAVE_MMAP)
  if (map_ != nullptr) ::munmap(map_, map_bytes_);
#endif
}

std::span<const Request> MmapTraceSource::window(std::uint64_t pos,
                                                 std::size_t max_len) const {
  if (pos >= count_) return {};
  const auto len =
      static_cast<std::size_t>(std::min<std::uint64_t>(max_len, count_ - pos));
  if (records_ != nullptr) return {records_ + pos, len};
  return {converted_.data() + pos, len};
}

void MmapTraceSource::discard_consumed(std::uint64_t pos) const {
#if defined(WEBCACHE_HAVE_MMAP)
  if (map_ == nullptr) return;
  const std::uint64_t consumed_bytes =
      kWctraceHeaderSize + std::min(pos, count_) * std::uint64_t{kWctraceRecordSize};
  static const std::size_t page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  const std::size_t target = static_cast<std::size_t>(consumed_bytes) / page * page;
  // Claim [old, target) atomically so concurrent readers issue each madvise
  // range exactly once; a reader still behind the high-water mark simply
  // refaults the pages it needs (minor faults — the page cache keeps them).
  std::size_t old = discarded_bytes_.load(std::memory_order_relaxed);
  while (old < target) {
    if (discarded_bytes_.compare_exchange_weak(old, target, std::memory_order_relaxed)) {
      ::madvise(static_cast<char*>(map_) + old, target - old, MADV_DONTNEED);
      return;
    }
  }
#else
  (void)pos;
#endif
}

bool MmapTraceSource::verify_checksum() const {
  std::uint64_t state = kWctraceChecksumSeed;
  const std::size_t chunk = default_replay_chunk();
  for (std::uint64_t pos = 0; pos < count_;) {
    const auto win = window(pos, chunk);
    for (const auto& r : win) state = checksum_record(state, r);
    pos += win.size();
  }
  return state == header_.checksum;
}

Trace read_wctrace_file(const std::string& path) {
  const MmapTraceSource source(path);
  return materialize(source);
}

std::shared_ptr<const TraceSource> open_trace_source(const std::string& path) {
  if (is_wctrace_file(path)) return std::make_shared<MmapTraceSource>(path);
  return make_source(read_trace_file(path));
}

WctraceHeader compile_text_to_wctrace(const std::string& text_path,
                                      const std::string& out_path) {
  std::ifstream in(text_path);
  if (!in) throw std::runtime_error("cannot open trace file: " + text_path);
  WctraceWriter writer(out_path);
  const ObjectNum distinct =
      read_trace_stream(in, [&writer](const Request& r) { writer.append(r); });
  writer.set_distinct_objects(distinct);
  return writer.finalize();
}

}  // namespace webcache::workload
