#include "workload/squid_log.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace webcache::workload {

namespace {

bool parse_status(const std::string& action_code, unsigned& status_out) {
  // "TCP_MISS/200" -> 200
  const auto slash = action_code.find('/');
  if (slash == std::string::npos) return false;
  const auto* first = action_code.data() + slash + 1;
  const auto* last = action_code.data() + action_code.size();
  const auto [ptr, ec] = std::from_chars(first, last, status_out);
  return ec == std::errc() && ptr == last;
}

}  // namespace

SquidReadResult read_squid_log(std::istream& in, SquidReadOptions options) {
  SquidReadResult result;
  std::unordered_map<std::string, ClientNum> client_ids;
  std::unordered_map<std::string, ObjectNum> url_ids;

  std::string line;
  while (std::getline(in, line)) {
    ++result.lines_total;
    if (line.empty() || line[0] == '#') {
      ++result.lines_skipped;
      continue;
    }

    std::istringstream fields(line);
    std::string timestamp, elapsed, client, action_code, size_tok, method, url;
    fields >> timestamp >> elapsed >> client >> action_code >> size_tok >> method >> url;
    if (url.empty()) {
      ++result.lines_malformed;
      continue;
    }

    double ts = 0.0;
    try {
      ts = std::stod(timestamp);
    } catch (const std::exception&) {
      ++result.lines_malformed;
      continue;
    }
    if (!(ts >= 0.0) || !std::isfinite(ts)) {
      ++result.lines_malformed;
      continue;
    }

    unsigned status = 0;
    if (!parse_status(action_code, status)) {
      ++result.lines_malformed;
      continue;
    }

    if (options.only_get && method != "GET") {
      ++result.lines_skipped;
      continue;
    }
    if (options.only_successful && (status < 200 || status >= 400)) {
      ++result.lines_skipped;
      continue;
    }

    std::uint64_t size = 1;
    {
      std::uint64_t v = 0;
      const auto [ptr, ec] = std::from_chars(size_tok.data(),
                                             size_tok.data() + size_tok.size(), v);
      if (ec == std::errc() && ptr == size_tok.data() + size_tok.size()) size = std::max<std::uint64_t>(v, 1);
    }

    Request r;
    r.time = static_cast<std::uint64_t>(ts * 1000.0);  // ms resolution
    r.client = client_ids.emplace(client, static_cast<ClientNum>(client_ids.size()))
                   .first->second;
    r.object =
        url_ids.emplace(url, static_cast<ObjectNum>(url_ids.size())).first->second;
    r.size = size;
    result.trace.requests.push_back(r);
  }

  result.trace.distinct_objects = static_cast<ObjectNum>(url_ids.size());
  result.distinct_clients = static_cast<ClientNum>(client_ids.size());
  return result;
}

SquidReadResult read_squid_log_file(const std::string& path, SquidReadOptions options) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open squid log: " + path);
  return read_squid_log(in, options);
}

}  // namespace webcache::workload
