#include "workload/ucb_like.hpp"

#include <cmath>
#include <stdexcept>

namespace webcache::workload {

namespace {
constexpr std::uint64_t kUcbRequests = 9'244'728;  // published trace length
constexpr double kRequestsPerObject = 9.0;         // universe calibration
}  // namespace

ProWGenConfig ucb_like_prowgen_config(const UcbLikeConfig& config) {
  if (config.scale <= 0.0 || config.scale > 1.0) {
    throw std::invalid_argument("UcbLike: scale must be in (0, 1]");
  }
  ProWGenConfig p;
  p.total_requests = static_cast<std::uint64_t>(
      std::llround(static_cast<double>(kUcbRequests) * config.scale));
  p.distinct_objects = static_cast<ObjectNum>(
      std::llround(static_cast<double>(p.total_requests) / kRequestsPerObject));
  p.one_timer_fraction = 0.60;
  p.zipf_alpha = 0.75;
  p.lru_stack_fraction = 0.15;
  p.temporal_amplifier = 5.0;  // dial-up users: milder clustering
  p.clients = config.clients;
  p.seed = config.seed;
  return p;
}

Trace generate_ucb_like(const UcbLikeConfig& config) {
  return ProWGen(ucb_like_prowgen_config(config)).generate();
}

}  // namespace webcache::workload
