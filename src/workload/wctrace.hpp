// wctrace/1 — the compact binary trace format behind the streaming
// pipeline, plus its mmap-backed zero-copy reader.
//
// Layout (all integers little-endian):
//
//   offset  size  field
//        0     8  magic "wctrace1"
//        8     4  version (1)
//       12     4  record_size (24 = sizeof(Request))
//       16     8  request_count
//       24     8  distinct_objects (object ids are in [0, distinct_objects))
//       32     8  checksum — FNV-1a over the record bytes, folded 8 bytes at
//                 a time (see wctrace_checksum_*)
//       40    24  reserved (zero)
//       64     …  request_count records of 24 bytes each:
//                 u64 time, u32 client, u32 object, u64 size
//
// A record is byte-for-byte the in-memory Request layout, so on
// little-endian hosts the mmap reader serves request windows straight out
// of the page cache with no decode step; big-endian hosts (none we target,
// but the format stays portable) fall back to converting the file into a
// materialized trace at open.
//
// Readers validate magic, version, record size and that the file length is
// exactly header + count * record_size — a truncated or padded file is
// rejected up front. The checksum is verified on demand (`trace info
// --verify`, tests), not at open: verifying would scan the whole file and
// defeat the point of streaming.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "workload/trace_source.hpp"

namespace webcache::workload {

inline constexpr char kWctraceMagic[8] = {'w', 'c', 't', 'r', 'a', 'c', 'e', '1'};
inline constexpr std::uint32_t kWctraceVersion = 1;
inline constexpr std::uint32_t kWctraceRecordSize = 24;
inline constexpr std::size_t kWctraceHeaderSize = 64;

struct WctraceHeader {
  char magic[8];
  std::uint32_t version = kWctraceVersion;
  std::uint32_t record_size = kWctraceRecordSize;
  std::uint64_t request_count = 0;
  std::uint64_t distinct_objects = 0;
  std::uint64_t checksum = 0;
  std::uint8_t reserved[24] = {};
};
static_assert(sizeof(WctraceHeader) == kWctraceHeaderSize);

/// Streaming writer: records are appended through an in-memory buffer
/// (default 64Ki records = 1.5 MiB) and flushed in bulk, so a
/// billion-request trace is compiled with bounded memory. finalize() seeks
/// back and writes the real header; the file is not a valid wctrace before
/// that.
class WctraceWriter {
 public:
  explicit WctraceWriter(const std::string& path, std::size_t buffer_records = 65536);
  WctraceWriter(const WctraceWriter&) = delete;
  WctraceWriter& operator=(const WctraceWriter&) = delete;
  /// Finalizes if the caller did not; errors are swallowed here, so callers
  /// that care (all of them) should call finalize() themselves.
  ~WctraceWriter();

  void append(const Request& request);

  /// Declares the object universe explicitly (e.g. a generator's configured
  /// universe, which may exceed the ids actually referenced). When not set,
  /// the universe is derived as max referenced id + 1. Must cover every
  /// appended record; finalize() throws otherwise.
  void set_distinct_objects(ObjectNum distinct);

  /// Flushes, writes the header, and closes. Returns the final header.
  WctraceHeader finalize();

 private:
  void flush();

  std::string path_;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Writes a fully materialized trace as wctrace/1.
void write_wctrace_file(const std::string& path, const Trace& trace);

/// Reads and validates just the header (plus the length consistency check).
/// Throws std::runtime_error on anything malformed.
[[nodiscard]] WctraceHeader read_wctrace_header(const std::string& path);

/// True when the file exists and starts with the wctrace magic — the sniff
/// the CLI uses to route --trace files to the right reader.
[[nodiscard]] bool is_wctrace_file(const std::string& path);

/// The mmap-backed zero-copy reader. Thread-safe for concurrent windows
/// (run_sweep replays one shared mapping from many workers);
/// discard_consumed releases fully consumed pages so a sequential replay's
/// resident set stays bounded by the chunk budget.
class MmapTraceSource final : public TraceSource {
 public:
  explicit MmapTraceSource(const std::string& path);
  ~MmapTraceSource() override;
  MmapTraceSource(const MmapTraceSource&) = delete;
  MmapTraceSource& operator=(const MmapTraceSource&) = delete;

  [[nodiscard]] std::uint64_t size() const override { return count_; }
  [[nodiscard]] ObjectNum distinct_objects() const override { return distinct_; }
  [[nodiscard]] std::span<const Request> window(std::uint64_t pos,
                                                std::size_t max_len) const override;
  void discard_consumed(std::uint64_t pos) const override;

  [[nodiscard]] const WctraceHeader& header() const { return header_; }

  /// Full checksum scan against the header. O(file).
  [[nodiscard]] bool verify_checksum() const;

 private:
  WctraceHeader header_{};
  std::uint64_t count_ = 0;
  ObjectNum distinct_ = 0;
  // Zero-copy path (little-endian hosts): the live mapping.
  void* map_ = nullptr;
  std::size_t map_bytes_ = 0;
  const Request* records_ = nullptr;
  mutable std::atomic<std::size_t> discarded_bytes_{0};
  // Byte-swapping fallback (big-endian hosts): records decoded at open.
  std::vector<Request> converted_;
};

/// Materializes a whole wctrace file (tools/tests).
[[nodiscard]] Trace read_wctrace_file(const std::string& path);

/// Opens `path` as a TraceSource: wctrace files get the mmap reader,
/// anything else goes through the text-trace reader into an in-memory
/// adapter.
[[nodiscard]] std::shared_ptr<const TraceSource> open_trace_source(const std::string& path);

/// Streams a text trace into a wctrace file with bounded memory (the
/// `webcache_cli trace compile` core). Returns the final header.
WctraceHeader compile_text_to_wctrace(const std::string& text_path,
                                      const std::string& out_path);

// --- checksum building blocks (exposed for the writer and tests) ----------
inline constexpr std::uint64_t kWctraceChecksumSeed = 0xcbf29ce484222325ULL;
/// Folds one little-endian 8-byte word into the running FNV-1a state.
[[nodiscard]] inline std::uint64_t wctrace_checksum_step(std::uint64_t state,
                                                         std::uint64_t word) {
  return (state ^ word) * 0x100000001b3ULL;
}

}  // namespace webcache::workload
