#include "workload/trace.hpp"

#include <charconv>
#include <fstream>
#include <stdexcept>
#include <string_view>
#include <unordered_map>

namespace webcache::workload {

namespace {

bool parse_u64(std::string_view token, std::uint64_t& out) {
  const char* first = token.data();
  const char* last = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc() && ptr == last;
}

[[noreturn]] void malformed(std::size_t line_no, const std::string& what,
                            std::string_view token) {
  throw std::runtime_error("trace line " + std::to_string(line_no) + ": " + what + " '" +
                           std::string(token) + "'");
}

/// Splits the next whitespace-delimited token off `rest` (empty when none).
std::string_view next_token(std::string_view& rest) {
  std::size_t begin = 0;
  while (begin < rest.size() && (rest[begin] == ' ' || rest[begin] == '\t')) ++begin;
  std::size_t end = begin;
  while (end < rest.size() && rest[end] != ' ' && rest[end] != '\t') ++end;
  const auto token = rest.substr(begin, end - begin);
  rest.remove_prefix(end);
  return token;
}

/// Heterogeneous string hashing so URL tokens are looked up as
/// string_views — no per-line std::string allocation on the hot path.
struct StringHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

}  // namespace

ObjectNum read_trace_stream(std::istream& in, const RequestSink& sink) {
  std::unordered_map<std::string, ObjectNum, StringHash, std::equal_to<>> url_ids;
  ObjectNum distinct = 0;
  std::string line;
  std::size_t line_no = 0;

  while (std::getline(in, line)) {
    ++line_no;
    std::string_view rest = line;
    if (!rest.empty() && rest.back() == '\r') rest.remove_suffix(1);  // CRLF logs
    if (rest.empty() || rest.front() == '#') continue;

    const auto time_tok = next_token(rest);
    const auto client_tok = next_token(rest);
    const auto object_tok = next_token(rest);
    if (object_tok.empty()) {
      throw std::runtime_error("trace line " + std::to_string(line_no) +
                               ": expected '<time> <client> <object> [size]', got '" +
                               std::string(line) + "'");
    }
    const auto size_tok = next_token(rest);  // optional
    if (const auto extra = next_token(rest); !extra.empty()) {
      malformed(line_no, "trailing field", extra);
    }

    Request r;
    std::uint64_t v = 0;
    if (!parse_u64(time_tok, v)) malformed(line_no, "bad time", time_tok);
    r.time = v;
    if (!parse_u64(client_tok, v)) malformed(line_no, "bad client", client_tok);
    r.client = static_cast<ClientNum>(v);

    if (parse_u64(object_tok, v)) {
      r.object = static_cast<ObjectNum>(v);
      distinct = std::max(distinct, r.object + 1);
    } else {
      // URL token: assign dense ids in first-seen order.
      const auto it = url_ids.find(object_tok);
      if (it != url_ids.end()) {
        r.object = it->second;
      } else {
        r.object = static_cast<ObjectNum>(url_ids.size());
        url_ids.emplace(std::string(object_tok), r.object);
        distinct = std::max(distinct, r.object + 1);
      }
    }

    if (!size_tok.empty()) {
      if (!parse_u64(size_tok, v)) malformed(line_no, "bad size", size_tok);
      r.size = v;
    }
    sink(r);
  }
  return distinct;
}

Trace read_trace(std::istream& in) {
  Trace trace;
  trace.distinct_objects =
      read_trace_stream(in, [&trace](const Request& r) { trace.requests.push_back(r); });
  return trace;
}

Trace read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  return read_trace(in);
}

void write_trace(std::ostream& out, const Trace& trace) {
  // Format rows into a chunk with to_chars and flush it in bulk; the
  // token-by-token operator<< path spends most of its time in stream
  // internals, which `trace compile` of large text traces actually notices.
  constexpr std::size_t kFlushAt = 1 << 20;
  std::string buffer;
  buffer.reserve(kFlushAt + 128);
  char digits[20];
  const auto append_u64 = [&buffer, &digits](std::uint64_t v, char suffix) {
    const auto end = std::to_chars(digits, digits + sizeof(digits), v).ptr;
    buffer.append(digits, end);
    buffer.push_back(suffix);
  };
  for (const auto& r : trace.requests) {
    append_u64(r.time, ' ');
    append_u64(r.client, ' ');
    append_u64(r.object, ' ');
    append_u64(r.size, '\n');
    if (buffer.size() >= kFlushAt) {
      out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
      buffer.clear();
    }
  }
  if (!buffer.empty()) {
    out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
  }
}

void write_trace_file(const std::string& path, const Trace& trace) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open trace file for writing: " + path);
  write_trace(out, trace);
  out.flush();
  if (!out) throw std::runtime_error("failed writing trace file: " + path);
}

}  // namespace webcache::workload
