#include "workload/trace.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace webcache::workload {

namespace {
bool parse_u64(const std::string& token, std::uint64_t& out) {
  const auto* first = token.data();
  const auto* last = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc() && ptr == last;
}
}  // namespace

Trace read_trace(std::istream& in) {
  Trace trace;
  std::unordered_map<std::string, ObjectNum> url_ids;
  std::string line;
  std::size_t line_no = 0;

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;

    std::istringstream fields(line);
    std::string time_tok, client_tok, object_tok, size_tok;
    fields >> time_tok >> client_tok >> object_tok;
    if (object_tok.empty()) {
      throw std::runtime_error("trace line " + std::to_string(line_no) +
                               ": expected '<time> <client> <object> [size]'");
    }
    fields >> size_tok;  // optional

    Request r;
    std::uint64_t v = 0;
    if (!parse_u64(time_tok, v)) {
      throw std::runtime_error("trace line " + std::to_string(line_no) + ": bad time");
    }
    r.time = v;
    if (!parse_u64(client_tok, v)) {
      throw std::runtime_error("trace line " + std::to_string(line_no) + ": bad client");
    }
    r.client = static_cast<ClientNum>(v);

    if (parse_u64(object_tok, v)) {
      r.object = static_cast<ObjectNum>(v);
      trace.distinct_objects = std::max(trace.distinct_objects, r.object + 1);
    } else {
      // URL token: assign dense ids in first-seen order.
      const auto [it, inserted] =
          url_ids.emplace(object_tok, static_cast<ObjectNum>(url_ids.size()));
      r.object = it->second;
      if (inserted) trace.distinct_objects = static_cast<ObjectNum>(url_ids.size());
    }

    if (!size_tok.empty()) {
      if (!parse_u64(size_tok, v)) {
        throw std::runtime_error("trace line " + std::to_string(line_no) + ": bad size");
      }
      r.size = v;
    }
    trace.requests.push_back(r);
  }
  return trace;
}

Trace read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  return read_trace(in);
}

void write_trace(std::ostream& out, const Trace& trace) {
  for (const auto& r : trace.requests) {
    out << r.time << ' ' << r.client << ' ' << r.object << ' ' << r.size << '\n';
  }
}

void write_trace_file(const std::string& path, const Trace& trace) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open trace file for writing: " + path);
  write_trace(out, trace);
  out.flush();
  if (!out) throw std::runtime_error("failed writing trace file: " + path);
}

}  // namespace webcache::workload
