#include "workload/prowgen.hpp"

#include <algorithm>
#include <cmath>
#include <list>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "common/fenwick.hpp"

namespace webcache::workload {

ProWGen::ProWGen(ProWGenConfig config) : config_(config) {
  if (config_.distinct_objects == 0) {
    throw std::invalid_argument("ProWGen: distinct_objects must be >= 1");
  }
  if (config_.one_timer_fraction < 0.0 || config_.one_timer_fraction > 1.0) {
    throw std::invalid_argument("ProWGen: one_timer_fraction must be in [0, 1]");
  }
  if (config_.zipf_alpha < 0.0) {
    throw std::invalid_argument("ProWGen: zipf_alpha must be >= 0");
  }
  if (config_.lru_stack_fraction <= 0.0 || config_.lru_stack_fraction > 1.0) {
    throw std::invalid_argument("ProWGen: lru_stack_fraction must be in (0, 1]");
  }
  if (config_.temporal_amplifier < 1.0) {
    throw std::invalid_argument("ProWGen: temporal_amplifier must be >= 1");
  }
  if (config_.recency_bias < 0.0 || config_.recency_bias > 1.0) {
    throw std::invalid_argument("ProWGen: recency_bias must be in [0, 1]");
  }
  if (config_.recency_window == 0) {
    throw std::invalid_argument("ProWGen: recency_window must be >= 1");
  }
  if (config_.clients == 0) {
    throw std::invalid_argument("ProWGen: clients must be >= 1");
  }

  const auto one_timers = static_cast<std::uint64_t>(
      std::llround(config_.one_timer_fraction * static_cast<double>(config_.distinct_objects)));
  const std::uint64_t multi = config_.distinct_objects - one_timers;
  const std::uint64_t needed = one_timers + 2 * multi;  // every multi object needs >= 2
  if (config_.total_requests < needed) {
    throw std::invalid_argument(
        "ProWGen: total_requests too small for the object universe (need at least " +
        std::to_string(needed) + ")");
  }
}

Trace ProWGen::generate() const {
  Trace trace;
  trace.distinct_objects = config_.distinct_objects;
  trace.requests.reserve(config_.total_requests);
  generate([&trace](const Request& r) { trace.requests.push_back(r); });
  return trace;
}

void ProWGen::generate(const RequestSink& sink) const {
  const auto& cfg = config_;
  const ObjectNum universe = cfg.distinct_objects;
  const auto one_timers = static_cast<ObjectNum>(
      std::llround(cfg.one_timer_fraction * static_cast<double>(universe)));
  const ObjectNum multi = universe - one_timers;

  Rng rng(cfg.seed);
  Rng client_rng = rng.fork(1);
  Rng size_rng = rng.fork(2);
  Rng stream_rng = rng.fork(3);

  // --- 1. Per-object total reference counts -------------------------------
  // Objects [0, multi) are the multi-referenced population in popularity
  // order (object 0 most popular); objects [multi, universe) are one-timers.
  std::vector<std::uint64_t> count(universe, 0);
  for (ObjectNum o = multi; o < universe; ++o) count[o] = 1;

  const std::uint64_t budget = cfg.total_requests - one_timers;
  if (multi > 0) {
    // Zipf shares with a floor of 2 references, reconciled to the budget.
    std::vector<double> share(multi);
    double norm = 0.0;
    for (ObjectNum i = 0; i < multi; ++i) {
      share[i] = 1.0 / std::pow(static_cast<double>(i + 1), cfg.zipf_alpha);
      norm += share[i];
    }
    std::uint64_t assigned = 0;
    for (ObjectNum i = 0; i < multi; ++i) {
      const auto c = std::max<std::uint64_t>(
          2, static_cast<std::uint64_t>(share[i] / norm * static_cast<double>(budget)));
      count[i] = c;
      assigned += c;
    }
    // Reconcile to the exact budget: surplus is trimmed from the most
    // popular objects (never below 2); deficit is added to the head.
    if (assigned > budget) {
      std::uint64_t surplus = assigned - budget;
      for (ObjectNum i = 0; i < multi && surplus > 0; ++i) {
        const std::uint64_t cut = std::min(surplus, count[i] - 2);
        count[i] -= cut;
        surplus -= cut;
      }
      if (surplus > 0) {
        throw std::logic_error("ProWGen: cannot reconcile reference counts (config too tight)");
      }
    } else {
      count[0] += budget - assigned;
    }
  }

  // --- 2. Per-object sizes --------------------------------------------------
  std::vector<ObjectSize> object_size(universe, 1);
  if (cfg.generate_sizes) {
    std::vector<ObjectSize> sizes(universe);
    for (auto& s : sizes) {
      double bytes;
      if (size_rng.next_double() < cfg.pareto_tail_fraction) {
        // Pareto tail: scale / U^(1/alpha).
        const double u = std::max(size_rng.next_double(), 1e-12);
        bytes = cfg.pareto_scale / std::pow(u, 1.0 / cfg.pareto_alpha);
      } else {
        // Lognormal body via Box–Muller.
        const double u1 = std::max(size_rng.next_double(), 1e-12);
        const double u2 = size_rng.next_double();
        const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
        bytes = std::exp(cfg.lognormal_mu + cfg.lognormal_sigma * z);
      }
      s = std::max<ObjectSize>(1, static_cast<ObjectSize>(bytes));
    }
    switch (cfg.size_correlation) {
      case SizeCorrelation::kNone:
        // Random association: shuffle.
        for (std::size_t i = sizes.size(); i > 1; --i) {
          std::swap(sizes[i - 1], sizes[size_rng.next_below(i)]);
        }
        break;
      case SizeCorrelation::kPositive:
        std::sort(sizes.begin(), sizes.end(), std::greater<>());
        break;
      case SizeCorrelation::kNegative:
        std::sort(sizes.begin(), sizes.end());
        break;
    }
    object_size = std::move(sizes);
  }

  // --- 3. Stream generation via the finite LRU-stack model -----------------
  const auto stack_capacity = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::llround(cfg.lru_stack_fraction * static_cast<double>(std::max<ObjectNum>(multi, 1)))));

  FenwickTree stack_mass(universe);
  FenwickTree pool_mass(universe);
  std::vector<std::uint64_t> remaining = count;
  for (ObjectNum o = 0; o < universe; ++o) {
    pool_mass.set(o, static_cast<double>(remaining[o]));
  }

  std::list<ObjectNum> stack;  // front = most recently referenced
  std::unordered_map<ObjectNum, std::list<ObjectNum>::iterator> stack_pos;
  stack_pos.reserve(stack_capacity * 2);

  const auto demote_to_pool = [&](ObjectNum o) {
    const double w = static_cast<double>(remaining[o]);
    stack_mass.set(o, 0.0);
    pool_mass.set(o, w);
  };

  // Recent-reference window: a circular buffer of the last W requests,
  // newest-first addressable. Recency-biased stack draws pick a window
  // depth k with P(k) ~ 1/(k+1) — the skewed stack-depth distribution
  // observed in real reference streams — so re-references concentrate on
  // the most recent handful of requests and compound into bursts. That is
  // the temporal clustering a mass-weighted draw cannot produce, and it is
  // what lets even a frequency-driven cache profit from locality.
  const std::size_t window = config_.recency_window;
  std::vector<ObjectNum> recent;
  recent.reserve(window);
  std::size_t recent_next = 0;  // slot that will be overwritten next

  const auto window_draw = [&](double u) -> ObjectNum {
    // Inverse CDF of P(k) ~ 1/(k+1) over k in [0, size): k = (size+1)^u - 1.
    const double size = static_cast<double>(recent.size());
    auto depth = static_cast<std::size_t>(std::pow(size + 1.0, u) - 1.0);
    if (depth >= recent.size()) depth = recent.size() - 1;
    // Depth 0 = newest. Translate into the circular buffer.
    const std::size_t newest =
        (recent_next + recent.size() - 1) % recent.size();
    return recent[(newest + recent.size() - depth) % recent.size()];
  };

  for (std::uint64_t t = 0; t < cfg.total_requests; ++t) {
    const double ms = stack_mass.total();
    const double mp = pool_mass.total();
    const double boosted = cfg.temporal_amplifier * ms;
    const bool from_stack =
        ms > 0.0 && (mp <= 0.0 || stream_rng.next_double() * (boosted + mp) < boosted);

    // Scale the recency bias so temporal_amplifier = 1 degrades to the pure
    // popularity/mass model (no clustering beyond natural re-reference).
    const double effective_bias = cfg.recency_bias * (1.0 - 1.0 / cfg.temporal_amplifier);

    ObjectNum object;
    bool chosen = false;
    if (from_stack && !recent.empty() && stream_rng.next_double() < effective_bias) {
      const ObjectNum candidate = window_draw(stream_rng.next_double());
      // Only objects still in the LRU stack are eligible for a temporally
      // local re-reference — the stack size gates how much of the recent
      // window can cluster (the ProWGen semantics of the knob).
      if (remaining[candidate] > 0 && stack_pos.contains(candidate)) {
        object = candidate;
        chosen = true;
      }
    }
    if (!chosen) {
      if (from_stack) {
        object = static_cast<ObjectNum>(stack_mass.find(stream_rng.next_double() * ms));
      } else {
        object = static_cast<ObjectNum>(pool_mass.find(stream_rng.next_double() * mp));
      }
    }

    if (recent.size() < window) {
      recent.push_back(object);
    } else {
      recent[recent_next] = object;
      recent_next = (recent_next + 1) % window;
    }

    sink(Request{
        t,
        static_cast<ClientNum>(client_rng.next_below(cfg.clients)),
        object,
        object_size[object],
    });

    // Consume one reference and refresh the object's recency.
    --remaining[object];
    const double w = static_cast<double>(remaining[object]);
    if (const auto it = stack_pos.find(object); it != stack_pos.end()) {
      stack_mass.set(object, w);
      stack.splice(stack.begin(), stack, it->second);
    } else {
      pool_mass.set(object, 0.0);
      stack_mass.set(object, w);
      stack.push_front(object);
      stack_pos[object] = stack.begin();
      if (stack.size() > stack_capacity) {
        const ObjectNum evicted = stack.back();
        stack.pop_back();
        stack_pos.erase(evicted);
        demote_to_pool(evicted);
      }
    }
  }
}

}  // namespace webcache::workload
