// Request traces: the in-memory container plus a plain-text interchange
// format so real proxy logs can be converted and replayed through the
// simulator in place of the synthetic workloads. (The binary companion
// format for out-of-core replay is wctrace.hpp.)
//
// File format (one request per line, '#' comments ignored):
//     <time> <client> <object-or-url> [size]
// where <object-or-url> is either a decimal dense object id or any
// non-numeric token (e.g. a URL), which the reader maps to dense ids in
// first-seen order.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace webcache::workload {

/// An ordered request stream over a dense object universe.
struct Trace {
  std::vector<Request> requests;
  ObjectNum distinct_objects = 0;  ///< object ids are in [0, distinct_objects)

  [[nodiscard]] std::size_t size() const { return requests.size(); }
  [[nodiscard]] bool empty() const { return requests.empty(); }
};

/// Per-record consumer for the streaming readers/generators.
using RequestSink = std::function<void(const Request&)>;

/// Streaming text reader: parses `in` line by line (std::from_chars, no
/// stream extraction) and hands each request to `sink` without ever holding
/// the trace — the bounded-memory half of `trace compile`. Returns the
/// object universe size (max id + 1, URLs mapped to dense ids in first-seen
/// order). Throws std::runtime_error naming the 1-based line number and the
/// offending token on malformed input (empty input is fine).
ObjectNum read_trace_stream(std::istream& in, const RequestSink& sink);

/// Reads a trace from a stream/file. Throws std::runtime_error on malformed
/// input (wrong arity, non-numeric time/client, empty file is fine).
[[nodiscard]] Trace read_trace(std::istream& in);
[[nodiscard]] Trace read_trace_file(const std::string& path);

/// Writes a trace in the text format (dense ids, size column included).
/// Buffered: rows are formatted with std::to_chars into a chunk that is
/// flushed in bulk, not streamed token by token.
void write_trace(std::ostream& out, const Trace& trace);
void write_trace_file(const std::string& path, const Trace& trace);

}  // namespace webcache::workload
