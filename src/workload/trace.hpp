// Request traces: the in-memory container plus a plain-text interchange
// format so real proxy logs can be converted and replayed through the
// simulator in place of the synthetic workloads.
//
// File format (one request per line, '#' comments ignored):
//     <time> <client> <object-or-url> [size]
// where <object-or-url> is either a decimal dense object id or any
// non-numeric token (e.g. a URL), which the reader maps to dense ids in
// first-seen order.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace webcache::workload {

/// An ordered request stream over a dense object universe.
struct Trace {
  std::vector<Request> requests;
  ObjectNum distinct_objects = 0;  ///< object ids are in [0, distinct_objects)

  [[nodiscard]] std::size_t size() const { return requests.size(); }
  [[nodiscard]] bool empty() const { return requests.empty(); }
};

/// Reads a trace from a stream/file. Throws std::runtime_error on malformed
/// input (wrong arity, non-numeric time/client, empty file is fine).
[[nodiscard]] Trace read_trace(std::istream& in);
[[nodiscard]] Trace read_trace_file(const std::string& path);

/// Writes a trace in the text format (dense ids, size column included).
void write_trace(std::ostream& out, const Trace& trace);
void write_trace_file(const std::string& path, const Trace& trace);

}  // namespace webcache::workload
