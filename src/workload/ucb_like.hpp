// UCB-Home-IP-like workload.
//
// The paper's Figure 2(b) replays the UC Berkeley Home-IP HTTP trace
// (18 days, 9,244,728 requests, 1997). The original trace archive is no
// longer practically obtainable, so this generator produces a synthetic
// stream calibrated to the workload statistics published for that trace and
// for dial-up/home-IP proxy populations of the era:
//   * heavier one-time referencing than the default synthetic workload
//     (~60% of distinct objects seen once),
//   * a large object universe relative to the request count
//     (roughly 9 requests per distinct object),
//   * Zipf slope ~0.75 (Breslau et al. report 0.7-0.8 for proxy traces),
//   * moderate temporal locality (dial-up users, low per-client rates).
//
// The simulator consumes only the request stream's statistical structure
// (popularity skew, one-timer mass, locality), so matching those moments is
// what preserves Figure 2(b)'s qualitative result: the same scheme ordering
// as the synthetic workload at visibly lower absolute gains. See DESIGN.md
// ("Substitutions").
#pragma once

#include "workload/prowgen.hpp"

namespace webcache::workload {

struct UcbLikeConfig {
  /// Scale factor on the original trace length (1.0 = 9,244,728 requests).
  /// Benches default to a fraction for tractable sweep times; the shape is
  /// insensitive to scale beyond ~1M requests.
  double scale = 0.25;
  ClientNum clients = 100;
  std::uint64_t seed = 1997;
};

/// ProWGen parameterization implementing the calibration above.
[[nodiscard]] ProWGenConfig ucb_like_prowgen_config(const UcbLikeConfig& config);

/// Generates the UCB-like trace.
[[nodiscard]] Trace generate_ucb_like(const UcbLikeConfig& config);

}  // namespace webcache::workload
