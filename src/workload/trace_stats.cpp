#include "workload/trace_stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace webcache::workload {

TraceStats analyze(const TraceSource& source) {
  TraceStats s;
  s.total_requests = source.size();
  s.distinct_objects = source.distinct_objects();
  s.frequency.assign(s.distinct_objects, 0);

  const std::size_t chunk = default_replay_chunk();
  for (std::uint64_t pos = 0; pos < s.total_requests;) {
    const auto win = source.window(pos, chunk);
    for (const auto& r : win) {
      if (r.object >= s.distinct_objects) {
        throw std::invalid_argument("analyze: request references object outside the universe");
      }
      ++s.frequency[r.object];
    }
    pos += win.size();
  }

  std::uint64_t referenced = 0;
  for (const auto f : s.frequency) {
    if (f == 0) continue;
    ++referenced;
    if (f == 1) {
      ++s.one_timers;
    } else {
      ++s.infinite_cache_size;
    }
    s.max_frequency = std::max(s.max_frequency, f);
  }
  s.mean_frequency =
      referenced == 0 ? 0.0
                      : static_cast<double>(s.total_requests) / static_cast<double>(referenced);

  // Top-decile share: sort a copy of the counts descending.
  std::vector<std::uint64_t> sorted = s.frequency;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  const std::size_t decile = std::max<std::size_t>(1, sorted.size() / 10);
  std::uint64_t top = 0;
  for (std::size_t i = 0; i < decile; ++i) top += sorted[i];
  s.top_decile_share = s.total_requests == 0
                           ? 0.0
                           : static_cast<double>(top) / static_cast<double>(s.total_requests);
  return s;
}

TraceStats analyze(const Trace& trace) { return analyze(MaterializedTraceSource(trace)); }

std::vector<double> per_proxy_frequency(const TraceStats& stats, unsigned cluster_size) {
  if (cluster_size == 0) {
    throw std::invalid_argument("per_proxy_frequency: cluster_size must be >= 1");
  }
  std::vector<double> f(stats.frequency.size());
  for (std::size_t i = 0; i < f.size(); ++i) {
    f[i] = static_cast<double>(stats.frequency[i]) / static_cast<double>(cluster_size);
  }
  return f;
}

double estimate_zipf_alpha(const TraceStats& stats) {
  // Fit log(freq) = c - alpha * log(rank) over multi-referenced objects.
  std::vector<std::uint64_t> sorted;
  sorted.reserve(stats.frequency.size());
  for (const auto f : stats.frequency) {
    if (f > 1) sorted.push_back(f);
  }
  if (sorted.size() < 2) return 0.0;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());

  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const auto n = static_cast<double>(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double x = std::log(static_cast<double>(i + 1));
    const double y = std::log(static_cast<double>(sorted[i]));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) return 0.0;
  const double slope = (n * sxy - sx * sy) / denom;
  return -slope;
}

}  // namespace webcache::workload
