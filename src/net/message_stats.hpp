// Message and byte accounting for the protocol mechanisms whose overhead the
// paper argues about qualitatively: piggybacking destaged objects onto HTTP
// responses (Section 4.4), the push protocol through the firewall
// (Section 4.5), store receipts and directory updates (Section 4.3).
// The ablation benches quantify these.
#pragma once

#include <cstdint>
#include <string>

#include "obs/registry.hpp"

namespace webcache::net {

struct MessageStats {
  // --- destaging (proxy -> P2P client cache) ---
  std::uint64_t destage_piggybacked = 0;   ///< evictions riding on responses
  std::uint64_t destage_dedicated = 0;     ///< evictions needing a new message
  std::uint64_t destage_bytes = 0;         ///< payload bytes destaged
  std::uint64_t pastry_forward_messages = 0;  ///< client -> destination routing msgs

  // --- object diversion within leaf sets ---
  std::uint64_t diversions = 0;            ///< objects stored at a leaf-set peer
  std::uint64_t diversion_pointer_lookups = 0;  ///< extra hop via diversion pointer

  // --- lookup directory maintenance ---
  std::uint64_t store_receipts = 0;        ///< client cache -> proxy receipts
  std::uint64_t directory_adds = 0;
  std::uint64_t directory_removes = 0;

  // --- push protocol (remote proxy fetches from our P2P cache) ---
  std::uint64_t push_requests = 0;         ///< proxy-routed push requests
  std::uint64_t push_transfers = 0;        ///< client cache -> proxy pushes

  // --- directory accuracy ---
  std::uint64_t directory_false_positives = 0;  ///< wasted P2P lookups (Bloom)
  std::uint64_t directory_true_positives = 0;

  // --- fault injection (LossModel) ---
  std::uint64_t p2p_messages_lost = 0;  ///< P2P transfers lost to injected faults
  std::uint64_t p2p_retries = 0;        ///< retransmissions after a loss/timeout

  void merge(const MessageStats& other) {
    destage_piggybacked += other.destage_piggybacked;
    destage_dedicated += other.destage_dedicated;
    destage_bytes += other.destage_bytes;
    pastry_forward_messages += other.pastry_forward_messages;
    diversions += other.diversions;
    diversion_pointer_lookups += other.diversion_pointer_lookups;
    store_receipts += other.store_receipts;
    directory_adds += other.directory_adds;
    directory_removes += other.directory_removes;
    push_requests += other.push_requests;
    push_transfers += other.push_transfers;
    directory_false_positives += other.directory_false_positives;
    directory_true_positives += other.directory_true_positives;
    p2p_messages_lost += other.p2p_messages_lost;
    p2p_retries += other.p2p_retries;
  }

  /// Messages a non-piggybacking implementation would have sent for
  /// destaging: one dedicated connection per evicted object.
  [[nodiscard]] std::uint64_t destage_messages_without_piggyback() const {
    return destage_piggybacked + destage_dedicated;
  }
};

/// Registry-backed handles for the MessageStats fields. Components that
/// account protocol messages (the simulator, P2PClientCache) bind one of
/// these against an obs::Registry with a naming prefix (e.g. "net.",
/// "cluster0.net.") and increment the counters directly; `view()` rebuilds
/// the legacy MessageStats struct from the registry, so the struct is a
/// read-time view rather than parallel bookkeeping.
class MessageCounters {
 public:
  MessageCounters(obs::Registry& registry, const std::string& prefix);

  obs::Counter& destage_piggybacked;
  obs::Counter& destage_dedicated;
  obs::Counter& destage_bytes;
  obs::Counter& pastry_forward_messages;
  obs::Counter& diversions;
  obs::Counter& diversion_pointer_lookups;
  obs::Counter& store_receipts;
  obs::Counter& directory_adds;
  obs::Counter& directory_removes;
  obs::Counter& push_requests;
  obs::Counter& push_transfers;
  obs::Counter& directory_false_positives;
  obs::Counter& directory_true_positives;
  obs::Counter& p2p_messages_lost;
  obs::Counter& p2p_retries;

  [[nodiscard]] MessageStats view() const;
  void reset();
};

}  // namespace webcache::net
