#include "net/message_stats.hpp"

namespace webcache::net {

MessageCounters::MessageCounters(obs::Registry& registry, const std::string& prefix)
    : destage_piggybacked(registry.counter(prefix + "destage_piggybacked")),
      destage_dedicated(registry.counter(prefix + "destage_dedicated")),
      destage_bytes(registry.counter(prefix + "destage_bytes")),
      pastry_forward_messages(registry.counter(prefix + "pastry_forward_messages")),
      diversions(registry.counter(prefix + "diversions")),
      diversion_pointer_lookups(registry.counter(prefix + "diversion_pointer_lookups")),
      store_receipts(registry.counter(prefix + "store_receipts")),
      directory_adds(registry.counter(prefix + "directory_adds")),
      directory_removes(registry.counter(prefix + "directory_removes")),
      push_requests(registry.counter(prefix + "push_requests")),
      push_transfers(registry.counter(prefix + "push_transfers")),
      directory_false_positives(registry.counter(prefix + "directory_false_positives")),
      directory_true_positives(registry.counter(prefix + "directory_true_positives")),
      p2p_messages_lost(registry.counter(prefix + "p2p_messages_lost")),
      p2p_retries(registry.counter(prefix + "p2p_retries")) {}

MessageStats MessageCounters::view() const {
  MessageStats stats;
  stats.destage_piggybacked = destage_piggybacked.value();
  stats.destage_dedicated = destage_dedicated.value();
  stats.destage_bytes = destage_bytes.value();
  stats.pastry_forward_messages = pastry_forward_messages.value();
  stats.diversions = diversions.value();
  stats.diversion_pointer_lookups = diversion_pointer_lookups.value();
  stats.store_receipts = store_receipts.value();
  stats.directory_adds = directory_adds.value();
  stats.directory_removes = directory_removes.value();
  stats.push_requests = push_requests.value();
  stats.push_transfers = push_transfers.value();
  stats.directory_false_positives = directory_false_positives.value();
  stats.directory_true_positives = directory_true_positives.value();
  stats.p2p_messages_lost = p2p_messages_lost.value();
  stats.p2p_retries = p2p_retries.value();
  return stats;
}

void MessageCounters::reset() {
  destage_piggybacked.reset();
  destage_dedicated.reset();
  destage_bytes.reset();
  pastry_forward_messages.reset();
  diversions.reset();
  diversion_pointer_lookups.reset();
  store_receipts.reset();
  directory_adds.reset();
  directory_removes.reset();
  push_requests.reset();
  push_transfers.reset();
  directory_false_positives.reset();
  directory_true_positives.reset();
  p2p_messages_lost.reset();
  p2p_retries.reset();
}

}  // namespace webcache::net
