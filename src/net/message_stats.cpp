// message_stats.hpp is header-only; this translation unit anchors it into
// the library so include errors surface at build time.
#include "net/message_stats.hpp"
