#include "net/latency_model.hpp"

namespace webcache::net {

LatencyModel LatencyModel::from_ratios(double ts_over_tc, double ts_over_tl,
                                       double tp2p_over_tl) {
  if (ts_over_tc < 1.0 || ts_over_tl < 1.0 || tp2p_over_tl <= 0.0) {
    throw std::invalid_argument("LatencyModel: ratios must satisfy Ts >= Tc, Ts >= Tl, Tp2p > 0");
  }
  const double tl = 1.0;
  const double ts = ts_over_tl * tl;
  const double tc = ts / ts_over_tc;
  const double tp2p = tp2p_over_tl * tl;
  return LatencyModel(ts, tc, tl, tp2p);
}

LatencyModel::LatencyModel(double server, double proxy_to_proxy, double client_to_proxy,
                           double p2p_fetch)
    : server_(server), proxy_(proxy_to_proxy), client_(client_to_proxy), p2p_(p2p_fetch) {
  if (!(server > 0.0) || proxy_to_proxy < 0.0 || client_to_proxy < 0.0 || p2p_fetch < 0.0) {
    throw std::invalid_argument("LatencyModel: latencies must be non-negative, server > 0");
  }
  if (proxy_to_proxy > server) {
    throw std::invalid_argument("LatencyModel: Tc must not exceed Ts (cooperation pointless)");
  }
}

}  // namespace webcache::net
