// Network latency model, exactly as the paper parameterizes it (Section 5.1):
//   Ts    — proxy <-> origin server
//   Tc    — proxy <-> cooperating proxy
//   Tl    — client <-> local proxy
//   Tp2p  — client/proxy <-> P2P client cache (includes the expected Pastry
//           LAN hops)
// Defaults: Ts/Tc = 10, Ts/Tl = 20, Tp2p/Tl = 1.4 — i.e. with Tl = 1:
// Tp2p = 1.4, Tc = 2, Ts = 20.
//
// Every request pays Tl to reach its local proxy; the remaining cost depends
// on where the object is found. The model exposes one accessor per outcome
// so scheme code never assembles latencies ad hoc.
#pragma once

#include <stdexcept>

namespace webcache::net {

/// Where a request was ultimately served from.
enum class ServedFrom {
  kBrowser,        ///< hit in the client's own private browser cache
  kLocalProxy,     ///< hit in the local proxy cache
  kLocalP2P,       ///< hit in the local P2P client cache
  kRemoteProxy,    ///< hit in a cooperating proxy's cache
  kRemoteP2P,      ///< hit in a cooperating proxy's P2P client cache (push)
  kOriginServer,   ///< miss everywhere
};

class LatencyModel {
 public:
  /// Constructs from the paper's ratios. All ratios must be >= 1 so the
  /// hierarchy Tl <= Tc <= Ts holds.
  static LatencyModel from_ratios(double ts_over_tc = 10.0, double ts_over_tl = 20.0,
                                  double tp2p_over_tl = 1.4);

  /// Constructs from absolute latencies.
  LatencyModel(double server, double proxy_to_proxy, double client_to_proxy,
               double p2p_fetch);

  [[nodiscard]] double server() const { return server_; }           ///< Ts
  [[nodiscard]] double proxy_to_proxy() const { return proxy_; }    ///< Tc
  [[nodiscard]] double client_to_proxy() const { return client_; }  ///< Tl
  [[nodiscard]] double p2p_fetch() const { return p2p_; }           ///< Tp2p

  /// End-to-end latency the requesting client observes for each outcome.
  /// Inline: the simulator calls this (and fetch_cost) several times per
  /// simulated request.
  [[nodiscard]] double request_latency(ServedFrom where) const {
    // A browser hit never leaves the client machine.
    if (where == ServedFrom::kBrowser) return 0.0;
    return client_ + fetch_cost(where);
  }

  /// The cost the *proxy* paid to obtain the object — the retrieval cost
  /// greedy-dual credits objects with (Tl excluded: it is paid regardless).
  [[nodiscard]] double fetch_cost(ServedFrom where) const {
    switch (where) {
      case ServedFrom::kBrowser:
      case ServedFrom::kLocalProxy:
        return 0.0;
      case ServedFrom::kLocalP2P:
        return p2p_;
      case ServedFrom::kRemoteProxy:
        return proxy_;
      case ServedFrom::kRemoteP2P:
        return proxy_ + p2p_;
      case ServedFrom::kOriginServer:
        return server_;
    }
    throw std::logic_error("LatencyModel: unknown ServedFrom");
  }

  /// Extra latency per lost-then-retried P2P transfer: the timed-out attempt
  /// costs a full Tp2p before the retransmission goes out. Used by the fault
  /// layer's LossModel; the retry itself is accounted as the normal transfer.
  [[nodiscard]] double loss_retry_penalty() const { return p2p_; }

 private:
  double server_;
  double proxy_;
  double client_;
  double p2p_;
};

}  // namespace webcache::net
