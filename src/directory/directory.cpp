#include "directory/directory.hpp"

#include <stdexcept>

#include "common/sha1.hpp"

namespace webcache::directory {

BloomDirectory::BloomDirectory(std::shared_ptr<const std::vector<Uint128>> object_ids,
                               std::size_t expected_entries, double target_fpr,
                               obs::Registry* registry, const std::string& prefix)
    : LookupDirectory(registry, prefix),
      object_ids_(std::move(object_ids)),
      filter_(expected_entries, target_fpr) {
  if (!object_ids_) {
    throw std::invalid_argument("BloomDirectory: object id table required");
  }
}

const Uint128& BloomDirectory::id_of(ObjectNum object) const {
  if (object >= object_ids_->size()) {
    throw std::out_of_range("BloomDirectory: object outside the id table");
  }
  return (*object_ids_)[object];
}

void BloomDirectory::add(ObjectNum object) {
  filter_.insert(id_of(object));
  ++entries_;
  note_add();
}

void BloomDirectory::remove(ObjectNum object) {
  filter_.erase(id_of(object));
  if (entries_ > 0) --entries_;
  note_remove();
}

bool BloomDirectory::may_contain(ObjectNum object) const {
  const bool positive = filter_.may_contain(id_of(object));
  note_lookup(positive);
  return positive;
}

bool BloomDirectory::audit_contains(ObjectNum object) const {
  return filter_.may_contain(id_of(object));
}

std::shared_ptr<const std::vector<Uint128>> build_object_id_table(ObjectNum distinct_objects) {
  auto table = std::make_shared<std::vector<Uint128>>();
  table->reserve(distinct_objects);
  ObjectUrlBuffer buf;  // one stack buffer for the whole table — no per-URL heap churn
  for (ObjectNum o = 0; o < distinct_objects; ++o) {
    table->push_back(Sha1::hash128(object_url(o, buf)));
  }
  return table;
}

}  // namespace webcache::directory
