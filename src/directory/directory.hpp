// Proxy-side lookup directory of the P2P client cache (paper Section 4.2).
//
// The proxy must know whether a missed object *might* live in its P2P client
// cache before redirecting the request into the overlay. Two representations
// are implemented, matching the paper:
//   * ExactDirectory — a hashtable of all cached objectIds; no false
//     positives, memory proportional to entries;
//   * BloomDirectory — a counting Bloom filter (deletions happen constantly
//     as client caches evict); small and constant-size, but false positives
//     send requests into the overlay for objects that are not there, costing
//     an extra Tp2p before falling back.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bloom/counting_bloom.hpp"
#include "common/dense_map.hpp"
#include "common/prefetch.hpp"
#include "common/types.hpp"
#include "common/uint128.hpp"
#include "obs/registry.hpp"

namespace webcache::directory {

class LookupDirectory {
 public:
  /// `registry` (optional) receives the directory's maintenance/query
  /// counters (`<prefix>adds`, `<prefix>removes`, `<prefix>lookups`,
  /// `<prefix>positives`); without one the directory keeps a private
  /// registry, so standalone use needs no wiring.
  explicit LookupDirectory(obs::Registry* registry = nullptr,
                           const std::string& prefix = "dir.")
      : c_adds_(obs::ensure_registry(registry, owned_registry_).counter(prefix + "adds")),
        c_removes_(
            obs::ensure_registry(registry, owned_registry_).counter(prefix + "removes")),
        c_lookups_(
            obs::ensure_registry(registry, owned_registry_).counter(prefix + "lookups")),
        c_positives_(
            obs::ensure_registry(registry, owned_registry_).counter(prefix + "positives")) {}
  virtual ~LookupDirectory() = default;

  /// Registers a store receipt: `object` is now in the P2P client cache.
  virtual void add(ObjectNum object) = 0;

  /// Processes an eviction notice: `object` left the P2P client cache.
  virtual void remove(ObjectNum object) = 0;

  /// May return false positives depending on the representation; never
  /// false negatives (given consistent add/remove).
  [[nodiscard]] virtual bool may_contain(ObjectNum object) const = 0;

  /// Advisory prefetch of the slots a may_contain probe for `object` reads.
  /// Pure hint: touches no counters, never observable in results.
  virtual void prefetch(ObjectNum /*object*/) const {}

  /// Same membership answer as may_contain, but without touching the
  /// lookup/positive counters — for the invariant auditor, whose probes must
  /// not perturb the metrics a run exports.
  [[nodiscard]] virtual bool audit_contains(ObjectNum object) const = 0;

  [[nodiscard]] virtual std::size_t entry_count() const = 0;
  [[nodiscard]] virtual std::size_t memory_bytes() const = 0;
  [[nodiscard]] virtual std::string kind() const = 0;

 protected:
  // Instrumentation hooks for the implementations. note_lookup is const
  // because may_contain is; the counters live in the registry, not in the
  // directory's logical state.
  void note_add() { c_adds_.inc(); }
  void note_remove() { c_removes_.inc(); }
  void note_lookup(bool positive) const {
    c_lookups_.inc();
    if (positive) c_positives_.inc();
  }

 private:
  std::unique_ptr<obs::Registry> owned_registry_;
  obs::Counter& c_adds_;
  obs::Counter& c_removes_;
  obs::Counter& c_lookups_;
  obs::Counter& c_positives_;
};

/// Exact membership index of the objects cached in the P2P client cache.
/// Objects are dense ids, so the "hashtable of objectIds" the paper describes
/// reduces to a flat stamp array indexed by id — no hashing at all.
class ExactDirectory final : public LookupDirectory {
 public:
  using LookupDirectory::LookupDirectory;

  void add(ObjectNum object) override {
    entries_.insert(object);
    note_add();
  }
  void remove(ObjectNum object) override {
    entries_.erase(object);
    note_remove();
  }
  [[nodiscard]] bool may_contain(ObjectNum object) const override {
    const bool positive = entries_.contains(object);
    note_lookup(positive);
    return positive;
  }
  void prefetch(ObjectNum object) const override { entries_.prefetch(object); }
  [[nodiscard]] bool audit_contains(ObjectNum object) const override {
    return entries_.contains(object);
  }
  [[nodiscard]] std::size_t entry_count() const override { return entries_.size(); }
  [[nodiscard]] std::size_t memory_bytes() const override {
    // The flat representation's honest cost: one 32-bit stamp per object in
    // the universe touched so far, regardless of how many are resident.
    return entries_.memory_bytes();
  }
  [[nodiscard]] std::string kind() const override { return "exact"; }

 private:
  DenseSet entries_;
};

/// Counting-Bloom-filter directory over SHA-1 objectIds.
class BloomDirectory final : public LookupDirectory {
 public:
  /// `object_ids[o]` is the 128-bit objectId of dense object o (shared,
  /// not owned); `expected_entries`/`target_fpr` size the filter.
  BloomDirectory(std::shared_ptr<const std::vector<Uint128>> object_ids,
                 std::size_t expected_entries, double target_fpr,
                 obs::Registry* registry = nullptr, const std::string& prefix = "dir.");

  void add(ObjectNum object) override;
  void remove(ObjectNum object) override;
  [[nodiscard]] bool may_contain(ObjectNum object) const override;
  /// Prefetches the object-id entry the filter hashes are derived from (the
  /// filter's counter words depend on those hashes, so only the first link
  /// of the chain can be hinted ahead of time).
  void prefetch(ObjectNum object) const override {
    if (object_ids_ && object < object_ids_->size()) {
      WEBCACHE_PREFETCH(&(*object_ids_)[object]);
    }
  }
  [[nodiscard]] bool audit_contains(ObjectNum object) const override;
  [[nodiscard]] std::size_t entry_count() const override { return entries_; }
  [[nodiscard]] std::size_t memory_bytes() const override { return filter_.memory_bytes(); }
  [[nodiscard]] std::string kind() const override { return "bloom"; }

  [[nodiscard]] const bloom::CountingBloomFilter& filter() const { return filter_; }

 private:
  [[nodiscard]] const Uint128& id_of(ObjectNum object) const;

  std::shared_ptr<const std::vector<Uint128>> object_ids_;
  bloom::CountingBloomFilter filter_;
  std::size_t entries_ = 0;
};

/// Builds the dense-object-id -> SHA-1(URL) table shared by Bloom
/// directories and the Pastry placement logic.
[[nodiscard]] std::shared_ptr<const std::vector<Uint128>> build_object_id_table(
    ObjectNum distinct_objects);

}  // namespace webcache::directory
