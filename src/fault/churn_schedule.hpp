// Deterministic churn schedules: the failure/recovery/join event stream the
// ChurnEngine executes against a live simulation (client crashes, delayed
// recoveries, fresh joins, periodic Pastry maintenance).
//
// Events are keyed by *trace position*, not wall time, so a schedule is part
// of the experiment configuration: the same (schedule, seed) pair replays
// bit-identically at any worker-thread count, which the churn determinism
// test pins. Schedules are either written out explicitly (tests) or expanded
// from a compact ChurnSpec by make_schedule() using the repo's deterministic
// Rng (CLI, benches, property tests).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace webcache::fault {

enum class ChurnAction {
  kCrash,   ///< client machine fails; its share of the P2P cache is lost
  kRejoin,  ///< a previously crashed client comes back (same id, empty cache)
  kJoin,    ///< a brand-new client machine joins the cluster
  kRepair,  ///< run the cluster's Pastry maintenance pass (repair_all)
};

/// One scheduled membership event. `client` indexes into the cluster of
/// `proxy` (taken modulo the cluster size at dispatch) and is ignored for
/// kJoin/kRepair.
struct ChurnEvent {
  std::uint64_t time = 0;  ///< trace position at which the event fires
  unsigned proxy = 0;      ///< cluster the event targets
  ClientNum client = 0;
  ChurnAction action = ChurnAction::kCrash;

  friend bool operator==(const ChurnEvent&, const ChurnEvent&) = default;
};

/// Compact description of a randomized churn scenario, expanded per cluster
/// by make_schedule(). All times are trace positions.
struct ChurnSpec {
  /// First trace position eligible for churn — set this past the warmup so
  /// crash impact is measured against a warmed system, not an empty one.
  std::uint64_t start = 0;
  /// Crash events per cluster (distinct clients; capped at cluster size - 1
  /// so a cluster always keeps at least one live client).
  ClientNum crashes = 0;
  /// When > 0, every crashed client rejoins this many requests after its
  /// crash (rejoins that would land past the end of the trace are dropped).
  std::uint64_t recover_after = 0;
  /// Fresh client machines joining per cluster, spread over [start, end).
  ClientNum joins = 0;
  /// When > 0, a kRepair event per cluster every this many requests,
  /// starting at `start` (models Pastry's periodic background maintenance).
  std::uint64_t repair_every = 0;
  std::uint64_t seed = 2003;
};

/// Expands `spec` into a sorted, deterministic event list for a cluster of
/// `num_proxies` proxies with `clients_per_cluster` clients each. Crash
/// targets and times are drawn from independent per-cluster sub-streams of
/// `spec.seed`, so schedules for different clusters are uncorrelated but the
/// whole schedule is a pure function of its inputs.
[[nodiscard]] std::vector<ChurnEvent> make_schedule(const ChurnSpec& spec,
                                                    std::uint64_t trace_length,
                                                    unsigned num_proxies,
                                                    ClientNum clients_per_cluster);

/// Stable-sorts a hand-written schedule by time (the order the engine needs;
/// equal-time events keep their authored order).
[[nodiscard]] std::vector<ChurnEvent> sorted_schedule(std::vector<ChurnEvent> events);

}  // namespace webcache::fault
