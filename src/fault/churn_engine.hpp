// ChurnEngine: replays a sorted churn schedule against the live simulation.
//
// The engine is a cursor over the event list; Simulator::run calls advance()
// once per trace position and the engine hands every due event to the
// dispatcher in schedule order. All state is a single index, so the engine
// adds nothing to the hot path when the schedule is empty and is trivially
// deterministic: event application order depends only on the schedule, never
// on threads or wall time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "fault/churn_schedule.hpp"

namespace webcache::fault {

class ChurnEngine {
 public:
  ChurnEngine() = default;
  explicit ChurnEngine(std::vector<ChurnEvent> events)
      : events_(sorted_schedule(std::move(events))) {}

  /// Dispatches every event with `time <= now` that has not fired yet.
  template <typename Dispatcher>
  void advance(std::uint64_t now, Dispatcher&& dispatch) {
    while (next_ < events_.size() && events_[next_].time <= now) {
      dispatch(events_[next_]);
      ++next_;
    }
  }

  [[nodiscard]] bool exhausted() const { return next_ == events_.size(); }
  [[nodiscard]] std::size_t applied() const { return next_; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] const std::vector<ChurnEvent>& events() const { return events_; }

 private:
  std::vector<ChurnEvent> events_;
  std::size_t next_ = 0;
};

}  // namespace webcache::fault
