// Cross-layer invariant auditor: walks a live Simulator at churn checkpoints
// and asserts the consistency properties no single layer can check alone —
// per-cache byte accounting vs. resident objects, eviction-order soundness,
// directory ↔ P2P residency (no false negatives for Bloom; exact equality
// without churn, a loss-bounded ghost count with it), diversion-pointer
// symmetry, residency-bitmask agreement with the actual caches, Pastry
// leaf-set/routing-table well-formedness, and the outcome accounting that
// backs the paper's "degrades but never corrupts" safety claim.
//
// The auditor is read-only: it uses only counter-free probes
// (audit_contains, contents(), peek_victim()), so running it changes no
// exported metric — audited and unaudited runs of the same config produce
// byte-identical JSON.
//
// Compiled out via -DWEBCACHE_AUDIT=OFF (mirroring WEBCACHE_OBS_TRACE):
// audit() then returns an empty passing report and make_audit_hook() returns
// a null hook, so Release builds pay nothing.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace webcache::sim {
class Simulator;
}

namespace webcache::fault {

struct AuditReport {
  std::uint64_t checks = 0;  ///< individual assertions evaluated
  std::vector<std::string> violations;
  [[nodiscard]] bool ok() const { return violations.empty(); }
};

/// Whether this build carries the auditor (WEBCACHE_AUDIT=ON).
[[nodiscard]] constexpr bool audits_enabled() {
#ifdef WEBCACHE_NO_AUDIT
  return false;
#else
  return true;
#endif
}

/// Audits the simulator's full cross-layer state; `now` is the number of
/// requests completed (what a checkpoint hook receives).
[[nodiscard]] AuditReport audit(const sim::Simulator& sim, std::uint64_t now);

/// A SimConfig::checkpoint_hook that runs audit() and throws
/// std::logic_error listing every violation when the report fails. Null (a
/// default-constructed function) when audits are compiled out.
[[nodiscard]] std::function<void(const sim::Simulator&, std::uint64_t)> make_audit_hook();

}  // namespace webcache::fault
