#include "fault/invariant_auditor.hpp"

#ifndef WEBCACHE_NO_AUDIT
#include <stdexcept>
#include <unordered_set>

#include "cache/greedy_dual.hpp"
#include "sim/simulator.hpp"
#endif

namespace webcache::fault {

#ifdef WEBCACHE_NO_AUDIT

AuditReport audit(const sim::Simulator&, std::uint64_t) { return {}; }

std::function<void(const sim::Simulator&, std::uint64_t)> make_audit_hook() { return {}; }

#else

namespace {

/// Collects violations with a running check count; every assertion funnels
/// through expect() so the report's `checks` reflects real coverage.
struct Checker {
  AuditReport report;

  void expect(bool condition, const std::string& what) {
    ++report.checks;
    if (!condition) report.violations.push_back(what);
  }

  /// Structural soundness of one fixed-capacity cache: the size it reports,
  /// the contents it enumerates, membership answers, and its eviction choice
  /// must all agree. For greedy-dual, the victim must carry the minimum
  /// credit (heap-order soundness).
  void check_cache(const std::string& label, const cache::Cache& c) {
    const auto contents = c.contents();
    expect(contents.size() == c.size(), label + ": contents()/size() disagree");
    expect(c.size() <= c.capacity(), label + ": over capacity");
    std::unordered_set<ObjectNum> seen;
    for (const auto object : contents) {
      expect(seen.insert(object).second,
             label + ": duplicate object " + std::to_string(object));
      expect(c.contains(object),
             label + ": contents() lists object " + std::to_string(object) +
                 " but contains() denies it");
    }
    const auto victim = c.peek_victim();
    if (c.size() > 0) {
      expect(victim.has_value(), label + ": non-empty cache offers no victim");
    }
    if (victim) {
      expect(seen.contains(*victim), label + ": victim not among contents");
      if (const auto* gd = dynamic_cast<const cache::GreedyDualCache*>(&c)) {
        const double vc = gd->credit(*victim);
        for (const auto object : contents) {
          expect(vc <= gd->credit(object) + 1e-9,
                 label + ": victim credit above object " + std::to_string(object) +
                     " (eviction order unsound)");
        }
      }
    }
  }

  /// The cluster-residency bitmasks must mirror the actual caches exactly;
  /// a drifted mask silently reroutes cooperative lookups.
  void check_residency(const sim::Simulator& sim) {
    if (!sim.residency_index_enabled()) return;
    const auto& config = sim.config();
    const ObjectNum universe = sim.residency_universe();
    std::vector<std::uint64_t> primary(universe, 0);
    std::vector<std::uint64_t> secondary(universe, 0);
    const auto mark = [&](std::vector<std::uint64_t>& masks,
                          const std::vector<ObjectNum>& objects, unsigned p) {
      for (const auto object : objects) {
        expect(object < universe, "residency: proxy " + std::to_string(p) +
                                      " caches object " + std::to_string(object) +
                                      " outside the trace universe");
        if (object < universe) masks[object] |= std::uint64_t{1} << p;
      }
    };
    for (unsigned p = 0; p < config.num_proxies; ++p) {
      switch (config.scheme) {
        case sim::Scheme::kSC:
        case sim::Scheme::kFC:
        case sim::Scheme::kHierGD:
          mark(primary, sim.proxy_cache_of(p)->contents(), p);
          break;
        case sim::Scheme::kSC_EC:
          mark(primary, sim.tiered_of(p)->tier1().contents(), p);
          mark(secondary, sim.tiered_of(p)->tier2().contents(), p);
          break;
        case sim::Scheme::kFC_EC:
          mark(primary, sim.tier_tracker_of(p)->contents(), p);
          mark(secondary, sim.unified_of(p)->contents(), p);
          break;
        default:
          return;  // non-cooperative schemes carry no index
      }
    }
    for (ObjectNum object = 0; object < universe; ++object) {
      expect(sim.residency_primary(object) == primary[object],
             "residency: primary mask of object " + std::to_string(object) +
                 " disagrees with cache contents");
      expect(sim.residency_secondary(object) == secondary[object],
             "residency: secondary mask of object " + std::to_string(object) +
                 " disagrees with cache contents");
    }
  }

  /// Pastry well-formedness: leaf sets and routing tables must be
  /// structurally valid at every checkpoint — even mid-churn, when *stale*
  /// (dead) references are legal, malformed ones never are.
  void check_overlay(const std::string& label, const pastry::Overlay& overlay) {
    for (const auto& id : overlay.nodes()) {
      const auto& leaves = overlay.leaf_set(id);
      expect(leaves.owner() == id, label + ": leaf set owner mismatch");
      expect(leaves.clockwise().size() <= leaves.capacity() / 2,
             label + ": clockwise leaf side overfull");
      expect(leaves.counter_clockwise().size() <= leaves.capacity() / 2,
             label + ": counter-clockwise leaf side overfull");
      std::unordered_set<pastry::NodeId, Uint128Hash> seen;
      for (const auto& member : leaves.members()) {
        expect(member != id, label + ": leaf set contains its owner");
        expect(seen.insert(member).second, label + ": duplicate leaf-set member");
      }
      const auto& table = overlay.routing_table(id);
      const auto populated = table.populated();
      expect(populated.size() == table.populated_count(),
             label + ": populated()/populated_count() disagree");
      for (const auto& entry : populated) {
        expect(entry != id, label + ": routing table contains its owner");
        const auto slot = table.slot_of(entry);
        expect(slot.has_value(), label + ": populated entry without a canonical slot");
        if (slot) {
          const auto at = table.entry(slot->first, slot->second);
          expect(at == std::optional<pastry::NodeId>(entry),
                 label + ": routing entry not stored at its canonical slot");
        }
      }
    }
  }

  /// Hier-GD's cluster: physical P2P consistency, the directory contract
  /// (Bloom never lies negatively; exact mirrors residency until crashes
  /// make bounded staleness legal), and proxy-tier credit bookkeeping.
  void check_cluster(const sim::Simulator& sim, unsigned p) {
    const auto* p2p = sim.p2p_of(p);
    const std::string label = "cluster" + std::to_string(p);
    for (auto& violation : p2p->audit_violations()) {
      ++report.checks;
      report.violations.push_back(label + ": " + violation);
    }
    ++report.checks;  // the audit_violations sweep itself

    const auto* dir = sim.directory_of(p);
    if (dir == nullptr) return;  // Squirrel: no directory layer

    const auto residents = p2p->resident_objects();
    const std::uint64_t crashes = sim.registry().counter_value("fault.crashes");
    const bool bloom = sim.config().directory == sim::DirectoryKind::kBloom;
    if (bloom || crashes == 0) {
      // No false negatives: every resident object must answer positively. A
      // counting Bloom filter only ever forgets what actually left, so this
      // holds even under churn; an exact directory can legitimately purge
      // unreachable residents once crashes reshuffle Pastry roots.
      for (const auto object : residents) {
        expect(dir->audit_contains(object),
               label + ": directory false negative for resident object " +
                   std::to_string(object));
      }
    }
    if (!bloom) {
      // Ghost entries (entry without a resident object) only come from crash
      // losses the directory has not discovered yet — their count is bounded
      // by the objects ever lost. Without crashes the mirror is exact.
      std::unordered_set<ObjectNum> resident_set(residents.begin(), residents.end());
      std::uint64_t ghosts = 0;
      for (ObjectNum object = 0; object < sim.residency_universe(); ++object) {
        if (dir->audit_contains(object) && !resident_set.contains(object)) ++ghosts;
      }
      const std::uint64_t lost = sim.registry().counter_value("fault.objects_lost");
      expect(ghosts <= (crashes == 0 ? 0 : lost),
             label + ": " + std::to_string(ghosts) +
                 " ghost directory entries exceed the " + std::to_string(lost) +
                 " objects lost to crashes");
    }

    // Proxy-tier greedy-dual credits: every cached object must have a
    // recorded fetch cost to destage with.
    const auto* costs = sim.fetch_costs_of(p);
    for (const auto object : sim.proxy_cache_of(p)->contents()) {
      expect(costs->contains(object),
             label + ": proxy-cached object " + std::to_string(object) +
                 " has no recorded fetch cost");
    }
  }

  /// Request accounting: every request was served exactly once, from exactly
  /// one place — the ledger behind "failures cost latency, never bytes".
  void check_accounting(const sim::Simulator& sim, std::uint64_t now) {
    const auto m = sim.metrics_view();
    expect(m.requests == now, "accounting: requests processed (" +
                                  std::to_string(m.requests) +
                                  ") != checkpoint position (" + std::to_string(now) + ")");
    const std::uint64_t outcomes = m.hits_browser + m.hits_local_proxy +
                                   m.hits_local_p2p + m.hits_remote_proxy +
                                   m.hits_remote_p2p + m.server_fetches;
    expect(outcomes == m.requests, "accounting: outcome counters sum to " +
                                       std::to_string(outcomes) + " for " +
                                       std::to_string(m.requests) + " requests");
    expect(m.messages.p2p_retries == m.messages.p2p_messages_lost,
           "accounting: every lost P2P message must be retried exactly once");
  }
};

}  // namespace

AuditReport audit(const sim::Simulator& sim, std::uint64_t now) {
  Checker checker;
  const auto& config = sim.config();
  checker.check_accounting(sim, now);
  checker.check_residency(sim);

  for (unsigned p = 0; p < config.num_proxies; ++p) {
    const std::string proxy_label = "proxy" + std::to_string(p);
    if (const auto* cache = sim.proxy_cache_of(p)) {
      checker.check_cache(proxy_label + ".cache", *cache);
    }
    if (const auto* tiered = sim.tiered_of(p)) {
      checker.check_cache(proxy_label + ".tier1", tiered->tier1());
      checker.check_cache(proxy_label + ".tier2", tiered->tier2());
      for (const auto object : tiered->tier1().contents()) {
        checker.expect(!tiered->tier2().contains(object),
                       proxy_label + ": object " + std::to_string(object) +
                           " resident in both tiers");
      }
    }
    if (const auto* unified = sim.unified_of(p)) {
      checker.check_cache(proxy_label + ".unified", *unified);
      const auto* tracker = sim.tier_tracker_of(p);
      checker.check_cache(proxy_label + ".tier_tracker", *tracker);
      for (const auto object : tracker->contents()) {
        checker.expect(unified->contains(object),
                       proxy_label + ": tracker object " + std::to_string(object) +
                           " missing from the unified cache");
      }
    }
    if (config.browser_cache_capacity > 0) {
      for (ClientNum c = 0; c < config.clients_per_cluster; ++c) {
        checker.check_cache(proxy_label + ".browser" + std::to_string(c),
                            *sim.browser_of(p, c));
      }
    }
    if (const auto* p2p = sim.p2p_of(p)) {
      checker.check_overlay("cluster" + std::to_string(p) + ".overlay", p2p->overlay());
      checker.check_cluster(sim, p);
    }
  }
  return checker.report;
}

std::function<void(const sim::Simulator&, std::uint64_t)> make_audit_hook() {
  return [](const sim::Simulator& sim, std::uint64_t now) {
    const AuditReport report = audit(sim, now);
    if (report.ok()) return;
    std::string message = "invariant audit failed at request " + std::to_string(now) + ":";
    for (const auto& violation : report.violations) {
      message += "\n  - " + violation;
    }
    throw std::logic_error(message);
  };
}

#endif  // WEBCACHE_NO_AUDIT

}  // namespace webcache::fault
