// Probabilistic P2P message loss. Each intra-cluster transfer draws once; a
// loss models a timeout + retry, costing the requester one extra Tp2p of
// latency (the retry always succeeds — the paper's client caches sit on one
// LAN, so persistent partitions are out of scope; crashes are modeled by the
// ChurnEngine instead).
//
// The model owns its own Rng stream, forked from the simulation seed, so
// enabling loss never perturbs workload or capacity-spread draws.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "common/rng.hpp"

namespace webcache::fault {

class LossModel {
 public:
  LossModel() = default;
  LossModel(double probability, std::uint64_t seed)
      : probability_(probability), rng_(seed) {
    if (probability < 0.0 || probability >= 1.0) {
      throw std::invalid_argument("LossModel: probability must be in [0, 1)");
    }
  }

  [[nodiscard]] bool enabled() const { return probability_ > 0.0; }

  /// Draws one message; returns true if it was lost (and must be retried).
  bool lose_message() {
    if (probability_ <= 0.0) return false;
    if (rng_.next_double() >= probability_) return false;
    ++losses_;
    return true;
  }

  [[nodiscard]] std::uint64_t losses() const { return losses_; }
  [[nodiscard]] double probability() const { return probability_; }

 private:
  double probability_ = 0.0;
  Rng rng_{0};
  std::uint64_t losses_ = 0;
};

}  // namespace webcache::fault
