#include "fault/churn_schedule.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/rng.hpp"

namespace webcache::fault {
namespace {

// Draws a time uniformly in [start, end); callers guarantee end > start.
std::uint64_t draw_time(Rng& rng, std::uint64_t start, std::uint64_t end) {
  return start + rng.next_below(end - start);
}

}  // namespace

std::vector<ChurnEvent> make_schedule(const ChurnSpec& spec, std::uint64_t trace_length,
                                      unsigned num_proxies, ClientNum clients_per_cluster) {
  if (num_proxies == 0) {
    throw std::invalid_argument("make_schedule: need at least one proxy");
  }
  if (clients_per_cluster == 0) {
    throw std::invalid_argument("make_schedule: need at least one client per cluster");
  }
  if (spec.start >= trace_length &&
      (spec.crashes > 0 || spec.joins > 0 || spec.repair_every > 0)) {
    throw std::invalid_argument("make_schedule: churn start is past the end of the trace");
  }

  std::vector<ChurnEvent> events;
  Rng root(spec.seed);
  for (unsigned p = 0; p < num_proxies; ++p) {
    // Independent sub-stream per cluster: adding a proxy never perturbs the
    // schedules of existing ones.
    Rng rng = root.fork(p + 1);

    // Distinct crash targets via a partial Fisher-Yates shuffle, keeping at
    // least one client alive so the cluster can still route requests.
    const ClientNum max_crashes =
        std::min<ClientNum>(spec.crashes, clients_per_cluster - 1);
    std::vector<ClientNum> pool(clients_per_cluster);
    for (ClientNum c = 0; c < clients_per_cluster; ++c) pool[c] = c;
    for (ClientNum k = 0; k < max_crashes; ++k) {
      const std::size_t pick = k + rng.next_below(pool.size() - k);
      std::swap(pool[k], pool[pick]);
      const std::uint64_t when = draw_time(rng, spec.start, trace_length);
      events.push_back({when, p, pool[k], ChurnAction::kCrash});
      if (spec.recover_after > 0) {
        const std::uint64_t back = when + spec.recover_after;
        if (back < trace_length) {
          events.push_back({back, p, pool[k], ChurnAction::kRejoin});
        }
      }
    }

    for (ClientNum j = 0; j < spec.joins; ++j) {
      events.push_back(
          {draw_time(rng, spec.start, trace_length), p, 0, ChurnAction::kJoin});
    }

    if (spec.repair_every > 0) {
      for (std::uint64_t t = spec.start; t < trace_length; t += spec.repair_every) {
        events.push_back({t, p, 0, ChurnAction::kRepair});
      }
    }
  }
  return sorted_schedule(std::move(events));
}

std::vector<ChurnEvent> sorted_schedule(std::vector<ChurnEvent> events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const ChurnEvent& a, const ChurnEvent& b) { return a.time < b.time; });
  return events;
}

}  // namespace webcache::fault
