// The P2P client cache: the cooperative halves of all client browser caches
// in one client cluster, federated over a Pastry overlay (paper Sections
// 4.1 and 4.3).
//
// Placement: a destaged object's objectId = SHA-1(URL) is routed to the live
// client cache whose cacheId is numerically closest (its *root*). Storage
// management uses PAST-style *object diversion*: a full root first offers
// the object to a leaf-set member with free space, keeping a pointer; only
// when the whole leaf neighborhood is full does it run its local greedy-dual
// replacement and discard the loser. Every client cache runs greedy-dual
// locally, making this tier the bottom half of Hier-GD.
//
// Lookups route to the root and follow at most one diversion pointer.
// On a hit the object is, by default, handed up to the proxy and removed
// here ("promote"): the proxy now holds it and will destage it again on
// eviction, so keeping a second copy below would only waste client space.
//
// The class accounts overlay messages, diversions, receipts and hops as
// obs::Registry counters (prefix "<name_prefix>.net."); messages() exposes
// them as the net::MessageStats view the ablation benches report.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/cache.hpp"
#include "cache/policy.hpp"
#include "common/dense_map.hpp"
#include "common/prefetch.hpp"
#include "common/types.hpp"
#include "common/uint128.hpp"
#include "net/message_stats.hpp"
#include "obs/registry.hpp"
#include "pastry/overlay.hpp"

namespace webcache::p2p {

/// How individual client-cache capacities are assigned. The paper motivates
/// object diversion precisely by "differences in the storage capacity and
/// utilization of client caches within a leaf set" (Section 4.3), so the
/// heterogeneous modes are the ones that exercise it fully.
enum class CapacitySpread {
  kUniform,      ///< every client donates per_client_capacity
  kBimodal,      ///< alternating 1.5x / 0.5x donations (desktops vs laptops;
                 ///< same expected total as kUniform)
  kProportional, ///< capacity c*2k/(N+1) by client index (linear spread,
                 ///< same expected total)
};

struct P2PConfig {
  ClientNum clients = 100;
  std::size_t per_client_capacity = 5;
  CapacitySpread capacity_spread = CapacitySpread::kUniform;
  pastry::OverlayConfig overlay{};
  /// PAST-style object diversion inside leaf sets (paper Section 4.3);
  /// the ablation bench switches this off.
  bool enable_diversion = true;
  /// Distinguishes node ids across clusters (cacheId = SHA-1 of this prefix
  /// plus the client index).
  std::string name_prefix = "cluster0";
  /// Replacement policy of each client's cooperative cache slice. kDefault =
  /// greedy-dual, the paper's Hier-GD bottom tier (SimConfig::client_policy
  /// threads through here).
  cache::PolicyKind client_policy = cache::PolicyKind::kDefault;
};

/// Capacity of client `index` under a spread policy. Deterministic so runs
/// are reproducible; totals match clients * per_client_capacity up to
/// rounding.
[[nodiscard]] std::size_t client_capacity(const P2PConfig& config, ClientNum index);

/// Result of destaging one evicted object into the P2P cache.
struct StoreOutcome {
  bool stored = false;                 ///< false only for degenerate capacity-0 setups
  bool already_present = false;        ///< destage found a live copy; refreshed it
  bool diverted = false;               ///< stored at a leaf-set peer of the root
  std::optional<ObjectNum> displaced;  ///< object that left the P2P cache entirely
  unsigned hops = 0;                   ///< Pastry hops consumed
};

/// Result of a lookup/fetch.
struct FetchOutcome {
  bool hit = false;
  bool via_diversion_pointer = false;
  bool removed = false;  ///< object was promoted out (remove_on_hit)
  unsigned hops = 0;
};

class P2PClientCache {
 public:
  /// `object_ids[o]` must hold SHA-1(URL of o); shared with the directories.
  /// `registry` (optional) receives the message counters
  /// (`<name_prefix>.net.*`), the overlay instruments
  /// (`<name_prefix>.pastry.*`) and the aggregated client-cache counters
  /// (`<name_prefix>.client_cache.*`); without one the cluster keeps a
  /// private registry, so standalone use needs no wiring.
  P2PClientCache(P2PConfig config, std::shared_ptr<const std::vector<Uint128>> object_ids,
                 obs::Registry* registry = nullptr);

  /// Destages `object` (evicted by the proxy) into the cluster, routing from
  /// `via_client` (the client whose HTTP response carried the piggybacked
  /// object). `cost` is the greedy-dual credit, i.e. the object's refetch
  /// cost.
  StoreOutcome store(ObjectNum object, double cost, ClientNum via_client);

  /// Looks up `object`, routing from `via_client`. When `remove_on_hit`,
  /// the object is promoted out of this tier (the caller now owns it).
  FetchOutcome fetch(ObjectNum object, ClientNum via_client, bool remove_on_hit = true);

  /// Ground truth membership (exact directories mirror this; tests check).
  [[nodiscard]] bool contains(ObjectNum object) const { return location_.contains(object); }

  /// Advisory prefetch of the per-object routing state a fetch/store for
  /// `object` reads first: the location-index slot and the SHA-1 objectId
  /// entry the overlay routes on. Pure hint; no counters, no result drift.
  void prefetch(ObjectNum object) const {
    location_.prefetch(object);
    if (object_ids_ && object < object_ids_->size()) {
      WEBCACHE_PREFETCH(&(*object_ids_)[object]);
    }
  }

  /// Whether a given client machine is up (fault-injection support).
  [[nodiscard]] bool client_alive(ClientNum client) const {
    return client < nodes_.size() && nodes_[client].alive;
  }

  [[nodiscard]] std::size_t size() const { return location_.size(); }
  [[nodiscard]] std::size_t total_capacity() const;
  [[nodiscard]] ClientNum cluster_size() const { return static_cast<ClientNum>(nodes_.size()); }

  /// Crash-fails a client: its cached objects are lost. Returns the objects
  /// that vanished (the proxy's directory is now stale until told).
  std::vector<ObjectNum> fail_client(ClientNum client);

  /// Brings a crashed client back up with an empty cooperative cache (the
  /// machine rebooted; its browser-cache half restarts cold). The node
  /// rejoins the overlay at its archived proximity coordinates. Returns
  /// false (and does nothing) if the client is already alive.
  bool revive_client(ClientNum client);

  /// A brand-new client machine joins the cluster: a fresh node with its own
  /// greedy-dual cache (capacity per the configured spread) enters the
  /// overlay. Returns the new client's index.
  ClientNum add_client();

  /// Number of currently-live client machines.
  [[nodiscard]] ClientNum alive_clients() const;

  /// Runs the overlay's periodic repair.
  void repair() { overlay_.repair_all(); }

  /// Message-traffic view, rebuilt from the registry counters on each call.
  [[nodiscard]] net::MessageStats messages() const { return msg_.view(); }
  void reset_messages() { msg_.reset(); }

  [[nodiscard]] const pastry::Overlay& overlay() const { return overlay_; }
  [[nodiscard]] const P2PConfig& config() const { return config_; }

  /// Objects physically stored at a given client (tests, balance metrics).
  [[nodiscard]] std::vector<ObjectNum> contents_of(ClientNum client) const;

  /// Coefficient of variation of per-client utilization — the balance metric
  /// the diversion ablation reports.
  [[nodiscard]] double utilization_cv() const;

  /// Every object resident anywhere in the cluster (the ground truth the
  /// proxy's lookup directory approximates). Audit/test support.
  [[nodiscard]] std::vector<ObjectNum> resident_objects() const;

  /// Structural self-check: location index ↔ per-node caches bidirectional,
  /// dead nodes empty, diversion pointers symmetric and live. Returns a
  /// description per violation (empty = consistent). Used by fault::audit.
  [[nodiscard]] std::vector<std::string> audit_violations() const;

 private:
  /// Clients are identified by dense indices throughout: a client's index
  /// equals its permanent overlay slot (asserted at join), so routing results
  /// and diversion pointers address nodes_ directly — no NodeId hashing on
  /// the hot path.
  struct ClientNode {
    pastry::NodeId id;
    bool alive = true;
    std::unique_ptr<cache::Cache> cache;  ///< greedy-dual unless client_policy overrides
    /// Objects this node is root for but that live at a leaf-set peer
    /// (value = the peer's client index).
    FlatMap<ClientNum> diverted_out;
    /// Objects stored here on behalf of another root (value = the root's
    /// client index).
    FlatMap<ClientNum> diverted_in;
    /// Leaf-set membership resolved to client indices, revalidated against
    /// the overlay's topology version (stale after any join/crash/repair).
    std::vector<ClientNum> leaf_clients;
    std::uint64_t leaf_version = kNoLeafVersion;
  };
  static constexpr std::uint64_t kNoLeafVersion = ~std::uint64_t{0};

  [[nodiscard]] const Uint128& id_of(ObjectNum object) const;

  /// Client indices of `root_idx`'s current leaf-set members, in leaf-set
  /// iteration order (may include dead clients; callers filter on alive).
  const std::vector<ClientNum>& leaf_clients_of(std::size_t root_idx);

  /// Removes every bookkeeping trace of `object` stored at node `idx`.
  void detach(ObjectNum object, std::size_t idx);

  /// Handles the eviction of `victim` from node `idx`'s local cache.
  void on_local_eviction(ObjectNum victim, std::size_t idx);

  P2PConfig config_;
  std::shared_ptr<const std::vector<Uint128>> object_ids_;
  /// The registry the cluster binds its instruments into (owned or caller's);
  /// kept so add_client can bind late-joining caches to the same counters.
  obs::Registry* registry_ = nullptr;
  /// Fallback registry when none was supplied (declared before the members
  /// that bind counters out of it).
  std::unique_ptr<obs::Registry> owned_registry_;
  pastry::Overlay overlay_;
  std::vector<ClientNode> nodes_;
  /// object -> index of the node physically storing it (direct-indexed by
  /// the dense object id; sized to the id table).
  DenseMap<std::uint32_t> location_;
  net::MessageCounters msg_;
};

}  // namespace webcache::p2p
