#include "p2p/p2p_client_cache.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "cache/greedy_dual.hpp"
#include "common/sha1.hpp"

namespace webcache::p2p {

namespace {

/// One client's cooperative cache slice: the configured policy, defaulting
/// to the paper's greedy-dual.
std::unique_ptr<cache::Cache> make_client_cache(const P2PConfig& config, ClientNum index) {
  const std::size_t capacity = client_capacity(config, index);
  if (auto cache = cache::make_cache(config.client_policy, capacity)) return cache;
  return std::make_unique<cache::GreedyDualCache>(capacity);
}

}  // namespace

std::size_t client_capacity(const P2PConfig& config, ClientNum index) {
  const std::size_t base = config.per_client_capacity;
  switch (config.capacity_spread) {
    case CapacitySpread::kUniform:
      return base;
    case CapacitySpread::kBimodal:
      // Alternating big/small machines: 1.5x and 0.5x keep the same total.
      return index % 2 == 0 ? base + base / 2 + base % 2 : base / 2;
    case CapacitySpread::kProportional: {
      // Linear spread 2*base*(k+1)/(N+1); totals ~= N*base. A participating
      // client donates at least one slot (a zero-capacity root could never
      // accept its own keyspace's objects).
      const double share = 2.0 * static_cast<double>(base) *
                           static_cast<double>(index + 1) /
                           static_cast<double>(config.clients + 1);
      return std::max<std::size_t>(1, static_cast<std::size_t>(share + 0.5));
    }
  }
  return base;
}

P2PClientCache::P2PClientCache(P2PConfig config,
                               std::shared_ptr<const std::vector<Uint128>> object_ids,
                               obs::Registry* registry)
    : config_(std::move(config)),
      object_ids_(std::move(object_ids)),
      overlay_(config_.overlay, &obs::ensure_registry(registry, owned_registry_),
               config_.name_prefix + ".pastry."),
      msg_(obs::ensure_registry(registry, owned_registry_), config_.name_prefix + ".net.") {
  if (config_.clients == 0) {
    throw std::invalid_argument("P2PClientCache: need at least one client");
  }
  if (!object_ids_) {
    throw std::invalid_argument("P2PClientCache: object id table required");
  }

  obs::Registry& reg = obs::ensure_registry(registry, owned_registry_);
  registry_ = &reg;
  const std::string cache_prefix = config_.name_prefix + ".client_cache.";
  location_.reserve(object_ids_->size());
  nodes_.reserve(config_.clients);
  for (ClientNum c = 0; c < config_.clients; ++c) {
    ClientNode node;
    node.id = pastry::node_id_for(config_.name_prefix + "/client" + std::to_string(c));
    node.cache = make_client_cache(config_, c);
    // Every client cache binds to the same cluster-wide prefix, so the
    // counters aggregate across the whole P2P client cache.
    node.cache->bind_observability(reg, cache_prefix);
    const std::uint32_t slot = overlay_.add_node(node.id);
    assert(slot == nodes_.size() && "client index must equal overlay slot");
    (void)slot;
    nodes_.push_back(std::move(node));
  }
}

const Uint128& P2PClientCache::id_of(ObjectNum object) const {
  if (object >= object_ids_->size()) {
    throw std::out_of_range("P2PClientCache: object outside the id table");
  }
  return (*object_ids_)[object];
}

const std::vector<ClientNum>& P2PClientCache::leaf_clients_of(std::size_t root_idx) {
  ClientNode& root = nodes_[root_idx];
  const std::uint64_t version = overlay_.topology_version();
  if (root.leaf_version != version) {
    root.leaf_clients.clear();
    // Same enumeration order as a direct leaf-set scan; members may be stale
    // (dead) — slots are permanent, so they still resolve, and the scan
    // filters on alive.
    overlay_.leaf_set(root.id).visit_members([&](const pastry::NodeId& leaf_id) {
      root.leaf_clients.push_back(static_cast<ClientNum>(overlay_.slot_of(leaf_id)));
      return false;
    });
    root.leaf_version = version;
  }
  return root.leaf_clients;
}

std::size_t P2PClientCache::total_capacity() const {
  std::size_t total = 0;
  for (const auto& n : nodes_) {
    if (n.alive) total += n.cache->capacity();
  }
  return total;
}

void P2PClientCache::detach(ObjectNum object, std::size_t idx) {
  ClientNode& holder = nodes_[idx];
  holder.cache->erase(object);
  if (const ClientNum* root_idx = holder.diverted_in.find(object)) {
    // Tell the root its pointer is dangling.
    nodes_[*root_idx].diverted_out.erase(object);
    holder.diverted_in.erase(object);
  }
  location_.erase(object);
}

void P2PClientCache::on_local_eviction(ObjectNum victim, std::size_t idx) {
  // "The evicted object from the client cache is simply discarded."
  ClientNode& holder = nodes_[idx];
  if (const ClientNum* root_idx = holder.diverted_in.find(victim)) {
    nodes_[*root_idx].diverted_out.erase(victim);
    holder.diverted_in.erase(victim);
  }
  location_.erase(victim);
}

StoreOutcome P2PClientCache::store(ObjectNum object, double cost, ClientNum via_client) {
  StoreOutcome outcome;
  if (via_client >= nodes_.size() || !nodes_[via_client].alive) {
    throw std::invalid_argument("P2PClientCache::store: via_client invalid or dead");
  }

  // A live copy may already exist (e.g. the proxy re-fetched from the origin
  // after a Bloom false negative never happens, but SC-style double-destage
  // can); refresh its credit instead of double-storing.
  if (const std::uint32_t* holder = location_.find(object)) {
    nodes_[*holder].cache->access(object, cost);
    outcome.stored = true;
    outcome.already_present = true;
    return outcome;
  }

  // Route the piggybacked object from the carrying client to the root
  // (client index == overlay slot, so both ends skip the NodeId hashes).
  const auto route = overlay_.route(static_cast<std::uint32_t>(via_client), id_of(object));
  outcome.hops = route.hops;
  msg_.pastry_forward_messages.inc(route.hops);

  const std::size_t root_idx = route.destination_slot;
  ClientNode& root = nodes_[root_idx];

  // (3)-(5): root has free space -> store locally.
  if (!root.cache->full()) {
    const auto ins = root.cache->insert(object, cost);
    if (!ins.inserted) return outcome;  // capacity-0 client caches
    assert(!ins.evicted.has_value());
    location_[object] = static_cast<std::uint32_t>(root_idx);
    outcome.stored = true;
    msg_.store_receipts.inc();
    return outcome;
  }

  // (7)-(10): object diversion — find a leaf-set member with free space.
  // The member list is the cached leaf set resolved to client indices (same
  // order as a direct scan); a client is storable iff it is alive — a dead
  // leaf reference the root has not yet repaired maps to !alive here, which
  // is exactly the overlay-membership check the old NodeId path did.
  if (config_.enable_diversion) {
    for (const ClientNum peer_idx : leaf_clients_of(root_idx)) {
      ClientNode& peer = nodes_[peer_idx];
      if (!peer.alive || peer.cache->full()) continue;
      const auto ins = peer.cache->insert(object, cost);
      if (!ins.inserted) continue;
      assert(!ins.evicted.has_value());
      peer.diverted_in[object] = static_cast<ClientNum>(root_idx);
      root.diverted_out[object] = peer_idx;
      location_[object] = peer_idx;
      outcome.stored = true;
      outcome.diverted = true;
      outcome.hops += 1;  // root -> peer transfer
      msg_.diversions.inc();
      msg_.pastry_forward_messages.inc();
      msg_.store_receipts.inc();
      return outcome;
    }
  }

  // (12)-(14): whole neighborhood full — local greedy-dual replacement.
  const auto ins = root.cache->insert(object, cost);
  if (!ins.inserted) return outcome;  // capacity-0 client caches
  if (ins.evicted) {
    on_local_eviction(*ins.evicted, root_idx);
    outcome.displaced = ins.evicted;
  }
  location_[object] = static_cast<std::uint32_t>(root_idx);
  outcome.stored = true;
  msg_.store_receipts.inc();
  return outcome;
}

FetchOutcome P2PClientCache::fetch(ObjectNum object, ClientNum via_client, bool remove_on_hit) {
  FetchOutcome outcome;
  if (via_client >= nodes_.size() || !nodes_[via_client].alive) {
    throw std::invalid_argument("P2PClientCache::fetch: via_client invalid or dead");
  }

  const auto route = overlay_.route(static_cast<std::uint32_t>(via_client), id_of(object));
  outcome.hops = route.hops;
  msg_.pastry_forward_messages.inc(route.hops);

  const std::size_t root_idx = route.destination_slot;
  ClientNode& root = nodes_[root_idx];

  std::size_t holder_idx = root_idx;
  if (!root.cache->contains(object)) {
    const ClientNum* peer_idx = root.diverted_out.find(object);
    if (peer_idx == nullptr) return outcome;  // miss (false positive)
    holder_idx = *peer_idx;
    if (!nodes_[holder_idx].alive || !nodes_[holder_idx].cache->contains(object)) {
      return outcome;  // dangling pointer after a failure
    }
    outcome.via_diversion_pointer = true;
    outcome.hops += 1;
    msg_.diversion_pointer_lookups.inc();
    msg_.pastry_forward_messages.inc();
  }

  outcome.hit = true;
  if (remove_on_hit) {
    detach(object, holder_idx);
    outcome.removed = true;
  } else {
    nodes_[holder_idx].cache->access(object, /*cost=*/0.0);
  }
  return outcome;
}

std::vector<ObjectNum> P2PClientCache::fail_client(ClientNum client) {
  if (client >= nodes_.size()) {
    throw std::invalid_argument("P2PClientCache::fail_client: no such client");
  }
  ClientNode& node = nodes_[client];
  if (!node.alive) return {};

  // Everything physically stored here is gone.
  std::vector<ObjectNum> lost = node.cache->contents();
  for (const auto object : lost) {
    on_local_eviction(object, client);
    node.cache->erase(object);
  }
  // Pointers this node held as root now dangle; the peers' copies survive
  // but become unreachable through the (dead) root — drop them too, as the
  // new root cannot know about them. This mirrors what a real deployment
  // loses on a root crash before re-replication.
  node.diverted_out.for_each([&](ObjectNum object, ClientNum peer_idx) {
    nodes_[peer_idx].cache->erase(object);
    nodes_[peer_idx].diverted_in.erase(object);
    location_.erase(object);
    lost.push_back(object);
  });
  node.diverted_out.clear();

  node.alive = false;
  overlay_.fail_node(node.id);
  return lost;
}

bool P2PClientCache::revive_client(ClientNum client) {
  if (client >= nodes_.size()) {
    throw std::invalid_argument("P2PClientCache::revive_client: no such client");
  }
  ClientNode& node = nodes_[client];
  if (node.alive) return false;
  // fail_client emptied the cache and both diversion maps; the machine comes
  // back cold at the same ring position and network coordinates.
  assert(node.cache->size() == 0);
  assert(node.diverted_in.empty() && node.diverted_out.empty());
  overlay_.rejoin_node(node.id);
  node.alive = true;
  return true;
}

ClientNum P2PClientCache::add_client() {
  const ClientNum index = static_cast<ClientNum>(nodes_.size());
  ClientNode node;
  node.id = pastry::node_id_for(config_.name_prefix + "/client" + std::to_string(index));
  node.cache = make_client_cache(config_, index);
  node.cache->bind_observability(*registry_, config_.name_prefix + ".client_cache.");
  const std::uint32_t slot = overlay_.add_node(node.id);
  assert(slot == index && "client index must equal overlay slot");
  (void)slot;
  nodes_.push_back(std::move(node));
  return index;
}

ClientNum P2PClientCache::alive_clients() const {
  ClientNum alive = 0;
  for (const auto& n : nodes_) {
    if (n.alive) ++alive;
  }
  return alive;
}

std::vector<ObjectNum> P2PClientCache::contents_of(ClientNum client) const {
  if (client >= nodes_.size()) {
    throw std::invalid_argument("P2PClientCache::contents_of: no such client");
  }
  return nodes_[client].cache->contents();
}

double P2PClientCache::utilization_cv() const {
  double mean = 0.0;
  std::size_t alive = 0;
  for (const auto& n : nodes_) {
    if (!n.alive) continue;
    mean += static_cast<double>(n.cache->size());
    ++alive;
  }
  if (alive == 0) return 0.0;
  mean /= static_cast<double>(alive);
  if (mean == 0.0) return 0.0;
  double var = 0.0;
  for (const auto& n : nodes_) {
    if (!n.alive) continue;
    const double d = static_cast<double>(n.cache->size()) - mean;
    var += d * d;
  }
  var /= static_cast<double>(alive);
  return std::sqrt(var) / mean;
}

std::vector<ObjectNum> P2PClientCache::resident_objects() const {
  std::vector<ObjectNum> objects;
  objects.reserve(location_.size());
  location_.for_each([&objects](ObjectNum object, std::uint32_t) { objects.push_back(object); });
  return objects;
}

std::vector<std::string> P2PClientCache::audit_violations() const {
  std::vector<std::string> v;
  const auto fail = [&v](std::string msg) { v.push_back(std::move(msg)); };

  // Location index -> node caches.
  location_.for_each([&](ObjectNum object, std::uint32_t idx) {
    if (idx >= nodes_.size()) {
      fail("location of object " + std::to_string(object) + " points past the node list");
      return;
    }
    const ClientNode& holder = nodes_[idx];
    if (!holder.alive) {
      fail("object " + std::to_string(object) + " located at dead client " +
           std::to_string(idx));
    }
    if (!holder.cache->contains(object)) {
      fail("object " + std::to_string(object) + " located at client " +
           std::to_string(idx) + " but absent from its cache");
    }
  });

  for (std::size_t idx = 0; idx < nodes_.size(); ++idx) {
    const ClientNode& node = nodes_[idx];
    // Node caches -> location index, and capacity bounds.
    if (node.cache->size() > node.cache->capacity()) {
      fail("client " + std::to_string(idx) + " cache over capacity");
    }
    for (const auto object : node.cache->contents()) {
      const std::uint32_t* loc = location_.find(object);
      if (loc == nullptr || *loc != idx) {
        fail("object " + std::to_string(object) + " cached at client " +
             std::to_string(idx) + " without a matching location entry");
      }
    }
    if (!node.alive) {
      if (node.cache->size() != 0 || !node.diverted_in.empty() ||
          !node.diverted_out.empty()) {
        fail("dead client " + std::to_string(idx) + " still holds state");
      }
      continue;
    }
    // Diversion pointer symmetry: root's diverted_out ↔ peer's diverted_in.
    node.diverted_out.for_each([&](ObjectNum object, ClientNum peer_idx) {
      if (peer_idx >= nodes_.size()) {
        fail("diverted_out of client " + std::to_string(idx) + " names an unknown peer");
        return;
      }
      const ClientNode& peer = nodes_[peer_idx];
      const ClientNum* back = peer.diverted_in.find(object);
      if (!peer.alive || back == nullptr || *back != idx) {
        fail("diversion pointer for object " + std::to_string(object) +
             " (root client " + std::to_string(idx) + ") has no live back-pointer");
      }
      const std::uint32_t* loc = location_.find(object);
      if (loc == nullptr || *loc != peer_idx) {
        fail("diverted object " + std::to_string(object) + " not located at its peer");
      }
    });
    node.diverted_in.for_each([&](ObjectNum object, ClientNum root_idx) {
      if (root_idx >= nodes_.size()) {
        fail("diverted_in of client " + std::to_string(idx) + " names an unknown root");
        return;
      }
      const ClientNode& root = nodes_[root_idx];
      const ClientNum* fwd = root.diverted_out.find(object);
      if (!root.alive || fwd == nullptr || *fwd != idx) {
        fail("held-for-root object " + std::to_string(object) + " (client " +
             std::to_string(idx) + ") has no live forward pointer");
      }
    });
  }
  return v;
}

}  // namespace webcache::p2p
