#include "sim/tiered_cache.hpp"

#include <cassert>
#include <stdexcept>

namespace webcache::sim {

TieredCache::TieredCache(std::unique_ptr<cache::Cache> tier1,
                         std::unique_ptr<cache::Cache> tier2)
    : tier1_(std::move(tier1)), tier2_(std::move(tier2)) {
  if (!tier1_ || !tier2_) {
    throw std::invalid_argument("TieredCache: both tiers required");
  }
}

TieredCache::Where TieredCache::locate(ObjectNum object) const {
  if (tier1_->contains(object)) return Where::kTier1;
  if (tier2_->contains(object)) return Where::kTier2;
  return Where::kMiss;
}

void TieredCache::bind_observability(obs::Registry& registry, const std::string& prefix) {
  counters_ = std::make_unique<Counters>(registry, prefix);
  tier1_->bind_observability(registry, prefix + "tier1.");
  tier2_->bind_observability(registry, prefix + "tier2.");
}

void TieredCache::destage(ObjectNum object) {
  const double* stored = cost_.find(object);
  const double cost = stored == nullptr ? 0.0 : *stored;
  const auto ins = tier2_->insert(object, cost);
  if (!ins.inserted) {
    cost_.erase(object);  // zero-capacity tier 2: the object leaves entirely
    notify(object, Where::kMiss);
    if (counters_) counters_->departures.inc();
    return;
  }
  notify(object, Where::kTier2);
  if (counters_) counters_->destages.inc();
  if (ins.evicted) {
    cost_.erase(*ins.evicted);
    notify(*ins.evicted, Where::kMiss);
    if (counters_) counters_->departures.inc();
  }
}

TieredCache::Where TieredCache::access(ObjectNum object, double cost) {
  const Where where = locate(object);
  switch (where) {
    case Where::kTier1:
      cost_[object] = cost;
      tier1_->access(object, cost);
      if (counters_) counters_->tier1_hits.inc();
      break;
    case Where::kTier2: {
      if (counters_) counters_->tier2_hits.inc();
      // Promote: the proxy now serves and holds the object; its tier-1
      // evictee drops into the slot freed below.
      tier2_->erase(object);
      cost_[object] = cost;
      const auto ins = tier1_->insert(object, cost);
      if (!ins.inserted) {
        // Tier 1 declined (degenerate zero-capacity proxy): put it back.
        const auto back = tier2_->insert(object, cost);
        if (back.evicted) {
          cost_.erase(*back.evicted);
          notify(*back.evicted, Where::kMiss);
          if (counters_) counters_->departures.inc();
        }
        if (!back.inserted) {
          cost_.erase(object);
          notify(object, Where::kMiss);
          if (counters_) counters_->departures.inc();
        } else {
          notify(object, Where::kTier2);
        }
        break;
      }
      notify(object, Where::kTier1);
      if (counters_) counters_->promotions.inc();
      if (ins.evicted) destage(*ins.evicted);
      break;
    }
    case Where::kMiss:
      assert(false && "TieredCache::access: object not cached");
      break;
  }
  return where;
}

TieredCache::Where TieredCache::refresh(ObjectNum object, double cost) {
  const Where where = locate(object);
  switch (where) {
    case Where::kTier1:
      tier1_->access(object, cost);
      if (counters_) counters_->tier1_hits.inc();
      break;
    case Where::kTier2:
      tier2_->access(object, cost);
      if (counters_) counters_->tier2_hits.inc();
      break;
    case Where::kMiss:
      assert(false && "TieredCache::refresh: object not cached");
      break;
  }
  return where;
}

bool TieredCache::admit(ObjectNum object, double cost) {
  assert(!contains(object) && "TieredCache::admit: object already cached");
  const auto ins = tier1_->insert(object, cost);
  if (!ins.inserted) {
    if (counters_) counters_->declines.inc();
    return false;
  }
  cost_[object] = cost;
  notify(object, Where::kTier1);
  if (counters_) counters_->admissions.inc();
  if (ins.evicted) destage(*ins.evicted);
  return true;
}

}  // namespace webcache::sim
