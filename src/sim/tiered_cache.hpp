// Two-tier unified cache: tier 1 models the proxy cache (hits cost Tl),
// tier 2 the pooled P2P client cache (hits cost Tp2p). The *-EC upper-bound
// schemes treat a proxy and its P2P client cache as "one unified cache"
// (paper Section 2) with this structure:
//   * a miss fill is admitted into tier 1; tier 1's eviction is destaged
//     into tier 2; tier 2's eviction leaves the unified cache;
//   * a tier 2 hit promotes the object back into tier 1 (its destaged
//     evictee takes the promoted object's slot below, so occupancy is
//     conserved);
// which is exactly Hier-GD's shape with an idealized single-cache bottom
// tier — making the ideal-vs-Pastry comparison an apples-to-apples ablation.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "cache/cache.hpp"
#include "common/dense_map.hpp"
#include "obs/registry.hpp"

namespace webcache::sim {

class TieredCache {
 public:
  enum class Where { kTier1, kTier2, kMiss };

  /// Takes ownership of both tiers (either may have zero capacity).
  TieredCache(std::unique_ptr<cache::Cache> tier1, std::unique_ptr<cache::Cache> tier2);

  /// Pure lookup, no bookkeeping.
  [[nodiscard]] Where locate(ObjectNum object) const;
  [[nodiscard]] bool contains(ObjectNum object) const {
    return locate(object) != Where::kMiss;
  }

  /// Advisory prefetch of both tiers' index slots and the cost entry —
  /// everything locate/access/admit will chase for `object`.
  void prefetch(ObjectNum object) const {
    tier1_->prefetch(object);
    tier2_->prefetch(object);
    cost_.prefetch(object);
  }

  /// Serves a local request for a cached object: tier-1 hits refresh in
  /// place, tier-2 hits promote into tier 1 (destaging tier 1's evictee
  /// down). Returns where the object was found. `cost` is the object's
  /// refetch cost (greedy-dual credit).
  Where access(ObjectNum object, double cost);

  /// Serves a *remote* request (another proxy reading through us): the
  /// object is refreshed where it sits, without promotion — remote traffic
  /// should not reorganize the local hierarchy.
  Where refresh(ObjectNum object, double cost);

  /// Admits an object after a miss fill: inserts into tier 1, destages the
  /// evictee to tier 2. Returns false if the policy declined admission.
  bool admit(ObjectNum object, double cost);

  [[nodiscard]] cache::Cache& tier1() { return *tier1_; }
  [[nodiscard]] cache::Cache& tier2() { return *tier2_; }
  [[nodiscard]] const cache::Cache& tier1() const { return *tier1_; }
  [[nodiscard]] const cache::Cache& tier2() const { return *tier2_; }

  /// Forwards the dense-universe hint to both tiers and the cost index.
  void reserve_universe(std::size_t universe) {
    tier1_->reserve_universe(universe);
    tier2_->reserve_universe(universe);
    cost_.reserve(universe);
  }

  [[nodiscard]] std::size_t size() const { return tier1_->size() + tier2_->size(); }
  [[nodiscard]] std::size_t capacity() const {
    return tier1_->capacity() + tier2_->capacity();
  }

  /// Observer for membership transitions: invoked with an object's new
  /// location whenever it enters a tier, moves between tiers, or leaves the
  /// unified cache (kMiss). The simulator's cluster residency index hangs off
  /// this; lookups (locate/refresh) never fire it.
  using TransitionHook = std::function<void(ObjectNum, Where)>;
  void set_transition_hook(TransitionHook hook) { hook_ = std::move(hook); }

  /// Registers the unified-cache movement counters (`<prefix>tier1_hits`,
  /// `tier2_hits`, `promotions`, `destages`, `admissions`, `declines`,
  /// `departures`) in `registry`. Also binds both tiers' policy counters
  /// under `<prefix>tier1.` / `<prefix>tier2.`. Optional: an unbound
  /// TieredCache simply skips the accounting.
  void bind_observability(obs::Registry& registry, const std::string& prefix);

 private:
  void notify(ObjectNum object, Where now) {
    if (hook_) hook_(object, now);
  }

  struct Counters {
    Counters(obs::Registry& registry, const std::string& prefix)
        : tier1_hits(registry.counter(prefix + "tier1_hits")),
          tier2_hits(registry.counter(prefix + "tier2_hits")),
          promotions(registry.counter(prefix + "promotions")),
          destages(registry.counter(prefix + "destages")),
          admissions(registry.counter(prefix + "admissions")),
          declines(registry.counter(prefix + "declines")),
          departures(registry.counter(prefix + "departures")) {}
    obs::Counter& tier1_hits;   ///< access()/refresh() found it in tier 1
    obs::Counter& tier2_hits;   ///< access()/refresh() found it in tier 2
    obs::Counter& promotions;   ///< tier-2 hit moved the object up
    obs::Counter& destages;     ///< tier-1 evictee moved down into tier 2
    obs::Counter& admissions;   ///< miss fill accepted into tier 1
    obs::Counter& declines;     ///< miss fill rejected by the tier-1 policy
    obs::Counter& departures;   ///< object left the unified cache entirely
  };

  /// Moves tier 1's eviction victim down into tier 2.
  void destage(ObjectNum object);

  std::unique_ptr<cache::Cache> tier1_;
  std::unique_ptr<cache::Cache> tier2_;
  TransitionHook hook_;
  std::unique_ptr<Counters> counters_;  ///< null until bind_observability
  /// Refetch cost of every object currently cached — needed to credit
  /// destaged objects correctly in value-based tiers. Direct-indexed by the
  /// dense object id (grows to the largest id seen).
  DenseMap<double> cost_;
};

}  // namespace webcache::sim
