// Internal state of the intra-run sharded engine (SimConfig::sim_shards).
//
// One simulation is partitioned by CLUSTER: cluster c belongs to worker
// shard c mod S (S = min(sim_shards, num_proxies)), and request t belongs to
// cluster t mod P exactly as in the sequential engine. Each cluster owns a
// "lane": its outcome accumulators, its churn/loss substreams, its digest
// change log and the index ranges of its component instruments inside its
// shard's private registry. Cross-cluster interactions never touch another
// cluster's live state directly; they consult epoch-start cooperation
// digests and enqueue position-keyed deferred ops that the owning shard
// applies in trace order at the epoch barrier. Everything here is therefore
// a pure function of (config, trace) — never of the shard count, thread
// scheduling, or replay chunking.
//
// This header is internal to src/sim (simulator.cpp constructs the state,
// sharded_run.cpp drives it); it is not part of the public surface.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/cluster_bitset.hpp"
#include "common/stats.hpp"
#include "fault/churn_engine.hpp"
#include "fault/loss_model.hpp"
#include "net/latency_model.hpp"
#include "obs/registry.hpp"
#include "sim/simulator.hpp"

namespace webcache::sim {

/// Digest refresh period used when SimConfig::shard_epoch is 0.
inline constexpr std::uint64_t kDefaultShardEpoch = 8192;

struct Simulator::ShardedState {
  /// Which cooperation digest a residency delta targets. Meanings per scheme
  /// mirror the sequential residency index (res_primary_/res_secondary_);
  /// kDir is Hier-GD's advertised-directory digest (one bit per cluster
  /// whose lookup directory registered the object).
  enum class DigestArray : std::uint8_t { kPrimary, kSecondary, kDir };

  struct DigestDelta {
    ObjectNum object = 0;
    DigestArray array = DigestArray::kPrimary;
    bool present = false;
  };

  /// Cross-cluster interactions, enqueued during phase 1 and applied by the
  /// target cluster's shard in trace-position order during phase 2a.
  /// kProxyAccess/kTieredRefresh/kGdAccess are fire-and-forget refreshes of
  /// the advertised copy; kPushFetch additionally carries the requester's
  /// in-flight accounting and receives its outcome (phase 2b completes the
  /// request on the requester's shard).
  enum class OpKind : std::uint8_t { kProxyAccess, kTieredRefresh, kGdAccess, kPushFetch };

  struct DeferredOp {
    std::uint64_t pos = 0;       ///< trace position (globally unique -> total order)
    ObjectNum object = 0;
    std::uint32_t source = 0;    ///< requesting cluster
    std::uint32_t target = 0;    ///< cluster whose state the op touches
    OpKind kind = OpKind::kProxyAccess;
    ClientNum raw_client = 0;    ///< kPushFetch: the request's raw client id
    double waste = 0.0;          ///< kPushFetch: requester waste so far
    double loss_waste = 0.0;     ///< kPushFetch: requester loss penalties so far
    double hop_latency = 0.0;    ///< kPushFetch: requester hop charges so far
    bool hit = false;            ///< kPushFetch outcome (written in phase 2a)
    unsigned hops = 0;           ///< kPushFetch outcome (written in phase 2a)
  };

  /// Per-CLUSTER accumulation lane. Only the owning shard writes a lane
  /// during a phase (phase 2a writes the TARGET cluster's lane, which the
  /// target's shard owns), so lanes need no synchronization beyond the
  /// epoch barriers; the alignment keeps neighbouring lanes off one cache
  /// line. The fold replays lanes into the canonical instruments in
  /// cluster-ascending order.
  struct alignas(64) Lane {
    explicit Lane(const net::LatencyModel& latencies)
        // Same shapes as Simulator::Instruments' histograms so the merge is
        // bucket-exact.
        : latency_hist(0.0, 4.0 * latencies.server(), 40), hops_hist(0.0, 16.0, 16) {}

    // sim.* outcome counters
    std::uint64_t requests = 0;
    std::uint64_t hits_browser = 0;
    std::uint64_t hits_local_proxy = 0;
    std::uint64_t hits_local_p2p = 0;
    std::uint64_t hits_remote_proxy = 0;
    std::uint64_t hits_remote_p2p = 0;
    std::uint64_t server_fetches = 0;
    // fault.* counters
    std::uint64_t fault_crashes = 0;
    std::uint64_t fault_rejoins = 0;
    std::uint64_t fault_joins = 0;
    std::uint64_t fault_repairs = 0;
    std::uint64_t fault_objects_lost = 0;
    double total_latency = 0.0;
    double wasted_p2p_latency = 0.0;
    double hop_latency_total = 0.0;
    RunningStat p2p_hops;
    Histogram latency_hist;
    Histogram hops_hist;
    // Simulator-level protocol messages (net.*) attributed to this cluster
    // (hop observations and push/destage bookkeeping land on the REQUESTING
    // or destaging cluster, exactly where the sequential engine counts them).
    std::uint64_t destage_piggybacked = 0;
    std::uint64_t destage_bytes = 0;
    std::uint64_t directory_adds = 0;
    std::uint64_t directory_removes = 0;
    std::uint64_t push_requests = 0;
    std::uint64_t push_transfers = 0;
    std::uint64_t directory_true_positives = 0;
    std::uint64_t directory_false_positives = 0;
    std::uint64_t p2p_messages_lost = 0;
    std::uint64_t p2p_retries = 0;
    /// This cluster's slice of the globally sorted churn schedule.
    fault::ChurnEngine churn;
    /// Per-(seed, cluster) loss substream, so loss draws are a function of
    /// the cluster's own transfer sequence only.
    fault::LossModel loss;
    /// Digest changes this cluster produced this epoch; applied to the
    /// shared digests single-threaded at the epoch barrier.
    std::vector<DigestDelta> log;
    /// Instrument index ranges of this cluster's components inside its shard
    /// registry: counters [c0,c1), gauges [g0,g1), stats [s0,s1), histograms
    /// [h0,h1). The fold walks them cluster-ascending to reproduce the
    /// sequential constructor's registration order byte-for-byte.
    std::size_t c0 = 0, c1 = 0;
    std::size_t g0 = 0, g1 = 0;
    std::size_t s0 = 0, s1 = 0;
    std::size_t h0 = 0, h1 = 0;
  };

  unsigned shards = 1;  ///< effective worker count = min(sim_shards, num_proxies)
  std::uint64_t epoch_len = kDefaultShardEpoch;
  /// Private per-shard registries; cluster c's components bind into
  /// shard_registries[c % shards], so no registry is shared across threads.
  std::vector<std::unique_ptr<obs::Registry>> shard_registries;
  std::vector<Lane> lanes;                      ///< one per cluster
  std::vector<std::vector<DeferredOp>> outbox;  ///< one per shard, position-ordered
  // Epoch-start cooperation digests: bit c of digest_*[o] means cluster c
  // advertised object o at the top of the epoch. Same per-scheme meaning as
  // the sequential residency index; digest_dir is the exact set of keys each
  // Hier-GD directory registered (Bloom false positives still apply to LOCAL
  // directory lookups — the digest gates only cross-cluster decisions).
  // Fixed 256-bit ClusterBitsets, so cooperative sharded runs scale to 256
  // clusters (sharding_supported gates on ClusterBitset::kMaxClusters).
  std::vector<ClusterBitset> digest_primary;
  std::vector<ClusterBitset> digest_secondary;
  std::vector<ClusterBitset> digest_dir;
  bool use_primary = false;
  bool use_secondary = false;
  bool use_dir = false;
};

}  // namespace webcache::sim
