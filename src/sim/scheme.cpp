#include "sim/scheme.hpp"

namespace webcache::sim {

std::string_view to_string(Scheme scheme) {
  switch (scheme) {
    case Scheme::kNC: return "NC";
    case Scheme::kSC: return "SC";
    case Scheme::kFC: return "FC";
    case Scheme::kNC_EC: return "NC-EC";
    case Scheme::kSC_EC: return "SC-EC";
    case Scheme::kFC_EC: return "FC-EC";
    case Scheme::kHierGD: return "Hier-GD";
    case Scheme::kSquirrel: return "Squirrel";
  }
  return "?";
}

std::optional<Scheme> scheme_from_string(std::string_view name) {
  for (const auto s : kAllSchemes) {
    if (to_string(s) == name) return s;
  }
  if (to_string(Scheme::kSquirrel) == name) return Scheme::kSquirrel;
  return std::nullopt;
}

}  // namespace webcache::sim
