// The intra-run sharded engine (SimConfig::sim_shards >= 1).
//
// The trace is replayed in epochs of SimConfig::shard_epoch positions, each
// epoch in three phases separated by barriers:
//
//   phase 1   Every shard walks the epoch's positions and processes the
//             requests of its own clusters (cluster = t mod P, shard =
//             cluster mod S) against live local state. Cross-cluster
//             decisions — which remote proxy to read through, which cluster
//             to push from — consult the EPOCH-START cooperation digests,
//             never another cluster's live state. Interactions that touch a
//             remote cluster become DeferredOps in the shard's outbox;
//             everything else completes inline.
//   phase 2a  Every shard gathers the ops targeting its own clusters from
//             all outboxes, sorts them by trace position (positions are
//             unique: at most one op per request) and applies them in order
//             against its clusters' live state, advancing the target's
//             churn substream to each op's position first. Push-fetch ops
//             get their outcome ({hit, hops}) written back into the op.
//   phase 2b  Every shard walks its own outbox in order and completes the
//             deferred-outcome requests (Hier-GD pushes): accounting, the
//             local admit + destage chain, and the browser fill.
//   flush     Single-threaded at the barrier: the per-cluster digest change
//             logs apply to the shared digests in cluster-ascending order,
//             outboxes clear, and the consumed trace prefix is released.
//
// Every decision depends only on (config, trace) — the shard count S fixes
// the cluster->thread map but never the outcome, so exports are
// byte-identical for any sim_shards >= 1. The cooperative numbers differ in
// detail from the sequential engine (digest staleness bounded by one epoch,
// mirroring the periodic digest exchange of real cooperative caches); the
// determinism contract is documented in README "Sharded runs".
#include <algorithm>
#include <atomic>
#include <barrier>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/cluster_bitset.hpp"
#include "common/prefetch.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"
#include "sim/step_pipeline.hpp"

namespace webcache::sim {

using net::ServedFrom;

struct ShardedRunEngine {
  using St = Simulator::ShardedState;
  using Lane = St::Lane;
  using DA = St::DigestArray;

  Simulator& sim;
  St& st;
  const unsigned P;
  const unsigned S;
  const std::uint64_t total;
  /// One pipeline per shard (drive_filtered reuses a scratch batch buffer;
  /// each worker thread owns exactly its shard's instance).
  std::vector<StepPipeline> pipelines;

  explicit ShardedRunEngine(Simulator& simulator)
      : sim(simulator),
        st(*simulator.sharded_),
        P(simulator.config_.num_proxies),
        S(st.shards),
        total(simulator.source_->size()),
        pipelines(st.shards, StepPipeline(simulator.pipeline_window_)) {}

  [[nodiscard]] const ClusterBitset& mask_of(const std::vector<ClusterBitset>& digest,
                                             ObjectNum object) const {
    static constexpr ClusterBitset kEmpty{};
    return object < digest.size() ? digest[object] : kEmpty;
  }

  void log_digest(Lane& lane, ObjectNum object, DA array, bool present) const {
    lane.log.push_back({object, array, present});
  }

  // --- per-lane accounting ---------------------------------------------------

  static void account(Lane& lane, ServedFrom where, double latency, double wasted,
                      double hop) {
    ++lane.requests;
    switch (where) {
      case ServedFrom::kBrowser: ++lane.hits_browser; break;
      case ServedFrom::kLocalProxy: ++lane.hits_local_proxy; break;
      case ServedFrom::kLocalP2P: ++lane.hits_local_p2p; break;
      case ServedFrom::kRemoteProxy: ++lane.hits_remote_proxy; break;
      case ServedFrom::kRemoteP2P: ++lane.hits_remote_p2p; break;
      case ServedFrom::kOriginServer: ++lane.server_fetches; break;
    }
    lane.total_latency += latency;
    lane.wasted_p2p_latency += wasted;
    lane.hop_latency_total += hop;
    lane.latency_hist.add(latency);
  }

  /// One loss draw from the CLUSTER's substream; the penalty accumulates in
  /// the request-local `loss_waste` the caller folds into its accounting.
  void maybe_lose(Lane& lane, double& loss_waste) const {
    if (!lane.loss.enabled()) return;
    if (lane.loss.lose_message()) {
      ++lane.p2p_messages_lost;
      ++lane.p2p_retries;
      loss_waste += sim.config_.latencies.loss_retry_penalty();
    }
  }

  /// Simulator::apply_churn, accumulating into the cluster's lane.
  void apply_churn(unsigned cluster, const fault::ChurnEvent& event) const {
    Simulator::Proxy& proxy = sim.proxies_[cluster];
    Lane& lane = st.lanes[cluster];
    switch (event.action) {
      case fault::ChurnAction::kCrash: {
        const ClientNum target = event.client % proxy.p2p->cluster_size();
        if (!proxy.p2p->client_alive(target)) break;
        if (proxy.p2p->alive_clients() <= 1) break;
        const auto lost = proxy.p2p->fail_client(target);
        ++lane.fault_crashes;
        lane.fault_objects_lost += lost.size();
        break;
      }
      case fault::ChurnAction::kRejoin: {
        const ClientNum target = event.client % proxy.p2p->cluster_size();
        if (proxy.p2p->revive_client(target)) ++lane.fault_rejoins;
        break;
      }
      case fault::ChurnAction::kJoin:
        (void)proxy.p2p->add_client();
        ++lane.fault_joins;
        break;
      case fault::ChurnAction::kRepair:
        proxy.p2p->repair();
        ++lane.fault_repairs;
        break;
    }
  }

  /// Lazily advances a cluster's churn substream to `now`. Called before
  /// every touch of the cluster's state (own requests in phase 1, inbound
  /// ops in phase 2a), which makes lazy dispatch equivalent to the
  /// sequential engine's eager per-position dispatch: every state read
  /// happens at a touch. The cursor is monotone, so re-advancing to an
  /// earlier position is a no-op.
  void advance_churn(unsigned cluster, std::uint64_t now) const {
    st.lanes[cluster].churn.advance(
        now, [this, cluster](const fault::ChurnEvent& e) { apply_churn(cluster, e); });
  }

  /// Simulator::client_of against a raw client id (phase 2a/2b resolve the
  /// target-side and requester-side clients at apply time, so the choice
  /// reflects the cluster's own churn position — deterministically).
  [[nodiscard]] ClientNum resolve_client(ClientNum raw,
                                         const Simulator::Proxy& proxy) const {
    ClientNum c = raw % sim.config_.clients_per_cluster;
    if (proxy.p2p && !proxy.p2p->client_alive(c)) {
      for (ClientNum step = 1; step < sim.config_.clients_per_cluster; ++step) {
        const ClientNum candidate = (c + step) % sim.config_.clients_per_cluster;
        if (proxy.p2p->client_alive(candidate)) return candidate;
      }
      throw std::runtime_error("Simulator: all clients of a cluster have failed");
    }
    return c;
  }

  // --- browser front end -----------------------------------------------------

  bool browser_lookup(Lane& lane, const Request& request, unsigned cluster) const {
    Simulator::Proxy& proxy = sim.proxies_[cluster];
    if (proxy.browsers.empty()) return false;
    auto& browser = *proxy.browsers[request.client % sim.config_.clients_per_cluster];
    if (!browser.contains(request.object)) return false;
    browser.access(request.object, 0.0);
    account(lane, ServedFrom::kBrowser,
            sim.config_.latencies.request_latency(ServedFrom::kBrowser), 0.0, 0.0);
    return true;
  }

  void browser_fill(unsigned cluster, ClientNum raw_client, ObjectNum object) const {
    Simulator::Proxy& proxy = sim.proxies_[cluster];
    if (proxy.browsers.empty()) return;
    auto& browser = *proxy.browsers[raw_client % sim.config_.clients_per_cluster];
    if (!browser.contains(object)) browser.insert(object, 0.0);
  }

  // --- per-scheme steps ------------------------------------------------------

  /// Returns true when the request completed inline; false when a deferred
  /// op (Hier-GD push) carries its completion into phase 2b.
  bool step(std::uint64_t t, const Request& request, unsigned cluster, unsigned shard) {
    switch (sim.config_.scheme) {
      case Scheme::kNC:
      case Scheme::kSC:
        step_basic(t, request, cluster, shard);
        return true;
      case Scheme::kNC_EC:
      case Scheme::kSC_EC:
        step_tiered(t, request, cluster, shard);
        return true;
      case Scheme::kHierGD:
        return step_hier_gd(t, request, cluster, shard);
      case Scheme::kSquirrel:
        step_squirrel(request, cluster);
        return true;
      case Scheme::kFC:
      case Scheme::kFC_EC:
        break;  // unreachable: sharding_supported() keeps these sequential
    }
    return true;
  }

  void step_basic(std::uint64_t t, const Request& request, unsigned cluster,
                  unsigned shard) {
    Simulator::Proxy& local = sim.proxies_[cluster];
    Lane& lane = st.lanes[cluster];
    const ObjectNum object = request.object;
    const auto& lat = sim.config_.latencies;
    const double refetch = lat.fetch_cost(ServedFrom::kOriginServer);

    if (local.cache->contains(object)) {
      local.cache->access(object, refetch);
      account(lane, ServedFrom::kLocalProxy,
              lat.request_latency(ServedFrom::kLocalProxy), 0.0, 0.0);
      return;
    }

    ServedFrom served = ServedFrom::kOriginServer;
    if (sim.config_.scheme == Scheme::kSC) {
      const int holder = first_holder_in_ring(mask_of(st.digest_primary, object), cluster);
      if (holder >= 0) {
        St::DeferredOp op;
        op.pos = t;
        op.object = object;
        op.source = cluster;
        op.target = static_cast<std::uint32_t>(holder);
        op.kind = St::OpKind::kProxyAccess;
        st.outbox[shard].push_back(op);
        served = ServedFrom::kRemoteProxy;
      }
    }

    const auto ins = local.cache->insert(object, lat.fetch_cost(served));
    if (st.use_primary && ins.inserted) {
      log_digest(lane, object, DA::kPrimary, true);
      if (ins.evicted) log_digest(lane, *ins.evicted, DA::kPrimary, false);
    }
    account(lane, served, lat.request_latency(served), 0.0, 0.0);
  }

  void step_tiered(std::uint64_t t, const Request& request, unsigned cluster,
                   unsigned shard) {
    Simulator::Proxy& local = sim.proxies_[cluster];
    Lane& lane = st.lanes[cluster];
    const ObjectNum object = request.object;
    const auto& lat = sim.config_.latencies;
    const double refetch = lat.fetch_cost(ServedFrom::kOriginServer);

    const auto where = local.tiered->locate(object);
    if (where != TieredCache::Where::kMiss) {
      local.tiered->access(object, refetch);
      const ServedFrom from = where == TieredCache::Where::kTier1
                                  ? ServedFrom::kLocalProxy
                                  : ServedFrom::kLocalP2P;
      account(lane, from, lat.request_latency(from), 0.0, 0.0);
      return;
    }

    ServedFrom served = ServedFrom::kOriginServer;
    if (sim.config_.scheme == Scheme::kSC_EC) {
      // Prefer an advertised remote tier-1 copy (Tc) over a tier-2 push
      // (Tc + Tp2p); either way the remote cluster refreshes the copy in
      // place when the op applies (membership never changes remotely).
      const int t1 = first_holder_in_ring(mask_of(st.digest_primary, object), cluster);
      int target = t1;
      if (t1 >= 0) {
        served = ServedFrom::kRemoteProxy;
      } else {
        const int t2 = first_holder_in_ring(mask_of(st.digest_secondary, object), cluster);
        if (t2 >= 0) {
          target = t2;
          served = ServedFrom::kRemoteP2P;
          ++lane.push_requests;
          ++lane.push_transfers;
        }
      }
      if (target >= 0) {
        St::DeferredOp op;
        op.pos = t;
        op.object = object;
        op.source = cluster;
        op.target = static_cast<std::uint32_t>(target);
        op.kind = St::OpKind::kTieredRefresh;
        st.outbox[shard].push_back(op);
      }
    }

    local.tiered->admit(object, lat.fetch_cost(served));  // transition hook logs
    account(lane, served, lat.request_latency(served), 0.0, 0.0);
  }

  void destage(unsigned cluster, ObjectNum victim, ClientNum via_client,
               double& loss_waste) const {
    Simulator::Proxy& proxy = sim.proxies_[cluster];
    Lane& lane = st.lanes[cluster];
    const auto& lat = sim.config_.latencies;
    ++lane.destage_piggybacked;
    ++lane.destage_bytes;

    const double* stored = proxy.fetch_cost.find(victim);
    const double credit =
        stored != nullptr ? *stored : lat.fetch_cost(ServedFrom::kOriginServer);
    maybe_lose(lane, loss_waste);
    const auto outcome = proxy.p2p->store(victim, credit, via_client);
    lane.p2p_hops.add(static_cast<double>(outcome.hops));
    lane.hops_hist.add(static_cast<double>(outcome.hops));

    if (outcome.stored && !outcome.already_present) {
      proxy.dir->add(victim);
      ++lane.directory_adds;
      log_digest(lane, victim, DA::kDir, true);
    }
    if (outcome.displaced) {
      proxy.dir->remove(*outcome.displaced);
      ++lane.directory_removes;
      log_digest(lane, *outcome.displaced, DA::kDir, false);
    }
  }

  void admit(unsigned cluster, ObjectNum object, double cost, ClientNum via_client,
             double& loss_waste) const {
    Simulator::Proxy& proxy = sim.proxies_[cluster];
    Lane& lane = st.lanes[cluster];
    // A push fetch deferred to phase 2b can race a later same-epoch request
    // that admitted the object inline (local P2P hit); sequentially the push
    // completes first and that later request is a plain hit. Honour the cache
    // contract (insert() is only for uncached objects) by refreshing instead.
    if (proxy.gd->contains(object)) {
      const double* stored = proxy.fetch_cost.find(object);
      proxy.gd->access(object, stored != nullptr ? *stored : cost);
      return;
    }
    proxy.fetch_cost[object] = cost;
    const auto ins = proxy.gd->insert(object, cost);
    if (ins.inserted) {
      log_digest(lane, object, DA::kPrimary, true);
      if (ins.evicted) log_digest(lane, *ins.evicted, DA::kPrimary, false);
    }
    if (ins.inserted && ins.evicted) {
      destage(cluster, *ins.evicted, via_client, loss_waste);
    }
  }

  bool step_hier_gd(std::uint64_t t, const Request& request, unsigned cluster,
                    unsigned shard) {
    Simulator::Proxy& local = sim.proxies_[cluster];
    Lane& lane = st.lanes[cluster];
    const ObjectNum object = request.object;
    const auto& lat = sim.config_.latencies;
    const ClientNum client = resolve_client(request.client, local);

    if (local.gd->contains(object)) {
      const double* stored = local.fetch_cost.find(object);
      local.gd->access(object, stored != nullptr
                                   ? *stored
                                   : lat.fetch_cost(ServedFrom::kOriginServer));
      account(lane, ServedFrom::kLocalProxy,
              lat.request_latency(ServedFrom::kLocalProxy), 0.0, 0.0);
      return true;
    }

    double waste = 0.0;
    double loss_waste = 0.0;
    double hop_latency = 0.0;

    // Local P2P client cache, gated by the LOCAL lookup directory (live; a
    // Bloom directory's false positives apply here exactly as sequentially).
    if (local.dir->may_contain(object)) {
      maybe_lose(lane, loss_waste);
      const auto fetched = local.p2p->fetch(object, client, /*remove_on_hit=*/true);
      lane.p2p_hops.add(static_cast<double>(fetched.hops));
      lane.hops_hist.add(static_cast<double>(fetched.hops));
      hop_latency += sim.config_.p2p_hop_latency * fetched.hops;
      if (fetched.hit) {
        ++lane.directory_true_positives;
        local.dir->remove(object);
        ++lane.directory_removes;
        log_digest(lane, object, DA::kDir, false);
        admit(cluster, object, lat.fetch_cost(ServedFrom::kLocalP2P), client, loss_waste);
        account(lane, ServedFrom::kLocalP2P,
                lat.request_latency(ServedFrom::kLocalP2P) + hop_latency + loss_waste,
                loss_waste, hop_latency);
        return true;
      }
      ++lane.directory_false_positives;
      waste += lat.p2p_fetch();
      if (sim.config_.directory == DirectoryKind::kExact) {
        local.dir->remove(object);
        log_digest(lane, object, DA::kDir, false);
      }
    }

    // Cooperating clusters, via the epoch-start digests: advertised proxy
    // copies first (cheaper), then the push protocol against the first
    // cluster whose directory advertised the object.
    ServedFrom served = ServedFrom::kOriginServer;
    const int holder = first_holder_in_ring(mask_of(st.digest_primary, object), cluster);
    if (holder >= 0) {
      St::DeferredOp op;
      op.pos = t;
      op.object = object;
      op.source = cluster;
      op.target = static_cast<std::uint32_t>(holder);
      op.kind = St::OpKind::kGdAccess;
      st.outbox[shard].push_back(op);
      served = ServedFrom::kRemoteProxy;
    } else {
      const int push_to = first_holder_in_ring(mask_of(st.digest_dir, object), cluster);
      if (push_to >= 0) {
        ++lane.push_requests;
        maybe_lose(lane, loss_waste);
        St::DeferredOp op;
        op.pos = t;
        op.object = object;
        op.source = cluster;
        op.target = static_cast<std::uint32_t>(push_to);
        op.kind = St::OpKind::kPushFetch;
        op.raw_client = request.client;
        op.waste = waste;
        op.loss_waste = loss_waste;
        op.hop_latency = hop_latency;
        st.outbox[shard].push_back(op);
        return false;  // phase 2b completes the request
      }
    }

    admit(cluster, object, lat.fetch_cost(served), client, loss_waste);
    account(lane, served,
            lat.request_latency(served) + waste + hop_latency + loss_waste,
            waste + loss_waste, hop_latency);
    return true;
  }

  void step_squirrel(const Request& request, unsigned cluster) const {
    Simulator::Proxy& org = sim.proxies_[cluster];
    Lane& lane = st.lanes[cluster];
    const ObjectNum object = request.object;
    const auto& lat = sim.config_.latencies;
    const ClientNum client = resolve_client(request.client, org);

    double loss_waste = 0.0;
    maybe_lose(lane, loss_waste);
    const auto fetched = org.p2p->fetch(object, client, /*remove_on_hit=*/false);
    lane.p2p_hops.add(static_cast<double>(fetched.hops));
    lane.hops_hist.add(static_cast<double>(fetched.hops));
    const double hop_latency = sim.config_.p2p_hop_latency * fetched.hops;

    if (fetched.hit) {
      account(lane, ServedFrom::kLocalP2P, lat.p2p_fetch() + hop_latency + loss_waste,
              loss_waste, hop_latency);
      return;
    }
    maybe_lose(lane, loss_waste);  // the home-store leg may also time out
    account(lane, ServedFrom::kOriginServer,
            lat.p2p_fetch() + lat.server() + hop_latency + loss_waste, loss_waste,
            hop_latency);
    (void)org.p2p->store(object, lat.fetch_cost(ServedFrom::kOriginServer), client);
  }

  // --- phases ----------------------------------------------------------------

  void phase1(unsigned shard, std::uint64_t base, std::uint64_t end) {
    const std::size_t chunk = sim.config_.replay_chunk > 0
                                  ? sim.config_.replay_chunk
                                  : workload::default_replay_chunk();
    std::uint64_t pos = base;
    while (pos < end) {
      const std::size_t want = static_cast<std::size_t>(
          std::min<std::uint64_t>(end - pos, static_cast<std::uint64_t>(chunk)));
      const auto win = sim.source_->window(pos, want);
      if (win.empty()) break;  // defensive: a well-formed source never starves
      // Pipeline this shard's slice of the chunk: batch the positions it
      // owns, prefetch their digest words and local index slots, then
      // execute in the same order the plain loop would.
      pipelines[shard].drive_filtered(
          win, pos,
          [&](std::uint64_t t) { return static_cast<unsigned>(t % P) % S == shard; },
          [&](const Request& request, std::uint64_t t) {
            const ObjectNum object = request.object;
            if (st.use_primary && object < st.digest_primary.size()) {
              WEBCACHE_PREFETCH(&st.digest_primary[object]);
            }
            if (st.use_secondary && object < st.digest_secondary.size()) {
              WEBCACHE_PREFETCH(&st.digest_secondary[object]);
            }
            if (st.use_dir && object < st.digest_dir.size()) {
              WEBCACHE_PREFETCH(&st.digest_dir[object]);
            }
            sim.prefetch_request(request, static_cast<unsigned>(t % P));
          },
          [&](const Request& request, std::uint64_t t) {
            const auto cluster = static_cast<unsigned>(t % P);
            Lane& lane = st.lanes[cluster];
            advance_churn(cluster, t);
            if (browser_lookup(lane, request, cluster)) return;
            if (step(t, request, cluster, shard)) {
              browser_fill(cluster, request.client, request.object);
            }
          });
      pos += win.size();
    }
  }

  void phase2a(unsigned shard) {
    std::vector<St::DeferredOp*> inbound;
    for (auto& box : st.outbox) {
      for (auto& op : box) {
        if (op.target % S == shard) inbound.push_back(&op);
      }
    }
    // Trace positions are unique (at most one deferred op per request), so
    // the position sort is a total order independent of which outbox an op
    // came from.
    std::sort(inbound.begin(), inbound.end(),
              [](const St::DeferredOp* a, const St::DeferredOp* b) {
                return a->pos < b->pos;
              });

    const auto& lat = sim.config_.latencies;
    const double refetch = lat.fetch_cost(ServedFrom::kOriginServer);
    for (St::DeferredOp* op : inbound) {
      const unsigned target = op->target;
      advance_churn(target, op->pos);
      Simulator::Proxy& remote = sim.proxies_[target];
      Lane& lane = st.lanes[target];
      switch (op->kind) {
        case St::OpKind::kProxyAccess:
          // The advertised copy may have been evicted mid-epoch; the refresh
          // is then a no-op (the requester's outcome stands — it read the
          // epoch-start advertisement).
          if (remote.cache->contains(op->object)) remote.cache->access(op->object, refetch);
          break;
        case St::OpKind::kTieredRefresh:
          if (remote.tiered->locate(op->object) != TieredCache::Where::kMiss) {
            remote.tiered->refresh(op->object, refetch);
          }
          break;
        case St::OpKind::kGdAccess:
          if (remote.gd->contains(op->object)) {
            const double* stored = remote.fetch_cost.find(op->object);
            remote.gd->access(op->object, stored != nullptr ? *stored : refetch);
          }
          break;
        case St::OpKind::kPushFetch: {
          const ClientNum push_client = resolve_client(op->raw_client, remote);
          const auto fetched =
              remote.p2p->fetch(op->object, push_client, /*remove_on_hit=*/false);
          op->hit = fetched.hit;
          op->hops = fetched.hops;
          if (!fetched.hit && sim.config_.directory == DirectoryKind::kExact) {
            remote.dir->remove(op->object);
            log_digest(lane, op->object, DA::kDir, false);
          }
          break;
        }
      }
    }
  }

  void phase2b(unsigned shard) {
    const auto& lat = sim.config_.latencies;
    for (St::DeferredOp& op : st.outbox[shard]) {
      if (op.kind != St::OpKind::kPushFetch) continue;
      const unsigned cluster = op.source;
      Simulator::Proxy& local = sim.proxies_[cluster];
      Lane& lane = st.lanes[cluster];

      double waste = op.waste;
      double loss_waste = op.loss_waste;
      double hop_latency = op.hop_latency + sim.config_.p2p_hop_latency * op.hops;
      lane.p2p_hops.add(static_cast<double>(op.hops));
      lane.hops_hist.add(static_cast<double>(op.hops));

      ServedFrom served = ServedFrom::kOriginServer;
      if (op.hit) {
        ++lane.push_transfers;
        ++lane.directory_true_positives;
        served = ServedFrom::kRemoteP2P;
      } else {
        ++lane.directory_false_positives;
        waste += lat.proxy_to_proxy() + lat.p2p_fetch();
      }

      const ClientNum client = resolve_client(op.raw_client, local);
      admit(cluster, op.object, lat.fetch_cost(served), client, loss_waste);
      account(lane, served,
              lat.request_latency(served) + waste + hop_latency + loss_waste,
              waste + loss_waste, hop_latency);
      // The deferred request's browser fill lands at completion time.
      browser_fill(cluster, op.raw_client, op.object);
    }
  }

  /// Epoch-end flush, single-threaded at the barrier: digest change logs
  /// apply in cluster-ascending order, outboxes clear, the consumed trace
  /// prefix is released.
  void flush_epoch(std::uint64_t epoch_end) noexcept {
    for (unsigned c = 0; c < P; ++c) {
      Lane& lane = st.lanes[c];
      for (const auto& delta : lane.log) {
        std::vector<ClusterBitset>& digest = delta.array == DA::kPrimary
                                                 ? st.digest_primary
                                                 : delta.array == DA::kSecondary
                                                       ? st.digest_secondary
                                                       : st.digest_dir;
        if (delta.object >= digest.size()) continue;  // defensive; sized to universe
        if (delta.present) {
          digest[delta.object].set(c);
        } else {
          digest[delta.object].reset(c);
        }
      }
      lane.log.clear();
    }
    for (auto& box : st.outbox) box.clear();
    sim.source_->discard_consumed(epoch_end);
  }
};

Metrics Simulator::run_sharded() {
  ShardedRunEngine engine(*this);
  ShardedState& st = *sharded_;
  const std::uint64_t total = source_->size();
  const unsigned S = st.shards;

  if (total > 0) {
    std::mutex error_mutex;
    std::exception_ptr first_error;
    std::atomic<bool> abort{false};

    // One barrier object cycles through the three per-epoch phases; the
    // completion step (exclusive by the barrier contract) flushes digests
    // and advances the epoch after phase 2b.
    std::uint64_t flushed = 0;
    int stage = 0;
    auto on_complete = [&]() noexcept {
      stage = (stage + 1) % 3;
      if (stage != 0) return;
      const std::uint64_t end = std::min(flushed + st.epoch_len, total);
      engine.flush_epoch(end);
      flushed = end;
    };
    std::barrier sync(static_cast<std::ptrdiff_t>(S), on_complete);

    const auto worker = [&](unsigned shard) {
      // An exception in any phase aborts the useful work but every thread
      // keeps arriving at the barriers (loop counts are identical across
      // shards), so nobody deadlocks; the first error rethrows after join.
      const auto guarded = [&](auto&& phase_fn) {
        if (abort.load(std::memory_order_relaxed)) return;
        try {
          phase_fn();
        } catch (...) {
          abort.store(true, std::memory_order_relaxed);
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      };
      for (std::uint64_t base = 0; base < total;) {
        const std::uint64_t end = std::min(base + st.epoch_len, total);
        guarded([&] { engine.phase1(shard, base, end); });
        sync.arrive_and_wait();
        guarded([&] { engine.phase2a(shard); });
        sync.arrive_and_wait();
        guarded([&] { engine.phase2b(shard); });
        sync.arrive_and_wait();
        base = end;
      }
    };

    if (S == 1) {
      worker(0);
    } else {
      std::vector<std::thread> threads;
      threads.reserve(S);
      for (unsigned s = 0; s < S; ++s) threads.emplace_back(worker, s);
      for (auto& thread : threads) thread.join();
    }
    if (first_error) std::rethrow_exception(first_error);

    // Fault-counter parity with the sequential engine: events scheduled after
    // a cluster's last touch still fire by end of run.
    for (unsigned c = 0; c < engine.P; ++c) engine.advance_churn(c, total - 1);
  }

  sharded_fold();
  return metrics_view();
}

void Simulator::sharded_fold() {
  ShardedState& st = *sharded_;
  // Lane accumulators -> the canonical instruments, cluster-ascending, so the
  // floating-point merge order is a pure function of the configuration.
  for (unsigned c = 0; c < config_.num_proxies; ++c) {
    const ShardedState::Lane& lane = st.lanes[c];
    inst_.requests.inc(lane.requests);
    inst_.hits_browser.inc(lane.hits_browser);
    inst_.hits_local_proxy.inc(lane.hits_local_proxy);
    inst_.hits_local_p2p.inc(lane.hits_local_p2p);
    inst_.hits_remote_proxy.inc(lane.hits_remote_proxy);
    inst_.hits_remote_p2p.inc(lane.hits_remote_p2p);
    inst_.server_fetches.inc(lane.server_fetches);
    inst_.fault_crashes.inc(lane.fault_crashes);
    inst_.fault_rejoins.inc(lane.fault_rejoins);
    inst_.fault_joins.inc(lane.fault_joins);
    inst_.fault_repairs.inc(lane.fault_repairs);
    inst_.fault_objects_lost.inc(lane.fault_objects_lost);
    inst_.total_latency.add(lane.total_latency);
    inst_.wasted_p2p_latency.add(lane.wasted_p2p_latency);
    inst_.p2p_hop_latency_total.add(lane.hop_latency_total);
    inst_.p2p_hops.merge(lane.p2p_hops);
    inst_.latency_hist.merge(lane.latency_hist);
    inst_.hops_hist.merge(lane.hops_hist);
    msg_.destage_piggybacked.inc(lane.destage_piggybacked);
    msg_.destage_bytes.inc(lane.destage_bytes);
    msg_.directory_adds.inc(lane.directory_adds);
    msg_.directory_removes.inc(lane.directory_removes);
    msg_.push_requests.inc(lane.push_requests);
    msg_.push_transfers.inc(lane.push_transfers);
    msg_.directory_true_positives.inc(lane.directory_true_positives);
    msg_.directory_false_positives.inc(lane.directory_false_positives);
    msg_.p2p_messages_lost.inc(lane.p2p_messages_lost);
    msg_.p2p_retries.inc(lane.p2p_retries);
  }
  // Per-cluster component instruments: replay each cluster's index range of
  // its shard registry into the canonical registry, cluster-ascending — the
  // exact registration order the sequential constructor produces, so JSON/CSV
  // exports are byte-identical for any shard count.
  for (unsigned c = 0; c < config_.num_proxies; ++c) {
    const ShardedState::Lane& lane = st.lanes[c];
    const obs::Registry& reg = *st.shard_registries[c % st.shards];
    for (std::size_t i = lane.c0; i < lane.c1; ++i) {
      const std::string& name = reg.counter_names()[i];
      registry_->counter(name).inc(reg.counter_value(name));
    }
    for (std::size_t i = lane.g0; i < lane.g1; ++i) {
      const std::string& name = reg.gauge_names()[i];
      registry_->gauge(name).add(reg.gauge_value(name));
    }
    for (std::size_t i = lane.s0; i < lane.s1; ++i) {
      const std::string& name = reg.stat_names()[i];
      registry_->stat(name).merge(*reg.find_stat(name));
    }
    for (std::size_t i = lane.h0; i < lane.h1; ++i) {
      const std::string& name = reg.histogram_names()[i];
      const Histogram* hist = reg.find_histogram(name);
      registry_->histogram(name, hist->lo(), hist->hi(), hist->buckets()).merge(*hist);
    }
  }
}

}  // namespace webcache::sim
