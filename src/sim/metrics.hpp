// Simulation metrics: where requests were served from, the latency they
// observed, protocol message counts, and the paper's headline metric —
// latency gain relative to NC.
//
// Since the observability refactor this struct is a *view*: the simulator
// keeps its bookkeeping in obs::Registry instruments ("sim.*" counters and
// gauges, "net.*" + "clusterN.net.*" message counters) and materializes a
// Metrics from them (Simulator::metrics_view). The struct remains the
// stable value type the sweeps, benches and tests consume.
#pragma once

#include <cstdint>
#include <string>

#include "common/stats.hpp"
#include "net/message_stats.hpp"

namespace webcache::sim {

struct Metrics {
  std::uint64_t requests = 0;
  std::uint64_t hits_browser = 0;
  std::uint64_t hits_local_proxy = 0;
  std::uint64_t hits_local_p2p = 0;
  std::uint64_t hits_remote_proxy = 0;
  std::uint64_t hits_remote_p2p = 0;
  std::uint64_t server_fetches = 0;

  double total_latency = 0.0;
  /// Latency wasted on directory false positives (Bloom directories only):
  /// P2P lookups for objects that were not there.
  double wasted_p2p_latency = 0.0;
  /// Latency charged for measured Pastry hops (only when the simulation
  /// runs with p2p_hop_latency > 0 instead of the constant-Tp2p model).
  double p2p_hop_latency_total = 0.0;

  net::MessageStats messages;
  /// Pastry hops per P2P operation (Hier-GD only).
  RunningStat p2p_hops;

  [[nodiscard]] double mean_latency() const {
    return requests == 0 ? 0.0 : total_latency / static_cast<double>(requests);
  }
  [[nodiscard]] std::uint64_t total_hits() const {
    return hits_browser + hits_local_proxy + hits_local_p2p + hits_remote_proxy +
           hits_remote_p2p;
  }
  [[nodiscard]] double hit_ratio() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(total_hits()) / static_cast<double>(requests);
  }
  [[nodiscard]] double local_hit_ratio() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(hits_local_proxy + hits_local_p2p) /
                               static_cast<double>(requests);
  }

  /// Multi-line human-readable summary (examples use it).
  [[nodiscard]] std::string summary() const;
};

/// The paper's metric: 1 - L_x / L_NC, in [ -inf, 1 ), usually reported as %.
[[nodiscard]] double latency_gain(const Metrics& baseline_nc, const Metrics& scheme);

}  // namespace webcache::sim
