#include "sim/step_pipeline.hpp"

#include <cctype>
#include <cstdlib>
#include <string>

namespace webcache::sim {

namespace {

[[nodiscard]] std::string upper(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) out.push_back(static_cast<char>(std::toupper(*s)));
  return out;
}

}  // namespace

unsigned default_pipeline_window() {
  static const unsigned window = [] {
    const char* env = std::getenv("WEBCACHE_PIPELINE");
    if (env == nullptr || *env == '\0') return kDefaultPipelineWindow;
    const std::string value = upper(env);
    if (value == "OFF" || value == "FALSE" || value == "NO") return 1U;
    if (value == "ON" || value == "TRUE" || value == "YES") return kDefaultPipelineWindow;
    char* end = nullptr;
    const unsigned long long n = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') {
      if (n <= 1) return 1U;
      if (n >= kMaxPipelineWindow) return kMaxPipelineWindow;
      return static_cast<unsigned>(n);
    }
    return kDefaultPipelineWindow;  // unparsable: keep the engine's default
  }();
  return window;
}

unsigned resolve_pipeline_window(unsigned configured) {
  if (configured == 0) return default_pipeline_window();
  return configured > kMaxPipelineWindow ? kMaxPipelineWindow : configured;
}

}  // namespace webcache::sim
