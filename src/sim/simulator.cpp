#include "sim/simulator.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "common/cluster_bitset.hpp"
#include "common/prefetch.hpp"
#include "sim/sharded.hpp"
#include "sim/step_pipeline.hpp"

namespace webcache::sim {

using net::ServedFrom;

Simulator::Instruments::Instruments(obs::Registry& registry,
                                    const net::LatencyModel& latencies)
    : requests(registry.counter("sim.requests")),
      hits_browser(registry.counter("sim.hits_browser")),
      hits_local_proxy(registry.counter("sim.hits_local_proxy")),
      hits_local_p2p(registry.counter("sim.hits_local_p2p")),
      hits_remote_proxy(registry.counter("sim.hits_remote_proxy")),
      hits_remote_p2p(registry.counter("sim.hits_remote_p2p")),
      server_fetches(registry.counter("sim.server_fetches")),
      fault_crashes(registry.counter("fault.crashes")),
      fault_rejoins(registry.counter("fault.rejoins")),
      fault_joins(registry.counter("fault.joins")),
      fault_repairs(registry.counter("fault.repairs")),
      fault_objects_lost(registry.counter("fault.objects_lost")),
      total_latency(registry.gauge("sim.total_latency")),
      wasted_p2p_latency(registry.gauge("sim.wasted_p2p_latency")),
      p2p_hop_latency_total(registry.gauge("sim.p2p_hop_latency_total")),
      p2p_hops(registry.stat("sim.p2p_hops")),
      // A request costs at most ~Ts plus waste surcharges; 4*Ts with 40
      // buckets resolves the Tl/Tc/Tp2p/Ts levels cleanly.
      latency_hist(registry.histogram("sim.request_latency", 0.0,
                                      4.0 * latencies.server(), 40)),
      hops_hist(registry.histogram("sim.p2p_hops", 0.0, 16.0, 16)) {}

Simulator::Simulator(SimConfig config, const workload::TraceSource& source)
    : Simulator(std::move(config), nullptr, &source) {}

Simulator::Simulator(SimConfig config, const workload::Trace& trace)
    : Simulator(std::move(config),
                std::make_unique<workload::MaterializedTraceSource>(trace), nullptr) {}

Simulator::Simulator(SimConfig config, std::unique_ptr<const workload::TraceSource> owned,
                     const workload::TraceSource* external)
    : config_(std::move(config)),
      owned_source_(std::move(owned)),
      source_(external != nullptr ? external : owned_source_.get()),
      registry_(config_.registry ? config_.registry : std::make_shared<obs::Registry>()),
      inst_(*registry_, config_.latencies),
      msg_(*registry_, "net.") {
  const ObjectNum universe = source_->distinct_objects();
  pipeline_window_ = resolve_pipeline_window(config_.pipeline_window);
  registry_->set_snapshot_interval(config_.snapshot_interval);
  if (config_.trace_capacity > 0) registry_->enable_tracing(config_.trace_capacity);
  if (config_.num_proxies == 0) {
    throw std::invalid_argument("Simulator: need at least one proxy");
  }
  if (proxies_cooperate(config_.scheme) && config_.num_proxies < 2) {
    throw std::invalid_argument("Simulator: cooperative schemes need >= 2 proxies");
  }
  // Policy overrides: FC/FC-EC are defined by the clairvoyant cost-benefit
  // coordinator, so a replacement-policy override there is a contradiction,
  // not a configuration.
  if (config_.proxy_policy != cache::PolicyKind::kDefault &&
      (config_.scheme == Scheme::kFC || config_.scheme == Scheme::kFC_EC)) {
    throw std::invalid_argument(
        "Simulator: FC/FC-EC cannot take a proxy-policy override — the "
        "clairvoyant cost-benefit coordinator is the scheme");
  }
  if (config_.client_policy != cache::PolicyKind::kDefault &&
      config_.scheme == Scheme::kFC_EC) {
    throw std::invalid_argument(
        "Simulator: FC-EC unifies both tiers under the clairvoyant "
        "coordinator; a client-policy override cannot apply");
  }

  const std::size_t p2p_capacity =
      static_cast<std::size_t>(config_.clients_per_cluster) * config_.client_cache_capacity;

  // Perfect frequency knowledge for the cost-benefit schemes. A sweep shares
  // one precomputed analysis across all its jobs; a lone simulator scans the
  // trace itself.
  if (config_.scheme == Scheme::kFC || config_.scheme == Scheme::kFC_EC) {
    std::shared_ptr<const workload::TraceStats> stats = config_.trace_stats;
    if (stats && stats->total_requests != source_->size()) {
      throw std::invalid_argument(
          "Simulator: config.trace_stats was computed from a different trace");
    }
    if (!stats) {
      stats = std::make_shared<const workload::TraceStats>(workload::analyze(*source_));
    }
    coordinator_ = std::make_unique<cache::CostBenefitCoordinator>(
        workload::per_proxy_frequency(*stats, config_.num_proxies), config_.num_proxies,
        config_.latencies.server(), config_.latencies.proxy_to_proxy());
  }

  // Intra-run sharding: any sim_shards >= 1 on a supported shape selects the
  // sharded engine. Clusters then bind their instruments into per-shard
  // registries and cooperate through epoch-start digests instead of the
  // live residency index; unsupported shapes keep the sequential engine at
  // any sim_shards value (see SimConfig::sim_shards).
  if (config_.sim_shards > 0 && sharding_supported(config_)) {
    sharded_ = std::make_unique<ShardedState>();
    ShardedState& st = *sharded_;
    st.shards = std::min(config_.sim_shards, config_.num_proxies);
    st.epoch_len = config_.shard_epoch > 0 ? config_.shard_epoch : kDefaultShardEpoch;
    st.shard_registries.reserve(st.shards);
    for (unsigned s = 0; s < st.shards; ++s) {
      st.shard_registries.push_back(std::make_unique<obs::Registry>());
    }
    st.lanes.reserve(config_.num_proxies);
    for (unsigned c = 0; c < config_.num_proxies; ++c) {
      st.lanes.emplace_back(config_.latencies);
    }
    st.outbox.resize(st.shards);
    st.use_primary = proxies_cooperate(config_.scheme);
    st.use_secondary = config_.scheme == Scheme::kSC_EC;
    st.use_dir = config_.scheme == Scheme::kHierGD;
    if (st.use_primary) st.digest_primary.assign(universe, ClusterBitset{});
    if (st.use_secondary) st.digest_secondary.assign(universe, ClusterBitset{});
    if (st.use_dir) st.digest_dir.assign(universe, ClusterBitset{});
  }

  // The residency index accelerates the cooperative remote-lookup scans; one
  // bit per proxy caps the fast path at 64 proxies (beyond that the
  // historical per-proxy probe loops take over). The sharded engine replaces
  // it with the epoch digests above.
  residency_enabled_ =
      !sharded_ && proxies_cooperate(config_.scheme) && config_.num_proxies <= 64;
  if (residency_enabled_) {
    res_primary_.assign(universe, 0);
    if (config_.scheme == Scheme::kSC_EC || config_.scheme == Scheme::kFC_EC) {
      res_secondary_.assign(universe, 0);
    }
  }

  if (config_.scheme == Scheme::kHierGD || config_.scheme == Scheme::kSquirrel) {
    // Ring placement is a pure function of the object universe, so run_sweep
    // shares one precomputed table across schemes and jobs (like trace_stats).
    if (config_.object_ids) {
      if (config_.object_ids->size() != universe) {
        throw std::invalid_argument(
            "Simulator: config.object_ids was built for a different object universe");
      }
      object_ids_ = config_.object_ids;
    } else {
      object_ids_ = directory::build_object_id_table(universe);
    }
  }

  const bool addressable_clients =
      config_.scheme == Scheme::kHierGD || config_.scheme == Scheme::kSquirrel;
  if ((!config_.client_failures.empty() || !config_.churn_events.empty()) &&
      !addressable_clients) {
    throw std::invalid_argument(
        "Simulator: client failures need individually addressable client caches "
        "(Hier-GD or Squirrel)");
  }
  if (config_.p2p_loss_rate != 0.0 && !addressable_clients) {
    throw std::invalid_argument(
        "Simulator: P2P message loss needs a P2P tier (Hier-GD or Squirrel)");
  }
  // Legacy one-shot failures become crash events on the same engine; the
  // stable sort keeps the authored order among same-time events.
  std::vector<fault::ChurnEvent> events;
  events.reserve(config_.client_failures.size() + config_.churn_events.size());
  for (const auto& f : config_.client_failures) {
    events.push_back({f.time, f.proxy, f.client, fault::ChurnAction::kCrash});
  }
  events.insert(events.end(), config_.churn_events.begin(), config_.churn_events.end());
  churn_ = fault::ChurnEngine(std::move(events));
  // Private loss stream forked off the run seed: enabling loss perturbs no
  // other draw, and the run stays a pure function of its configuration.
  loss_ = fault::LossModel(config_.p2p_loss_rate,
                           SplitMix64(config_.seed ^ 0x4c4f5353ULL).next());

  if (sharded_) {
    // Per-cluster slices of the globally sorted schedule (the stable filter
    // preserves same-cluster order) and per-(seed, cluster) loss substreams,
    // so each lane's draws depend only on its own event/transfer sequence.
    std::vector<std::vector<fault::ChurnEvent>> per_cluster(config_.num_proxies);
    for (const auto& event : churn_.events()) {
      if (event.proxy >= config_.num_proxies) {
        throw std::invalid_argument("Simulator: failure event references unknown proxy");
      }
      per_cluster[event.proxy].push_back(event);
    }
    for (unsigned c = 0; c < config_.num_proxies; ++c) {
      ShardedState::Lane& lane = sharded_->lanes[c];
      lane.churn = fault::ChurnEngine(std::move(per_cluster[c]));
      lane.loss = fault::LossModel(
          config_.p2p_loss_rate,
          SplitMix64(config_.seed ^ 0x4c4f5353ULL ^ (0x9e3779b97f4a7c15ULL * (c + 1)))
              .next());
    }
  }

  proxies_.resize(config_.num_proxies);
  for (unsigned p = 0; p < config_.num_proxies; ++p) {
    Proxy& proxy = proxies_[p];
    const std::string proxy_prefix = "proxy" + std::to_string(p) + ".";
    const std::string cluster_prefix = "cluster" + std::to_string(p) + ".";
    // Sharded runs bind each cluster's instruments into its shard's private
    // registry (no cross-thread sharing on the hot path); the post-run fold
    // replays them into the canonical registry in cluster order. The index
    // ranges recorded around the construction identify exactly this
    // cluster's block inside the shard registry.
    obs::Registry& reg =
        sharded_ ? *sharded_->shard_registries[p % sharded_->shards] : *registry_;
    ShardedState::Lane* lane = sharded_ ? &sharded_->lanes[p] : nullptr;
    if (lane != nullptr) {
      lane->c0 = reg.counter_names().size();
      lane->g0 = reg.gauge_names().size();
      lane->s0 = reg.stat_names().size();
      lane->h0 = reg.histogram_names().size();
    }
    if (config_.browser_cache_capacity > 0) {
      proxy.browsers.reserve(config_.clients_per_cluster);
      for (ClientNum c = 0; c < config_.clients_per_cluster; ++c) {
        proxy.browsers.push_back(
            std::make_unique<cache::LruCache>(config_.browser_cache_capacity));
      }
    }
    switch (config_.scheme) {
      case Scheme::kNC:
      case Scheme::kSC:
        proxy.cache = cache::make_cache(config_.proxy_policy, config_.proxy_capacity,
                                        config_.lfu_mode);
        if (proxy.cache == nullptr) {
          proxy.cache =
              std::make_unique<cache::LfuCache>(config_.proxy_capacity, config_.lfu_mode);
        }
        proxy.cache->reserve_universe(universe);
        proxy.cache->bind_observability(reg, proxy_prefix + "cache.");
        break;
      case Scheme::kFC:
        proxy.cache =
            std::make_unique<cache::CostBenefitCache>(config_.proxy_capacity, *coordinator_);
        proxy.cache->reserve_universe(universe);
        proxy.cache->bind_observability(reg, proxy_prefix + "cache.");
        break;
      case Scheme::kNC_EC:
      case Scheme::kSC_EC: {
        auto tier1 = cache::make_cache(config_.proxy_policy, config_.proxy_capacity,
                                       config_.lfu_mode);
        if (tier1 == nullptr) {
          tier1 = std::make_unique<cache::LfuCache>(config_.proxy_capacity, config_.lfu_mode);
        }
        auto tier2 =
            cache::make_cache(config_.client_policy, p2p_capacity, config_.lfu_mode);
        if (tier2 == nullptr) {
          tier2 = std::make_unique<cache::LfuCache>(p2p_capacity, config_.lfu_mode);
        }
        proxy.tiered = std::make_unique<TieredCache>(std::move(tier1), std::move(tier2));
        proxy.tiered->reserve_universe(universe);
        proxy.tiered->bind_observability(reg, proxy_prefix + "tiered.");
        if (residency_enabled_) {
          proxy.tiered->set_transition_hook(
              [this, p](ObjectNum object, TieredCache::Where now) {
                switch (now) {
                  case TieredCache::Where::kTier1:
                    residency_set(res_primary_, object, p);
                    residency_clear(res_secondary_, object, p);
                    break;
                  case TieredCache::Where::kTier2:
                    residency_set(res_secondary_, object, p);
                    residency_clear(res_primary_, object, p);
                    break;
                  case TieredCache::Where::kMiss:
                    residency_clear(res_primary_, object, p);
                    residency_clear(res_secondary_, object, p);
                    break;
                }
              });
        } else if (sharded_ && config_.scheme == Scheme::kSC_EC) {
          // Sharded SC-EC: tier transitions feed the cluster's digest change
          // log instead of the live residency index; the deltas apply to the
          // shared digests at the epoch barrier. Only this cluster's shard
          // fires the hook (refreshes never change membership), so the log
          // stays single-writer.
          proxy.tiered->set_transition_hook(
              [lane](ObjectNum object, TieredCache::Where now) {
                using DA = ShardedState::DigestArray;
                switch (now) {
                  case TieredCache::Where::kTier1:
                    lane->log.push_back({object, DA::kPrimary, true});
                    lane->log.push_back({object, DA::kSecondary, false});
                    break;
                  case TieredCache::Where::kTier2:
                    lane->log.push_back({object, DA::kSecondary, true});
                    lane->log.push_back({object, DA::kPrimary, false});
                    break;
                  case TieredCache::Where::kMiss:
                    lane->log.push_back({object, DA::kPrimary, false});
                    lane->log.push_back({object, DA::kSecondary, false});
                    break;
                }
              });
        }
        break;
      }
      case Scheme::kFC_EC:
        proxy.unified = std::make_unique<cache::CostBenefitCache>(
            config_.proxy_capacity + p2p_capacity, *coordinator_);
        proxy.unified->reserve_universe(universe);
        proxy.unified->bind_observability(reg, proxy_prefix + "cache.");
        proxy.tier_tracker = std::make_unique<cache::LruCache>(config_.proxy_capacity);
        break;
      case Scheme::kHierGD: {
        // proxy_policy (when set) supersedes the legacy hier_proxy_policy
        // ablation enum; both default to the paper's greedy-dual.
        proxy.gd = cache::make_cache(config_.proxy_policy, config_.proxy_capacity,
                                     config_.lfu_mode);
        if (proxy.gd == nullptr) {
          switch (config_.hier_proxy_policy) {
            case HierProxyPolicy::kGreedyDual:
              proxy.gd = std::make_unique<cache::GreedyDualCache>(config_.proxy_capacity);
              break;
            case HierProxyPolicy::kLru:
              proxy.gd = std::make_unique<cache::LruCache>(config_.proxy_capacity);
              break;
            case HierProxyPolicy::kLfu:
              proxy.gd = std::make_unique<cache::LfuCache>(config_.proxy_capacity,
                                                           config_.lfu_mode);
              break;
          }
        }
        p2p::P2PConfig pc;
        pc.clients = config_.clients_per_cluster;
        pc.per_client_capacity = config_.client_cache_capacity;
        pc.capacity_spread = config_.capacity_spread;
        pc.overlay = config_.overlay;
        pc.enable_diversion = config_.enable_diversion;
        pc.client_policy = config_.client_policy;
        pc.name_prefix = "cluster" + std::to_string(p);
        proxy.p2p = std::make_unique<p2p::P2PClientCache>(pc, object_ids_, &reg);
        proxy.fetch_cost.reserve(universe);
        proxy.gd->reserve_universe(universe);
        proxy.gd->bind_observability(reg, proxy_prefix + "cache.");
        if (config_.directory == DirectoryKind::kExact) {
          proxy.dir = std::make_unique<directory::ExactDirectory>(&reg,
                                                                  cluster_prefix + "dir.");
        } else {
          proxy.dir = std::make_unique<directory::BloomDirectory>(
              object_ids_, p2p_capacity, config_.bloom_target_fpr, &reg,
              cluster_prefix + "dir.");
        }
        break;
      }
      case Scheme::kSquirrel: {
        // Proxy-less: only the federated browser caches exist. No lookup
        // directory — requests route straight to the object's home node.
        p2p::P2PConfig pc;
        pc.clients = config_.clients_per_cluster;
        pc.per_client_capacity = config_.client_cache_capacity;
        pc.capacity_spread = config_.capacity_spread;
        pc.overlay = config_.overlay;
        pc.enable_diversion = config_.enable_diversion;
        pc.client_policy = config_.client_policy;
        pc.name_prefix = "org" + std::to_string(p);
        proxy.p2p = std::make_unique<p2p::P2PClientCache>(pc, object_ids_, &reg);
        break;
      }
    }
    if (lane != nullptr) {
      lane->c1 = reg.counter_names().size();
      lane->g1 = reg.gauge_names().size();
      lane->s1 = reg.stat_names().size();
      lane->h1 = reg.histogram_names().size();
    }
  }
}

bool Simulator::sharding_supported(const SimConfig& config) {
  // FC/FC-EC: the clairvoyant cost-benefit coordinator couples every proxy's
  // replacement decisions per request — inherently globally sequential.
  if (config.scheme == Scheme::kFC || config.scheme == Scheme::kFC_EC) return false;
  // Interval snapshots and the event tracer are globally ordered streams of
  // the sequential engine, as are checkpoint/audit hooks (they probe global
  // mid-run state at exact positions).
  if (config.snapshot_interval > 0 || config.trace_capacity > 0) return false;
  if (config.checkpoint_hook) return false;
  // A single cluster has nothing to parallelize over.
  if (config.num_proxies < 2) return false;
  // The cooperation digests are fixed 256-bit ClusterBitsets.
  if (proxies_cooperate(config.scheme) && config.num_proxies > ClusterBitset::kMaxClusters) {
    return false;
  }
  return true;
}

Simulator::~Simulator() = default;

int Simulator::first_remote_holder(std::uint64_t mask, unsigned local) const {
  mask &= ~(std::uint64_t{1} << local);  // ring scan excludes the local proxy
  if (mask == 0) return -1;
  // Ring order from local+1 upward, wrapping past the top proxy to 0.
  const std::uint64_t later = local + 1 >= 64 ? 0 : mask >> (local + 1);
  if (later != 0) {
    return static_cast<int>(local + 1 + static_cast<unsigned>(std::countr_zero(later)));
  }
  return std::countr_zero(mask);
}

const p2p::P2PClientCache* Simulator::p2p_of(unsigned proxy) const {
  return proxy < proxies_.size() ? proxies_[proxy].p2p.get() : nullptr;
}

const directory::LookupDirectory* Simulator::directory_of(unsigned proxy) const {
  return proxy < proxies_.size() ? proxies_[proxy].dir.get() : nullptr;
}

const cache::Cache* Simulator::proxy_cache_of(unsigned proxy) const {
  if (proxy >= proxies_.size()) return nullptr;
  const Proxy& p = proxies_[proxy];
  return p.cache ? p.cache.get() : p.gd.get();
}

const TieredCache* Simulator::tiered_of(unsigned proxy) const {
  return proxy < proxies_.size() ? proxies_[proxy].tiered.get() : nullptr;
}

const cache::CostBenefitCache* Simulator::unified_of(unsigned proxy) const {
  return proxy < proxies_.size() ? proxies_[proxy].unified.get() : nullptr;
}

const cache::LruCache* Simulator::tier_tracker_of(unsigned proxy) const {
  return proxy < proxies_.size() ? proxies_[proxy].tier_tracker.get() : nullptr;
}

const cache::LruCache* Simulator::browser_of(unsigned proxy, ClientNum client) const {
  if (proxy >= proxies_.size()) return nullptr;
  const Proxy& p = proxies_[proxy];
  return client < p.browsers.size() ? p.browsers[client].get() : nullptr;
}

const DenseMap<double>* Simulator::fetch_costs_of(unsigned proxy) const {
  return proxy < proxies_.size() ? &proxies_[proxy].fetch_cost : nullptr;
}

ClientNum Simulator::client_of(const Request& request, const Proxy& proxy) const {
  ClientNum c = request.client % config_.clients_per_cluster;
  if (proxy.p2p && !proxy.p2p->client_alive(c)) {
    // After fault injection a client may be gone; its user retries through a
    // neighbour's machine.
    for (ClientNum step = 1; step < config_.clients_per_cluster; ++step) {
      const ClientNum candidate = (c + step) % config_.clients_per_cluster;
      if (proxy.p2p->client_alive(candidate)) return candidate;
    }
    throw std::runtime_error("Simulator: all clients of a cluster have failed");
  }
  return c;
}

void Simulator::account(ServedFrom where, double wasted_latency, double hop_latency) {
  account_raw(where,
              config_.latencies.request_latency(where) + wasted_latency + hop_latency,
              wasted_latency, hop_latency);
}

void Simulator::account_raw(ServedFrom where, double latency, double wasted_latency,
                            double hop_latency) {
  // Timeouts from injected P2P losses belong to the request in flight: fold
  // them into its latency as waste and clear the queue.
  if (pending_loss_waste_ != 0.0) {
    latency += pending_loss_waste_;
    wasted_latency += pending_loss_waste_;
    pending_loss_waste_ = 0.0;
  }
  inst_.requests.inc();
  switch (where) {
    case ServedFrom::kBrowser: inst_.hits_browser.inc(); break;
    case ServedFrom::kLocalProxy: inst_.hits_local_proxy.inc(); break;
    case ServedFrom::kLocalP2P: inst_.hits_local_p2p.inc(); break;
    case ServedFrom::kRemoteProxy: inst_.hits_remote_proxy.inc(); break;
    case ServedFrom::kRemoteP2P: inst_.hits_remote_p2p.inc(); break;
    case ServedFrom::kOriginServer: inst_.server_fetches.inc(); break;
  }
  inst_.total_latency.add(latency);
  inst_.wasted_p2p_latency.add(wasted_latency);
  inst_.p2p_hop_latency_total.add(hop_latency);
  inst_.latency_hist.add(latency);
  // Optional layers: the tracer records the request-level event, tick()
  // advances the snapshot clock. Both compile to nothing under
  // WEBCACHE_OBS_NO_TRACE and cost one predictable branch otherwise.
  registry_->record(now_, static_cast<std::uint32_t>(where), latency, wasted_latency);
  registry_->tick();
}

bool Simulator::browser_lookup(const Request& request, unsigned proxy_index) {
  Proxy& proxy = proxies_[proxy_index];
  if (proxy.browsers.empty()) return false;
  auto& browser = *proxy.browsers[request.client % config_.clients_per_cluster];
  if (!browser.contains(request.object)) return false;
  browser.access(request.object, 0.0);
  account(ServedFrom::kBrowser, 0.0);
  return true;
}

void Simulator::browser_fill(const Request& request, unsigned proxy_index) {
  Proxy& proxy = proxies_[proxy_index];
  if (proxy.browsers.empty()) return;
  auto& browser = *proxy.browsers[request.client % config_.clients_per_cluster];
  if (!browser.contains(request.object)) {
    browser.insert(request.object, 0.0);  // private cache; evictions vanish
  }
}

void Simulator::apply_churn(const fault::ChurnEvent& event) {
  if (event.proxy >= proxies_.size()) {
    throw std::invalid_argument("Simulator: failure event references unknown proxy");
  }
  Proxy& proxy = proxies_[event.proxy];
  switch (event.action) {
    case fault::ChurnAction::kCrash: {
      const ClientNum target = event.client % proxy.p2p->cluster_size();
      // No-op if the machine is already down; a crash that would take the
      // cluster's last live client is skipped (the paper's cluster always
      // has someone left to route from).
      if (!proxy.p2p->client_alive(target)) break;
      if (proxy.p2p->alive_clients() <= 1) break;
      // The crash silently loses the client's share of the P2P cache; the
      // proxy's directory is NOT told (that is the point of the experiment)
      // — it discovers the losses through failed lookups.
      const auto lost = proxy.p2p->fail_client(target);
      inst_.fault_crashes.inc();
      inst_.fault_objects_lost.inc(lost.size());
      break;
    }
    case fault::ChurnAction::kRejoin: {
      const ClientNum target = event.client % proxy.p2p->cluster_size();
      if (proxy.p2p->revive_client(target)) inst_.fault_rejoins.inc();
      break;
    }
    case fault::ChurnAction::kJoin:
      (void)proxy.p2p->add_client();
      inst_.fault_joins.inc();
      break;
    case fault::ChurnAction::kRepair:
      proxy.p2p->repair();
      inst_.fault_repairs.inc();
      break;
  }
}

void Simulator::maybe_lose_p2p_message() {
  if (!loss_.enabled()) return;
  if (loss_.lose_message()) {
    msg_.p2p_messages_lost.inc();
    msg_.p2p_retries.inc();
    pending_loss_waste_ += config_.latencies.loss_retry_penalty();
  }
}

Metrics Simulator::run() {
  if (ran_) throw std::logic_error("Simulator::run: already ran (one-shot)");
  ran_ = true;

  if (sharded_) return run_sharded();

  const std::uint64_t checkpoint = config_.checkpoint_interval;
  bool checked_at_end = false;
  const std::uint64_t total = source_->size();
  // Replay in bounded windows: a materialized source hands back one spanning
  // window, an mmap source pages sequentially and releases consumed chunks.
  const std::size_t chunk =
      config_.replay_chunk > 0 ? config_.replay_chunk : workload::default_replay_chunk();
  // Pipelined replay: address-generate (routing + advisory prefetches) a
  // window of requests ahead of executing them, so the independent index
  // probes of consecutive requests overlap their cache misses. Execution
  // order and results are identical for every window (pipeline_test pins
  // the exports byte-for-byte).
  const StepPipeline pipeline(pipeline_window_);
  for (std::uint64_t base = 0; base < total;) {
    const auto win = source_->window(base, chunk);
    if (win.empty()) break;  // defensive: a well-formed source never starves
    pipeline.drive(
        win, base,
        [this](const Request& request, std::uint64_t t) {
          prefetch_request(request, static_cast<unsigned>(t % config_.num_proxies));
        },
        [&](const Request& request, std::uint64_t t) {
          churn_.advance(t, [this](const fault::ChurnEvent& e) { apply_churn(e); });
          now_ = t;
          const auto proxy_index = static_cast<unsigned>(t % config_.num_proxies);
          if (!browser_lookup(request, proxy_index)) {
            step(request, proxy_index);
            browser_fill(request, proxy_index);
          }
          if (checkpoint > 0 && config_.checkpoint_hook && (t + 1) % checkpoint == 0) {
            config_.checkpoint_hook(*this, t + 1);
            checked_at_end = t + 1 == total;
          }
        });
    base += win.size();
    source_->discard_consumed(base);
  }
  // Always audit the final state, but not twice.
  if (config_.checkpoint_hook && !checked_at_end) {
    config_.checkpoint_hook(*this, total);
  }
  return metrics_view();
}

Metrics Simulator::metrics_view() const {
  Metrics m;
  m.requests = inst_.requests.value();
  m.hits_browser = inst_.hits_browser.value();
  m.hits_local_proxy = inst_.hits_local_proxy.value();
  m.hits_local_p2p = inst_.hits_local_p2p.value();
  m.hits_remote_proxy = inst_.hits_remote_proxy.value();
  m.hits_remote_p2p = inst_.hits_remote_p2p.value();
  m.server_fetches = inst_.server_fetches.value();
  m.total_latency = inst_.total_latency.value();
  m.wasted_p2p_latency = inst_.wasted_p2p_latency.value();
  m.p2p_hop_latency_total = inst_.p2p_hop_latency_total.value();
  m.p2p_hops = inst_.p2p_hops;
  // Simulator-level protocol messages plus each cluster's P2P substrate
  // traffic; the increment sets are disjoint, so the merge is a plain sum.
  m.messages = msg_.view();
  for (const auto& proxy : proxies_) {
    if (proxy.p2p) m.messages.merge(proxy.p2p->messages());
  }
  return m;
}

void Simulator::step(const Request& request, unsigned proxy_index) {
  switch (config_.scheme) {
    case Scheme::kNC:
    case Scheme::kSC:
    case Scheme::kFC:
      step_basic(request, proxy_index);
      break;
    case Scheme::kNC_EC:
    case Scheme::kSC_EC:
      step_tiered_ec(request, proxy_index);
      break;
    case Scheme::kFC_EC:
      step_fc_ec(request, proxy_index);
      break;
    case Scheme::kHierGD:
      step_hier_gd(request, proxy_index);
      break;
    case Scheme::kSquirrel:
      step_squirrel(request, proxy_index);
      break;
  }
}

void Simulator::prefetch_request(const Request& request, unsigned proxy_index) const {
  const Proxy& local = proxies_[proxy_index];
  const ObjectNum object = request.object;
  // The browser front end probes first, so its index slot is hinted too.
  if (!local.browsers.empty()) {
    local.browsers[request.client % config_.clients_per_cluster]->prefetch(object);
  }
  // The cooperative lookup's first read after a local miss is the residency
  // word — one cache line covering every proxy's membership bit.
  if (residency_enabled_) {
    if (object < res_primary_.size()) WEBCACHE_PREFETCH(&res_primary_[object]);
    if (object < res_secondary_.size()) WEBCACHE_PREFETCH(&res_secondary_[object]);
  }
  switch (config_.scheme) {
    case Scheme::kNC:
    case Scheme::kSC:
    case Scheme::kFC:
      local.cache->prefetch(object);
      break;
    case Scheme::kNC_EC:
    case Scheme::kSC_EC:
      local.tiered->prefetch(object);
      break;
    case Scheme::kFC_EC:
      local.unified->prefetch(object);
      local.tier_tracker->prefetch(object);
      break;
    case Scheme::kHierGD:
      local.gd->prefetch(object);
      local.fetch_cost.prefetch(object);
      local.dir->prefetch(object);
      break;
    case Scheme::kSquirrel:
      local.p2p->prefetch(object);
      break;
  }
}

// --- NC / SC / FC ------------------------------------------------------------

void Simulator::step_basic(const Request& request, unsigned proxy_index) {
  Proxy& local = proxies_[proxy_index];
  const ObjectNum object = request.object;

  // Clairvoyant bookkeeping: this request is no longer in the future.
  if (coordinator_) coordinator_->consume(object);

  if (local.cache->contains(object)) {
    local.cache->access(object, config_.latencies.fetch_cost(ServedFrom::kOriginServer));
    account(ServedFrom::kLocalProxy, 0.0);
    return;
  }

  ServedFrom served = ServedFrom::kOriginServer;
  if (proxies_cooperate(config_.scheme)) {
    if (residency_enabled_) {
      const int holder = first_remote_holder(residency_mask(res_primary_, object),
                                             proxy_index);
      if (holder >= 0) {
        proxies_[static_cast<unsigned>(holder)].cache->access(
            object, config_.latencies.fetch_cost(ServedFrom::kOriginServer));
        served = ServedFrom::kRemoteProxy;
      }
    } else {
      for (unsigned q = 1; q < config_.num_proxies; ++q) {
        Proxy& remote = proxies_[(proxy_index + q) % config_.num_proxies];
        if (remote.cache->contains(object)) {
          remote.cache->access(object,
                               config_.latencies.fetch_cost(ServedFrom::kOriginServer));
          served = ServedFrom::kRemoteProxy;
          break;
        }
      }
    }
  }

  // SC always copies what it fetched; FC's cost-benefit policy may decline.
  const auto ins = local.cache->insert(object, config_.latencies.fetch_cost(served));
  if (residency_enabled_ && ins.inserted) {
    residency_set(res_primary_, object, proxy_index);
    if (ins.evicted) residency_clear(res_primary_, *ins.evicted, proxy_index);
  }
  account(served, 0.0);
}

// --- NC-EC / SC-EC ------------------------------------------------------------

void Simulator::step_tiered_ec(const Request& request, unsigned proxy_index) {
  Proxy& local = proxies_[proxy_index];
  const ObjectNum object = request.object;
  const double refetch = config_.latencies.fetch_cost(ServedFrom::kOriginServer);

  const auto where = local.tiered->locate(object);
  if (where != TieredCache::Where::kMiss) {
    local.tiered->access(object, refetch);
    account(where == TieredCache::Where::kTier1 ? ServedFrom::kLocalProxy
                                                : ServedFrom::kLocalP2P,
            0.0);
    return;
  }

  ServedFrom served = ServedFrom::kOriginServer;
  if (config_.scheme == Scheme::kSC_EC) {
    // Prefer a remote proxy hit (Tc) over a remote P2P hit (Tc + Tp2p).
    Proxy* tier2_holder = nullptr;
    if (residency_enabled_) {
      const int t1 = first_remote_holder(residency_mask(res_primary_, object), proxy_index);
      if (t1 >= 0) {
        proxies_[static_cast<unsigned>(t1)].tiered->refresh(object, refetch);
        served = ServedFrom::kRemoteProxy;
      } else {
        const int t2 =
            first_remote_holder(residency_mask(res_secondary_, object), proxy_index);
        if (t2 >= 0) tier2_holder = &proxies_[static_cast<unsigned>(t2)];
      }
    } else {
      for (unsigned q = 1; q < config_.num_proxies && served == ServedFrom::kOriginServer;
           ++q) {
        Proxy& remote = proxies_[(proxy_index + q) % config_.num_proxies];
        switch (remote.tiered->locate(object)) {
          case TieredCache::Where::kTier1:
            remote.tiered->refresh(object, refetch);
            served = ServedFrom::kRemoteProxy;
            break;
          case TieredCache::Where::kTier2:
            if (tier2_holder == nullptr) tier2_holder = &remote;
            break;
          case TieredCache::Where::kMiss:
            break;
        }
      }
    }
    if (served == ServedFrom::kOriginServer && tier2_holder != nullptr) {
      // Push protocol: the remote cluster's client cache pushes the object
      // up through its own proxy.
      tier2_holder->tiered->refresh(object, refetch);
      served = ServedFrom::kRemoteP2P;
      msg_.push_requests.inc();
      msg_.push_transfers.inc();
    }
  }

  local.tiered->admit(object, config_.latencies.fetch_cost(served));
  account(served, 0.0);
}

// --- FC-EC ---------------------------------------------------------------------

void Simulator::track_tier1(unsigned proxy_index, ObjectNum object) {
  Proxy& proxy = proxies_[proxy_index];
  if (proxy.tier_tracker->contains(object)) {
    proxy.tier_tracker->access(object, 0.0);
  } else {
    const auto ins = proxy.tier_tracker->insert(object, 0.0);
    if (residency_enabled_ && ins.inserted) {
      residency_set(res_primary_, object, proxy_index);
      // The tracker's LRU evictee demotes to tier-2 residence (it is still
      // in the unified cache, i.e. still in res_secondary_).
      if (ins.evicted) residency_clear(res_primary_, *ins.evicted, proxy_index);
    }
  }
}

void Simulator::step_fc_ec(const Request& request, unsigned proxy_index) {
  Proxy& local = proxies_[proxy_index];
  const ObjectNum object = request.object;

  // Clairvoyant bookkeeping: this request is no longer in the future.
  coordinator_->consume(object);

  if (local.unified->contains(object)) {
    const bool tier1 = local.tier_tracker->contains(object);
    local.unified->access(object, 0.0);
    track_tier1(proxy_index, object);  // tier-2 hits promote into proxy residence
    account(tier1 ? ServedFrom::kLocalProxy : ServedFrom::kLocalP2P, 0.0);
    return;
  }

  ServedFrom served = ServedFrom::kOriginServer;
  Proxy* tier2_holder = nullptr;
  if (residency_enabled_) {
    // Tracker membership is a subset of unified membership, so res_primary_
    // alone identifies remote tier-1 holders.
    const int t1 = first_remote_holder(residency_mask(res_primary_, object), proxy_index);
    if (t1 >= 0) {
      proxies_[static_cast<unsigned>(t1)].unified->access(object, 0.0);
      served = ServedFrom::kRemoteProxy;
    } else {
      const int t2 = first_remote_holder(
          residency_mask(res_secondary_, object) & ~residency_mask(res_primary_, object),
          proxy_index);
      if (t2 >= 0) tier2_holder = &proxies_[static_cast<unsigned>(t2)];
    }
  } else {
    for (unsigned q = 1; q < config_.num_proxies && served == ServedFrom::kOriginServer;
         ++q) {
      Proxy& remote = proxies_[(proxy_index + q) % config_.num_proxies];
      if (!remote.unified->contains(object)) continue;
      if (remote.tier_tracker->contains(object)) {
        remote.unified->access(object, 0.0);
        served = ServedFrom::kRemoteProxy;
      } else if (tier2_holder == nullptr) {
        tier2_holder = &remote;
      }
    }
  }
  if (served == ServedFrom::kOriginServer && tier2_holder != nullptr) {
    tier2_holder->unified->access(object, 0.0);
    served = ServedFrom::kRemoteP2P;
    msg_.push_requests.inc();
    msg_.push_transfers.inc();
  }

  const auto ins = local.unified->insert(object, config_.latencies.fetch_cost(served));
  if (ins.inserted) {
    if (residency_enabled_) {
      residency_set(res_secondary_, object, proxy_index);
      if (ins.evicted) residency_clear(res_secondary_, *ins.evicted, proxy_index);
    }
    track_tier1(proxy_index, object);
    if (ins.evicted) {
      local.tier_tracker->erase(*ins.evicted);
      if (residency_enabled_) residency_clear(res_primary_, *ins.evicted, proxy_index);
    }
  }
  account(served, 0.0);
}

// --- Hier-GD ---------------------------------------------------------------------

void Simulator::destage_hier_gd(Proxy& proxy, ObjectNum victim, ClientNum via_client) {
  // Piggybacked on the HTTP response already going to via_client (Sec. 4.4).
  msg_.destage_piggybacked.inc();
  msg_.destage_bytes.inc();  // unit-size objects

  const double* stored = proxy.fetch_cost.find(victim);
  const double credit =
      stored != nullptr ? *stored : config_.latencies.fetch_cost(ServedFrom::kOriginServer);
  maybe_lose_p2p_message();  // the destage transfer itself may time out
  const auto outcome = proxy.p2p->store(victim, credit, via_client);
  inst_.p2p_hops.add(static_cast<double>(outcome.hops));
  inst_.hops_hist.add(static_cast<double>(outcome.hops));

  if (outcome.stored && !outcome.already_present) {
    proxy.dir->add(victim);
    msg_.directory_adds.inc();
  }
  if (outcome.displaced) {
    proxy.dir->remove(*outcome.displaced);
    msg_.directory_removes.inc();
  }
}

void Simulator::admit_hier_gd(unsigned proxy_index, ObjectNum object, double cost,
                              ClientNum via_client) {
  Proxy& proxy = proxies_[proxy_index];
  proxy.fetch_cost[object] = cost;
  const auto ins = proxy.gd->insert(object, cost);
  if (residency_enabled_ && ins.inserted) {
    residency_set(res_primary_, object, proxy_index);
    if (ins.evicted) residency_clear(res_primary_, *ins.evicted, proxy_index);
  }
  if (ins.inserted && ins.evicted) {
    destage_hier_gd(proxy, *ins.evicted, via_client);
  }
}

void Simulator::step_hier_gd(const Request& request, unsigned proxy_index) {
  Proxy& local = proxies_[proxy_index];
  const ObjectNum object = request.object;
  const ClientNum client = client_of(request, local);

  // Local proxy cache.
  if (local.gd->contains(object)) {
    const double* stored = local.fetch_cost.find(object);
    local.gd->access(object, stored != nullptr
                                 ? *stored
                                 : config_.latencies.fetch_cost(ServedFrom::kOriginServer));
    account(ServedFrom::kLocalProxy, 0.0);
    return;
  }

  double waste = 0.0;
  double hop_latency = 0.0;

  // Local P2P client cache, gated by the lookup directory.
  if (local.dir->may_contain(object)) {
    maybe_lose_p2p_message();
    const auto fetched = local.p2p->fetch(object, client, /*remove_on_hit=*/true);
    inst_.p2p_hops.add(static_cast<double>(fetched.hops));
  inst_.hops_hist.add(static_cast<double>(fetched.hops));
    hop_latency += config_.p2p_hop_latency * fetched.hops;
    if (fetched.hit) {
      msg_.directory_true_positives.inc();
      local.dir->remove(object);
      msg_.directory_removes.inc();
      // Promote into the proxy; the proxy's eviction destages back down.
      admit_hier_gd(proxy_index, object,
                    config_.latencies.fetch_cost(ServedFrom::kLocalP2P), client);
      account(ServedFrom::kLocalP2P, 0.0, hop_latency);
      return;
    }
    // False positive (Bloom directory, or staleness after client failures):
    // the overlay round trip was wasted.
    msg_.directory_false_positives.inc();
    waste += config_.latencies.p2p_fetch();
    // An exact directory learns the truth from the failed lookup. A
    // counting-Bloom directory must NOT erase a key it never inserted —
    // that would corrupt shared counters into false negatives.
    if (config_.directory == DirectoryKind::kExact) local.dir->remove(object);
  }

  // Cooperating proxies: their caches first (cheaper), then their P2P
  // client caches via the push protocol (Sec. 4.5).
  ServedFrom served = ServedFrom::kOriginServer;
  Proxy* push_holder = nullptr;
  ClientNum push_client = 0;
  if (residency_enabled_) {
    const int holder = first_remote_holder(residency_mask(res_primary_, object),
                                           proxy_index);
    if (holder >= 0) {
      Proxy& remote = proxies_[static_cast<unsigned>(holder)];
      const double* stored = remote.fetch_cost.find(object);
      remote.gd->access(object,
                        stored != nullptr
                            ? *stored
                            : config_.latencies.fetch_cost(ServedFrom::kOriginServer));
      served = ServedFrom::kRemoteProxy;
    } else {
      // No remote proxy holds it: the push candidate is the first cluster in
      // ring order whose directory answers positively (exactly what the
      // historical full scan selected when every gd probe missed).
      for (unsigned q = 1; q < config_.num_proxies; ++q) {
        Proxy& remote = proxies_[(proxy_index + q) % config_.num_proxies];
        if (remote.dir->may_contain(object)) {
          push_holder = &remote;
          push_client = client_of(request, remote);
          break;
        }
      }
    }
  } else {
    for (unsigned q = 1; q < config_.num_proxies && served == ServedFrom::kOriginServer;
         ++q) {
      Proxy& remote = proxies_[(proxy_index + q) % config_.num_proxies];
      if (remote.gd->contains(object)) {
        const double* stored = remote.fetch_cost.find(object);
        remote.gd->access(object,
                          stored != nullptr
                              ? *stored
                              : config_.latencies.fetch_cost(ServedFrom::kOriginServer));
        served = ServedFrom::kRemoteProxy;
      } else if (push_holder == nullptr && remote.dir->may_contain(object)) {
        push_holder = &remote;
        push_client = client_of(request, remote);
      }
    }
  }

  if (served == ServedFrom::kOriginServer && push_holder != nullptr) {
    msg_.push_requests.inc();
    maybe_lose_p2p_message();
    const auto fetched = push_holder->p2p->fetch(object, push_client, /*remove_on_hit=*/false);
    inst_.p2p_hops.add(static_cast<double>(fetched.hops));
  inst_.hops_hist.add(static_cast<double>(fetched.hops));
    hop_latency += config_.p2p_hop_latency * fetched.hops;
    if (fetched.hit) {
      msg_.push_transfers.inc();
      msg_.directory_true_positives.inc();
      served = ServedFrom::kRemoteP2P;
    } else {
      msg_.directory_false_positives.inc();
      waste += config_.latencies.proxy_to_proxy() + config_.latencies.p2p_fetch();
      if (config_.directory == DirectoryKind::kExact) push_holder->dir->remove(object);
    }
  }

  admit_hier_gd(proxy_index, object, config_.latencies.fetch_cost(served), client);
  account(served, waste, hop_latency);
}

// --- Squirrel (extension) -------------------------------------------------------

void Simulator::step_squirrel(const Request& request, unsigned proxy_index) {
  Proxy& org = proxies_[proxy_index];
  const ObjectNum object = request.object;
  const ClientNum client = client_of(request, org);

  // The requesting client routes straight to the object's home node. A home
  // hit serves at LAN cost; on a miss the home node fetches from the origin
  // server, caches the object (home-store model) and forwards it.
  maybe_lose_p2p_message();
  const auto fetched = org.p2p->fetch(object, client, /*remove_on_hit=*/false);
  inst_.p2p_hops.add(static_cast<double>(fetched.hops));
  inst_.hops_hist.add(static_cast<double>(fetched.hops));
  const double hop_latency = config_.p2p_hop_latency * fetched.hops;

  if (fetched.hit) {
    account_raw(ServedFrom::kLocalP2P, config_.latencies.p2p_fetch() + hop_latency,
                /*wasted_latency=*/0.0, hop_latency);
    return;
  }
  // The home-store leg may also time out; draw it before accounting so its
  // retry penalty lands on this request, not the next one.
  maybe_lose_p2p_message();
  account_raw(ServedFrom::kOriginServer,
              config_.latencies.p2p_fetch() + config_.latencies.server() + hop_latency,
              /*wasted_latency=*/0.0, hop_latency);
  // The home node stores the object with its refetch cost as the credit.
  // (store() routes again from the client; the message count conservatively
  // includes both legs.)
  (void)org.p2p->store(object, config_.latencies.fetch_cost(net::ServedFrom::kOriginServer),
                       client);
}

Metrics run_simulation(const SimConfig& config, const workload::Trace& trace) {
  Simulator sim(config, trace);
  return sim.run();
}

Metrics run_simulation(const SimConfig& config, const workload::TraceSource& source) {
  Simulator sim(config, source);
  return sim.run();
}

}  // namespace webcache::sim
