#include "sim/metrics.hpp"

#include <sstream>
#include <stdexcept>

namespace webcache::sim {

std::string Metrics::summary() const {
  std::ostringstream out;
  const auto pct = [this](std::uint64_t n) {
    return requests == 0 ? 0.0 : 100.0 * static_cast<double>(n) / static_cast<double>(requests);
  };
  out << "requests:            " << requests << "\n"
      << "mean latency:        " << mean_latency() << "\n";
  if (hits_browser > 0) {
    out << "browser hits:        " << hits_browser << " (" << pct(hits_browser) << "%)\n";
  }
  out << "local proxy hits:    " << hits_local_proxy << " (" << pct(hits_local_proxy) << "%)\n"
      << "local P2P hits:      " << hits_local_p2p << " (" << pct(hits_local_p2p) << "%)\n"
      << "remote proxy hits:   " << hits_remote_proxy << " (" << pct(hits_remote_proxy) << "%)\n"
      << "remote P2P hits:     " << hits_remote_p2p << " (" << pct(hits_remote_p2p) << "%)\n"
      << "server fetches:      " << server_fetches << " (" << pct(server_fetches) << "%)\n"
      << "overall hit ratio:   " << 100.0 * hit_ratio() << "%\n";
  if (p2p_hops.count() > 0) {
    out << "mean Pastry hops:    " << p2p_hops.mean() << " (max " << p2p_hops.max() << ")\n";
  }
  return out.str();
}

double latency_gain(const Metrics& baseline_nc, const Metrics& scheme) {
  const double base = baseline_nc.mean_latency();
  if (base <= 0.0) {
    throw std::invalid_argument("latency_gain: baseline has no latency data");
  }
  return 1.0 - scheme.mean_latency() / base;
}

}  // namespace webcache::sim
