// The seven caching schemes the paper defines and compares (Section 2-3),
// plus the Squirrel extension used to quantify its related-work comparison.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <string_view>

namespace webcache::sim {

enum class Scheme {
  kNC,      ///< no cooperation; isolated proxies, LFU
  kSC,      ///< simple cooperation: proxies serve each other's misses, LFU
  kFC,      ///< full cooperation: SC + coordinated cost-benefit replacement
  kNC_EC,   ///< NC with the proxy unified with its (ideal) P2P client cache
  kSC_EC,   ///< SC with unified P2P client caches, shared across proxies
  kFC_EC,   ///< FC with unified P2P client caches, fully coordinated
  kHierGD,  ///< hierarchical greedy-dual over a real Pastry P2P client cache
  /// Extension (not one of the paper's seven): the decentralized proxy-less
  /// design of Iyer/Rowstron/Druschel (PODC'02) that the paper's related-
  /// work section argues against — browser caches pool over Pastry with a
  /// home node per object, no proxy cache, and no sharing across
  /// organizations (firewalls block incoming connections). Implemented so
  /// the Section 6 comparison can be made quantitative.
  kSquirrel,
};

/// The paper's seven schemes (Squirrel is an extension, benchmarked
/// separately).
inline constexpr std::array<Scheme, 7> kAllSchemes = {
    Scheme::kNC,    Scheme::kSC,    Scheme::kFC,    Scheme::kNC_EC,
    Scheme::kSC_EC, Scheme::kFC_EC, Scheme::kHierGD,
};

[[nodiscard]] std::string_view to_string(Scheme scheme);
[[nodiscard]] std::optional<Scheme> scheme_from_string(std::string_view name);

/// True for the schemes that exploit client caches.
[[nodiscard]] constexpr bool exploits_client_caches(Scheme s) {
  return s == Scheme::kNC_EC || s == Scheme::kSC_EC || s == Scheme::kFC_EC ||
         s == Scheme::kHierGD || s == Scheme::kSquirrel;
}

/// True for the schemes where proxies serve each other's misses.
[[nodiscard]] constexpr bool proxies_cooperate(Scheme s) {
  return s == Scheme::kSC || s == Scheme::kFC || s == Scheme::kSC_EC ||
         s == Scheme::kFC_EC || s == Scheme::kHierGD;
}

}  // namespace webcache::sim
