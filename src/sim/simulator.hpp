// Trace-driven simulator for the seven caching schemes.
//
// Requests are partitioned round-robin over the proxy cluster (request t
// goes to proxy t mod P), which makes the per-proxy streams statistically
// identical (paper assumption 2) while keeping the object universe shared —
// the property inter-proxy cooperation feeds on. Within a cluster, the
// trace's client id picks the issuing client.
//
// Scheme wiring (see DESIGN.md section 4 for the normative semantics):
//   NC / SC       per-proxy LFU cache; SC additionally reads through
//                 cooperating proxies and copies what it fetches.
//   FC            SC lookup path + coordinated cost-benefit replacement
//                 with perfect frequency knowledge (upper bound).
//   NC-EC / SC-EC the proxy unified with its pooled P2P client cache as a
//                 TieredCache (tier 1 = proxy, tier 2 = client caches).
//   FC-EC         one coordinated cost-benefit cache of combined capacity
//                 per proxy; an LRU tracker of proxy-cache size attributes
//                 hits to tier 1 (Tl) or tier 2 (Tp2p).
//   Hier-GD       greedy-dual at the proxy, evictions destaged into a real
//                 Pastry-federated P2P client cache with object diversion,
//                 a lookup directory (exact or Bloom), piggybacked destages
//                 and the push protocol for remote access.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cache/cost_benefit.hpp"
#include "cache/greedy_dual.hpp"
#include "common/dense_map.hpp"
#include "cache/lfu.hpp"
#include "cache/lru.hpp"
#include "cache/policy.hpp"
#include "directory/directory.hpp"
#include "fault/churn_engine.hpp"
#include "fault/churn_schedule.hpp"
#include "fault/loss_model.hpp"
#include "net/latency_model.hpp"
#include "obs/registry.hpp"
#include "p2p/p2p_client_cache.hpp"
#include "sim/metrics.hpp"
#include "sim/scheme.hpp"
#include "sim/tiered_cache.hpp"
#include "workload/trace.hpp"
#include "workload/trace_source.hpp"
#include "workload/trace_stats.hpp"

namespace webcache::sim {

class Simulator;

enum class DirectoryKind { kExact, kBloom };

/// A scheduled client-machine crash (fault-injection): at trace time `time`,
/// client `client` of proxy `proxy` fails. Under Hier-GD its share of the
/// P2P client cache is lost and the proxy's directory goes stale until the
/// failed lookups correct it; under the idealized schemes client storage is
/// pooled, so failures there only shrink capacity when modelled explicitly.
struct ClientFailure {
  std::uint64_t time = 0;
  unsigned proxy = 0;
  ClientNum client = 0;
};

/// Replacement policy at Hier-GD's proxy tier. Greedy-dual is the paper's
/// algorithm; LRU/LFU exist for the policy ablation (the client-cache tier
/// always runs greedy-dual).
enum class HierProxyPolicy { kGreedyDual, kLru, kLfu };

struct SimConfig {
  Scheme scheme = Scheme::kNC;
  unsigned num_proxies = 2;
  /// Proxy cache capacity, in objects, per proxy.
  std::size_t proxy_capacity = 500;
  /// Client population per proxy (paper default 100).
  ClientNum clients_per_cluster = 100;
  /// Cooperative browser-cache capacity per client, in objects (paper:
  /// 0.1% of the infinite cache size).
  std::size_t client_cache_capacity = 5;
  net::LatencyModel latencies = net::LatencyModel::from_ratios();
  /// LFU variant for NC/SC/NC-EC/SC-EC. LFU-DA is the deployed-web-proxy
  /// behaviour of the paper's era and the variant that responds to temporal
  /// locality; kPerfect/kInCache exist for sensitivity analysis.
  cache::LfuMode lfu_mode = cache::LfuMode::kDynamicAging;
  /// Hier-GD lookup directory representation (paper Section 4.2).
  DirectoryKind directory = DirectoryKind::kExact;
  double bloom_target_fpr = 0.01;
  /// Hier-GD object diversion (paper Section 4.3); ablation switches it off.
  bool enable_diversion = true;
  /// How client-cache capacities vary across machines (paper Section 4.3
  /// motivates diversion by exactly this heterogeneity).
  p2p::CapacitySpread capacity_spread = p2p::CapacitySpread::kUniform;
  /// Optional per-Pastry-hop latency added to P2P fetch/push operations.
  /// The paper folds the expected hops into the constant Tp2p (its
  /// assumption 3); setting this > 0 instead charges the measured hops,
  /// which makes the client-cluster-size experiments latency-honest.
  double p2p_hop_latency = 0.0;
  /// Hier-GD proxy-tier policy (ablation; the paper uses greedy-dual).
  /// Superseded by `proxy_policy` when that is not kDefault.
  HierProxyPolicy hier_proxy_policy = HierProxyPolicy::kGreedyDual;
  /// Proxy-tier replacement/admission policy override (CLI --proxy-policy,
  /// env WEBCACHE_POLICY). kDefault keeps each scheme's paper policy: LFU at
  /// NC/SC and the *-EC tier 1, greedy-dual (per hier_proxy_policy) at
  /// Hier-GD. FC/FC-EC reject any override — the clairvoyant cost-benefit
  /// coordinator IS those schemes (std::invalid_argument).
  cache::PolicyKind proxy_policy = cache::PolicyKind::kDefault;
  /// Client-tier policy override (CLI --client-policy): tier 2 of
  /// NC-EC/SC-EC (default LFU) and the per-client cooperative caches of
  /// Hier-GD/Squirrel (default greedy-dual). Ignored by NC/SC/FC, which have
  /// no client tier; rejected by FC-EC like proxy_policy.
  cache::PolicyKind client_policy = cache::PolicyKind::kDefault;
  /// Per-client *private* browser cache (the "local" partition of the
  /// client cache, paper Section 2). 0 disables it — the trace is then
  /// interpreted as the post-browser-cache request stream, which is the
  /// paper's evaluation setup.
  std::size_t browser_cache_capacity = 0;
  /// Scheduled client crashes, applied in trace order (Hier-GD only; the
  /// other schemes have no individually addressable client caches).
  /// Superseded by `churn_events` (a crash-only schedule); both feed the
  /// same ChurnEngine and may be combined.
  std::vector<ClientFailure> client_failures{};
  /// Full churn schedule (crashes, delayed rejoins, fresh joins, periodic
  /// repair passes), executed by the fault::ChurnEngine at the scheduled
  /// trace positions. Like client_failures, requires individually
  /// addressable client caches (Hier-GD or Squirrel).
  std::vector<fault::ChurnEvent> churn_events{};
  /// Probability in [0, 1) that any single P2P transfer (lookup, destage,
  /// push) is lost and must be retried after a timeout — each loss costs the
  /// request an extra Tp2p of (wasted) latency. Hier-GD/Squirrel only. The
  /// loss stream is forked off `seed`, so enabling it never perturbs the
  /// workload draws.
  double p2p_loss_rate = 0.0;
  /// Invoke `checkpoint_hook` after every `checkpoint_interval` requests
  /// (and once at end-of-trace). 0 with a non-null hook = end-of-trace only.
  /// The hook receives the simulator mid-run plus the number of requests
  /// completed; fault::make_audit_hook() supplies the invariant auditor.
  std::uint64_t checkpoint_interval = 0;
  std::function<void(const Simulator&, std::uint64_t)> checkpoint_hook{};
  pastry::OverlayConfig overlay{};
  std::uint64_t seed = 7;
  /// Optional precomputed statistics of the trace this config will run on
  /// (FC/FC-EC derive their perfect-frequency table from them). run_sweep
  /// shares one analysis across all its jobs instead of re-scanning the
  /// trace per simulator; when absent, the constructor analyzes the trace
  /// itself, so run_single and direct construction are unaffected.
  std::shared_ptr<const workload::TraceStats> trace_stats{};
  /// Optional precomputed ring-placement table: `(*object_ids)[o]` must be
  /// SHA-1(object_url(o)) for every object of the trace. Hier-GD/Squirrel
  /// build it in the constructor when absent; run_sweep shares one table
  /// across all its jobs (like trace_stats) so the per-object hashing runs
  /// once per sweep instead of once per job. Must cover exactly the trace's
  /// distinct_objects when supplied.
  std::shared_ptr<const std::vector<Uint128>> object_ids{};
  /// Observability registry every component of this simulation binds its
  /// instruments into (schema "webcache-metrics/1"; see README). When null
  /// the simulator creates a private one — reachable via
  /// Simulator::registry() — so metrics are always collected; supplying a
  /// registry lets callers keep it after the Simulator is gone.
  std::shared_ptr<obs::Registry> registry{};
  /// Capture a counter/gauge snapshot every N requests (0 = off). Ignored
  /// when the build disables the tracer layer (WEBCACHE_OBS_TRACE=OFF).
  std::uint64_t snapshot_interval = 0;
  /// Ring capacity of the request-level event tracer (0 = off; ignored when
  /// WEBCACHE_OBS_TRACE=OFF). Each served request records a TraceEvent
  /// {request index, ServedFrom code, latency, wasted latency}.
  std::size_t trace_capacity = 0;
  /// Replay chunk budget: how many requests run() pulls per TraceSource
  /// window before hinting the consumed prefix away. Bounds the resident
  /// set of an out-of-core replay; irrelevant to results (the request
  /// sequence is identical for any chunking). 0 = the process default
  /// (workload::default_replay_chunk, WEBCACHE_REPLAY_CHUNK overridable).
  std::size_t replay_chunk = 0;
  /// Pipelined execution window: how many requests the run loop
  /// address-generates (routing, index/slot resolution, advisory
  /// prefetches) ahead of executing them. 0 = the process default
  /// (sim::default_pipeline_window: WEBCACHE_PIPELINE, 16 when unset);
  /// 1 disables the pipeline. Purely a throughput knob — prefetches are
  /// advisory and address generation is read-only, so results are
  /// byte-identical for every value (pipeline_test pins this).
  unsigned pipeline_window = 0;
  /// Intra-run sharding: number of worker shards one simulation is
  /// partitioned across. 0 (the default) selects the classic sequential
  /// engine, bit-for-bit unchanged. Any value >= 1 selects the sharded
  /// engine: proxy clusters (and their client populations) are partitioned
  /// round-robin over min(sim_shards, num_proxies) worker threads, each
  /// replaying its clusters' slice of the trace against its own data plane,
  /// with cross-cluster interactions resolved through an epoch-digest
  /// barrier protocol keyed on trace position. Results are byte-identical
  /// for EVERY sim_shards >= 1 (the value only sets the parallelism), but
  /// the cooperative schemes' numbers differ in detail from the sequential
  /// engine because remote lookups consult epoch-start digests (see README
  /// "Sharded runs"). Configurations whose semantics are inherently global
  /// — FC/FC-EC (clairvoyant coordinator), interval snapshots, the event
  /// tracer, checkpoint/audit hooks, a single proxy, or cooperative runs
  /// with > 256 proxies (the cooperation digests are fixed 256-bit
  /// ClusterBitsets) — fall back to the sequential engine at any value.
  unsigned sim_shards = 0;
  /// Digest refresh period of the sharded engine, in trace positions
  /// (0 = default, 8192). A semantic parameter of the sharded engine:
  /// cross-cluster lookups within an epoch see the epoch-start digest.
  /// Results depend on it — but never on sim_shards, threads, or
  /// replay_chunk. Ignored by the sequential engine.
  std::uint64_t shard_epoch = 0;
};

class Simulator {
 public:
  /// The source must outlive the simulator; it is replayed in sequential
  /// chunks (SimConfig::replay_chunk), so out-of-core sources run in
  /// bounded memory. FC/FC-EC precompute the perfect frequency table from
  /// the stream here (one extra chunked pass).
  Simulator(SimConfig config, const workload::TraceSource& source);

  /// In-memory convenience: wraps `trace` in a MaterializedTraceSource the
  /// simulator owns. The trace must outlive the simulator.
  Simulator(SimConfig config, const workload::Trace& trace);
  ~Simulator();

  /// Replays the full trace and returns the metrics (a view over the
  /// registry's instruments). One-shot.
  Metrics run();

  [[nodiscard]] const SimConfig& config() const { return config_; }

  /// The observability registry this simulation feeds (the config's, or the
  /// private fallback). Valid for the simulator's lifetime; exporters read
  /// it after run().
  [[nodiscard]] obs::Registry& registry() { return *registry_; }
  [[nodiscard]] const obs::Registry& registry() const { return *registry_; }

  /// Current Metrics view over the registry (callable mid-run from
  /// instrumentation hooks; run() returns the final one).
  [[nodiscard]] Metrics metrics_view() const;

  /// Introspection for tests/ablations (null unless the scheme uses them).
  [[nodiscard]] const p2p::P2PClientCache* p2p_of(unsigned proxy) const;
  [[nodiscard]] const directory::LookupDirectory* directory_of(unsigned proxy) const;

  // --- read-only introspection for the invariant auditor -------------------
  /// The proxy-tier cache: NC/SC/FC's LFU/cost-benefit cache or Hier-GD's
  /// greedy-dual cache; null for the tiered/unified/Squirrel schemes.
  [[nodiscard]] const cache::Cache* proxy_cache_of(unsigned proxy) const;
  [[nodiscard]] const TieredCache* tiered_of(unsigned proxy) const;
  [[nodiscard]] const cache::CostBenefitCache* unified_of(unsigned proxy) const;
  [[nodiscard]] const cache::LruCache* tier_tracker_of(unsigned proxy) const;
  [[nodiscard]] const cache::LruCache* browser_of(unsigned proxy, ClientNum client) const;
  [[nodiscard]] const DenseMap<double>* fetch_costs_of(unsigned proxy) const;
  [[nodiscard]] bool residency_index_enabled() const { return residency_enabled_; }
  [[nodiscard]] std::uint64_t residency_primary(ObjectNum object) const {
    return residency_mask(res_primary_, object);
  }
  [[nodiscard]] std::uint64_t residency_secondary(ObjectNum object) const {
    return residency_mask(res_secondary_, object);
  }
  /// Upper bound (exclusive) on object ids with possibly non-zero residency.
  [[nodiscard]] ObjectNum residency_universe() const {
    return static_cast<ObjectNum>(std::max(res_primary_.size(), res_secondary_.size()));
  }
  [[nodiscard]] const fault::ChurnEngine& churn() const { return churn_; }

  /// True when `config` actually runs the sharded engine at sim_shards >= 1;
  /// false means any sim_shards value falls back to the sequential engine
  /// (see SimConfig::sim_shards for the list of sequential-only shapes).
  [[nodiscard]] static bool sharding_supported(const SimConfig& config);

 private:
  friend struct ShardedRunEngine;  ///< the sharded run loop (sharded_run.cpp)

  struct Proxy {
    // NC / SC / FC
    std::unique_ptr<cache::Cache> cache;
    // NC-EC / SC-EC
    std::unique_ptr<TieredCache> tiered;
    // FC-EC
    std::unique_ptr<cache::CostBenefitCache> unified;
    std::unique_ptr<cache::LruCache> tier_tracker;
    // Hier-GD (greedy-dual by default; see HierProxyPolicy)
    std::unique_ptr<cache::Cache> gd;
    std::unique_ptr<p2p::P2PClientCache> p2p;
    std::unique_ptr<directory::LookupDirectory> dir;
    /// Last-paid retrieval cost per object (greedy-dual credits),
    /// direct-indexed by the dense object id (sized to the trace universe).
    DenseMap<double> fetch_cost;
    /// Private browser caches, one per client (empty unless enabled).
    std::vector<std::unique_ptr<cache::LruCache>> browsers;
  };

  void step(const Request& request, unsigned proxy_index);
  /// Address-generation half of the pipeline: issues advisory prefetches on
  /// every index slot step() will chase for this request (policy indexes,
  /// heap position entries, directory slots, residency words, browser
  /// caches). Read-only; never observable in results.
  void prefetch_request(const Request& request, unsigned proxy_index) const;
  /// Browser-cache front end: returns true when the request was absorbed.
  bool browser_lookup(const Request& request, unsigned proxy_index);
  void browser_fill(const Request& request, unsigned proxy_index);
  /// Executes one due churn event (the ChurnEngine's dispatcher).
  void apply_churn(const fault::ChurnEvent& event);
  /// Draws one P2P transfer against the loss model; a loss queues an extra
  /// Tp2p of wasted latency that account_raw folds into the current request.
  void maybe_lose_p2p_message();
  void step_basic(const Request& request, unsigned proxy_index);
  void step_tiered_ec(const Request& request, unsigned proxy_index);
  void step_fc_ec(const Request& request, unsigned proxy_index);
  void step_hier_gd(const Request& request, unsigned proxy_index);
  void step_squirrel(const Request& request, unsigned proxy_index);

  // --- cluster residency index -------------------------------------------
  // object → bitmask of proxies holding it, maintained from the step
  // functions' insert/evict/erase results (plus the TieredCache transition
  // hook), so the remote-lookup scans become one array read + a ring-ordered
  // bit scan instead of per-proxy hash probes. Enabled for cooperating
  // schemes with <= 64 proxies; the historical per-proxy probe loops remain
  // as the fallback above that. What each mask means is per scheme:
  //   SC / FC    res_primary_ = proxy cache membership
  //   SC-EC      res_primary_ = tier 1 (proxy), res_secondary_ = tier 2 (P2P)
  //   FC-EC      res_primary_ = tier tracker, res_secondary_ = unified cache
  //              (tracker ⊆ unified; tier-2 candidates = unified & ~tracker)
  //   Hier-GD    res_primary_ = proxy greedy-dual cache membership
  [[nodiscard]] std::uint64_t residency_mask(const std::vector<std::uint64_t>& masks,
                                             ObjectNum object) const {
    return object < masks.size() ? masks[object] : 0;
  }
  void residency_set(std::vector<std::uint64_t>& masks, ObjectNum object, unsigned proxy) {
    if (object >= masks.size()) masks.resize(object + 1, 0);
    masks[object] |= std::uint64_t{1} << proxy;
  }
  void residency_clear(std::vector<std::uint64_t>& masks, ObjectNum object, unsigned proxy) {
    if (object < masks.size()) masks[object] &= ~(std::uint64_t{1} << proxy);
  }
  /// First cooperating proxy in ring order (local+1, local+2, ... mod P)
  /// whose bit is set; -1 when none. This is exactly the proxy the
  /// historical scan loops selected.
  [[nodiscard]] int first_remote_holder(std::uint64_t mask, unsigned local) const;

  /// Records one served request: outcome counters + latency (+ waste and
  /// per-hop charges). The latency charged is the model's request_latency
  /// for `where` plus the waste and hop surcharges.
  void account(net::ServedFrom where, double wasted_latency, double hop_latency = 0.0);
  /// Same, but with an explicitly computed total latency (Squirrel's
  /// proxy-less cost model differs from LatencyModel::request_latency).
  void account_raw(net::ServedFrom where, double latency, double wasted_latency,
                   double hop_latency);

  /// Hier-GD: destages a proxy eviction into the P2P cache, piggybacked on
  /// the response to `via_client`, and maintains the lookup directory.
  void destage_hier_gd(Proxy& proxy, ObjectNum victim, ClientNum via_client);

  /// Hier-GD: admits a fetched object into the proxy's greedy-dual cache.
  void admit_hier_gd(unsigned proxy_index, ObjectNum object, double cost,
                     ClientNum via_client);

  /// Marks an object as recently proxy-resident for FC-EC attribution.
  void track_tier1(unsigned proxy_index, ObjectNum object);

  [[nodiscard]] ClientNum client_of(const Request& request, const Proxy& proxy) const;

  /// The simulator's own request-outcome instruments ("sim.*"). Bound once
  /// at construction; every served request costs a handful of
  /// pointer-indirect increments, same order as the struct-member
  /// increments they replaced.
  struct Instruments {
    Instruments(obs::Registry& registry, const net::LatencyModel& latencies);
    obs::Counter& requests;
    obs::Counter& hits_browser;
    obs::Counter& hits_local_proxy;
    obs::Counter& hits_local_p2p;
    obs::Counter& hits_remote_proxy;
    obs::Counter& hits_remote_p2p;
    obs::Counter& server_fetches;
    obs::Counter& fault_crashes;       ///< "fault.crashes"
    obs::Counter& fault_rejoins;       ///< "fault.rejoins"
    obs::Counter& fault_joins;         ///< "fault.joins"
    obs::Counter& fault_repairs;       ///< "fault.repairs" (scheduled passes)
    obs::Counter& fault_objects_lost;  ///< "fault.objects_lost" (crash casualties)
    obs::Gauge& total_latency;
    obs::Gauge& wasted_p2p_latency;
    obs::Gauge& p2p_hop_latency_total;
    RunningStat& p2p_hops;
    Histogram& latency_hist;  ///< per-request total latency distribution
    Histogram& hops_hist;     ///< Pastry hops per P2P operation
  };

  /// Primary constructor: exactly one of `owned` / `external` is set; the
  /// public constructors forward here.
  Simulator(SimConfig config, std::unique_ptr<const workload::TraceSource> owned,
            const workload::TraceSource* external);

  // --- intra-run sharding (sim/sharded_run.cpp) ----------------------------
  /// All sharded-engine state: per-cluster lanes (accumulators, churn/loss
  /// substreams, digest change logs, instrument index ranges), per-shard
  /// registries, cooperation digests and the deferred-op outboxes. Null when
  /// the sequential engine runs.
  struct ShardedState;
  /// The sharded run loop: per epoch, phase 1 (parallel local replay against
  /// epoch-start digests), phase 2a (apply inbound cross-cluster ops in trace
  /// order), phase 2b (complete own deferred requests), then a single-threaded
  /// digest/outbox flush; finally folds every lane and shard registry into
  /// the canonical registry in cluster order.
  Metrics run_sharded();
  void sharded_fold();

  SimConfig config_;
  std::unique_ptr<const workload::TraceSource> owned_source_;  ///< Trace-ctor adapter
  const workload::TraceSource* source_;                        ///< never null
  std::unique_ptr<cache::CostBenefitCoordinator> coordinator_;
  std::shared_ptr<const std::vector<Uint128>> object_ids_;
  std::vector<Proxy> proxies_;
  fault::ChurnEngine churn_;  ///< merged client_failures + churn_events
  fault::LossModel loss_;
  /// Wasted latency from P2P losses since the last account_raw; flushed into
  /// the request in flight (losses only occur on its own transfers).
  double pending_loss_waste_ = 0.0;
  std::shared_ptr<obs::Registry> registry_;  // never null after construction
  Instruments inst_;
  net::MessageCounters msg_;  ///< simulator-level protocol messages ("net.*")
  std::uint64_t now_ = 0;     ///< trace position of the request in flight
  unsigned pipeline_window_ = 1;  ///< resolved SimConfig::pipeline_window
  bool ran_ = false;
  bool residency_enabled_ = false;
  std::vector<std::uint64_t> res_primary_;
  std::vector<std::uint64_t> res_secondary_;
  std::unique_ptr<ShardedState> sharded_;  ///< non-null = sharded engine runs
};

/// Convenience: construct, run, return metrics.
[[nodiscard]] Metrics run_simulation(const SimConfig& config, const workload::Trace& trace);
[[nodiscard]] Metrics run_simulation(const SimConfig& config,
                                     const workload::TraceSource& source);

}  // namespace webcache::sim
