// StepPipeline: batched lookahead execution for the simulator hot loops.
//
// The sequential run loop and the sharded engine's phase-1 replay both chase
// dependent cache-missing loads one request at a time: DenseMap/FlatMap
// slots, EvictionHeap position entries, directory stamps, residency/digest
// words. The TraceSource already hands the replay a whole chunk of upcoming
// requests, so the memory-level parallelism is sitting there unexploited.
//
// StepPipeline splits each replay window into blocks of `window` requests
// and drives every block in two phases:
//
//   address generation  decode the block's requests, resolve proxy/cluster
//                       routing (t mod P — a pure function of position) and
//                       issue advisory prefetches on every data-plane slot
//                       the request will probe. Strictly read-only.
//   execution           run the classic per-request step logic over the
//                       block, in trace order, unchanged.
//
// With `window` = K, up to K independent miss chains are in flight while
// the first request of the block executes — group prefetching — instead of
// one. Because the address-generation phase mutates nothing and prefetches
// are advisory, results are byte-identical for EVERY window value; window
// is a pure performance knob (SimConfig::pipeline_window, --pipeline-window,
// WEBCACHE_PIPELINE). window <= 1 degenerates to the classic sequential
// loop with no prefetch pass at all.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace webcache::sim {

/// Lookahead depth when neither SimConfig::pipeline_window nor
/// WEBCACHE_PIPELINE says otherwise. Deep enough to cover the latency of a
/// DRAM miss with a block of independent ones, shallow enough that a block's
/// prefetched lines survive in L1/L2 until their execution phase.
inline constexpr unsigned kDefaultPipelineWindow = 16;

/// Upper bound on the window: beyond this, early prefetches start evicting
/// each other before execution reaches them.
inline constexpr unsigned kMaxPipelineWindow = 1024;

/// Process-default pipeline window from WEBCACHE_PIPELINE: unset or "ON"
/// selects kDefaultPipelineWindow (the engine defaults ON); "OFF" (or "0"/
/// "1") disables lookahead; a number in [1, kMaxPipelineWindow] sets the
/// window. Parsed once, like the other WEBCACHE_* process knobs.
[[nodiscard]] unsigned default_pipeline_window();

/// Resolves a SimConfig::pipeline_window value: 0 defers to the process
/// default; anything else is clamped to [1, kMaxPipelineWindow].
[[nodiscard]] unsigned resolve_pipeline_window(unsigned configured);

class StepPipeline {
 public:
  explicit StepPipeline(unsigned window) : window_(window == 0 ? 1 : window) {}

  [[nodiscard]] unsigned window() const { return window_; }

  /// Drives the requests of `win` (trace positions base .. base+win.size())
  /// block by block: `prefetch(request, t)` over the whole block first, then
  /// `exec(request, t)` in trace order. At window 1 the prefetch pass is
  /// skipped entirely.
  template <typename PrefetchFn, typename ExecFn>
  void drive(std::span<const Request> win, std::uint64_t base,
             PrefetchFn&& prefetch, ExecFn&& exec) const {
    const std::size_t n = win.size();
    for (std::size_t i = 0; i < n;) {
      const std::size_t end = std::min(n, i + window_);
      if (window_ > 1) {
        for (std::size_t j = i; j < end; ++j) prefetch(win[j], base + j);
      }
      for (std::size_t j = i; j < end; ++j) exec(win[j], base + j);
      i = end;
    }
  }

  /// Sharded variant: only positions with `owns(t)` true belong to this
  /// shard's pipeline; foreign positions are skipped without decode. Blocks
  /// are formed from owned requests only, so a shard still keeps `window`
  /// independent miss chains in flight regardless of how its clusters
  /// interleave with the others'.
  template <typename OwnsFn, typename PrefetchFn, typename ExecFn>
  void drive_filtered(std::span<const Request> win, std::uint64_t base,
                      OwnsFn&& owns, PrefetchFn&& prefetch, ExecFn&& exec) {
    batch_.clear();
    const std::size_t n = win.size();
    for (std::size_t i = 0; i < n;) {
      batch_.clear();
      while (i < n && batch_.size() < window_) {
        if (owns(base + i)) batch_.push_back(static_cast<std::uint32_t>(i));
        ++i;
      }
      if (window_ > 1) {
        for (const std::uint32_t j : batch_) prefetch(win[j], base + j);
      }
      for (const std::uint32_t j : batch_) exec(win[j], base + j);
    }
  }

 private:
  unsigned window_;
  std::vector<std::uint32_t> batch_;  ///< drive_filtered scratch (reused)
};

}  // namespace webcache::sim
