// Least-Recently-Used cache: classic doubly-linked recency list over an
// unordered index; all operations O(1). Used by the temporal-locality model
// inside ProWGen, as a baseline policy in the ablation benches, and as the
// reference recency structure in tests.
#pragma once

#include <list>

#include "cache/cache.hpp"
#include "common/dense_map.hpp"

namespace webcache::cache {

class LruCache final : public Cache {
 public:
  explicit LruCache(std::size_t capacity) : Cache(capacity) {}

  [[nodiscard]] std::size_t size() const override { return index_.size(); }
  [[nodiscard]] bool contains(ObjectNum object) const override {
    return index_.contains(object);
  }
  void prefetch(ObjectNum object) const override { index_.prefetch(object); }

  void access(ObjectNum object, double cost) override;
  InsertResult insert(ObjectNum object, double cost) override;
  bool erase(ObjectNum object) override;
  [[nodiscard]] std::optional<ObjectNum> peek_victim() const override;
  [[nodiscard]] std::vector<ObjectNum> contents() const override;

 private:
  // Front = most recently used.
  std::list<ObjectNum> order_;
  FlatMap<std::list<ObjectNum>::iterator> index_;
};

}  // namespace webcache::cache
