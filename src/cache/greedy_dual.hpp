// Greedy-dual replacement (N. Young, "On-line file caching", SODA 1998).
//
// Hier-GD runs this policy at the proxy *and* inside every client cache.
// Each cached object carries a credit H initialized to its retrieval cost;
// eviction removes the minimum-H object and conceptually deducts that
// minimum from every remaining object's credit; a hit restores the object's
// credit to its cost. Korupolu & Dahlin observed that greedy-dual gives
// *implicit* coordination between cooperating caches — cheap-to-refetch
// objects (available from a nearby cache) are evicted before expensive ones
// — which is the property Hier-GD builds on.
//
// This is the "efficient implementation" the paper cites: instead of
// decrementing every credit on each eviction (O(n)), a global inflation
// value L accumulates the deducted minima, credits are stored as H + L at
// the time they were set, and comparisons remain consistent — O(log n) per
// operation via an indexed eviction heap.
#pragma once

#include <cstdint>
#include <utility>

#include "cache/cache.hpp"
#include "cache/eviction_heap.hpp"

namespace webcache::cache {

class GreedyDualCache final : public Cache {
 public:
  explicit GreedyDualCache(std::size_t capacity) : Cache(capacity) {}

  [[nodiscard]] std::size_t size() const override { return order_.size(); }
  [[nodiscard]] bool contains(ObjectNum object) const override {
    return order_.contains(object);
  }
  void prefetch(ObjectNum object) const override { order_.prefetch(object); }

  /// On a hit, the object's credit resets to `cost` (plus inflation).
  void access(ObjectNum object, double cost) override;

  /// Inserts with credit = `cost` (plus inflation), evicting the minimum-
  /// credit object when full.
  InsertResult insert(ObjectNum object, double cost) override;

  bool erase(ObjectNum object) override;
  void reserve_universe(std::size_t universe) override {
    order_.reserve_universe(universe);
  }
  [[nodiscard]] std::optional<ObjectNum> peek_victim() const override;
  [[nodiscard]] std::vector<ObjectNum> contents() const override;

  /// Current (deflated) credit of a cached object: H as the textbook
  /// algorithm defines it. Exposed for the brute-force equivalence tests.
  [[nodiscard]] double credit(ObjectNum object) const;

  /// Accumulated inflation L (sum of eviction minima).
  [[nodiscard]] double inflation() const { return inflation_; }

 private:
  // Per-object state is exactly (cost + inflation at set time, FIFO seq) —
  // the eviction key itself — so the heap doubles as the only object index;
  // there is no separate entry table to keep in sync. seq is unique per
  // entry, so (credit, seq) orders totally — identical to the historical
  // std::set<tuple<credit, seq, object>> victim order.
  using Key = std::pair<double, std::uint64_t>;

  double inflation_ = 0.0;
  std::uint64_t seq_ = 0;
  EvictionHeap<Key> order_;
};

}  // namespace webcache::cache
