// Least-Frequently-Used cache.
//
// NC, SC, NC-EC and SC-EC use LFU replacement in the paper. Three variants
// are provided, following the taxonomy of Breslau et al. (INFOCOM'99) and
// the web-caching practice of the paper's era:
//   * kInCache — frequency counts exist only while an object is cached and
//     are forgotten on eviction; pure frequency order.
//   * kPerfect — counts persist across evictions ("Perfect LFU"), so a
//     frequently re-fetched object re-enters the cache with its history.
//   * kDynamicAging — LFU-DA (Arlitt et al., "Evaluating content management
//     techniques for Web proxy caches"): eviction key = count + L, where L
//     inflates to each eviction victim's key. Aging lets the cache shed
//     formerly-hot objects and track the current working set — the behaviour
//     deployed "LFU" web caches of the period actually had, and the variant
//     that responds to temporal locality (pure LFU provably cannot when the
//     popularity marginal is fixed). This is the default.
// Ties are broken toward the least recently used object.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "cache/cache.hpp"
#include "cache/eviction_heap.hpp"
#include "common/dense_map.hpp"

namespace webcache::cache {

enum class LfuMode {
  kInCache,       ///< counts reset on eviction
  kPerfect,       ///< counts persist for the full run
  kDynamicAging,  ///< LFU-DA: count + inflation key (web-proxy practice)
};

class LfuCache final : public Cache {
 public:
  explicit LfuCache(std::size_t capacity, LfuMode mode = LfuMode::kDynamicAging)
      : Cache(capacity), mode_(mode) {}

  [[nodiscard]] std::size_t size() const override { return entries_.size(); }
  [[nodiscard]] bool contains(ObjectNum object) const override {
    return entries_.contains(object);
  }
  void prefetch(ObjectNum object) const override {
    entries_.prefetch(object);
    order_.prefetch(object);
  }

  void access(ObjectNum object, double cost) override;
  InsertResult insert(ObjectNum object, double cost) override;
  bool erase(ObjectNum object) override;
  void reserve_universe(std::size_t universe) override {
    order_.reserve_universe(universe);
  }
  [[nodiscard]] std::optional<ObjectNum> peek_victim() const override;
  [[nodiscard]] std::vector<ObjectNum> contents() const override;

  /// Frequency currently attributed to an object (0 if unknown). Exposed for
  /// tests and the workload analyzer.
  [[nodiscard]] std::uint64_t frequency(ObjectNum object) const;

  [[nodiscard]] LfuMode mode() const { return mode_; }

  /// Current aging inflation L (0 unless kDynamicAging has evicted).
  [[nodiscard]] std::uint64_t aging_floor() const { return aging_floor_; }

 private:
  struct Entry {
    std::uint64_t freq = 0;  ///< observed access count
    std::uint64_t key = 0;   ///< eviction key: freq (+ aging floor in kDynamicAging)
    std::uint64_t last_seq = 0;
  };
  // Ordered by (key, recency): the heap minimum is the eviction victim, with
  // the least recent access breaking key ties. last_seq is unique per entry,
  // so the order is total and matches the historical std::set<tuple> order.
  using Key = std::pair<std::uint64_t, std::uint64_t>;

  [[nodiscard]] static Key key_of(const Entry& e) { return {e.key, e.last_seq}; }

  LfuMode mode_;
  std::uint64_t seq_ = 0;
  std::uint64_t aging_floor_ = 0;
  EvictionHeap<Key> order_;
  FlatMap<Entry> entries_;
  // Persistent counts for kPerfect mode (also counts accesses to objects
  // made while cached, so the count is the true observed frequency), indexed
  // directly by the dense object id.
  std::vector<std::uint64_t> history_;

  std::uint64_t& history_slot(ObjectNum object) {
    if (object >= history_.size()) history_.resize(static_cast<std::size_t>(object) + 1, 0);
    return history_[object];
  }
};

}  // namespace webcache::cache
