// Named replacement/admission policy selection — the seam that lets any
// scheme swap its proxy-tier or client-tier cache for one of the modern
// policies (TinyLFU admission, W-TinyLFU, ARC) without new wiring per
// combination. SimConfig carries two PolicyKind fields; the CLI parses them
// from --proxy-policy/--client-policy and the WEBCACHE_POLICY environment
// variable.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "cache/cache.hpp"
#include "cache/lfu.hpp"

namespace webcache::cache {

/// Selectable cache policy. kDefault keeps the owning scheme's paper policy
/// (LFU at NC/SC/*-EC proxies, greedy-dual at Hier-GD proxies and all
/// per-client caches).
enum class PolicyKind {
  kDefault,
  kLru,
  kLfu,
  kGreedyDual,
  kTinyLfuLru,  ///< AdmittedCache(TinyLFU) fronting a plain LRU
  kWTinyLfu,
  kArc,
};

/// Canonical spelling ("default", "lru", "lfu", "gd", "tinylfu-lru",
/// "w-tinylfu", "arc").
[[nodiscard]] std::string_view to_string(PolicyKind kind);

/// Parses a policy name (the canonical spellings plus the aliases
/// "greedy-dual" and "wtinylfu"); std::nullopt for anything else.
[[nodiscard]] std::optional<PolicyKind> policy_from_string(std::string_view name);

/// Comma-separated list of every parseable policy name, for error messages
/// and --help text.
[[nodiscard]] std::string policy_names();

/// Constructs the selected policy at `capacity`. kDefault returns nullptr —
/// the caller supplies its scheme's own default. `lfu_mode` only affects
/// kLfu.
[[nodiscard]] std::unique_ptr<Cache> make_cache(PolicyKind kind, std::size_t capacity,
                                                LfuMode lfu_mode = LfuMode::kDynamicAging);

}  // namespace webcache::cache
