// Replacement-policy cache interface.
//
// Every cache in the system — proxy caches, the pooled "ideal" P2P cache of
// the *-EC upper-bound schemes, and each individual client cache under
// Hier-GD — is a fixed-capacity store of unit-size objects behind this
// interface, so schemes differ only in which policy they instantiate and how
// caches are wired together.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "obs/registry.hpp"

namespace webcache::cache {

/// Result of attempting to insert an object.
struct InsertResult {
  /// False when the policy declined to cache the object (cost-benefit does
  /// this when the newcomer is worth less than the cheapest incumbent).
  bool inserted = false;
  /// Object evicted to make room, when one was.
  std::optional<ObjectNum> evicted;
};

/// Abstract fixed-capacity cache of unit-size objects.
///
/// Contract:
///  * size() <= capacity() at all times;
///  * access() must only be called for objects currently cached;
///  * insert() must only be called for objects not currently cached;
///  * `cost` is the retrieval latency the caller paid (or would pay) to
///    fetch the object; value-based policies (greedy-dual, cost-benefit)
///    use it, recency/frequency policies ignore it.
class Cache {
 public:
  explicit Cache(std::size_t capacity) : capacity_(capacity) {}
  virtual ~Cache() = default;

  Cache(const Cache&) = delete;
  Cache& operator=(const Cache&) = delete;

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] bool full() const { return size() >= capacity_; }
  [[nodiscard]] virtual bool contains(ObjectNum object) const = 0;

  /// Advisory hint that `object` is about to be probed (contains/access/
  /// insert): policies prefetch the index and ordering slots that probe will
  /// chase. Strictly read-only and never observable in results — the
  /// pipelined request engine issues it a window of requests ahead.
  virtual void prefetch(ObjectNum /*object*/) const {}

  /// Records a hit on a cached object (recency/frequency/value bookkeeping).
  virtual void access(ObjectNum object, double cost) = 0;

  /// Offers an uncached object for insertion.
  virtual InsertResult insert(ObjectNum object, double cost) = 0;

  /// Removes a specific object (e.g. invalidation). Returns true if present.
  virtual bool erase(ObjectNum object) = 0;

  /// Hint that object ids are dense in [0, universe) and this cache may hold
  /// a universe-scale population (proxy caches). Policies may preallocate
  /// direct-indexed structures; per-client caches should NOT receive this
  /// hint — a universe-sized array per client would defeat the point.
  virtual void reserve_universe(std::size_t /*universe*/) {}

  /// The object the policy would evict next, if the cache is non-empty.
  [[nodiscard]] virtual std::optional<ObjectNum> peek_victim() const = 0;

  /// Snapshot of cached objects in unspecified order (directories, tests).
  [[nodiscard]] virtual std::vector<ObjectNum> contents() const = 0;

  /// Binds policy-level counters (`<prefix>hits`, `<prefix>insertions`,
  /// `<prefix>evictions`, `<prefix>declined`) into `registry`. Multiple
  /// caches may bind the same prefix to aggregate (e.g. the per-client
  /// caches of one cluster). Unbound caches pay one null check per
  /// operation.
  void bind_observability(obs::Registry& registry, const std::string& prefix) {
    obs_hits_ = &registry.counter(prefix + "hits");
    obs_insertions_ = &registry.counter(prefix + "insertions");
    obs_evictions_ = &registry.counter(prefix + "evictions");
    obs_declined_ = &registry.counter(prefix + "declined");
    bind_policy_observability(registry, prefix);
  }

 protected:
  /// Policies with instruments beyond the four standard counters (the
  /// TinyLFU admission sketch, ARC's adaptation state) bind them here, under
  /// the `<prefix>policy.` namespace (see scripts/check_metrics_schema.py).
  virtual void bind_policy_observability(obs::Registry& /*registry*/,
                                         const std::string& /*prefix*/) {}

  /// Policies call these from access()/insert(); no-ops until bound.
  void obs_hit() {
    if (obs_hits_ != nullptr) obs_hits_->inc();
  }
  void obs_inserted() {
    if (obs_insertions_ != nullptr) obs_insertions_->inc();
  }
  void obs_evicted() {
    if (obs_evictions_ != nullptr) obs_evictions_->inc();
  }
  void obs_declined() {
    if (obs_declined_ != nullptr) obs_declined_->inc();
  }

  std::size_t capacity_;

 private:
  obs::Counter* obs_hits_ = nullptr;
  obs::Counter* obs_insertions_ = nullptr;
  obs::Counter* obs_evictions_ = nullptr;
  obs::Counter* obs_declined_ = nullptr;
};

}  // namespace webcache::cache
