// Replacement-policy cache interface.
//
// Every cache in the system — proxy caches, the pooled "ideal" P2P cache of
// the *-EC upper-bound schemes, and each individual client cache under
// Hier-GD — is a fixed-capacity store of unit-size objects behind this
// interface, so schemes differ only in which policy they instantiate and how
// caches are wired together.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/types.hpp"

namespace webcache::cache {

/// Result of attempting to insert an object.
struct InsertResult {
  /// False when the policy declined to cache the object (cost-benefit does
  /// this when the newcomer is worth less than the cheapest incumbent).
  bool inserted = false;
  /// Object evicted to make room, when one was.
  std::optional<ObjectNum> evicted;
};

/// Abstract fixed-capacity cache of unit-size objects.
///
/// Contract:
///  * size() <= capacity() at all times;
///  * access() must only be called for objects currently cached;
///  * insert() must only be called for objects not currently cached;
///  * `cost` is the retrieval latency the caller paid (or would pay) to
///    fetch the object; value-based policies (greedy-dual, cost-benefit)
///    use it, recency/frequency policies ignore it.
class Cache {
 public:
  explicit Cache(std::size_t capacity) : capacity_(capacity) {}
  virtual ~Cache() = default;

  Cache(const Cache&) = delete;
  Cache& operator=(const Cache&) = delete;

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] bool full() const { return size() >= capacity_; }
  [[nodiscard]] virtual bool contains(ObjectNum object) const = 0;

  /// Records a hit on a cached object (recency/frequency/value bookkeeping).
  virtual void access(ObjectNum object, double cost) = 0;

  /// Offers an uncached object for insertion.
  virtual InsertResult insert(ObjectNum object, double cost) = 0;

  /// Removes a specific object (e.g. invalidation). Returns true if present.
  virtual bool erase(ObjectNum object) = 0;

  /// The object the policy would evict next, if the cache is non-empty.
  [[nodiscard]] virtual std::optional<ObjectNum> peek_victim() const = 0;

  /// Snapshot of cached objects in unspecified order (directories, tests).
  [[nodiscard]] virtual std::vector<ObjectNum> contents() const = 0;

 protected:
  std::size_t capacity_;
};

}  // namespace webcache::cache
