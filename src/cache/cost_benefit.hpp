// Coordinated cost-benefit replacement (after Lee, Sahu, Amiri &
// Venkatramani, IBM Research Report 2001).
//
// FC and FC-EC use this policy: the proxies of a cluster coordinate
// replacement to minimize the aggregate average latency of all clients,
// assuming perfect knowledge of per-object access frequencies. The value of
// a cached *copy* depends on how many replicas the cluster holds:
//
//   * the only copy in the cluster: evicting it forces every proxy to the
//     origin server — value = f * (Ts + (P-1) * (Ts - Tc)) where f is the
//     per-proxy access frequency of the object and P the cluster size;
//   * one of several copies: evicting it only costs the local clients the
//     proxy-to-proxy latency — value = f * Tc.
//
// A proxy inserts a fetched object only when the newcomer's value exceeds
// the cluster-wide cheapest cached copy *in its own cache* (capacity is per
// proxy); this avoids duplicating moderately popular objects, which is
// exactly the coordination advantage FC has over SC. Replica-count
// transitions (2 -> 1 and 1 -> 2) re-price the surviving/other copy, and the
// coordinator keeps every member cache's priority structure consistent.
//
// "Perfect frequency knowledge" is knowledge of the *future*: the driver
// reports every request via consume(), which decrements the object's
// remaining frequency and re-prices its cached copies. An object whose
// references are exhausted decays to value 0 and is evicted first — the
// clairvoyant behaviour that makes FC/FC-EC genuine upper bounds rather
// than a static placement heuristic.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "cache/cache.hpp"
#include "cache/eviction_heap.hpp"
#include "common/dense_map.hpp"

namespace webcache::cache {

class CostBenefitCache;

/// Cluster-wide state shared by the CostBenefitCaches of one proxy cluster.
class CostBenefitCoordinator {
 public:
  /// `per_proxy_frequency[o]` is the (perfect-knowledge) number of requests
  /// for object o each proxy receives over the run; `cluster_size` is P.
  CostBenefitCoordinator(std::vector<double> per_proxy_frequency, unsigned cluster_size,
                         double server_latency, double proxy_latency);

  [[nodiscard]] double frequency(ObjectNum object) const {
    return object < frequency_.size() ? frequency_[object] : 0.0;
  }

  [[nodiscard]] unsigned cluster_size() const { return cluster_size_; }

  /// Number of replicas of `object` currently cached across the cluster.
  [[nodiscard]] unsigned replica_count(ObjectNum object) const;

  /// True if some member other than `except` holds `object`.
  [[nodiscard]] bool held_elsewhere(ObjectNum object, const CostBenefitCache* except) const;

  /// Value of a copy of `object` given it would be one of `replicas` copies.
  [[nodiscard]] double copy_value(ObjectNum object, unsigned replicas) const;

  /// Reports one request for `object`: its remaining (future) frequency
  /// drops by one cluster-wide request (1/P per proxy) and any cached
  /// copies are re-priced. Call once per request, before replacement
  /// decisions for that request.
  void consume(ObjectNum object);

 private:
  friend class CostBenefitCache;

  void register_member(CostBenefitCache* cache);
  void unregister_member(CostBenefitCache* cache);
  void on_copy_added(ObjectNum object, CostBenefitCache* cache);
  void on_copy_removed(ObjectNum object, CostBenefitCache* cache);
  void reprice_holders(ObjectNum object);

  std::vector<double> frequency_;
  unsigned cluster_size_;
  double server_latency_;
  double proxy_latency_;
  std::vector<CostBenefitCache*> members_;
  // Direct-indexed by object id (an empty vector = no cached copies). A
  // cluster holds at most P pointers per object, so the slack is tiny and
  // replica lookups become one array read.
  std::vector<std::vector<CostBenefitCache*>> holders_;

  std::vector<CostBenefitCache*>* find_holders(ObjectNum object) {
    return object < holders_.size() && !holders_[object].empty() ? &holders_[object] : nullptr;
  }
  [[nodiscard]] const std::vector<CostBenefitCache*>* find_holders(ObjectNum object) const {
    return object < holders_.size() && !holders_[object].empty() ? &holders_[object] : nullptr;
  }
};

/// One proxy's cache under coordinated cost-benefit replacement.
class CostBenefitCache final : public Cache {
 public:
  CostBenefitCache(std::size_t capacity, CostBenefitCoordinator& coordinator);
  ~CostBenefitCache() override;

  [[nodiscard]] std::size_t size() const override { return entries_.size(); }
  [[nodiscard]] bool contains(ObjectNum object) const override {
    return entries_.contains(object);
  }
  void prefetch(ObjectNum object) const override {
    entries_.prefetch(object);
    order_.prefetch(object);
  }

  /// Values are static (perfect frequencies), so hits need no bookkeeping.
  void access(ObjectNum object, double cost) override;

  /// Coordinated insertion: declines when the newcomer's value does not
  /// exceed the local minimum-value copy. `cost` is unused — the policy
  /// prices copies from the frequency table and cluster latencies.
  InsertResult insert(ObjectNum object, double cost) override;

  bool erase(ObjectNum object) override;
  void reserve_universe(std::size_t universe) override {
    order_.reserve_universe(universe);
  }
  [[nodiscard]] std::optional<ObjectNum> peek_victim() const override;
  [[nodiscard]] std::vector<ObjectNum> contents() const override;

  /// Current priced value of a cached copy (tests).
  [[nodiscard]] double value_of(ObjectNum object) const;

 private:
  friend class CostBenefitCoordinator;

  /// Re-prices a cached copy after a cluster replica-count transition.
  void reprice(ObjectNum object, double new_value);

  struct Entry {
    double value = 0.0;
    std::uint64_t seq = 0;
  };
  // seq is unique per entry (repricing keeps it), so (value, seq) orders
  // distinct objects totally — identical to the historical
  // std::set<tuple<value, seq, object>> victim order.
  using Key = std::pair<double, std::uint64_t>;

  [[nodiscard]] static Key key_of(const Entry& e) { return {e.value, e.seq}; }

  CostBenefitCoordinator& coordinator_;
  std::uint64_t seq_ = 0;
  EvictionHeap<Key> order_;
  FlatMap<Entry> entries_;
};

}  // namespace webcache::cache
