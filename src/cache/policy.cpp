#include "cache/policy.hpp"

#include "cache/admission.hpp"
#include "cache/arc.hpp"
#include "cache/greedy_dual.hpp"
#include "cache/lru.hpp"
#include "cache/w_tinylfu.hpp"

namespace webcache::cache {

std::string_view to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kDefault: return "default";
    case PolicyKind::kLru: return "lru";
    case PolicyKind::kLfu: return "lfu";
    case PolicyKind::kGreedyDual: return "gd";
    case PolicyKind::kTinyLfuLru: return "tinylfu-lru";
    case PolicyKind::kWTinyLfu: return "w-tinylfu";
    case PolicyKind::kArc: return "arc";
  }
  return "default";
}

std::optional<PolicyKind> policy_from_string(std::string_view name) {
  if (name == "default") return PolicyKind::kDefault;
  if (name == "lru") return PolicyKind::kLru;
  if (name == "lfu") return PolicyKind::kLfu;
  if (name == "gd" || name == "greedy-dual") return PolicyKind::kGreedyDual;
  if (name == "tinylfu-lru") return PolicyKind::kTinyLfuLru;
  if (name == "w-tinylfu" || name == "wtinylfu") return PolicyKind::kWTinyLfu;
  if (name == "arc") return PolicyKind::kArc;
  return std::nullopt;
}

std::string policy_names() {
  return "default, lru, lfu, gd, tinylfu-lru, w-tinylfu, arc";
}

std::unique_ptr<Cache> make_cache(PolicyKind kind, std::size_t capacity, LfuMode lfu_mode) {
  switch (kind) {
    case PolicyKind::kDefault: return nullptr;
    case PolicyKind::kLru: return std::make_unique<LruCache>(capacity);
    case PolicyKind::kLfu: return std::make_unique<LfuCache>(capacity, lfu_mode);
    case PolicyKind::kGreedyDual: return std::make_unique<GreedyDualCache>(capacity);
    case PolicyKind::kTinyLfuLru:
      return std::make_unique<AdmittedCache>(std::make_unique<LruCache>(capacity));
    case PolicyKind::kWTinyLfu: return std::make_unique<WTinyLfuCache>(capacity);
    case PolicyKind::kArc: return std::make_unique<ArcCache>(capacity);
  }
  return nullptr;
}

}  // namespace webcache::cache
