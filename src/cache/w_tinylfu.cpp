#include "cache/w_tinylfu.hpp"

#include <algorithm>
#include <cassert>

namespace webcache::cache {

WTinyLfuCache::WTinyLfuCache(std::size_t capacity)
    : Cache(capacity),
      filter_(capacity),
      // ~1% recency window (at least one slot), 80% of the remainder
      // protected — the paper's recommended split.
      window_cap_(capacity == 0 ? 0 : std::max<std::size_t>(1, capacity / 100)),
      protected_cap_((capacity - std::min(capacity, window_cap_)) * 4 / 5) {}

void WTinyLfuCache::access(ObjectNum object, double /*cost*/) {
  note_sampled(filter_.record_access(object));
  Entry* entry = index_.find(object);
  assert(entry != nullptr && "WTinyLfuCache::access: object not cached");
  obs_hit();
  switch (entry->segment) {
    case Segment::kWindow:
      window_.splice(window_.begin(), window_, entry->pos);
      break;
    case Segment::kProtected:
      protected_.splice(protected_.begin(), protected_, entry->pos);
      break;
    case Segment::kProbation: {
      // A probation hit proves reuse: promote. Overflow demotes the
      // protected LRU back to probation MRU (objects never leave the cache
      // on a hit).
      protected_.splice(protected_.begin(), probation_, entry->pos);
      entry->segment = Segment::kProtected;
      if (protected_.size() > protected_cap_) {
        const ObjectNum demoted = protected_.back();
        probation_.splice(probation_.begin(), protected_, std::prev(protected_.end()));
        Entry* moved = index_.find(demoted);
        moved->pos = probation_.begin();
        moved->segment = Segment::kProbation;
      }
      break;
    }
  }
}

InsertResult WTinyLfuCache::insert(ObjectNum object, double /*cost*/) {
  assert(!index_.contains(object) && "WTinyLfuCache::insert: object already cached");
  note_sampled(filter_.record_access(object));
  if (capacity_ == 0) return {};
  InsertResult result;
  result.inserted = true;
  obs_inserted();
  window_.push_front(object);
  index_[object] = {window_.begin(), Segment::kWindow};
  if (window_.size() <= window_cap_) return result;

  // Window overflow: its LRU becomes the admission candidate. (The candidate
  // is never `object` itself — the window holds >= 2 entries here.)
  const ObjectNum candidate = window_.back();
  const std::size_t main_cap = capacity_ - window_cap_;
  if (main_cap == 0) {
    // Degenerate capacity (< 2): pure window LRU.
    window_.pop_back();
    index_.erase(candidate);
    result.evicted = candidate;
    obs_evicted();
    return result;
  }
  if (probation_.size() + protected_.size() < main_cap) {
    // Main region still filling: no duel needed.
    probation_.splice(probation_.begin(), window_, std::prev(window_.end()));
    Entry* moved = index_.find(candidate);
    moved->pos = probation_.begin();
    moved->segment = Segment::kProbation;
    return result;
  }

  const ObjectNum victim = probation_.empty() ? protected_.back() : probation_.back();
  if (policy_considered_ != nullptr) policy_considered_->inc();
  if (filter_.admit(candidate, victim)) {
    if (policy_accepts_ != nullptr) policy_accepts_->inc();
    drop(victim, *index_.find(victim));
    result.evicted = victim;
    probation_.splice(probation_.begin(), window_, std::prev(window_.end()));
    Entry* moved = index_.find(candidate);
    moved->pos = probation_.begin();
    moved->segment = Segment::kProbation;
  } else {
    // The candidate lost the frequency duel: it is the eviction.
    if (policy_rejects_ != nullptr) policy_rejects_->inc();
    window_.pop_back();
    index_.erase(candidate);
    result.evicted = candidate;
  }
  obs_evicted();
  return result;
}

bool WTinyLfuCache::erase(ObjectNum object) {
  Entry* entry = index_.find(object);
  if (entry == nullptr) return false;
  drop(object, *entry);
  return true;
}

void WTinyLfuCache::drop(ObjectNum object, const Entry& entry) {
  // Copy first: erasing the index slot invalidates `entry` when it aliases
  // the FlatMap storage.
  const Entry copy = entry;
  list_of(copy.segment).erase(copy.pos);
  index_.erase(object);
}

void WTinyLfuCache::reserve_universe(std::size_t universe) {
  // The index never holds more than capacity + 1 entries (insert places the
  // newcomer before the eviction cascade runs), so this removes every mid-run
  // rehash regardless of universe size.
  index_.reserve(std::min(universe, capacity_) + 1);
}

std::optional<ObjectNum> WTinyLfuCache::peek_victim() const {
  if (!probation_.empty()) return probation_.back();
  if (!protected_.empty()) return protected_.back();
  if (!window_.empty()) return window_.back();
  return std::nullopt;
}

std::vector<ObjectNum> WTinyLfuCache::contents() const {
  std::vector<ObjectNum> result;
  result.reserve(index_.size());
  result.insert(result.end(), window_.begin(), window_.end());
  result.insert(result.end(), probation_.begin(), probation_.end());
  result.insert(result.end(), protected_.begin(), protected_.end());
  return result;
}

void WTinyLfuCache::bind_policy_observability(obs::Registry& registry,
                                              const std::string& prefix) {
  policy_considered_ = &registry.counter(prefix + "policy.admission_considered");
  policy_accepts_ = &registry.counter(prefix + "policy.admission_accepts");
  policy_rejects_ = &registry.counter(prefix + "policy.admission_rejects");
  policy_halvings_ = &registry.counter(prefix + "policy.sketch_halvings");
}

}  // namespace webcache::cache
