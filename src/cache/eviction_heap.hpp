// Position-indexed 4-ary min-heap for cache eviction orderings.
//
// LfuCache, GreedyDualCache and CostBenefitCache used to keep their victim
// order in a std::set<tuple> — a red-black tree that pays a node allocation
// per insert and pointer-chasing erase+insert on *every hit*. An earlier
// replacement used a lazy-deletion binary heap (push a fresh node per re-key,
// skip stale nodes when they surface); profiling the Hier-GD destage loop
// showed the stale-purge pops and periodic compactions dominating, so the
// heap is now fully indexed: a side table maps each object to its node's
// position, re-keys sift the node in place, and erase swaps the last node
// into the hole. No stale nodes ever exist, so top() is O(1) and memory is
// exactly one 16-byte node per live entry. The 4-ary layout halves the tree
// depth of a binary heap; sift costs stay O(log n) over one contiguous
// vector with no allocation beyond its growth.
//
// Victim selection is bit-identical to the ordered-set implementation: every
// priority embeds the policy's monotone re-key sequence number, so priorities
// of distinct objects never compare equal and the minimum node is exactly
// the element std::set::begin() would have produced — including all
// tie-breaks (e.g. the LFU-DA aging-floor recency tie). The heap's internal
// layout never influences which object is the minimum.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/dense_map.hpp"
#include "common/prefetch.hpp"
#include "common/types.hpp"

namespace webcache::cache {

/// `Priority` must be default-constructible, cheaply copyable and totally
/// ordered by operator< across live entries (pairs/tuples of arithmetic
/// types; no NaNs). Smaller priority = evicted first.
template <typename Priority>
class EvictionHeap {
 public:
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] bool empty() const { return nodes_.empty(); }

  /// Declares that keys are dense in [0, universe) and the heap may hold a
  /// universe-scale population (a proxy cache, not a 5-entry client cache):
  /// the position index switches from the hashed FlatMap to a direct-indexed
  /// array, turning the per-level index update of every sift into a plain
  /// store. Victim order is unaffected — the index is pure bookkeeping.
  void reserve_universe(std::size_t universe) {
    dense_pos_.reserve(universe);
    if (!dense_) {
      dense_ = true;
      hashed_pos_.for_each(
          [this](std::uint32_t key, std::uint32_t at) { dense_pos_[key] = at; });
      hashed_pos_.clear();
    }
  }

  [[nodiscard]] bool contains(ObjectNum object) const {
    return pos_find(object) != nullptr;
  }

  /// Advisory prefetch of the slots a subsequent contains/find/set/erase for
  /// `object` touches first: the position-index entry and the heap root (the
  /// line every sift and pop reads). Pure hint; never affects victim order.
  void prefetch(ObjectNum object) const {
    if (dense_) {
      dense_pos_.prefetch(object);
    } else {
      hashed_pos_.prefetch(object);
    }
    if (!nodes_.empty()) WEBCACHE_PREFETCH(nodes_.data());
  }

  /// Priority of `object`, or nullptr when absent. Valid until the next
  /// mutation. Lets a policy whose per-object state is exactly its priority
  /// (greedy-dual: credit + seq) use the heap as its only index.
  [[nodiscard]] const Priority* find(ObjectNum object) const {
    const std::uint32_t* at = pos_find(object);
    return at == nullptr ? nullptr : &nodes_[*at].priority;
  }

  /// Visits every member's object id in heap-layout order (deterministic for
  /// a given operation history, like FlatMap's probe order).
  template <typename Fn>
  void for_each_object(Fn&& fn) const {
    for (const Node& n : nodes_) fn(n.object);
  }

  /// Inserts `object` or re-keys it to `priority`.
  void set(ObjectNum object, const Priority& priority) {
    if (std::uint32_t* at = pos_find(object)) {
      nodes_[*at].priority = priority;
      sift(*at);
      return;
    }
    const auto at = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back({priority, object});
    pos_write(object, at);
    sift_up(at);
  }

  /// Removes `object`. Returns true if it was present.
  bool erase(ObjectNum object) {
    const std::uint32_t* at = pos_find(object);
    if (at == nullptr) return false;
    remove_at(*at);
    return true;
  }

  /// Minimum-priority entry. Precondition: !empty().
  [[nodiscard]] std::pair<Priority, ObjectNum> top() const {
    return {nodes_.front().priority, nodes_.front().object};
  }

  /// Removes the minimum-priority entry. Precondition: !empty().
  void pop() { remove_at(0); }

  void clear() {
    if (dense_) {
      dense_pos_.clear();
    } else {
      hashed_pos_.clear();
    }
    nodes_.clear();
  }

 private:
  struct Node {
    Priority priority;
    ObjectNum object;
  };

  static constexpr std::uint32_t kArity = 4;

  [[nodiscard]] std::uint32_t* pos_find(ObjectNum object) {
    return dense_ ? dense_pos_.find(object) : hashed_pos_.find(object);
  }
  [[nodiscard]] const std::uint32_t* pos_find(ObjectNum object) const {
    return dense_ ? dense_pos_.find(object) : hashed_pos_.find(object);
  }
  void pos_write(ObjectNum object, std::uint32_t at) {
    if (dense_) {
      dense_pos_[object] = at;
    } else {
      hashed_pos_[object] = at;
    }
  }
  void pos_erase(ObjectNum object) {
    if (dense_) {
      dense_pos_.erase(object);
    } else {
      hashed_pos_.erase(object);
    }
  }

  void remove_at(std::uint32_t at) {
    pos_erase(nodes_[at].object);
    const auto last = static_cast<std::uint32_t>(nodes_.size() - 1);
    if (at != last) {
      nodes_[at] = nodes_[last];
      nodes_.pop_back();
      pos_write(nodes_[at].object, at);
      sift(at);  // the relocated node may belong above or below the hole
    } else {
      nodes_.pop_back();
    }
  }

  /// Restores the heap property at `at` after an arbitrary priority change.
  void sift(std::uint32_t at) {
    if (at > 0 && nodes_[at].priority < nodes_[(at - 1) / kArity].priority) {
      sift_up(at);
    } else {
      sift_down(at);
    }
  }

  void sift_up(std::uint32_t at) {
    const Node moving = nodes_[at];
    while (at > 0) {
      const std::uint32_t parent = (at - 1) / kArity;
      if (!(moving.priority < nodes_[parent].priority)) break;
      nodes_[at] = nodes_[parent];
      pos_write(nodes_[at].object, at);
      at = parent;
    }
    nodes_[at] = moving;
    pos_write(moving.object, at);
  }

  void sift_down(std::uint32_t at) {
    const Node moving = nodes_[at];
    const auto count = static_cast<std::uint32_t>(nodes_.size());
    for (;;) {
      const std::uint64_t first = std::uint64_t{at} * kArity + 1;
      if (first >= count) break;
      const std::uint32_t end =
          static_cast<std::uint32_t>(std::min<std::uint64_t>(first + kArity, count));
      std::uint32_t best = static_cast<std::uint32_t>(first);
      for (std::uint32_t c = best + 1; c < end; ++c) {
        if (nodes_[c].priority < nodes_[best].priority) best = c;
      }
      if (!(nodes_[best].priority < moving.priority)) break;
      nodes_[at] = nodes_[best];
      pos_write(nodes_[at].object, at);
      at = best;
    }
    nodes_[at] = moving;
    pos_write(moving.object, at);
  }

  /// object -> index into nodes_. Hashed by default (client caches hold a
  /// handful of objects out of a huge universe); reserve_universe() flips a
  /// proxy-scale heap to the direct-indexed form.
  bool dense_ = false;
  FlatMap<std::uint32_t> hashed_pos_;
  DenseMap<std::uint32_t> dense_pos_;
  std::vector<Node> nodes_;
};

}  // namespace webcache::cache
