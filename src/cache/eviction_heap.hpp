// Lazy-deletion binary min-heap for cache eviction orderings.
//
// LfuCache, GreedyDualCache and CostBenefitCache used to keep their victim
// order in a std::set<tuple> — a red-black tree that pays a node allocation
// per insert and pointer-chasing erase+insert on *every hit*. This heap keeps
// the nodes in one contiguous vector and never relocates on re-key: updating
// an object's priority just pushes a fresh node and marks the old one stale
// (it is skipped when it surfaces). Amortized cost per operation is O(log n)
// sift over 16-byte PODs with no allocation beyond the vector's growth.
//
// Victim selection is bit-identical to the ordered-set implementation: every
// priority embeds the policy's monotone re-key sequence number, so priorities
// of distinct objects never compare equal and the minimum live node is exactly
// the element std::set::begin() would have produced — including all
// tie-breaks (e.g. the LFU-DA aging-floor recency tie).
//
// Staleness is detected by value: a node is live iff its priority equals the
// object's current priority. Equal-by-value duplicates (possible when
// CostBenefitCache reprices a copy back to a previous value without touching
// its sequence number) are indistinguishable from the live node, so treating
// either as live selects the same victim; the survivor becomes stale the
// moment the object is popped, erased or re-keyed.
#pragma once

#include <algorithm>
#include <cstddef>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace webcache::cache {

/// `Priority` must be default-constructible, cheaply copyable and totally
/// ordered by operator< across live entries (pairs/tuples of arithmetic
/// types; no NaNs). Smaller priority = evicted first.
template <typename Priority>
class EvictionHeap {
 public:
  [[nodiscard]] std::size_t size() const { return live_.size(); }
  [[nodiscard]] bool empty() const { return live_.empty(); }

  /// Inserts `object` or re-keys it to `priority`.
  void set(ObjectNum object, const Priority& priority) {
    live_[object] = priority;
    nodes_.push_back({priority, object});
    std::push_heap(nodes_.begin(), nodes_.end(), after);
    maybe_compact();
  }

  /// Removes `object` (lazily). Returns true if it was present.
  bool erase(ObjectNum object) {
    if (live_.erase(object) == 0) return false;
    maybe_compact();
    return true;
  }

  /// Minimum-priority live entry. Precondition: !empty().
  [[nodiscard]] std::pair<Priority, ObjectNum> top() const {
    purge();
    return {nodes_.front().priority, nodes_.front().object};
  }

  /// Removes the minimum-priority live entry. Precondition: !empty().
  void pop() {
    purge();
    live_.erase(nodes_.front().object);
    std::pop_heap(nodes_.begin(), nodes_.end(), after);
    nodes_.pop_back();
  }

  void clear() {
    live_.clear();
    nodes_.clear();
  }

 private:
  struct Node {
    Priority priority;
    ObjectNum object;
  };

  /// Max-heap comparator that surfaces the *minimum* priority at front().
  static bool after(const Node& a, const Node& b) { return b.priority < a.priority; }

  [[nodiscard]] bool is_live(const Node& node) const {
    const auto it = live_.find(node.object);
    return it != live_.end() && !(it->second < node.priority) &&
           !(node.priority < it->second);
  }

  /// Discards stale nodes until a live one (or nothing) is at front().
  void purge() const {
    while (!nodes_.empty() && !is_live(nodes_.front())) {
      std::pop_heap(nodes_.begin(), nodes_.end(), after);
      nodes_.pop_back();
    }
  }

  /// Rebuilds the heap from the live map once stale nodes dominate, bounding
  /// memory at O(live) between compactions.
  void maybe_compact() {
    if (nodes_.size() <= 2 * live_.size() + 16) return;
    nodes_.clear();
    nodes_.reserve(live_.size());
    for (const auto& [object, priority] : live_) nodes_.push_back({priority, object});
    std::make_heap(nodes_.begin(), nodes_.end(), after);
  }

  std::unordered_map<ObjectNum, Priority> live_;
  // mutable: purging stale nodes from peek paths does not change the set of
  // live entries, so top() stays logically const.
  mutable std::vector<Node> nodes_;
};

}  // namespace webcache::cache
