#include "cache/greedy_dual.hpp"

#include <cassert>

namespace webcache::cache {

void GreedyDualCache::access(ObjectNum object, double cost) {
  const auto it = entries_.find(object);
  assert(it != entries_.end() && "GreedyDualCache::access: object not cached");
  obs_hit();
  it->second.inflated_credit = cost + inflation_;
  it->second.seq = ++seq_;
  order_.set(object, key_of(it->second));
}

InsertResult GreedyDualCache::insert(ObjectNum object, double cost) {
  assert(!entries_.contains(object) && "GreedyDualCache::insert: object already cached");
  if (capacity_ == 0) return {};

  InsertResult result;
  result.inserted = true;
  obs_inserted();
  if (entries_.size() >= capacity_) {
    const auto [victim_key, victim] = order_.top();
    // Deduct the minimum credit from everyone by raising the floor.
    inflation_ = victim_key.first;
    order_.pop();
    entries_.erase(victim);
    result.evicted = victim;
    obs_evicted();
  }
  const Entry e{cost + inflation_, ++seq_};
  entries_.emplace(object, e);
  order_.set(object, key_of(e));
  return result;
}

bool GreedyDualCache::erase(ObjectNum object) {
  const auto it = entries_.find(object);
  if (it == entries_.end()) return false;
  order_.erase(object);
  entries_.erase(it);
  return true;
}

std::optional<ObjectNum> GreedyDualCache::peek_victim() const {
  if (order_.empty()) return std::nullopt;
  return order_.top().second;
}

std::vector<ObjectNum> GreedyDualCache::contents() const {
  std::vector<ObjectNum> out;
  out.reserve(entries_.size());
  for (const auto& [object, _] : entries_) out.push_back(object);
  return out;
}

double GreedyDualCache::credit(ObjectNum object) const {
  const auto it = entries_.find(object);
  if (it == entries_.end()) return 0.0;
  return it->second.inflated_credit - inflation_;
}

}  // namespace webcache::cache
