#include "cache/greedy_dual.hpp"

#include <cassert>

namespace webcache::cache {

void GreedyDualCache::access(ObjectNum object, double cost) {
  const auto it = entries_.find(object);
  assert(it != entries_.end() && "GreedyDualCache::access: object not cached");
  order_.erase(key_of(object, it->second));
  it->second.inflated_credit = cost + inflation_;
  it->second.seq = ++seq_;
  order_.insert(key_of(object, it->second));
}

InsertResult GreedyDualCache::insert(ObjectNum object, double cost) {
  assert(!entries_.contains(object) && "GreedyDualCache::insert: object already cached");
  if (capacity_ == 0) return {};

  InsertResult result;
  result.inserted = true;
  if (entries_.size() >= capacity_) {
    const auto victim_it = order_.begin();
    const ObjectNum victim = std::get<2>(*victim_it);
    // Deduct the minimum credit from everyone by raising the floor.
    inflation_ = std::get<0>(*victim_it);
    order_.erase(victim_it);
    entries_.erase(victim);
    result.evicted = victim;
  }
  const Entry e{cost + inflation_, ++seq_};
  entries_.emplace(object, e);
  order_.insert(key_of(object, e));
  return result;
}

bool GreedyDualCache::erase(ObjectNum object) {
  const auto it = entries_.find(object);
  if (it == entries_.end()) return false;
  order_.erase(key_of(object, it->second));
  entries_.erase(it);
  return true;
}

std::optional<ObjectNum> GreedyDualCache::peek_victim() const {
  if (order_.empty()) return std::nullopt;
  return std::get<2>(*order_.begin());
}

std::vector<ObjectNum> GreedyDualCache::contents() const {
  std::vector<ObjectNum> out;
  out.reserve(entries_.size());
  for (const auto& [object, _] : entries_) out.push_back(object);
  return out;
}

double GreedyDualCache::credit(ObjectNum object) const {
  const auto it = entries_.find(object);
  if (it == entries_.end()) return 0.0;
  return it->second.inflated_credit - inflation_;
}

}  // namespace webcache::cache
