#include "cache/greedy_dual.hpp"

#include <cassert>

namespace webcache::cache {

void GreedyDualCache::access(ObjectNum object, double cost) {
  assert(order_.contains(object) && "GreedyDualCache::access: object not cached");
  obs_hit();
  // A hit restores the credit to the (inflated) cost; the old value is
  // irrelevant, so this is a single re-key with no entry lookup.
  order_.set(object, Key{cost + inflation_, ++seq_});
}

InsertResult GreedyDualCache::insert(ObjectNum object, double cost) {
  assert(!order_.contains(object) && "GreedyDualCache::insert: object already cached");
  if (capacity_ == 0) return {};

  InsertResult result;
  result.inserted = true;
  obs_inserted();
  if (order_.size() >= capacity_) {
    const auto [victim_key, victim] = order_.top();
    // Deduct the minimum credit from everyone by raising the floor.
    inflation_ = victim_key.first;
    order_.pop();
    result.evicted = victim;
    obs_evicted();
  }
  order_.set(object, Key{cost + inflation_, ++seq_});
  return result;
}

bool GreedyDualCache::erase(ObjectNum object) { return order_.erase(object); }

std::optional<ObjectNum> GreedyDualCache::peek_victim() const {
  if (order_.empty()) return std::nullopt;
  return order_.top().second;
}

std::vector<ObjectNum> GreedyDualCache::contents() const {
  std::vector<ObjectNum> out;
  out.reserve(order_.size());
  order_.for_each_object([&out](ObjectNum object) { out.push_back(object); });
  return out;
}

double GreedyDualCache::credit(ObjectNum object) const {
  const Key* k = order_.find(object);
  return k == nullptr ? 0.0 : k->first - inflation_;
}

}  // namespace webcache::cache
