// ARC — Adaptive Replacement Cache (Megiddo & Modha, FAST 2003).
//
// Four LRU lists: T1 (seen once, recency) and T2 (seen twice+, frequency)
// hold the cached objects; B1 and B2 are equal-depth ghost lists remembering
// recent evictions from each. A hit on a B1 ghost means recency is being
// undervalued, so the adaptation target `p` (T1's share of capacity) grows;
// a B2 ghost hit shrinks it. The cache thereby tunes itself between LRU-like
// and LFU-like behaviour per workload, with no tunables.
//
// Mapped onto the Cache contract: access() covers T1/T2 hits; ghost hits
// arrive through insert() (the object is not cached, so the simulator
// re-fetches it and offers it back). erase() drops cached objects (returning
// true) and silently forgets ghosts (returning false) so churn/invalidation
// can never resurrect stale adaptation state.
#pragma once

#include <cstdint>
#include <list>

#include "cache/cache.hpp"
#include "common/dense_map.hpp"

namespace webcache::cache {

class ArcCache final : public Cache {
 public:
  explicit ArcCache(std::size_t capacity) : Cache(capacity) {}

  [[nodiscard]] std::size_t size() const override { return t1_.size() + t2_.size(); }
  [[nodiscard]] bool contains(ObjectNum object) const override;
  void prefetch(ObjectNum object) const override { index_.prefetch(object); }

  void access(ObjectNum object, double cost) override;
  InsertResult insert(ObjectNum object, double cost) override;
  bool erase(ObjectNum object) override;
  void reserve_universe(std::size_t universe) override;
  [[nodiscard]] std::optional<ObjectNum> peek_victim() const override;
  [[nodiscard]] std::vector<ObjectNum> contents() const override;

  /// Adaptation target: the capacity share currently granted to the recency
  /// list T1 (0 = pure frequency, capacity() = pure recency).
  [[nodiscard]] std::size_t target_p() const { return p_; }
  [[nodiscard]] std::uint64_t ghost_hits_b1() const { return ghost_hits_b1_; }
  [[nodiscard]] std::uint64_t ghost_hits_b2() const { return ghost_hits_b2_; }
  [[nodiscard]] std::size_t ghost_size() const { return b1_.size() + b2_.size(); }

 protected:
  void bind_policy_observability(obs::Registry& registry,
                                 const std::string& prefix) override;

 private:
  enum class ListId : std::uint8_t { kT1, kT2, kB1, kB2 };

  struct Entry {
    std::list<ObjectNum>::iterator pos{};
    ListId where = ListId::kT1;
  };

  [[nodiscard]] std::list<ObjectNum>& list_of(ListId id) {
    switch (id) {
      case ListId::kT1: return t1_;
      case ListId::kT2: return t2_;
      case ListId::kB1: return b1_;
      case ListId::kB2: return b2_;
    }
    return t1_;  // unreachable
  }

  /// The REPLACE step: demotes the T1 or T2 LRU (per `p_` and the requesting
  /// ghost list) into the matching ghost list; returns the demoted object.
  ObjectNum replace(bool hit_in_b2);
  /// Removes the LRU entry of ghost list `id` from the list and the index.
  void drop_ghost_lru(ListId id);
  void set_p(std::size_t p);

  std::list<ObjectNum> t1_, t2_, b1_, b2_;  // front = MRU
  FlatMap<Entry> index_;                    // cached AND ghost entries
  std::size_t p_ = 0;
  std::uint64_t ghost_hits_b1_ = 0;
  std::uint64_t ghost_hits_b2_ = 0;

  obs::Counter* policy_ghost_b1_ = nullptr;
  obs::Counter* policy_ghost_b2_ = nullptr;
  obs::Gauge* policy_p_ = nullptr;
};

}  // namespace webcache::cache
