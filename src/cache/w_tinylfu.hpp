// W-TinyLFU (Einziger, Friedman & Manes, ACM ToS 2017): a small LRU window
// in front of a Segmented-LRU main region, with the TinyLFU frequency sketch
// deciding which window evictee may displace the main region's probation
// victim.
//
// The window (~1% of capacity) gives new objects a recency-driven grace
// period, so bursts of genuinely new hot objects are not starved by the
// frequency filter; the SLRU main region (80% protected / 20% probation)
// holds the long-term frequent set. Every reference feeds the shared
// admission sketch, whose periodic halving is keyed to the cache's own
// operation count — deterministic per the contract in admission.hpp.
#pragma once

#include <cstdint>
#include <list>

#include "cache/admission.hpp"
#include "cache/cache.hpp"
#include "common/dense_map.hpp"

namespace webcache::cache {

class WTinyLfuCache final : public Cache {
 public:
  explicit WTinyLfuCache(std::size_t capacity);

  [[nodiscard]] std::size_t size() const override { return index_.size(); }
  [[nodiscard]] bool contains(ObjectNum object) const override {
    return index_.contains(object);
  }
  void prefetch(ObjectNum object) const override { index_.prefetch(object); }

  void access(ObjectNum object, double cost) override;
  InsertResult insert(ObjectNum object, double cost) override;
  bool erase(ObjectNum object) override;
  void reserve_universe(std::size_t universe) override;

  /// The zero-knowledge outcome of the next insert's eviction cascade: the
  /// window LRU's duel against the probation victim depends on sketch state,
  /// so this reports the probation (else protected, else window) LRU — the
  /// object a frequency-blind duel would evict.
  [[nodiscard]] std::optional<ObjectNum> peek_victim() const override;
  [[nodiscard]] std::vector<ObjectNum> contents() const override;

  [[nodiscard]] const AdmissionFilter& filter() const { return filter_; }
  [[nodiscard]] std::size_t window_capacity() const { return window_cap_; }
  [[nodiscard]] std::size_t protected_capacity() const { return protected_cap_; }

 protected:
  void bind_policy_observability(obs::Registry& registry,
                                 const std::string& prefix) override;

 private:
  enum class Segment : std::uint8_t { kWindow, kProbation, kProtected };

  struct Entry {
    std::list<ObjectNum>::iterator pos{};
    Segment segment = Segment::kWindow;
  };

  [[nodiscard]] std::list<ObjectNum>& list_of(Segment segment) {
    switch (segment) {
      case Segment::kWindow: return window_;
      case Segment::kProbation: return probation_;
      case Segment::kProtected: return protected_;
    }
    return window_;  // unreachable
  }

  /// Removes `object` from its segment list and the index.
  void drop(ObjectNum object, const Entry& entry);
  void note_sampled(bool halved) {
    if (halved && policy_halvings_ != nullptr) policy_halvings_->inc();
  }

  AdmissionFilter filter_;
  std::size_t window_cap_;
  std::size_t protected_cap_;
  // Front = most recently used in every segment.
  std::list<ObjectNum> window_;
  std::list<ObjectNum> probation_;
  std::list<ObjectNum> protected_;
  FlatMap<Entry> index_;

  obs::Counter* policy_considered_ = nullptr;
  obs::Counter* policy_accepts_ = nullptr;
  obs::Counter* policy_rejects_ = nullptr;
  obs::Counter* policy_halvings_ = nullptr;
};

}  // namespace webcache::cache
