#include "cache/lru.hpp"

#include <cassert>

namespace webcache::cache {

void LruCache::access(ObjectNum object, double /*cost*/) {
  auto* pos = index_.find(object);
  assert(pos != nullptr && "LruCache::access: object not cached");
  obs_hit();
  order_.splice(order_.begin(), order_, *pos);
}

InsertResult LruCache::insert(ObjectNum object, double /*cost*/) {
  assert(!index_.contains(object) && "LruCache::insert: object already cached");
  if (capacity_ == 0) return {};
  InsertResult result;
  result.inserted = true;
  obs_inserted();
  if (index_.size() >= capacity_) {
    const ObjectNum victim = order_.back();
    order_.pop_back();
    index_.erase(victim);
    result.evicted = victim;
    obs_evicted();
  }
  order_.push_front(object);
  index_[object] = order_.begin();
  return result;
}

bool LruCache::erase(ObjectNum object) {
  auto* pos = index_.find(object);
  if (pos == nullptr) return false;
  order_.erase(*pos);
  index_.erase(object);
  return true;
}

std::optional<ObjectNum> LruCache::peek_victim() const {
  if (order_.empty()) return std::nullopt;
  return order_.back();
}

std::vector<ObjectNum> LruCache::contents() const {
  return {order_.begin(), order_.end()};
}

}  // namespace webcache::cache
