#include "cache/arc.hpp"

#include <algorithm>
#include <cassert>

namespace webcache::cache {

bool ArcCache::contains(ObjectNum object) const {
  const Entry* entry = index_.find(object);
  return entry != nullptr && (entry->where == ListId::kT1 || entry->where == ListId::kT2);
}

void ArcCache::access(ObjectNum object, double /*cost*/) {
  Entry* entry = index_.find(object);
  assert(entry != nullptr &&
         (entry->where == ListId::kT1 || entry->where == ListId::kT2) &&
         "ArcCache::access: object not cached");
  obs_hit();
  // Any repeat reference promotes to the frequency list's MRU position.
  t2_.splice(t2_.begin(), list_of(entry->where), entry->pos);
  entry->where = ListId::kT2;
  entry->pos = t2_.begin();
}

InsertResult ArcCache::insert(ObjectNum object, double /*cost*/) {
  assert(!contains(object) && "ArcCache::insert: object already cached");
  if (capacity_ == 0) return {};
  InsertResult result;
  Entry* entry = index_.find(object);

  if (entry != nullptr && entry->where == ListId::kB1) {
    // Ghost hit in B1: recency is undervalued — grow T1's target share.
    ++ghost_hits_b1_;
    if (policy_ghost_b1_ != nullptr) policy_ghost_b1_->inc();
    const std::size_t delta =
        std::max<std::size_t>(1, b2_.size() / std::max<std::size_t>(1, b1_.size()));
    set_p(std::min(capacity_, p_ + delta));
    if (size() >= capacity_) result.evicted = replace(false);
    b1_.erase(entry->pos);
    t2_.push_front(object);
    entry->where = ListId::kT2;
    entry->pos = t2_.begin();
  } else if (entry != nullptr && entry->where == ListId::kB2) {
    // Ghost hit in B2: frequency is undervalued — shrink T1's target share.
    ++ghost_hits_b2_;
    if (policy_ghost_b2_ != nullptr) policy_ghost_b2_->inc();
    const std::size_t delta =
        std::max<std::size_t>(1, b1_.size() / std::max<std::size_t>(1, b2_.size()));
    set_p(p_ > delta ? p_ - delta : 0);
    if (size() >= capacity_) result.evicted = replace(true);
    b2_.erase(entry->pos);
    t2_.push_front(object);
    entry->where = ListId::kT2;
    entry->pos = t2_.begin();
  } else {
    // Genuinely new object: Case IV of the paper.
    const std::size_t l1 = t1_.size() + b1_.size();
    if (l1 >= capacity_) {
      if (t1_.size() < capacity_) {
        drop_ghost_lru(ListId::kB1);
        if (size() >= capacity_) result.evicted = replace(false);
      } else {
        // B1 empty and T1 full: the T1 LRU leaves the cache without a ghost.
        const ObjectNum victim = t1_.back();
        t1_.pop_back();
        index_.erase(victim);
        result.evicted = victim;
      }
    } else if (size() + b1_.size() + b2_.size() >= capacity_) {
      if (size() + b1_.size() + b2_.size() >= 2 * capacity_) {
        drop_ghost_lru(ListId::kB2);
      }
      if (size() >= capacity_) result.evicted = replace(false);
    }
    t1_.push_front(object);
    index_[object] = {t1_.begin(), ListId::kT1};
  }

  result.inserted = true;
  obs_inserted();
  if (result.evicted.has_value()) obs_evicted();
  return result;
}

ObjectNum ArcCache::replace(bool hit_in_b2) {
  // Demote T1's LRU when T1 exceeds its target (or meets it exactly while a
  // B2 ghost hit is shrinking it); otherwise T2's. The empty-list guards
  // matter only after erase() has broken the paper's occupancy invariants.
  const bool from_t1 =
      !t1_.empty() &&
      (t2_.empty() || t1_.size() > p_ || (hit_in_b2 && t1_.size() == p_));
  std::list<ObjectNum>& from = from_t1 ? t1_ : t2_;
  std::list<ObjectNum>& ghost = from_t1 ? b1_ : b2_;
  const ObjectNum victim = from.back();
  ghost.splice(ghost.begin(), from, std::prev(from.end()));
  Entry* entry = index_.find(victim);
  entry->where = from_t1 ? ListId::kB1 : ListId::kB2;
  entry->pos = ghost.begin();
  return victim;
}

void ArcCache::drop_ghost_lru(ListId id) {
  std::list<ObjectNum>& ghost = list_of(id);
  assert(!ghost.empty() && "ArcCache: dropping from an empty ghost list");
  const ObjectNum forgotten = ghost.back();
  ghost.pop_back();
  index_.erase(forgotten);
}

void ArcCache::set_p(std::size_t p) {
  p_ = p;
  if (policy_p_ != nullptr) policy_p_->set(static_cast<double>(p_));
}

bool ArcCache::erase(ObjectNum object) {
  Entry* entry = index_.find(object);
  if (entry == nullptr) return false;
  const Entry copy = *entry;
  list_of(copy.where).erase(copy.pos);
  index_.erase(object);
  // Ghosts are bookkeeping, not cached objects: forgetting one is not an
  // erase of a present object.
  return copy.where == ListId::kT1 || copy.where == ListId::kT2;
}

void ArcCache::reserve_universe(std::size_t universe) {
  // Cached + ghost entries never exceed 2c (DBL's invariant), plus one for
  // the in-flight insert.
  index_.reserve(std::min(universe, 2 * capacity_) + 1);
}

std::optional<ObjectNum> ArcCache::peek_victim() const {
  if (t1_.empty() && t2_.empty()) return std::nullopt;
  const bool from_t1 = !t1_.empty() && (t2_.empty() || t1_.size() > p_);
  return from_t1 ? t1_.back() : t2_.back();
}

std::vector<ObjectNum> ArcCache::contents() const {
  std::vector<ObjectNum> result;
  result.reserve(size());
  result.insert(result.end(), t1_.begin(), t1_.end());
  result.insert(result.end(), t2_.begin(), t2_.end());
  return result;
}

void ArcCache::bind_policy_observability(obs::Registry& registry,
                                         const std::string& prefix) {
  policy_ghost_b1_ = &registry.counter(prefix + "policy.arc_ghost_hits_b1");
  policy_ghost_b2_ = &registry.counter(prefix + "policy.arc_ghost_hits_b2");
  policy_p_ = &registry.gauge(prefix + "policy.arc_p");
  policy_p_->set(static_cast<double>(p_));
}

}  // namespace webcache::cache
