#include "cache/cost_benefit.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace webcache::cache {

CostBenefitCoordinator::CostBenefitCoordinator(std::vector<double> per_proxy_frequency,
                                               unsigned cluster_size, double server_latency,
                                               double proxy_latency)
    : frequency_(std::move(per_proxy_frequency)),
      cluster_size_(cluster_size),
      server_latency_(server_latency),
      proxy_latency_(proxy_latency) {
  if (cluster_size == 0) {
    throw std::invalid_argument("CostBenefitCoordinator: cluster_size must be >= 1");
  }
  if (!(server_latency > 0.0) || !(proxy_latency >= 0.0) || proxy_latency > server_latency) {
    throw std::invalid_argument(
        "CostBenefitCoordinator: need 0 <= proxy_latency <= server_latency, server > 0");
  }
}

unsigned CostBenefitCoordinator::replica_count(ObjectNum object) const {
  const auto* holders = find_holders(object);
  return holders == nullptr ? 0 : static_cast<unsigned>(holders->size());
}

bool CostBenefitCoordinator::held_elsewhere(ObjectNum object,
                                            const CostBenefitCache* except) const {
  const auto* holders = find_holders(object);
  if (holders == nullptr) return false;
  return std::any_of(holders->begin(), holders->end(),
                     [except](const CostBenefitCache* c) { return c != except; });
}

double CostBenefitCoordinator::copy_value(ObjectNum object, unsigned replicas) const {
  const double f = frequency(object);
  if (replicas <= 1) {
    // Sole copy: local clients would fall back to the server (Ts instead of
    // a free local hit) and every other proxy pays Ts instead of Tc.
    return f * (server_latency_ +
                static_cast<double>(cluster_size_ - 1) * (server_latency_ - proxy_latency_));
  }
  // Redundant copy: only the local clients lose the proxy-to-proxy saving.
  return f * proxy_latency_;
}

void CostBenefitCoordinator::consume(ObjectNum object) {
  if (object >= frequency_.size()) return;
  frequency_[object] =
      std::max(0.0, frequency_[object] - 1.0 / static_cast<double>(cluster_size_));
  reprice_holders(object);
}

void CostBenefitCoordinator::reprice_holders(ObjectNum object) {
  const auto* holders = find_holders(object);
  if (holders == nullptr) return;
  const auto replicas = static_cast<unsigned>(holders->size());
  const double value = copy_value(object, replicas);
  for (CostBenefitCache* holder : *holders) {
    holder->reprice(object, value);
  }
}

void CostBenefitCoordinator::register_member(CostBenefitCache* cache) {
  members_.push_back(cache);
}

void CostBenefitCoordinator::unregister_member(CostBenefitCache* cache) {
  std::erase(members_, cache);
}

void CostBenefitCoordinator::on_copy_added(ObjectNum object, CostBenefitCache* cache) {
  if (object >= holders_.size()) holders_.resize(static_cast<std::size_t>(object) + 1);
  auto& holders = holders_[object];
  holders.push_back(cache);
  if (holders.size() == 2) {
    // The pre-existing copy is no longer the sole one: price it down.
    CostBenefitCache* other = holders.front() == cache ? holders.back() : holders.front();
    other->reprice(object, copy_value(object, 2));
  }
}

void CostBenefitCoordinator::on_copy_removed(ObjectNum object, CostBenefitCache* cache) {
  auto* holders = find_holders(object);
  assert(holders != nullptr);
  std::erase(*holders, cache);
  if (holders->size() == 1) {
    // The survivor became the sole copy: price it up.
    holders->front()->reprice(object, copy_value(object, 1));
  }
}

// --- member cache -----------------------------------------------------------

CostBenefitCache::CostBenefitCache(std::size_t capacity, CostBenefitCoordinator& coordinator)
    : Cache(capacity), coordinator_(coordinator) {
  coordinator_.register_member(this);
}

CostBenefitCache::~CostBenefitCache() {
  entries_.for_each([this](ObjectNum object, const Entry&) {
    coordinator_.on_copy_removed(object, this);
  });
  coordinator_.unregister_member(this);
}

void CostBenefitCache::access(ObjectNum object, double /*cost*/) {
  assert(entries_.contains(object) && "CostBenefitCache::access: object not cached");
  (void)object;  // values are static under perfect frequency knowledge
  obs_hit();
}

InsertResult CostBenefitCache::insert(ObjectNum object, double /*cost*/) {
  assert(!entries_.contains(object) && "CostBenefitCache::insert: object already cached");
  if (capacity_ == 0) return {};

  const unsigned replicas_after = coordinator_.replica_count(object) + 1;
  const double new_value = coordinator_.copy_value(object, replicas_after);

  InsertResult result;
  if (entries_.size() >= capacity_) {
    const auto [victim_key, victim] = order_.top();
    if (new_value <= victim_key.first) {
      obs_declined();
      return result;  // newcomer not worth evicting anything for
    }
    order_.pop();
    entries_.erase(victim);
    coordinator_.on_copy_removed(victim, this);
    result.evicted = victim;
    obs_evicted();
  }

  result.inserted = true;
  obs_inserted();
  const Entry e{new_value, ++seq_};
  entries_[object] = e;
  order_.set(object, key_of(e));
  coordinator_.on_copy_added(object, this);
  return result;
}

bool CostBenefitCache::erase(ObjectNum object) {
  if (!entries_.erase(object)) return false;
  order_.erase(object);
  coordinator_.on_copy_removed(object, this);
  return true;
}

std::optional<ObjectNum> CostBenefitCache::peek_victim() const {
  if (order_.empty()) return std::nullopt;
  return order_.top().second;
}

std::vector<ObjectNum> CostBenefitCache::contents() const {
  std::vector<ObjectNum> out;
  out.reserve(entries_.size());
  entries_.for_each([&out](ObjectNum object, const Entry&) { out.push_back(object); });
  return out;
}

double CostBenefitCache::value_of(ObjectNum object) const {
  const Entry* e = entries_.find(object);
  return e == nullptr ? 0.0 : e->value;
}

void CostBenefitCache::reprice(ObjectNum object, double new_value) {
  Entry* e = entries_.find(object);
  assert(e != nullptr && "CostBenefitCache::reprice: object not cached");
  if (e->value == new_value) return;  // no-op reprice, skip the heap push
  e->value = new_value;
  order_.set(object, key_of(*e));
}

}  // namespace webcache::cache
