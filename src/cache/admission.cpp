#include "cache/admission.hpp"

#include <algorithm>

namespace webcache::cache {

namespace {

std::uint64_t splitmix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// ~8 sketch counters / doorkeeper bits per cached object; the floor keeps
/// tiny client caches (capacity < 8) from degenerating to an always-full
/// filter.
std::size_t filter_cells(std::size_t capacity) {
  return std::max<std::size_t>(64, capacity * 8);
}

}  // namespace

AdmissionFilter::AdmissionFilter(std::size_t capacity)
    : sketch_(filter_cells(capacity), 4U),
      doorkeeper_(filter_cells(capacity), 3U),
      sample_period_(std::max<std::uint64_t>(64, 10 * capacity)) {}

Uint128 AdmissionFilter::key_of(ObjectNum object) {
  const auto z = static_cast<std::uint64_t>(object);
  return {splitmix(z), splitmix(~z)};
}

bool AdmissionFilter::record_access(ObjectNum object) {
  const Uint128 key = key_of(object);
  // The doorkeeper absorbs first references: the sketch only counts repeat
  // traffic, so one-timers never consume its 4-bit dynamic range.
  if (!doorkeeper_.may_contain(key)) {
    doorkeeper_.insert(key);
  } else {
    sketch_.insert(key);
  }
  if (++ops_ >= sample_period_) {
    sketch_.halve();
    doorkeeper_.clear();
    ops_ = 0;
    ++halvings_;
    return true;
  }
  return false;
}

unsigned AdmissionFilter::estimate(ObjectNum object) const {
  const Uint128 key = key_of(object);
  unsigned estimate = sketch_.estimate(key);
  if (doorkeeper_.may_contain(key)) ++estimate;
  return estimate;
}

AdmittedCache::AdmittedCache(std::unique_ptr<Cache> inner)
    : Cache(inner->capacity()), filter_(inner->capacity()), inner_(std::move(inner)) {}

void AdmittedCache::access(ObjectNum object, double cost) {
  note_sampled(filter_.record_access(object));
  obs_hit();
  inner_->access(object, cost);
}

InsertResult AdmittedCache::insert(ObjectNum object, double cost) {
  note_sampled(filter_.record_access(object));
  if (capacity_ == 0) return {};
  if (policy_considered_ != nullptr) policy_considered_->inc();
  if (inner_->full()) {
    const auto victim = inner_->peek_victim();
    if (victim.has_value() && !filter_.admit(object, *victim)) {
      if (policy_rejects_ != nullptr) policy_rejects_->inc();
      obs_declined();
      return {};
    }
  }
  if (policy_accepts_ != nullptr) policy_accepts_->inc();
  InsertResult result = inner_->insert(object, cost);
  if (result.inserted) obs_inserted();
  if (result.evicted.has_value()) obs_evicted();
  if (!result.inserted) obs_declined();
  return result;
}

void AdmittedCache::bind_policy_observability(obs::Registry& registry,
                                              const std::string& prefix) {
  policy_considered_ = &registry.counter(prefix + "policy.admission_considered");
  policy_accepts_ = &registry.counter(prefix + "policy.admission_accepts");
  policy_rejects_ = &registry.counter(prefix + "policy.admission_rejects");
  policy_halvings_ = &registry.counter(prefix + "policy.sketch_halvings");
}

}  // namespace webcache::cache
