#include "cache/lfu.hpp"

#include <cassert>

namespace webcache::cache {

void LfuCache::access(ObjectNum object, double /*cost*/) {
  Entry* e = entries_.find(object);
  assert(e != nullptr && "LfuCache::access: object not cached");
  obs_hit();
  ++e->freq;
  // LFU-DA re-keys from the current floor on every hit, so a re-warming
  // object immediately out-keys everything the aging has devalued.
  e->key = mode_ == LfuMode::kDynamicAging ? e->freq + aging_floor_ : e->freq;
  e->last_seq = ++seq_;
  order_.set(object, key_of(*e));
  if (mode_ == LfuMode::kPerfect) ++history_slot(object);
}

InsertResult LfuCache::insert(ObjectNum object, double /*cost*/) {
  assert(!entries_.contains(object) && "LfuCache::insert: object already cached");
  if (capacity_ == 0) return {};

  std::uint64_t start_freq = 1;
  if (mode_ == LfuMode::kPerfect) {
    start_freq = ++history_slot(object);
  }

  InsertResult result;
  result.inserted = true;
  obs_inserted();
  if (entries_.size() >= capacity_) {
    obs_evicted();
    const auto [victim_key, victim] = order_.top();
    if (mode_ == LfuMode::kDynamicAging) {
      // The victim's key becomes the new floor: everything still cached is
      // effectively aged by that amount (same inflation trick greedy-dual
      // uses, with cost = 1 per access).
      aging_floor_ = victim_key.first;
    }
    order_.pop();
    entries_.erase(victim);
    result.evicted = victim;
  }
  const Entry e{start_freq,
                mode_ == LfuMode::kDynamicAging ? start_freq + aging_floor_ : start_freq,
                ++seq_};
  entries_[object] = e;
  order_.set(object, key_of(e));
  return result;
}

bool LfuCache::erase(ObjectNum object) {
  if (!entries_.erase(object)) return false;
  order_.erase(object);
  return true;
}

std::optional<ObjectNum> LfuCache::peek_victim() const {
  if (order_.empty()) return std::nullopt;
  return order_.top().second;
}

std::vector<ObjectNum> LfuCache::contents() const {
  std::vector<ObjectNum> out;
  out.reserve(entries_.size());
  entries_.for_each([&out](ObjectNum object, const Entry&) { out.push_back(object); });
  return out;
}

std::uint64_t LfuCache::frequency(ObjectNum object) const {
  if (const Entry* e = entries_.find(object)) return e->freq;
  if (mode_ == LfuMode::kPerfect && object < history_.size()) return history_[object];
  return 0;
}

}  // namespace webcache::cache
