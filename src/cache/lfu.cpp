#include "cache/lfu.hpp"

#include <cassert>

namespace webcache::cache {

void LfuCache::access(ObjectNum object, double /*cost*/) {
  const auto it = entries_.find(object);
  assert(it != entries_.end() && "LfuCache::access: object not cached");
  obs_hit();
  ++it->second.freq;
  // LFU-DA re-keys from the current floor on every hit, so a re-warming
  // object immediately out-keys everything the aging has devalued.
  it->second.key = mode_ == LfuMode::kDynamicAging ? it->second.freq + aging_floor_
                                                   : it->second.freq;
  it->second.last_seq = ++seq_;
  order_.set(object, key_of(it->second));
  if (mode_ == LfuMode::kPerfect) ++history_[object];
}

InsertResult LfuCache::insert(ObjectNum object, double /*cost*/) {
  assert(!entries_.contains(object) && "LfuCache::insert: object already cached");
  if (capacity_ == 0) return {};

  std::uint64_t start_freq = 1;
  if (mode_ == LfuMode::kPerfect) {
    start_freq = ++history_[object];
  }

  InsertResult result;
  result.inserted = true;
  obs_inserted();
  if (entries_.size() >= capacity_) {
    obs_evicted();
    const auto [victim_key, victim] = order_.top();
    if (mode_ == LfuMode::kDynamicAging) {
      // The victim's key becomes the new floor: everything still cached is
      // effectively aged by that amount (same inflation trick greedy-dual
      // uses, with cost = 1 per access).
      aging_floor_ = victim_key.first;
    }
    order_.pop();
    entries_.erase(victim);
    result.evicted = victim;
  }
  const Entry e{start_freq,
                mode_ == LfuMode::kDynamicAging ? start_freq + aging_floor_ : start_freq,
                ++seq_};
  entries_.emplace(object, e);
  order_.set(object, key_of(e));
  return result;
}

bool LfuCache::erase(ObjectNum object) {
  const auto it = entries_.find(object);
  if (it == entries_.end()) return false;
  order_.erase(object);
  entries_.erase(it);
  return true;
}

std::optional<ObjectNum> LfuCache::peek_victim() const {
  if (order_.empty()) return std::nullopt;
  return order_.top().second;
}

std::vector<ObjectNum> LfuCache::contents() const {
  std::vector<ObjectNum> out;
  out.reserve(entries_.size());
  for (const auto& [object, _] : entries_) out.push_back(object);
  return out;
}

std::uint64_t LfuCache::frequency(ObjectNum object) const {
  if (const auto it = entries_.find(object); it != entries_.end()) return it->second.freq;
  if (mode_ == LfuMode::kPerfect) {
    if (const auto it = history_.find(object); it != history_.end()) return it->second;
  }
  return 0;
}

}  // namespace webcache::cache
