// TinyLFU-style admission (Einziger, Friedman & Manes, "TinyLFU: A Highly
// Efficient Cache Admission Policy", ACM ToS 2017).
//
// The paper's schemes admit every fetched object unconditionally; under
// scan/one-timer-heavy workloads that lets worthless objects flush valuable
// residents. TinyLFU keeps an approximate frequency histogram of the recent
// request stream — here the existing Summary-Cache counting Bloom from
// src/bloom used as a count-min sketch, fronted by a plain-Bloom doorkeeper
// that absorbs the one-hit-wonder mass — and admits a candidate only when its
// estimated frequency beats the incumbent victim's. A periodic halving of
// every sketch counter (the "reset" aging step) keeps the histogram tracking
// the recent window; it is keyed to the filter's own operation count, which
// under both the sequential and the sharded engine is a deterministic
// function of the cache's request subsequence, so all exports stay
// byte-identical across threads, shards, and replay chunking.
#pragma once

#include <cstdint>
#include <memory>

#include "bloom/bloom_filter.hpp"
#include "bloom/counting_bloom.hpp"
#include "cache/cache.hpp"

namespace webcache::cache {

/// Approximate frequency histogram of the recent request stream with a
/// TinyLFU admission duel. Sized from the cache capacity it fronts: the
/// sketch carries ~8 4-bit counters and the doorkeeper ~8 bits per cached
/// object, and one sample period spans 10x the capacity in references.
class AdmissionFilter {
 public:
  explicit AdmissionFilter(std::size_t capacity);

  /// Records one reference (hit or insertion offer). Returns true when this
  /// reference triggered the periodic halving/reset aging step.
  bool record_access(ObjectNum object);

  /// Estimated reference count within the current sample window: the sketch's
  /// count-min estimate plus the doorkeeper bit.
  [[nodiscard]] unsigned estimate(ObjectNum object) const;

  /// The admission duel: cache the candidate only when its estimated
  /// frequency strictly exceeds the victim's (ties keep the incumbent, the
  /// bias that blocks scan floods).
  [[nodiscard]] bool admit(ObjectNum candidate, ObjectNum victim) const {
    return estimate(candidate) > estimate(victim);
  }

  [[nodiscard]] std::uint64_t halvings() const { return halvings_; }
  [[nodiscard]] std::uint64_t sample_period() const { return sample_period_; }
  [[nodiscard]] std::size_t memory_bytes() const {
    return sketch_.memory_bytes() + doorkeeper_.memory_bytes();
  }

 private:
  /// ObjectNum -> uniformly distributed 128-bit key for the bloom probes
  /// (SplitMix64 finalizer per limb; dense ids are NOT uniform).
  static Uint128 key_of(ObjectNum object);

  bloom::CountingBloomFilter sketch_;
  bloom::BloomFilter doorkeeper_;
  std::uint64_t sample_period_;
  std::uint64_t ops_ = 0;
  std::uint64_t halvings_ = 0;
};

/// Fronts any replacement policy with TinyLFU admission: an insert offered to
/// a full inner cache first duels the inner policy's own victim and is
/// declined (InsertResult{false}) when it loses. The inner cache keeps full
/// control of eviction order; only WHETHER a newcomer displaces anything
/// changes. Policy instruments bind under `<prefix>policy.`.
class AdmittedCache final : public Cache {
 public:
  explicit AdmittedCache(std::unique_ptr<Cache> inner);

  [[nodiscard]] std::size_t size() const override { return inner_->size(); }
  [[nodiscard]] bool contains(ObjectNum object) const override {
    return inner_->contains(object);
  }

  void access(ObjectNum object, double cost) override;
  InsertResult insert(ObjectNum object, double cost) override;
  bool erase(ObjectNum object) override { return inner_->erase(object); }
  void reserve_universe(std::size_t universe) override {
    inner_->reserve_universe(universe);
  }
  [[nodiscard]] std::optional<ObjectNum> peek_victim() const override {
    return inner_->peek_victim();
  }
  [[nodiscard]] std::vector<ObjectNum> contents() const override {
    return inner_->contents();
  }

  [[nodiscard]] const AdmissionFilter& filter() const { return filter_; }
  [[nodiscard]] const Cache& inner() const { return *inner_; }

 protected:
  void bind_policy_observability(obs::Registry& registry,
                                 const std::string& prefix) override;

 private:
  void note_sampled(bool halved) {
    if (halved && policy_halvings_ != nullptr) policy_halvings_->inc();
  }

  AdmissionFilter filter_;
  std::unique_ptr<Cache> inner_;
  obs::Counter* policy_considered_ = nullptr;
  obs::Counter* policy_accepts_ = nullptr;
  obs::Counter* policy_rejects_ = nullptr;
  obs::Counter* policy_halvings_ = nullptr;
};

}  // namespace webcache::cache
