// Observability core: a lightweight metrics registry.
//
// Every component that accounts anything (the simulator, the tiered cache,
// the P2P client cache, the Pastry overlay, the lookup directories, the
// replacement policies) registers named instruments here and increments them
// directly on its hot path. The legacy result structs (`sim::Metrics`,
// `net::MessageStats`, `pastry::OverlayStats`) are *views* built from these
// instruments at read time, not parallel bookkeeping.
//
// Four instrument kinds:
//   * Counter   — monotonic uint64 (request outcomes, protocol messages);
//   * Gauge     — double accumulator/level (total latency, waste);
//   * RunningStat (from common/stats.hpp) — mean/min/max streams (hop counts);
//   * Histogram (from common/stats.hpp)   — fixed-bucket distributions
//     (request latency, Pastry hops).
//
// Handles returned by the registration calls are stable for the registry's
// lifetime (deque storage), so the per-event cost is one pointer-indirect
// increment — the same order as the struct-member increments they replace.
//
// Two *optional* collection layers ride on top, both off by default:
//   * interval snapshots — every N units (the simulator ticks once per
//     request) the registry captures all counter and gauge values, yielding
//     hit-ratio / latency / false-positive curves over simulated time;
//   * a ring-buffer event tracer — fixed-capacity buffer of request-level
//     records (time, where served, latency, wasted latency).
// When the CMake option WEBCACHE_OBS_TRACE is OFF the macro
// WEBCACHE_OBS_NO_TRACE compiles both layers down to nothing (verified by
// perf_smoke staying inside the check_perf.py band); when compiled in but
// not enabled at runtime, each costs a single predictable branch per request.
//
// Exports (schema "webcache-metrics/1", documented in README.md):
//   write_json       — full registry as one JSON document;
//   write_csv        — flat kind,name,value CSV of all instruments;
//   write_snapshots_csv / write_trace_csv — the time-series layers.
// All numeric formatting is locale-independent and shortest-round-trip, so
// exports are byte-identical across runs and thread counts.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"

namespace webcache::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  [[nodiscard]] std::uint64_t value() const { return value_; }
  /// For view-struct resets (e.g. Overlay::reset_stats); the instrument
  /// itself is monotonic between resets.
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Double-valued level or accumulator.
class Gauge {
 public:
  void set(double value) { value_ = value; }
  void add(double delta) { value_ += delta; }
  [[nodiscard]] double value() const { return value_; }
  void reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// One request-level trace record. `code` is a small enum the producer
/// defines (the simulator stores net::ServedFrom); the schema documentation
/// records the mapping.
struct TraceEvent {
  std::uint64_t time = 0;  ///< trace position (request index)
  std::uint32_t code = 0;  ///< producer-defined discriminator
  double value = 0.0;      ///< primary measurement (request latency)
  double aux = 0.0;        ///< secondary measurement (wasted latency)
};

/// One interval snapshot: all counter/gauge values after `at` ticks.
struct Snapshot {
  std::uint64_t at = 0;
  std::vector<std::uint64_t> counters;  ///< registration order
  std::vector<double> gauges;           ///< registration order
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // --- instrument registration (find-or-create; stable references) ---------
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  RunningStat& stat(std::string_view name);
  /// Bounds/bucket count are fixed by the first registration of `name`;
  /// later calls return the existing histogram.
  Histogram& histogram(std::string_view name, double lo, double hi, std::size_t buckets);

  // --- read access ---------------------------------------------------------
  /// Value of a counter, 0 when it was never registered.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;
  /// Value of a gauge, 0.0 when it was never registered.
  [[nodiscard]] double gauge_value(std::string_view name) const;
  [[nodiscard]] const RunningStat* find_stat(std::string_view name) const;
  [[nodiscard]] const Histogram* find_histogram(std::string_view name) const;
  [[nodiscard]] std::size_t counter_count() const { return counters_.names.size(); }

  /// Counter/gauge names in registration order (the snapshot column order).
  [[nodiscard]] const std::vector<std::string>& counter_names() const {
    return counters_.names;
  }
  [[nodiscard]] const std::vector<std::string>& gauge_names() const { return gauges_.names; }
  /// Stat/histogram names in registration order — the sharded engine's merge
  /// walks per-shard registries by index range and replays instruments into
  /// the canonical registry in construction order.
  [[nodiscard]] const std::vector<std::string>& stat_names() const { return stats_.names; }
  [[nodiscard]] const std::vector<std::string>& histogram_names() const {
    return histograms_.names;
  }

  // --- interval snapshots --------------------------------------------------
  /// Enables snapshots every `every_n` ticks (0 disables). The producer calls
  /// tick() once per unit of simulated progress (the simulator: per request).
  void set_snapshot_interval(std::uint64_t every_n) { snapshot_interval_ = every_n; }
  [[nodiscard]] std::uint64_t snapshot_interval() const { return snapshot_interval_; }
  [[nodiscard]] const std::vector<Snapshot>& snapshots() const { return snapshots_; }

#ifdef WEBCACHE_OBS_NO_TRACE
  void tick() {}
  static constexpr bool tracing_enabled() { return false; }
  void enable_tracing(std::size_t) {}
  void record(std::uint64_t, std::uint32_t, double, double) {}
#else
  void tick() {
    ++ticks_;
    if (snapshot_interval_ != 0 && ticks_ % snapshot_interval_ == 0) take_snapshot();
  }

  // --- ring-buffer event tracer --------------------------------------------
  [[nodiscard]] bool tracing_enabled() const { return trace_capacity_ != 0; }
  /// Enables the tracer with a fixed ring capacity; once full, the oldest
  /// events are overwritten (the tail of the run survives).
  void enable_tracing(std::size_t capacity);
  void record(std::uint64_t time, std::uint32_t code, double value, double aux) {
    if (trace_capacity_ == 0) return;
    if (trace_ring_.size() < trace_capacity_) {
      trace_ring_.push_back({time, code, value, aux});
    } else {
      trace_ring_[trace_next_ % trace_capacity_] = {time, code, value, aux};
    }
    ++trace_next_;
  }
#endif

  /// Traced events in chronological order (unwinds the ring).
  [[nodiscard]] std::vector<TraceEvent> trace_events() const;
  /// Events dropped because the ring was full (overwritten oldest records).
  [[nodiscard]] std::uint64_t trace_dropped() const;

  // --- exporters (schema "webcache-metrics/1") -----------------------------
  /// Full JSON document: {"schema", "name", <body>}.
  void write_json(std::ostream& out, std::string_view name) const;
  /// The body object only — {"counters": ..., ..., "snapshots": ...} — for
  /// embedding into composite documents (core::write_metrics_json).
  void write_json_body(std::ostream& out, int indent = 0) const;
  /// Flat CSV: kind,name,value rows for every instrument.
  void write_csv(std::ostream& out) const;
  /// Snapshot time series: header "at,<counter...>,<gauge...>", one row per
  /// snapshot.
  void write_snapshots_csv(std::ostream& out) const;
  /// Trace events: "seq,time,code,value,aux", chronological.
  void write_trace_csv(std::ostream& out) const;

 private:
  void take_snapshot();

  template <typename T>
  struct Table {
    std::deque<T> store;
    std::vector<std::string> names;
    std::unordered_map<std::string, std::size_t> index;

    T& find_or_create(std::string_view name, auto make) {
      if (const auto it = index.find(std::string(name)); it != index.end()) {
        return store[it->second];
      }
      names.emplace_back(name);
      index.emplace(names.back(), store.size());
      store.push_back(make());
      return store.back();
    }
    const T* find(std::string_view name) const {
      const auto it = index.find(std::string(name));
      return it == index.end() ? nullptr : &store[it->second];
    }
  };

  Table<Counter> counters_;
  Table<Gauge> gauges_;
  Table<RunningStat> stats_;
  Table<Histogram> histograms_;

  std::uint64_t snapshot_interval_ = 0;
  std::uint64_t ticks_ = 0;
  std::vector<Snapshot> snapshots_;

  std::size_t trace_capacity_ = 0;
  std::uint64_t trace_next_ = 0;  ///< total events recorded (ring write cursor)
  std::vector<TraceEvent> trace_ring_;
};

/// Returns `*registry` when non-null; otherwise lazily creates a private
/// registry in `owned` and returns that. Components accept an optional
/// external registry and fall back to a private one, so standalone
/// construction (tests, examples) needs no wiring while shared construction
/// (the simulator threading one registry through a whole cluster) aggregates
/// everything in one place.
Registry& ensure_registry(Registry* registry, std::unique_ptr<Registry>& owned);

/// Shortest-round-trip, locale-independent formatting for doubles — the
/// exporters use this everywhere so exported documents are byte-identical
/// across runs, machines, and thread counts.
[[nodiscard]] std::string format_double(double value);

/// Schema identifier stamped into every JSON export.
inline constexpr std::string_view kSchemaVersion = "webcache-metrics/1";

}  // namespace webcache::obs
