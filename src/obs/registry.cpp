#include "obs/registry.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <ostream>

namespace webcache::obs {

namespace {

/// JSON string escaping for instrument names (ASCII identifiers in practice;
/// quotes/backslashes/control characters handled for safety).
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Names of a table sorted lexicographically — the export order of the JSON
/// maps and the CSV rows (stable regardless of registration order).
std::vector<std::string> sorted(const std::vector<std::string>& names) {
  std::vector<std::string> out = names;
  std::sort(out.begin(), out.end());
  return out;
}

void put_indent(std::ostream& out, int indent) {
  for (int i = 0; i < indent; ++i) out.put(' ');
}

}  // namespace

std::string format_double(double value) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
  if (ec == std::errc{}) return std::string(buf, ptr);
  std::snprintf(buf, sizeof buf, "%.17g", value);  // unreachable fallback
  return buf;
}

Counter& Registry::counter(std::string_view name) {
  return counters_.find_or_create(name, [] { return Counter{}; });
}

Gauge& Registry::gauge(std::string_view name) {
  return gauges_.find_or_create(name, [] { return Gauge{}; });
}

RunningStat& Registry::stat(std::string_view name) {
  return stats_.find_or_create(name, [] { return RunningStat{}; });
}

Histogram& Registry::histogram(std::string_view name, double lo, double hi,
                               std::size_t buckets) {
  return histograms_.find_or_create(name, [&] { return Histogram(lo, hi, buckets); });
}

std::uint64_t Registry::counter_value(std::string_view name) const {
  const Counter* c = counters_.find(name);
  return c == nullptr ? 0 : c->value();
}

double Registry::gauge_value(std::string_view name) const {
  const Gauge* g = gauges_.find(name);
  return g == nullptr ? 0.0 : g->value();
}

const RunningStat* Registry::find_stat(std::string_view name) const {
  return stats_.find(name);
}

const Histogram* Registry::find_histogram(std::string_view name) const {
  return histograms_.find(name);
}

void Registry::take_snapshot() {
  Snapshot snap;
  snap.at = ticks_;
  snap.counters.reserve(counters_.store.size());
  for (const Counter& c : counters_.store) snap.counters.push_back(c.value());
  snap.gauges.reserve(gauges_.store.size());
  for (const Gauge& g : gauges_.store) snap.gauges.push_back(g.value());
  snapshots_.push_back(std::move(snap));
}

#ifndef WEBCACHE_OBS_NO_TRACE
void Registry::enable_tracing(std::size_t capacity) {
  trace_capacity_ = capacity;
  trace_ring_.clear();
  trace_ring_.reserve(std::min<std::size_t>(capacity, 1u << 16));
  trace_next_ = 0;
}
#endif

std::vector<TraceEvent> Registry::trace_events() const {
  std::vector<TraceEvent> out;
  out.reserve(trace_ring_.size());
  if (trace_next_ <= trace_ring_.size()) {  // ring never wrapped
    out = trace_ring_;
  } else {
    const std::size_t head = static_cast<std::size_t>(trace_next_ % trace_capacity_);
    out.insert(out.end(), trace_ring_.begin() + static_cast<std::ptrdiff_t>(head),
               trace_ring_.end());
    out.insert(out.end(), trace_ring_.begin(),
               trace_ring_.begin() + static_cast<std::ptrdiff_t>(head));
  }
  return out;
}

std::uint64_t Registry::trace_dropped() const {
  return trace_next_ <= trace_ring_.size() ? 0 : trace_next_ - trace_ring_.size();
}

void Registry::write_json_body(std::ostream& out, int indent) const {
  const auto key = [&](std::string_view name) {
    put_indent(out, indent + 2);
    out << '"' << json_escape(name) << "\": ";
  };

  put_indent(out, indent);
  out << "{\n";

  key("counters");
  out << "{";
  bool first = true;
  for (const auto& name : sorted(counters_.names)) {
    out << (first ? "" : ", ") << '"' << json_escape(name)
        << "\": " << counters_.find(name)->value();
    first = false;
  }
  out << "},\n";

  key("gauges");
  out << "{";
  first = true;
  for (const auto& name : sorted(gauges_.names)) {
    out << (first ? "" : ", ") << '"' << json_escape(name)
        << "\": " << format_double(gauges_.find(name)->value());
    first = false;
  }
  out << "},\n";

  key("stats");
  out << "{";
  first = true;
  for (const auto& name : sorted(stats_.names)) {
    const RunningStat& s = *stats_.find(name);
    out << (first ? "" : ", ") << '"' << json_escape(name) << "\": {\"count\": " << s.count()
        << ", \"mean\": " << format_double(s.mean()) << ", \"min\": " << format_double(s.min())
        << ", \"max\": " << format_double(s.max()) << ", \"sum\": " << format_double(s.sum())
        << "}";
    first = false;
  }
  out << "},\n";

  key("histograms");
  out << "{";
  first = true;
  for (const auto& name : sorted(histograms_.names)) {
    const Histogram& h = *histograms_.find(name);
    out << (first ? "" : ", ") << '"' << json_escape(name)
        << "\": {\"lo\": " << format_double(h.lo()) << ", \"hi\": " << format_double(h.hi())
        << ", \"total\": " << h.total() << ", \"buckets\": [";
    for (std::size_t i = 0; i < h.buckets(); ++i) {
      out << (i ? ", " : "") << h.bucket_count(i);
    }
    out << "]}";
    first = false;
  }
  out << "},\n";

  // Snapshots keep registration order so rows align with their columns.
  key("snapshots");
  out << "{\"interval\": " << snapshot_interval_ << ", \"columns\": [";
  for (std::size_t i = 0; i < counters_.names.size(); ++i) {
    out << (i ? ", " : "") << '"' << json_escape(counters_.names[i]) << '"';
  }
  out << "], \"gauge_columns\": [";
  for (std::size_t i = 0; i < gauges_.names.size(); ++i) {
    out << (i ? ", " : "") << '"' << json_escape(gauges_.names[i]) << '"';
  }
  out << "],\n";
  put_indent(out, indent + 2);
  out << "\"rows\": [";
  for (std::size_t r = 0; r < snapshots_.size(); ++r) {
    const Snapshot& snap = snapshots_[r];
    if (r != 0) {
      out << ",\n";
      put_indent(out, indent + 4);
    }
    out << "[" << snap.at;
    // Instruments registered after a snapshot was taken were at their initial
    // value (0) then; pad so every row has one entry per column.
    for (std::size_t i = 0; i < counters_.names.size(); ++i) {
      out << ", " << (i < snap.counters.size() ? snap.counters[i] : 0);
    }
    for (std::size_t i = 0; i < gauges_.names.size(); ++i) {
      out << ", " << format_double(i < snap.gauges.size() ? snap.gauges[i] : 0.0);
    }
    out << "]";
  }
  out << "]}\n";

  put_indent(out, indent);
  out << "}";
}

void Registry::write_json(std::ostream& out, std::string_view name) const {
  out << "{\n  \"schema\": \"" << kSchemaVersion << "\",\n  \"name\": \""
      << json_escape(name) << "\",\n  \"metrics\":\n";
  write_json_body(out, 2);
  out << "\n}\n";
}

void Registry::write_csv(std::ostream& out) const {
  out << "kind,name,value\n";
  for (const auto& name : sorted(counters_.names)) {
    out << "counter," << name << ',' << counters_.find(name)->value() << '\n';
  }
  for (const auto& name : sorted(gauges_.names)) {
    out << "gauge," << name << ',' << format_double(gauges_.find(name)->value()) << '\n';
  }
  for (const auto& name : sorted(stats_.names)) {
    const RunningStat& s = *stats_.find(name);
    out << "stat," << name << ".count," << s.count() << '\n';
    out << "stat," << name << ".mean," << format_double(s.mean()) << '\n';
    out << "stat," << name << ".min," << format_double(s.min()) << '\n';
    out << "stat," << name << ".max," << format_double(s.max()) << '\n';
    out << "stat," << name << ".sum," << format_double(s.sum()) << '\n';
  }
  for (const auto& name : sorted(histograms_.names)) {
    const Histogram& h = *histograms_.find(name);
    out << "histogram," << name << ".lo," << format_double(h.lo()) << '\n';
    out << "histogram," << name << ".hi," << format_double(h.hi()) << '\n';
    for (std::size_t i = 0; i < h.buckets(); ++i) {
      out << "histogram," << name << ".bucket" << i << ',' << h.bucket_count(i) << '\n';
    }
  }
  out.flush();
}

void Registry::write_snapshots_csv(std::ostream& out) const {
  out << "at";
  for (const auto& name : counters_.names) out << ',' << name;
  for (const auto& name : gauges_.names) out << ',' << name;
  out << '\n';
  for (const Snapshot& snap : snapshots_) {
    out << snap.at;
    for (std::size_t i = 0; i < counters_.names.size(); ++i) {
      out << ',' << (i < snap.counters.size() ? snap.counters[i] : 0);
    }
    for (std::size_t i = 0; i < gauges_.names.size(); ++i) {
      out << ',' << format_double(i < snap.gauges.size() ? snap.gauges[i] : 0.0);
    }
    out << '\n';
  }
  out.flush();
}

void Registry::write_trace_csv(std::ostream& out) const {
  out << "seq,time,code,value,aux\n";
  const auto events = trace_events();
  const std::uint64_t base = trace_dropped();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    out << base + i << ',' << e.time << ',' << e.code << ',' << format_double(e.value)
        << ',' << format_double(e.aux) << '\n';
  }
  out.flush();
}

Registry& ensure_registry(Registry* registry, std::unique_ptr<Registry>& owned) {
  if (registry != nullptr) return *registry;
  if (!owned) owned = std::make_unique<Registry>();
  return *owned;
}

}  // namespace webcache::obs
