#include "bloom/bloom_filter.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace webcache::bloom {

namespace {
constexpr double kLn2 = 0.6931471805599453;

std::size_t optimal_bits(std::size_t n, double p) {
  if (n == 0) n = 1;
  const double m = -static_cast<double>(n) * std::log(p) / (kLn2 * kLn2);
  return std::max<std::size_t>(64, static_cast<std::size_t>(std::ceil(m)));
}

unsigned optimal_hashes(std::size_t bits, std::size_t n) {
  if (n == 0) n = 1;
  const double k = static_cast<double>(bits) / static_cast<double>(n) * kLn2;
  return std::clamp<unsigned>(static_cast<unsigned>(std::lround(k)), 1, 16);
}
}  // namespace

BloomFilter::BloomFilter(std::size_t expected_items, double target_fpr)
    : BloomFilter(optimal_bits(expected_items, target_fpr),
                  optimal_hashes(optimal_bits(expected_items, target_fpr), expected_items)) {
  if (!(target_fpr > 0.0 && target_fpr < 1.0)) {
    throw std::invalid_argument("BloomFilter: target_fpr must be in (0, 1)");
  }
}

BloomFilter::BloomFilter(std::size_t bits, unsigned hashes)
    : bits_(std::max<std::size_t>(bits, 1)),
      hashes_(std::max<unsigned>(hashes, 1)),
      words_((bits_ + 63) / 64, 0) {}

std::size_t BloomFilter::probe(const Uint128& key, unsigned i) const {
  // Kirsch–Mitzenmacher: g_i(x) = h1(x) + i * h2(x). h2 is forced odd so the
  // probe sequence cycles through the full table for power-of-two sizes too.
  const std::uint64_t h1 = key.hi;
  const std::uint64_t h2 = key.lo | 1;
  return static_cast<std::size_t>((h1 + static_cast<std::uint64_t>(i) * h2) %
                                  static_cast<std::uint64_t>(bits_));
}

void BloomFilter::insert(const Uint128& key) {
  for (unsigned i = 0; i < hashes_; ++i) {
    const std::size_t b = probe(key, i);
    words_[b / 64] |= (1ULL << (b % 64));
  }
  ++inserted_;
}

bool BloomFilter::may_contain(const Uint128& key) const {
  for (unsigned i = 0; i < hashes_; ++i) {
    const std::size_t b = probe(key, i);
    if ((words_[b / 64] & (1ULL << (b % 64))) == 0) return false;
  }
  return true;
}

void BloomFilter::clear() {
  std::fill(words_.begin(), words_.end(), 0);
  inserted_ = 0;
}

double BloomFilter::fill_ratio() const {
  std::size_t set = 0;
  for (const auto w : words_) set += static_cast<std::size_t>(std::popcount(w));
  return static_cast<double>(set) / static_cast<double>(bits_);
}

double BloomFilter::estimated_fpr() const {
  return std::pow(fill_ratio(), static_cast<double>(hashes_));
}

double BloomFilter::theoretical_fpr(std::size_t n) const {
  const double k = static_cast<double>(hashes_);
  const double exponent = -k * static_cast<double>(n) / static_cast<double>(bits_);
  return std::pow(1.0 - std::exp(exponent), k);
}

}  // namespace webcache::bloom
