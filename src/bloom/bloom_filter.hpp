// Bloom filter (Bloom, CACM 1970) for the proxy's P2P-cache lookup directory.
//
// Section 4.2 of the paper proposes two directory representations: an exact
// hashtable of objectIds and a Bloom filter trading memory for a false-
// positive ratio. False positives make the proxy redirect a request into the
// P2P client cache for an object that is not there, wasting Tp2p before
// falling through to the cooperating proxies / server; the ablation bench
// quantifies exactly that trade-off.
#pragma once

#include <cstdint>
#include <vector>

#include "common/uint128.hpp"

namespace webcache::bloom {

/// Classic bit-array Bloom filter keyed by 128-bit identifiers. Uses the
/// Kirsch–Mitzenmacher double-hashing scheme: the two 64-bit limbs of the
/// identifier serve as the independent base hashes, so no re-hashing of the
/// (already SHA-1-derived, uniformly distributed) key is needed.
class BloomFilter {
 public:
  /// Sizes the filter for `expected_items` at `target_fpr` false-positive
  /// probability using the standard optima m = -n ln p / (ln 2)^2 and
  /// k = (m/n) ln 2.
  BloomFilter(std::size_t expected_items, double target_fpr);

  /// Explicit geometry: `bits` bit cells and `hashes` probes per key.
  BloomFilter(std::size_t bits, unsigned hashes);

  void insert(const Uint128& key);
  [[nodiscard]] bool may_contain(const Uint128& key) const;

  /// Removes all entries.
  void clear();

  [[nodiscard]] std::size_t bit_count() const { return bits_; }
  [[nodiscard]] unsigned hash_count() const { return hashes_; }
  [[nodiscard]] std::size_t memory_bytes() const { return words_.size() * sizeof(std::uint64_t); }
  [[nodiscard]] std::uint64_t inserted_count() const { return inserted_; }

  /// Fraction of set bits — the load factor driving the actual FPR.
  [[nodiscard]] double fill_ratio() const;

  /// Predicted false-positive probability at the current load:
  /// (set_fraction)^k.
  [[nodiscard]] double estimated_fpr() const;

  /// Theoretical FPR after n insertions into a fresh filter of this
  /// geometry: (1 - e^{-kn/m})^k.
  [[nodiscard]] double theoretical_fpr(std::size_t n) const;

 private:
  [[nodiscard]] std::size_t probe(const Uint128& key, unsigned i) const;

  std::size_t bits_;
  unsigned hashes_;
  std::uint64_t inserted_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace webcache::bloom
