#include "bloom/counting_bloom.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace webcache::bloom {

namespace {
constexpr double kLn2 = 0.6931471805599453;

std::size_t optimal_counters(std::size_t n, double p) {
  if (n == 0) n = 1;
  const double m = -static_cast<double>(n) * std::log(p) / (kLn2 * kLn2);
  return std::max<std::size_t>(64, static_cast<std::size_t>(std::ceil(m)));
}

unsigned optimal_hashes(std::size_t m, std::size_t n) {
  if (n == 0) n = 1;
  const double k = static_cast<double>(m) / static_cast<double>(n) * kLn2;
  return std::clamp<unsigned>(static_cast<unsigned>(std::lround(k)), 1, 16);
}
}  // namespace

CountingBloomFilter::CountingBloomFilter(std::size_t expected_items, double target_fpr)
    : CountingBloomFilter(
          optimal_counters(expected_items, target_fpr),
          optimal_hashes(optimal_counters(expected_items, target_fpr), expected_items)) {
  if (!(target_fpr > 0.0 && target_fpr < 1.0)) {
    throw std::invalid_argument("CountingBloomFilter: target_fpr must be in (0, 1)");
  }
}

CountingBloomFilter::CountingBloomFilter(std::size_t counters, unsigned hashes)
    : counters_(std::max<std::size_t>(counters, 1)),
      hashes_(std::max<unsigned>(hashes, 1)),
      cells_(counters_, 0) {}

std::size_t CountingBloomFilter::probe(const Uint128& key, unsigned i) const {
  const std::uint64_t h1 = key.hi;
  const std::uint64_t h2 = key.lo | 1;
  return static_cast<std::size_t>((h1 + static_cast<std::uint64_t>(i) * h2) %
                                  static_cast<std::uint64_t>(counters_));
}

void CountingBloomFilter::insert(const Uint128& key) {
  for (unsigned i = 0; i < hashes_; ++i) {
    auto& cell = cells_[probe(key, i)];
    if (cell == kMaxCount) {
      ++saturations_;
    } else {
      ++cell;
    }
  }
}

void CountingBloomFilter::erase(const Uint128& key) {
  for (unsigned i = 0; i < hashes_; ++i) {
    auto& cell = cells_[probe(key, i)];
    // A saturated counter can no longer be decremented safely; leaving it at
    // the maximum turns potential false negatives into false positives.
    if (cell > 0 && cell < kMaxCount) {
      --cell;
    }
  }
}

bool CountingBloomFilter::may_contain(const Uint128& key) const {
  for (unsigned i = 0; i < hashes_; ++i) {
    if (cells_[probe(key, i)] == 0) return false;
  }
  return true;
}

std::uint8_t CountingBloomFilter::estimate(const Uint128& key) const {
  std::uint8_t min = kMaxCount;
  for (unsigned i = 0; i < hashes_; ++i) {
    min = std::min(min, cells_[probe(key, i)]);
  }
  return min;
}

void CountingBloomFilter::halve() {
  for (auto& cell : cells_) cell >>= 1;
}

void CountingBloomFilter::clear() {
  std::fill(cells_.begin(), cells_.end(), 0);
  saturations_ = 0;
}

double CountingBloomFilter::estimated_fpr() const {
  std::size_t nonzero = 0;
  for (const auto c : cells_) nonzero += (c != 0);
  const double fill = static_cast<double>(nonzero) / static_cast<double>(counters_);
  return std::pow(fill, static_cast<double>(hashes_));
}

}  // namespace webcache::bloom
