// Counting Bloom filter (Fan et al., "Summary Cache", ToN 2000).
//
// The P2P-cache lookup directory churns constantly: every destaged object
// adds an entry and every client-cache eviction removes one. A plain Bloom
// filter cannot delete, so the proxy-side Bloom directory uses 4-bit
// counters exactly as Summary Cache does; 4 bits overflow with probability
// ~1.37e-15 per counter, which the implementation clamps (saturating) so an
// overflowing counter degrades to a permanent false positive rather than a
// false negative.
#pragma once

#include <cstdint>
#include <vector>

#include "common/uint128.hpp"

namespace webcache::bloom {

/// Bloom filter with 4-bit saturating counters supporting erase().
class CountingBloomFilter {
 public:
  /// Same sizing rule as BloomFilter: counters = -n ln p / (ln 2)^2.
  CountingBloomFilter(std::size_t expected_items, double target_fpr);
  CountingBloomFilter(std::size_t counters, unsigned hashes);

  void insert(const Uint128& key);

  /// Decrements the key's counters. Erasing a key that was never inserted
  /// corrupts the filter (as with any counting bloom); callers guard this.
  void erase(const Uint128& key);

  [[nodiscard]] bool may_contain(const Uint128& key) const;

  /// Count-min style frequency estimate: the minimum of the key's counters.
  /// Never underestimates an actual insert/erase balance (modulo saturation),
  /// which is exactly the bias TinyLFU admission wants.
  [[nodiscard]] std::uint8_t estimate(const Uint128& key) const;

  /// Halves every counter (the TinyLFU "reset" aging step). Saturated cells
  /// decay like any other, so a once-hot key stops looking permanently hot.
  void halve();

  void clear();

  [[nodiscard]] std::size_t counter_count() const { return counters_; }
  [[nodiscard]] unsigned hash_count() const { return hashes_; }
  [[nodiscard]] std::size_t memory_bytes() const { return cells_.size() * sizeof(std::uint8_t); }
  [[nodiscard]] std::uint64_t saturation_events() const { return saturations_; }

  /// Predicted false-positive probability at current load.
  [[nodiscard]] double estimated_fpr() const;

 private:
  static constexpr std::uint8_t kMaxCount = 15;  // 4-bit saturating

  [[nodiscard]] std::size_t probe(const Uint128& key, unsigned i) const;

  std::size_t counters_;
  unsigned hashes_;
  std::uint64_t saturations_ = 0;
  std::vector<std::uint8_t> cells_;  // one byte per 4-bit counter for simplicity of access
};

}  // namespace webcache::bloom
