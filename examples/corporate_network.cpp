// Corporate-network scenario: the deployment the paper's introduction
// motivates. Five branch offices, each with its own proxy and 400 employee
// workstations whose browser caches are federated into a P2P client cache.
// The example sizes everything from the observed workload, runs the
// practical scheme (Hier-GD) against the no-cooperation status quo, and
// reports what an operator would want to know: where requests were served,
// what the protocol overhead was, and what the WAN saw.
//
//   $ ./corporate_network [requests]
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "core/experiment.hpp"
#include "workload/prowgen.hpp"
#include "workload/trace_stats.hpp"

int main(int argc, char** argv) {
  using namespace webcache;

  constexpr unsigned kOffices = 5;
  constexpr ClientNum kWorkstations = 400;

  workload::ProWGenConfig wl;
  wl.total_requests = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 400'000;
  wl.distinct_objects = 8'000;
  wl.clients = kWorkstations;
  wl.seed = 5;
  const auto trace = workload::ProWGen(wl).generate();

  const auto infinite = core::cluster_infinite_cache_size(trace, kOffices);
  std::cout << "corporate network: " << kOffices << " offices x " << kWorkstations
            << " workstations\n"
            << "workload: " << trace.size() << " requests, per-office working set "
            << infinite << " objects\n\n";

  // Modest proxy boxes: 25% of the working set. Every workstation donates
  // browser-cache space worth 0.1% of the working set.
  sim::SimConfig cfg;
  cfg.num_proxies = kOffices;
  cfg.clients_per_cluster = kWorkstations;
  cfg.proxy_capacity = std::max<std::size_t>(1, infinite / 4);
  cfg.client_cache_capacity = std::max<std::size_t>(1, infinite / 1000);

  std::cout << std::fixed << std::setprecision(2);
  std::cout << "proxy cache: " << cfg.proxy_capacity << " objects; federated client cache: "
            << static_cast<std::size_t>(kWorkstations) * cfg.client_cache_capacity
            << " objects per office\n\n";

  cfg.scheme = sim::Scheme::kHierGD;
  const auto run = core::run_single(trace, cfg);
  const auto& m = run.metrics;
  const auto& nc = run.baseline;

  std::cout << "=== status quo (isolated office proxies, NC) ===\n"
            << nc.summary() << "\n";
  std::cout << "=== Hier-GD (cooperating proxies + federated browser caches) ===\n"
            << m.summary() << "\n";

  std::cout << "latency gain over status quo: " << run.gain_percent << "%\n\n";

  const auto wan_before = nc.server_fetches;
  const auto wan_after = m.server_fetches;
  std::cout << "WAN requests to origin servers: " << wan_before << " -> " << wan_after << " ("
            << 100.0 * (1.0 - static_cast<double>(wan_after) / static_cast<double>(wan_before))
            << "% fewer)\n\n";

  std::cout << "protocol overhead (whole run):\n"
            << "  destaged objects (piggybacked):  " << m.messages.destage_piggybacked << "\n"
            << "  Pastry forwarding messages:      " << m.messages.pastry_forward_messages
            << "\n"
            << "  object diversions:               " << m.messages.diversions << "\n"
            << "  push transfers through firewall: " << m.messages.push_transfers << "\n"
            << "  mean Pastry hops per operation:  " << m.p2p_hops.mean() << "\n";
  return 0;
}
