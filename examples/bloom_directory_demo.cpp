// Lookup-directory sizing walkthrough (paper Section 4.2).
//
// Shows the exact-vs-Bloom directory decision an operator faces: build both
// representations over the same live P2P cache population, measure memory
// and observed false positives directly, then confirm in a full simulation
// what a false positive costs end-to-end.
#include <iomanip>
#include <iostream>
#include <sstream>

#include "core/experiment.hpp"
#include "directory/directory.hpp"
#include "workload/prowgen.hpp"

int main() {
  using namespace webcache;

  // A population of 10,000 cached objects out of a 100,000-object universe
  // (a realistic federated browser-cache population).
  constexpr ObjectNum kUniverse = 100'000;
  constexpr ObjectNum kCached = 10'000;
  const auto ids = directory::build_object_id_table(kUniverse);

  std::cout << "population: " << kCached << " objects cached of " << kUniverse
            << " in the universe\n\n";
  std::cout << std::left << std::setw(14) << "directory" << std::setw(14) << "memory"
            << std::setw(18) << "observed FPR" << "false redirects per 1M misses\n";
  std::cout << std::fixed << std::setprecision(4);

  directory::ExactDirectory exact;
  for (ObjectNum o = 0; o < kCached; ++o) exact.add(o);
  std::cout << std::setw(14) << "exact" << std::setw(14) << exact.memory_bytes()
            << std::setw(18) << 0.0 << 0 << "\n";

  for (const double target : {0.1, 0.01, 0.001}) {
    directory::BloomDirectory bloom(ids, kCached, target);
    for (ObjectNum o = 0; o < kCached; ++o) bloom.add(o);
    std::size_t fp = 0;
    const ObjectNum probes = kUniverse - kCached;
    for (ObjectNum o = kCached; o < kUniverse; ++o) {
      if (bloom.may_contain(o)) ++fp;
    }
    const double fpr = static_cast<double>(fp) / static_cast<double>(probes);
    std::ostringstream label;
    label << "bloom(" << target << ")";
    std::cout << std::setw(14) << label.str() << std::setw(14) << bloom.memory_bytes()
              << std::setw(18) << fpr << static_cast<std::uint64_t>(fpr * 1'000'000.0)
              << "\n";
  }

  // What does a false positive cost end-to-end? Each one redirects a missed
  // request into the overlay for nothing, wasting Tp2p before the proxy
  // falls back to its cooperating proxies or the server.
  std::cout << "\nend-to-end effect on Hier-GD (120k-request synthetic workload):\n";
  workload::ProWGenConfig wl;
  wl.total_requests = 120'000;
  wl.distinct_objects = 4'000;
  wl.seed = 9;
  const auto trace = workload::ProWGen(wl).generate();
  const auto infinite = core::cluster_infinite_cache_size(trace, 2);

  std::cout << std::left << std::setw(14) << "directory" << std::setw(10) << "gain%"
            << std::setw(14) << "wasted-lat" << "false redirects\n";
  for (int variant = 0; variant < 3; ++variant) {
    sim::SimConfig cfg;
    cfg.scheme = sim::Scheme::kHierGD;
    cfg.proxy_capacity = std::max<std::size_t>(1, infinite * 20 / 100);
    cfg.client_cache_capacity = std::max<std::size_t>(1, infinite / 1000);
    std::string label = "exact";
    if (variant > 0) {
      cfg.directory = sim::DirectoryKind::kBloom;
      cfg.bloom_target_fpr = variant == 1 ? 0.1 : 0.01;
      label = variant == 1 ? "bloom(0.1)" : "bloom(0.01)";
    }
    const auto run = core::run_single(trace, cfg);
    std::cout << std::setw(14) << label << std::setw(10) << run.gain_percent
              << std::setw(14) << run.metrics.wasted_p2p_latency
              << run.metrics.messages.directory_false_positives << "\n";
  }
  return 0;
}
