// Quickstart: generate a synthetic Web workload, run all seven caching
// schemes at one proxy-cache size, and print the latency gain of each over
// the non-cooperative baseline — the paper's headline comparison in a dozen
// lines of API.
//
//   $ ./quickstart [requests] [distinct-objects]
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "core/experiment.hpp"
#include "workload/prowgen.hpp"

int main(int argc, char** argv) {
  using namespace webcache;

  // 1. A ProWGen workload: Zipf popularity, one-timers, temporal locality.
  workload::ProWGenConfig wl;
  wl.total_requests = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200'000;
  wl.distinct_objects = argc > 2 ? static_cast<ObjectNum>(std::strtoul(argv[2], nullptr, 10))
                                 : 5'000;
  const auto trace = workload::ProWGen(wl).generate();
  std::cout << "workload: " << trace.size() << " requests over " << trace.distinct_objects
            << " distinct objects\n";

  // 2. A two-proxy cluster, 100 clients per proxy, proxy caches sized to
  //    30% of the infinite cache size (the regime where client caches help
  //    the most).
  core::SweepConfig sweep;
  sweep.cache_percents = {30};
  sweep.base.num_proxies = 2;
  sweep.base.clients_per_cluster = 100;

  const auto result = core::run_sweep(trace, sweep);

  // 3. The paper's metric: latency gain over NC.
  std::cout << "\nproxy cache = 30% of infinite cache size ("
            << result.infinite_cache_size << " objects); each client contributes "
            << result.client_cache_capacity << " objects to the P2P cache\n\n";
  std::cout << std::left << std::setw(10) << "scheme" << std::setw(14) << "latency gain"
            << std::setw(14) << "mean latency" << "hit ratio\n";
  std::cout << std::fixed << std::setprecision(2);
  for (std::size_t k = 0; k < result.schemes.size(); ++k) {
    const auto& m = result.metrics[0][k];
    std::cout << std::setw(10) << sim::to_string(result.schemes[k]) << std::setw(14)
              << result.gains[0][k] << std::setw(14) << m.mean_latency()
              << 100.0 * m.hit_ratio() << "%\n";
  }
  return 0;
}
