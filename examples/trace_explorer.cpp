// Trace tooling walkthrough: write a trace to disk in the interchange
// format, load it back, characterize the workload (the statistics the
// paper's experiment setup is defined in terms of), and replay it through
// two schemes. Point it at a converted real proxy log to repeat the paper's
// UCB experiment with actual data:
//
//   $ ./trace_explorer                   # generates and analyzes a demo trace
//   $ ./trace_explorer access.trace      # analyzes + replays your trace file
//   $ ./trace_explorer access.log squid  # ingests a Squid access.log
//
// Trace format: one request per line, "<time> <client> <object-or-url>
// [size]"; URLs are mapped to dense object ids in first-seen order.
#include <cstdio>
#include <iomanip>
#include <iostream>
#include <string>

#include "core/experiment.hpp"
#include "workload/squid_log.hpp"
#include "workload/stack_distance.hpp"
#include "workload/trace_stats.hpp"
#include "workload/ucb_like.hpp"

int main(int argc, char** argv) {
  using namespace webcache;

  workload::Trace trace;
  if (argc > 2 && std::string(argv[2]) == "squid") {
    std::cout << "ingesting Squid access.log " << argv[1] << "\n";
    auto result = workload::read_squid_log_file(argv[1]);
    std::cout << "  " << result.trace.size() << " requests kept, "
              << result.lines_skipped << " filtered, " << result.lines_malformed
              << " malformed, " << result.distinct_clients << " clients\n";
    trace = std::move(result.trace);
  } else if (argc > 1) {
    std::cout << "loading trace from " << argv[1] << "\n";
    trace = workload::read_trace_file(argv[1]);
  } else {
    const char* path = "/tmp/webcache_demo.trace";
    std::cout << "no trace given; generating a UCB-like demo trace at " << path << "\n";
    workload::UcbLikeConfig cfg;
    cfg.scale = 0.01;  // ~92k requests
    workload::write_trace_file(path, workload::generate_ucb_like(cfg));
    trace = workload::read_trace_file(path);
  }

  const auto stats = workload::analyze(trace);
  std::cout << std::fixed << std::setprecision(3);
  std::cout << "\n--- workload characteristics ---\n"
            << "requests:                " << stats.total_requests << "\n"
            << "distinct objects:        " << stats.distinct_objects << "\n"
            << "one-timers:              " << stats.one_timers << " ("
            << 100.0 * static_cast<double>(stats.one_timers) /
                   static_cast<double>(stats.distinct_objects)
            << "% of objects)\n"
            << "infinite cache size:     " << stats.infinite_cache_size
            << " (objects referenced more than once)\n"
            << "hottest object:          " << stats.max_frequency << " requests\n"
            << "top-decile share:        " << 100.0 * stats.top_decile_share << "%\n"
            << "estimated Zipf alpha:    " << workload::estimate_zipf_alpha(stats) << "\n";

  // Temporal locality: exact LRU stack-distance distribution, and the LRU
  // hit ratios it implies (no simulation needed).
  const auto distances = workload::lru_stack_distances(trace);
  const auto locality = workload::summarize_stack_distances(distances);
  std::cout << "\n--- temporal locality (LRU stack distances) ---\n"
            << "re-references:           " << locality.reuses << "\n"
            << "mean / median / p90:     " << locality.mean << " / " << locality.median
            << " / " << locality.p90 << "\n";
  for (const std::size_t cap :
       {stats.infinite_cache_size / 10, stats.infinite_cache_size / 2}) {
    std::cout << "LRU(" << cap << ") hit ratio:      "
              << 100.0 * workload::lru_hit_ratio(distances, cap) << "%\n";
  }

  // Replay: a 2-proxy cluster with proxy caches at 30% of the per-cluster
  // working set, comparing simple cooperation against Hier-GD.
  const auto infinite = core::cluster_infinite_cache_size(trace, 2);
  sim::SimConfig cfg;
  cfg.proxy_capacity = std::max<std::size_t>(1, infinite * 30 / 100);
  cfg.client_cache_capacity = std::max<std::size_t>(1, infinite / 1000);

  std::cout << "\n--- replay (2 proxies, proxy cache = 30% of working set = "
            << cfg.proxy_capacity << " objects) ---\n";
  for (const auto scheme : {sim::Scheme::kSC, sim::Scheme::kHierGD}) {
    cfg.scheme = scheme;
    const auto run = core::run_single(trace, cfg);
    std::cout << std::left << std::setw(10) << sim::to_string(scheme) << " gain "
              << std::setw(8) << run.gain_percent << "%  mean latency "
              << run.metrics.mean_latency() << "  hit ratio "
              << 100.0 * run.metrics.hit_ratio() << "%\n";
  }
  return 0;
}
