// Walkthrough of the Hier-GD algorithm of the paper's Figure 1, narrated on
// a tiny cluster so each of the three storage cases is visible:
//   (3)-(5)   the root client cache has free space -> store locally;
//   (7)-(10)  root full, a leaf-set peer has space -> object diversion;
//   (12)-(14) whole neighborhood full -> local greedy-dual replacement,
//             the loser is discarded and the proxy's directory updated.
#include <iostream>

#include "directory/directory.hpp"
#include "p2p/p2p_client_cache.hpp"

int main() {
  using namespace webcache;

  constexpr ClientNum kClients = 8;
  constexpr std::size_t kPerClient = 2;

  p2p::P2PConfig cfg;
  cfg.clients = kClients;
  cfg.per_client_capacity = kPerClient;
  cfg.overlay.leaf_set_size = 4;
  const auto ids = directory::build_object_id_table(64);
  p2p::P2PClientCache p2p(cfg, ids);
  directory::ExactDirectory dir;

  std::cout << "P2P client cache: " << kClients << " clients x " << kPerClient
            << " objects = " << p2p.total_capacity() << " slots\n\n";

  // The proxy evicts objects one after another (greedy-dual victims). We
  // destage them and narrate what the algorithm did with each.
  bool saw_local = false, saw_diverted = false, saw_replacement = false;
  for (ObjectNum object = 0; object < 40; ++object) {
    const auto outcome = p2p.store(object, /*refetch cost=*/20.0,
                                   /*piggybacked via client*/ object % kClients);
    if (!outcome.stored) continue;
    dir.add(object);
    if (outcome.displaced) dir.remove(*outcome.displaced);

    if (outcome.diverted && !saw_diverted) {
      saw_diverted = true;
      std::cout << "object " << object << ": root full -> DIVERTED to a leaf-set peer"
                << " (steps 7-10; hops=" << outcome.hops << ")\n";
    } else if (outcome.displaced && !saw_replacement) {
      saw_replacement = true;
      std::cout << "object " << object
                << ": neighborhood full -> greedy-dual REPLACEMENT, discarded object "
                << *outcome.displaced << " (steps 12-14)\n";
    } else if (!outcome.diverted && !outcome.displaced && !saw_local) {
      saw_local = true;
      std::cout << "object " << object << ": root had free space -> stored locally"
                << " (steps 3-5; hops=" << outcome.hops << ")\n";
    }
  }

  std::cout << "\nafter 40 destages: " << p2p.size() << "/" << p2p.total_capacity()
            << " slots used, " << dir.entry_count() << " directory entries, "
            << p2p.messages().diversions << " diversions, utilization CV "
            << p2p.utilization_cv() << "\n";

  // Lookup path: the directory gates the overlay; a hit promotes the object
  // out of the client tier (the proxy holds it now).
  const ObjectNum probe = 39;
  if (dir.may_contain(probe)) {
    const auto fetched = p2p.fetch(probe, /*via client*/ 0, /*remove_on_hit=*/true);
    std::cout << "\nlookup of object " << probe << ": "
              << (fetched.hit ? "HIT" : "miss") << " in " << fetched.hops
              << " Pastry hops" << (fetched.via_diversion_pointer
                                        ? " (one via a diversion pointer)"
                                        : "")
              << "; promoted to the proxy and removed below\n";
    dir.remove(probe);
  }

  // Fault handling: crash a client, show the directory healing on a failed
  // lookup.
  const auto lost = p2p.fail_client(3);
  std::cout << "\nclient 3 crashed: " << lost.size() << " objects lost\n";
  for (const auto object : lost) {
    if (dir.may_contain(object)) {
      const auto fetched = p2p.fetch(object, 0, true);
      std::cout << "  stale directory entry for object " << object
                << ": lookup " << (fetched.hit ? "hit?!" : "missed")
                << " -> entry removed (self-heal)\n";
      dir.remove(object);
      break;  // one demonstration suffices
    }
  }
  return 0;
}
